#!/usr/bin/env python
"""Project strong scaling to Blue-Waters core counts (analytic mode).

Uses the phase-cost model (validated against the runtime simulator at
small scale) to sweep a state's strong-scaling curve under the four
data-distribution strategies of Figure 13, out to tens of thousands of
core-modules.

Run:  python examples/scaling_projection.py
"""

import numpy as np

from repro.analysis.scaling import PhaseCostModel, speedup_table, strong_scaling_curve
from repro.analysis.speedup import lpt_location_partition
from repro.loadmodel.workload import WorkloadModel
from repro.partition import round_robin_partition, split_heavy_locations
from repro.partition.quality import BipartitePartition
from repro.synthpop import state_population

CORES = [1, 4, 16, 64, 256, 1024, 4096, 16384]


def gp_like_provider(graph):
    """Load-balanced provider standing in for GP at large k (LPT)."""
    loads = WorkloadModel().location_weights(graph).astype(float)

    def provider(n_pes):
        return BipartitePartition(
            person_part=np.arange(graph.n_persons, dtype=np.int64) % n_pes,
            location_part=lpt_location_partition(loads, n_pes),
            k=n_pes,
            method="GP~",
        )

    return provider


def main() -> None:
    graph = state_population("IA", scale=2e-3, seed=1)
    print(f"population: {graph.summary()}\n")
    model = PhaseCostModel()

    sr = split_heavy_locations(graph, max_partitions=max(CORES))
    print(f"splitLoc split {sr.n_split} locations\n")

    sweeps = {
        "RR": (graph, lambda n: round_robin_partition(graph, n)),
        "GP~ (LPT)": (graph, gp_like_provider(graph)),
        "RR-splitLoc": (sr.graph, lambda n: round_robin_partition(sr.graph, n)),
        "GP~-splitLoc": (sr.graph, gp_like_provider(sr.graph)),
    }
    for name, (g, provider) in sweeps.items():
        print(f"--- {name}")
        print(speedup_table(strong_scaling_curve(g, provider, CORES, model)))
        print()

    print(
        "The paper's Figure-13 shape: RR and GP saturate at L_tot/l_max"
        "\n(the heaviest location), while the splitLoc variants keep"
        "\nscaling for orders of magnitude more cores."
    )


if __name__ == "__main__":
    main()
