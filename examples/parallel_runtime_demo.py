#!/usr/bin/env python
"""Run EpiSimdemics on the simulated Charm++-like runtime.

Executes the same scenario twice — sequential reference and
chare-parallel on a simulated 4-node SMP machine — and shows that

1. the epidemics are *identical* (keyed randomness makes data
   distribution a pure performance choice), and
2. the runtime reports virtual-time phase breakdowns per day, message
   counts by tier, and the completion-detection protocol's waves, and
3. running under an observer (`repro.observe`) yields the
   Projections-style per-PE timeline and utilisation views the paper
   used to find its bottlenecks (Figures 9-11) — tracing costs no
   random numbers, so the curves stay identical.

Run:  python examples/parallel_runtime_demo.py
"""

from repro import observe
from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, SequentialSimulator
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.partition import partition_bipartite
from repro.synthpop import state_population


def main() -> None:
    graph = state_population("WY", scale=2e-3, seed=1)
    machine = MachineConfig(n_nodes=4, cores_per_node=8, smp=True, processes_per_node=2)
    m = Machine(machine)
    print(f"population: {graph.summary()}")
    print(
        f"machine: {machine.n_nodes} nodes x {machine.cores_per_node} core-modules, "
        f"SMP with {machine.processes_per_node} comm threads/node -> {m.n_pes} compute PEs\n"
    )

    def scenario():
        return Scenario(graph=graph, n_days=20, initial_infections=8, seed=5)

    seq = SequentialSimulator(scenario()).run()

    # Trace the parallel run: ParallelEpiSimdemics auto-attaches a
    # runtime tracer whenever an observer is active.
    dist = Distribution.from_partition(partition_bipartite(graph, m.n_pes), m)
    with observe.observing() as obs:
        par = ParallelEpiSimdemics(scenario(), machine, dist).run()

    same = par.result.curve == seq.curve
    print(f"epidemic identical to sequential reference: {same}")
    assert same

    print(f"\nvirtual time for 20 days: {par.total_virtual_time * 1e3:.2f} ms")
    print(f"mean time per day:        {par.time_per_day * 1e3:.3f} ms")

    print("\nper-day phase breakdown (virtual ms):")
    print(f"{'day':>4} {'person':>9} {'location':>9} {'apply+stats':>12} {'total':>9}")
    for pt in par.phase_times[:8]:
        apply_t = pt.day_done - pt.locations_done
        print(
            f"{pt.day:>4} {pt.person_phase * 1e3:>9.3f} {pt.location_phase * 1e3:>9.3f} "
            f"{apply_t * 1e3:>12.3f} {pt.total * 1e3:>9.3f}"
        )
    print("  ...")

    stats = par.runtime_stats
    print("\nmessages by tier:", stats["messages"])
    print("bytes by tier:   ", stats["bytes"])
    print(f"scheduler events: {stats['events']}")

    # The Projections views (paper Figures 9-11) from the same run.
    print("\nper-PE utilisation (virtual time):")
    print(observe.utilization_table(obs))
    print("\nper-PE timeline (first 8 PEs):")
    print(observe.pe_timeline(obs, width=64, pes=list(range(min(8, obs.n_pes)))))
    print("\nentry-method profile:")
    print(observe.method_profile_table(obs, top=6))
    print("\nwrite a Chrome trace with observe.write_chrome_trace(obs, 'trace.json')"
          "\nor run the packaged driver:  python -m repro profile --preset small")


if __name__ == "__main__":
    main()
