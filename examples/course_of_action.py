#!/usr/bin/env python
"""Course-of-action analysis — the paper's motivating use case.

Section I: during the 2009 H1N1 outbreak, analysts used EpiSimdemics
"to estimate the impact of closing schools and shutting down
workplaces" inside a 24-hour decision cycle.  This example reproduces
that style of study: the same outbreak is simulated under several
intervention policies (written in the intervention mini-language) and
the outcomes are compared.

Run:  python examples/course_of_action.py
"""

from repro.core import Scenario, SequentialSimulator, parse_intervention_script
from repro.synthpop import state_population

POLICIES = {
    "baseline": "",
    "close schools at 1% prevalence": """
        close_schools prevalence=0.01 duration=28
    """,
    "close schools + workplaces": """
        close_schools prevalence=0.01 duration=28
        close_work prevalence=0.02 duration=14
    """,
    "vaccinate 30% of school children": """
        vaccinate coverage=0.3 day=0 ages=5-18
    """,
    "combined + symptomatic stay home": """
        vaccinate coverage=0.3 day=0 ages=5-18
        close_schools prevalence=0.01 duration=28
        stay_home compliance=0.6
    """,
}


def main() -> None:
    graph = state_population("AR", scale=1e-3, seed=2)
    print(f"population: {graph.summary()}\n")
    print(f"{'policy':42s} {'attack rate':>12s} {'peak day':>9s} {'peak cases':>11s}")

    for name, script in POLICIES.items():
        scenario = Scenario(
            graph=graph,
            n_days=150,
            initial_infections=10,
            seed=99,  # same outbreak under every policy
            interventions=parse_intervention_script(script),
        )
        result = SequentialSimulator(scenario).run()
        curve = result.curve
        peak = curve.peak_day
        print(
            f"{name:42s} {curve.attack_rate(graph.n_persons):>11.1%} "
            f"{peak:>9d} {curve.new_infections[peak]:>11d}"
        )

    print(
        "\nInterpretation: school closure delays and flattens the peak;"
        "\nvaccination reduces the attack rate outright; the combined"
        "\npolicy does both — the trade-off analysts weighed in 2009."
    )


if __name__ == "__main__":
    main()
