#!/usr/bin/env python
"""Data-distribution study: RR vs GP vs splitLoc (paper §III).

Compares the four distribution strategies of Figure 13 on one state:
load imbalance per computation phase, total and per-partition edge
cut, and the upper-bound speedup S_ub — the quantities that decide
strong-scaling behaviour.

Run:  python examples/partitioning_study.py
"""

import numpy as np

from repro.analysis.speedup import upper_bound_speedup
from repro.loadmodel.workload import WorkloadModel
from repro.partition import (
    edge_cut,
    imbalance,
    partition_bipartite,
    partition_loads,
    per_partition_edge_cut,
    round_robin_partition,
    split_heavy_locations,
)
from repro.synthpop import state_population

K = 32  # partitions


def describe(name, graph, partition, workload):
    loads = partition_loads(graph, partition, workload)
    ratios = imbalance(loads)
    sub = upper_bound_speedup(loads[:, 1])
    cut = edge_cut(graph, partition)
    max_cut = per_partition_edge_cut(graph, partition).max()
    print(
        f"{name:14s} {ratios[0]:>10.2f} {ratios[1]:>10.2f} "
        f"{sub:>8.1f} {cut:>10d} {int(max_cut):>10d}"
    )


def main() -> None:
    graph = state_population("WY", scale=4e-3, seed=3)
    workload = WorkloadModel()
    print(f"population: {graph.summary()}")

    sr = split_heavy_locations(graph, max_partitions=1024)
    print(
        f"\nsplitLoc: split {sr.n_split} heavy locations "
        f"(threshold {sr.threshold:.0f} visits), "
        f"{graph.n_locations} -> {sr.graph.n_locations} locations "
        f"(+{100 * (sr.graph.n_locations / graph.n_locations - 1):.1f}%)\n"
    )

    print(
        f"{'strategy':14s} {'person imb':>10s} {'loc imb':>10s} "
        f"{'S_ub':>8s} {'edge cut':>10s} {'max p-cut':>10s}"
    )
    describe("RR", graph, round_robin_partition(graph, K), workload)
    describe("GP", graph, partition_bipartite(graph, K), workload)
    describe("RR-splitLoc", sr.graph, round_robin_partition(sr.graph, K), workload)
    describe("GP-splitLoc", sr.graph, partition_bipartite(sr.graph, K), workload)

    print(
        "\nReading the table: RR balances counts, not loads (high loc"
        "\nimbalance) and cuts almost every edge.  GP fixes locality but"
        "\nis still capped by the heaviest location.  splitLoc removes"
        "\nthat cap; GP-splitLoc gets both balance and locality — the"
        "\npaper's §III story in one table."
    )


if __name__ == "__main__":
    main()
