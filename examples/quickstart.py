#!/usr/bin/env python
"""Quickstart: simulate a flu season over a synthetic Iowa.

Generates a 1/1000-scale Iowa population (Table-I ratios), runs the
sequential EpiSimdemics reference for 120 days with the bundled
H1N1-like disease model, and prints the epidemic curve — plus, because
the whole run executes under `repro.observe`, a wall-clock phase
breakdown showing where the time went (tracing is free of side
effects: the epidemic is bit-identical with or without it).

Run:  python examples/quickstart.py
"""

from repro import observe
from repro.core import Scenario, SequentialSimulator
from repro.synthpop import state_population


def main() -> None:
    with observe.observing() as obs:
        graph = state_population("IA", scale=1e-3, seed=42)
        print(f"population: {graph.summary()}")

        scenario = Scenario(
            graph=graph,
            n_days=120,  # the paper notes typical studies run 120-180 days
            initial_infections=10,
            seed=7,
        )
        result = SequentialSimulator(scenario).run()

    curve = result.curve
    print(f"\nattack rate : {curve.attack_rate(graph.n_persons):6.1%}")
    print(f"peak day    : {curve.peak_day}")
    print(f"total cases : {result.total_infections}")
    print("\nfinal health states:")
    for name, count in result.final_histogram.items():
        print(f"  {name:26s} {count:8d}")

    print("\nweekly new infections:")
    new = curve.new_infections
    for week in range(0, len(new), 7):
        cases = sum(new[week : week + 7])
        bar = "#" * max(1, cases // 20) if cases else ""
        print(f"  week {week // 7:2d}: {cases:6d} {bar}")

    print("\nwhere the wall-clock time went (repro.observe):")
    print(observe.phase_table(obs))


if __name__ == "__main__":
    main()
