#!/usr/bin/env python
"""Replicated intervention study with confidence intervals.

A single stochastic run can mislead a decision-maker; the paper's H1N1
analyses compared policies over replicate ensembles.  This example uses
the experiment harness to run each policy across seeds (common random
numbers) and reports attack-rate confidence intervals plus paired
significance tests.

Run:  python examples/replicated_policy_study.py
"""

from repro.analysis.experiments import compare_policies
from repro.core import Scenario, TransmissionModel, parse_intervention_script
from repro.synthpop import state_population

POLICY_SCRIPTS = {
    "baseline": "",
    "school closure": "close_schools prevalence=0.01 duration=28",
    "child vaccination": "vaccinate coverage=0.4 day=0 ages=5-18",
    "combined": """
        vaccinate coverage=0.4 day=0 ages=5-18
        close_schools prevalence=0.01 duration=28
        stay_home compliance=0.5
    """,
}

SEEDS = range(8)


def main() -> None:
    graph = state_population("WY", scale=2e-3, seed=1)
    print(f"population: {graph.summary()}")
    print(f"replicates: {len(list(SEEDS))} seeds per policy (common random numbers)\n")

    def factory(script):
        def make(seed):
            return Scenario(
                graph=graph,
                n_days=100,
                seed=seed,
                initial_infections=8,
                transmission=TransmissionModel(1.5e-4),
                interventions=parse_intervention_script(script),
            )

        return make

    policies = {name: factory(script) for name, script in POLICY_SCRIPTS.items()}
    summaries, contrasts = compare_policies(policies, SEEDS)

    print(f"{'policy':<20} {'attack rate':>12} {'95% CI':>18} {'peak day':>9}")
    for name, s in summaries.items():
        lo, hi = s.attack_rate_ci()
        print(
            f"{name:<20} {s.mean_attack_rate:>11.1%} "
            f"[{lo:>6.1%}, {hi:>6.1%}] {s.peak_days.mean():>9.1f}"
        )

    print("\npairwise contrasts (attack-rate difference, paired t-test):")
    for c in contrasts:
        marker = "*" if c.significant else " "
        print(
            f"  {c.name_a:<18} vs {c.name_b:<18} "
            f"diff={c.mean_difference:+.1%}  p={c.p_value:.3f} {marker}"
        )
    print("\n(* = significant at the 5% level)")


if __name__ == "__main__":
    main()
