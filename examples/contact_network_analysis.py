#!/usr/bin/env python
"""Analyse the implicit person–person contact network (paper §II-A).

EpiSimdemics never materialises the person–person graph — that is the
design decision that makes the location-centric DES scale.  This
example materialises it anyway (affordable at analysis scale) to show
the structure the simulator is implicitly traversing: contact degrees,
contact-minute distributions, and the bipartite-vs-unipartite size
blow-up that justifies the paper's representation choice.

Run:  python examples/contact_network_analysis.py
"""

import numpy as np

from repro.synthpop import state_population
from repro.synthpop.contact import contact_network
from repro.util.histogram import log_binned_histogram


def main() -> None:
    graph = state_population("WY", scale=2e-3, seed=4)
    print(f"population: {graph.summary()}\n")

    net = contact_network(graph)
    print("person-person contact network (one day):")
    print(f"  edges                : {net.n_edges:,}")
    print(f"  vs person-location   : {graph.n_visits:,} visits "
          f"({net.n_edges / graph.n_visits:.1f}x)")
    deg = net.degrees()
    print(f"  mean contact degree  : {deg.mean():.1f}")
    print(f"  median / max degree  : {np.median(deg):.0f} / {deg.max()}")
    minutes = net.contact_minutes_per_person()
    print(f"  mean contact minutes : {minutes.mean():.0f}")

    print("\ncontact-degree distribution (log-binned):")
    hist = log_binned_histogram(np.maximum(deg, 1))
    for c, n in zip(hist.centers, hist.counts):
        if n:
            print(f"  degree ~{c:7.1f}: {'#' * max(1, int(40 * n / hist.counts.max()))} {n}")

    # Connectivity via networkx — the giant component is what lets a
    # single index case reach most of the population.
    g = net.to_networkx()
    import networkx as nx

    components = sorted((len(c) for c in nx.connected_components(g)), reverse=True)
    print(f"\nconnected components: {len(components)}; giant component covers "
          f"{components[0] / graph.n_persons:.0%} of the population")
    print(
        "\nWhy EpiSimdemics keeps this graph implicit: materialising it"
        f"\ncosts {net.n_edges / graph.n_visits:.1f}x the bipartite representation *per day*, and it"
        "\nchanges daily with schedules and interventions; the bipartite"
        "\nperson-location graph is the compact, stable object (§II-A)."
    )


if __name__ == "__main__":
    main()
