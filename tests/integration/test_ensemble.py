"""Concurrent simulation ensembles on one machine (§IV-B motivation).

The paper adopts completion detection because quiescence detection
cannot be scoped to a module — a requirement for running "multiple
simulations simultaneously, using dynamic replication of state".  These
tests run replica ensembles on one simulated machine and verify:

1. every replica's epidemic is bit-identical to its standalone run;
2. with CD, replicas' phases close independently;
3. with QD, one replica's sync waves observe the other's in-flight
   traffic and need more waves — the coupling the paper designed out.
"""

import numpy as np
import pytest

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.core.parallel import Distribution, ParallelEnsemble, ParallelEpiSimdemics
from repro.partition import round_robin_partition

MC = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)


def _scenario(graph, seed):
    return Scenario(
        graph=graph, n_days=6, seed=seed, initial_infections=5,
        transmission=TransmissionModel(2e-4),
    )


def _ensemble(graph, seeds, sync="cd"):
    m = Machine(MC)
    part = round_robin_partition(graph, m.n_pes)
    return ParallelEnsemble(
        [_scenario(graph, s) for s in seeds],
        MC,
        [Distribution.from_partition(part, m) for _ in seeds],
        sync=sync,
    )


class TestEnsembleCorrectness:
    def test_replicas_match_sequential(self, tiny_graph):
        seeds = [3, 4, 5]
        results = _ensemble(tiny_graph, seeds).run()
        for seed, res in zip(seeds, results):
            ref = SequentialSimulator(_scenario(tiny_graph, seed)).run()
            assert res.result.curve == ref.curve, f"replica seed={seed} diverged"

    def test_replicas_match_standalone_parallel(self, tiny_graph):
        m = Machine(MC)
        part = round_robin_partition(tiny_graph, m.n_pes)
        standalone = ParallelEpiSimdemics(
            _scenario(tiny_graph, 3), MC, Distribution.from_partition(part, m)
        ).run()
        (res,) = _ensemble(tiny_graph, [3]).run()
        assert res.result.curve == standalone.result.curve

    def test_mismatched_inputs_rejected(self, tiny_graph):
        m = Machine(MC)
        part = round_robin_partition(tiny_graph, m.n_pes)
        with pytest.raises(ValueError):
            ParallelEnsemble(
                [_scenario(tiny_graph, 1)], MC, [], sync="cd"
            )
        with pytest.raises(ValueError):
            ParallelEnsemble([], MC, [])

    def test_qd_ensemble_still_correct(self, tiny_graph):
        seeds = [3, 4]
        results = _ensemble(tiny_graph, seeds, sync="qd").run()
        for seed, res in zip(seeds, results):
            ref = SequentialSimulator(_scenario(tiny_graph, seed)).run()
            assert res.result.curve == ref.curve


class TestModuleLocalSync:
    def test_qd_couples_replicas_cd_does_not(self, tiny_graph, small_graph):
        """The §IV-B claim, made measurable: a small replica sharing the
        machine with a *much larger* one must, under QD, keep waving
        while the big replica's traffic is in flight (its waves observe
        global quiescence); under CD its phases close locally.  The
        asymmetry matters — phase-aligned equal replicas happen to
        present clean windows to each other."""
        m = Machine(MC)

        def small_replica_waves(sync, with_big):
            scenarios = [_scenario(tiny_graph, 3)]
            dists = [
                Distribution.from_partition(
                    round_robin_partition(tiny_graph, m.n_pes), m
                )
            ]
            if with_big:
                scenarios.append(_scenario(small_graph, 4))
                dists.append(
                    Distribution.from_partition(
                        round_robin_partition(small_graph, m.n_pes), m
                    )
                )
            ens = ParallelEnsemble(scenarios, MC, dists, sync=sync)
            ens.run()
            s = ens.sims[0]
            return s.visit_detector.waves_run + s.infect_detector.waves_run

        cd_solo = small_replica_waves("cd", with_big=False)
        cd_pair = small_replica_waves("cd", with_big=True)
        qd_solo = small_replica_waves("qd", with_big=False)
        qd_pair = small_replica_waves("qd", with_big=True)
        # CD: module-local — the big neighbour costs no extra waves.
        assert cd_pair <= cd_solo * 1.25
        # QD: global — the neighbour's traffic inflates wave counts.
        assert qd_pair > qd_solo * 1.5
        # And QD pays more than CD even solo (double-wave protocol).
        assert qd_solo > cd_solo

    def test_ensemble_virtual_time_sublinear_in_replicas(self, tiny_graph):
        """Two replicas on one machine should cost less than 2x one
        replica's time (they interleave on the PEs) — the throughput
        argument for ensemble mode."""
        t1 = _ensemble(tiny_graph, [3]).run()[0].total_virtual_time
        ens = _ensemble(tiny_graph, [3, 4])
        results = ens.run()
        t2 = max(r.total_virtual_time for r in results)
        assert t2 < 2.2 * t1  # some slowdown, far from serialised 2x + overheads
