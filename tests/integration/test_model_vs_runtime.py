"""Validate the analytic phase-cost model against the runtime simulator.

The analytic model (``repro.analysis.scaling``) exists to reach core
counts the event-driven runtime cannot; its credibility rests on
agreeing with the runtime where both can run.  We check:

* the per-day time agrees within a small factor (the analytic model
  ignores pipelining and event-level contention, so exact equality is
  not expected);
* both modes *rank* data distributions the same way (RR vs GP-split) —
  ranking is what Figure 13 actually claims.
"""

import numpy as np
import pytest

from repro.analysis.scaling import PhaseCostModel
from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, TransmissionModel
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.partition import partition_bipartite, round_robin_partition, split_heavy_locations


MACHINE = MachineConfig(n_nodes=4, cores_per_node=4, smp=True, processes_per_node=1)


def _runtime_time_per_day(graph, partition, n_days=4, infected_frac_seed=11):
    sc = Scenario(
        graph=graph, n_days=n_days, seed=infected_frac_seed, initial_infections=10,
        transmission=TransmissionModel(2e-4),
    )
    dist = Distribution.from_partition(partition, Machine(MACHINE))
    run = ParallelEpiSimdemics(sc, MACHINE, dist).run()
    return run.time_per_day


class TestModelAgreement:
    @pytest.fixture(scope="class")
    def setup(self, request):
        graph = request.getfixturevalue("small_graph")
        m = Machine(MACHINE)
        rr = round_robin_partition(graph, m.n_pes)
        gp = partition_bipartite(graph, m.n_pes)
        return graph, m, rr, gp

    def test_day_time_within_factor(self, setup):
        graph, m, rr, _ = setup
        measured = _runtime_time_per_day(graph, rr)
        model = PhaseCostModel(infected_fraction=0.05)
        predicted = model.day_time(graph, rr, m).total
        ratio = measured / predicted
        assert 0.25 < ratio < 4.0, f"model off by {ratio:.2f}x"

    def test_both_modes_prefer_gp_over_rr(self, setup):
        graph, m, rr, gp = setup
        t_rr = _runtime_time_per_day(graph, rr)
        t_gp = _runtime_time_per_day(graph, gp)
        model = PhaseCostModel(infected_fraction=0.05)
        p_rr = model.day_time(graph, rr, m).total
        p_gp = model.day_time(graph, gp, m).total
        assert (t_gp < t_rr) == (p_gp < p_rr)

    def test_split_improves_in_both_modes(self, setup):
        graph, m, rr, _ = setup
        sr = split_heavy_locations(graph, max_partitions=512)
        rr_split = round_robin_partition(sr.graph, m.n_pes)
        t_before = _runtime_time_per_day(graph, rr)
        t_after = _runtime_time_per_day(sr.graph, rr_split)
        model = PhaseCostModel(infected_fraction=0.05)
        p_before = model.day_time(graph, rr, m).total
        p_after = model.day_time(sr.graph, rr_split, m).total
        assert t_after < t_before
        assert p_after < p_before
