"""Longer-horizon end-to-end behaviour: the paper's 120-day regime.

Most tests use short horizons for speed; this module runs one paper-
length study on a small population and checks the epidemiological
invariants that only appear at full length (burn-out, conservation,
weekend periodicity, intervention timing).
"""

import numpy as np
import pytest

from repro.core import (
    Scenario,
    SchoolClosure,
    SequentialSimulator,
    TransmissionModel,
    WeekendSchedule,
)
from repro.core.interventions import AnxietyContactReduction, InterventionSchedule


@pytest.fixture(scope="module")
def long_run(wy_graph):
    sc = Scenario(
        graph=wy_graph,
        n_days=120,
        seed=13,
        initial_infections=8,
        transmission=TransmissionModel(1.3e-4),
        interventions=InterventionSchedule(
            [
                WeekendSchedule(compliance=0.9),
                SchoolClosure(prevalence=0.05, duration=21),
                AnxietyContactReduction(strength=0.4, saturation=0.1),
            ]
        ),
    )
    sim = SequentialSimulator(sc)
    return sim, sim.run()


class TestLongHorizon:
    def test_conservation_every_day(self, long_run, wy_graph):
        _, res = long_run
        cum = np.asarray(res.curve.cumulative_infections)
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] <= wy_graph.n_persons

    def test_epidemic_burns_out(self, long_run):
        _, res = long_run
        # After 120 days a flu-like epidemic on 1500 people is over.
        assert res.curve.prevalence[-1] < 0.02
        assert sum(res.curve.new_infections[-14:]) < 10

    def test_single_peak_roughly(self, long_run):
        """Daily incidence (7-day smoothed) rises then falls — no
        oscillation artefacts from the weekly schedule."""
        _, res = long_run
        new = np.asarray(res.curve.new_infections, dtype=float)
        smooth = np.convolve(new, np.ones(7) / 7, mode="valid")
        peak = int(np.argmax(smooth))
        assert 5 < peak < 100
        # After the peak the smoothed curve never re-exceeds 80% of it.
        assert smooth[peak + 10 :].max(initial=0.0) < 0.8 * smooth[peak] + 1.0

    def test_weekends_visible_in_visit_counts(self, long_run):
        _, res = long_run
        visits = np.array([d.visits_made for d in res.days], dtype=float)
        weekend = np.array([d.day % 7 in (5, 6) for d in res.days])
        assert visits[weekend].mean() < 0.9 * visits[~weekend].mean()

    def test_school_closure_fired_near_prevalence_crossing(self, long_run):
        sim, res = long_run
        closure = sim.scenario.interventions.interventions[1]
        fired = closure.trigger.fired_on
        if fired is not None:
            prev = res.curve.prevalence
            # Start-of-day prevalence crossed the threshold at fired-1/fired.
            assert prev[max(fired - 2, 0)] <= 0.05 + 0.02
        else:
            # Epidemic stayed under 5% prevalence throughout — verify.
            assert max(res.curve.prevalence) < 0.05

    def test_histogram_matches_curve_total(self, long_run, wy_graph):
        _, res = long_run
        ever = wy_graph.n_persons - res.final_histogram["susceptible"]
        assert ever == res.total_infections
