"""The keystone integration property: the chare-parallel execution on
the simulated runtime reproduces the sequential reference *exactly* —
same epidemic curve, same final state — for every data distribution,
machine shape, synchronisation protocol and aggregation setting.

This is the paper's (implicit) correctness requirement: data
distribution strategies are performance choices, never semantic ones.
"""

import numpy as np
import pytest

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.core.interventions import (
    InterventionSchedule,
    SchoolClosure,
    StayHomeWhenSymptomatic,
    Vaccination,
)
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.partition import partition_bipartite, round_robin_partition, split_heavy_locations


def _scenario(graph, n_days=10, seed=7, interventions=None):
    return Scenario(
        graph=graph,
        n_days=n_days,
        seed=seed,
        initial_infections=6,
        transmission=TransmissionModel(2e-4),
        interventions=interventions or InterventionSchedule(),
    )


def _run_parallel(graph, partition, machine, **kwargs):
    sc = _scenario(graph, **{k: kwargs.pop(k) for k in list(kwargs) if k in ("n_days", "seed", "interventions")})
    dist = Distribution.from_partition(partition, Machine(machine))
    return ParallelEpiSimdemics(sc, machine, dist, **kwargs).run()


SMALL_MACHINE = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)


class TestExactEquivalence:
    def test_rr_distribution(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        m = Machine(SMALL_MACHINE)
        par = _run_parallel(tiny_graph, round_robin_partition(tiny_graph, m.n_pes), SMALL_MACHINE)
        assert par.result.curve == seq.curve
        assert par.result.final_histogram == seq.final_histogram

    def test_gp_distribution(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        m = Machine(SMALL_MACHINE)
        gp = partition_bipartite(tiny_graph, m.n_pes)
        par = _run_parallel(tiny_graph, gp, SMALL_MACHINE)
        assert par.result.curve == seq.curve

    def test_split_graph_distribution(self, tiny_graph):
        sr = split_heavy_locations(tiny_graph, max_partitions=64)
        seq = SequentialSimulator(_scenario(sr.graph)).run()
        m = Machine(SMALL_MACHINE)
        par = _run_parallel(sr.graph, round_robin_partition(sr.graph, m.n_pes), SMALL_MACHINE)
        assert par.result.curve == seq.curve

    def test_overdecomposition(self, tiny_graph):
        """More chares than PEs (the Charm++ point) changes nothing."""
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        m = Machine(SMALL_MACHINE)
        part = round_robin_partition(tiny_graph, m.n_pes * 4)
        par = _run_parallel(tiny_graph, part, SMALL_MACHINE)
        assert par.result.curve == seq.curve

    def test_non_smp_machine(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        mc = MachineConfig(n_nodes=2, cores_per_node=4, smp=False)
        par = _run_parallel(tiny_graph, round_robin_partition(tiny_graph, 8), mc)
        assert par.result.curve == seq.curve

    def test_qd_sync(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        m = Machine(SMALL_MACHINE)
        par = _run_parallel(
            tiny_graph, round_robin_partition(tiny_graph, m.n_pes), SMALL_MACHINE, sync="qd"
        )
        assert par.result.curve == seq.curve

    def test_no_aggregation(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        m = Machine(SMALL_MACHINE)
        par = _run_parallel(
            tiny_graph, round_robin_partition(tiny_graph, m.n_pes), SMALL_MACHINE,
            aggregation_bytes=0,
        )
        assert par.result.curve == seq.curve

    def test_single_pe_machine(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        mc = MachineConfig(n_nodes=1, cores_per_node=1, smp=False)
        par = _run_parallel(tiny_graph, round_robin_partition(tiny_graph, 1), mc)
        assert par.result.curve == seq.curve


class TestEquivalenceWithInterventions:
    def test_full_intervention_stack(self, tiny_graph):
        def interventions():
            return InterventionSchedule(
                [
                    Vaccination(coverage=0.3, day=0),
                    SchoolClosure(prevalence=0.02, duration=5),
                    StayHomeWhenSymptomatic(compliance=0.5),
                ]
            )

        seq = SequentialSimulator(_scenario(tiny_graph, interventions=interventions())).run()
        m = Machine(SMALL_MACHINE)
        par = _run_parallel(
            tiny_graph, round_robin_partition(tiny_graph, m.n_pes), SMALL_MACHINE,
            interventions=interventions(),
        )
        assert par.result.curve == seq.curve
        assert par.result.final_histogram == seq.final_histogram


class TestTimingSanity:
    def test_phase_times_recorded_per_day(self, tiny_graph):
        m = Machine(SMALL_MACHINE)
        par = _run_parallel(tiny_graph, round_robin_partition(tiny_graph, m.n_pes), SMALL_MACHINE)
        assert len(par.phase_times) == 10
        for pt in par.phase_times:
            assert pt.start <= pt.visits_done <= pt.locations_done <= pt.day_done

    def test_more_pes_not_slower_virtual_time(self, small_graph):
        """Strong-scaling sanity on the runtime simulator itself."""
        def run(nodes):
            mc = MachineConfig(n_nodes=nodes, cores_per_node=4, smp=True, processes_per_node=1)
            m = Machine(mc)
            sc = _scenario(small_graph, n_days=4)
            dist = Distribution.from_partition(
                partition_bipartite(small_graph, m.n_pes), m
            )
            return ParallelEpiSimdemics(sc, mc, dist).run().time_per_day

        assert run(8) < run(1)
