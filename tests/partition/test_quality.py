"""Partition quality metrics, including the Figure-2 worked example."""

import numpy as np
import pytest

from repro.partition.csr import CSRGraph
from repro.partition.quality import (
    BipartitePartition,
    csr_edge_cut,
    edge_cut,
    imbalance,
    partition_loads,
    per_partition_edge_cut,
)
from repro.partition.roundrobin import round_robin_partition


def figure2_graph():
    """The 13-node example of the paper's Figure 2.

    Node 1 (0-indexed: 0) has weight 8 and the most edges; nodes 7 and 9
    (indices 6, 8) have weight 1; all others weight 2 (so that the
    figure's loads work out: total = 8+2*10+1*2 = 30, avg over 5
    partitions = 6).
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
        (1, 2), (3, 4), (5, 6), (7, 8),
        (9, 10), (11, 12), (9, 11),
    ]
    u = np.array([e[0] for e in edges])
    v = np.array([e[1] for e in edges])
    w = np.ones(len(edges), dtype=np.int64)
    vwgt = np.full(13, 2, dtype=np.int64)
    vwgt[0] = 8
    vwgt[6] = 1
    vwgt[8] = 1
    return CSRGraph.from_edge_list(13, u, v, w, vwgt)


class TestFigure2:
    def test_load_optimal_partition(self):
        """Isolating node 1 cuts all 8 of its edges but caps the maximum
        partition load at 8 — Figure 2(a)."""
        g = figure2_graph()
        part = np.array([0, 1, 1, 2, 2, 3, 3, 4, 4, 1, 2, 3, 4])
        cut = csr_edge_cut(g, part)
        loads = np.bincount(part, weights=g.vwgt[:, 0])
        assert cut >= 8  # all of node 1's edges are cut
        assert loads.max() == 8
        assert loads.max() / loads.mean() == pytest.approx(8 / 6, rel=1e-9)

    def test_cut_optimal_partition_has_worse_balance(self):
        """Keeping node 1 with two neighbours cuts fewer edges (6 < 8)
        but loads one partition with 12 — Figure 2(b)'s trade-off.  (The
        figure's exact topology is not recoverable from the paper text;
        this analogue preserves its arithmetic structure.)"""
        g = figure2_graph()
        part = np.array([0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 4, 4])
        cut = csr_edge_cut(g, part)
        loads = np.bincount(part, weights=g.vwgt[:, 0])
        assert cut == 6
        assert loads.max() / loads.mean() > 8 / 6  # worse than the load-optimal


class TestMetrics:
    def test_edge_cut_zero_for_single_partition(self, tiny_graph):
        bp = round_robin_partition(tiny_graph, 1)
        assert edge_cut(tiny_graph, bp) == 0

    def test_rr_cuts_nearly_everything(self, tiny_graph):
        bp = round_robin_partition(tiny_graph, 16)
        assert edge_cut(tiny_graph, bp) > 0.8 * tiny_graph.n_visits

    def test_per_partition_cut_bounds_total(self, tiny_graph):
        bp = round_robin_partition(tiny_graph, 8)
        per = per_partition_edge_cut(tiny_graph, bp)
        # Each crossing edge appears in exactly two partitions' tallies.
        assert per.sum() == 2 * edge_cut(tiny_graph, bp)

    def test_partition_loads_shape_and_totals(self, tiny_graph):
        bp = round_robin_partition(tiny_graph, 8)
        loads = partition_loads(tiny_graph, bp)
        assert loads.shape == (8, 2)
        assert loads[:, 0].sum() == np.maximum(tiny_graph.person_degrees, 1).sum()

    def test_imbalance_perfect(self):
        assert imbalance(np.array([[5.0], [5.0]]))[0] == 1.0

    def test_imbalance_ratio(self):
        r = imbalance(np.array([[9.0, 0.0], [3.0, 0.0]]))
        assert r[0] == pytest.approx(1.5)
        assert r[1] == 1.0  # vacuous constraint

    def test_partition_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            BipartitePartition(
                person_part=np.full(tiny_graph.n_persons, 5),
                location_part=np.zeros(tiny_graph.n_locations, dtype=int),
                k=4,
            )
