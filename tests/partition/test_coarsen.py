"""Coarsening: matching validity and weight conservation."""

import numpy as np
import pytest

from repro.partition.coarsen import coarsen_graph, contract, heavy_edge_matching
from repro.partition.csr import CSRGraph, bipartite_to_csr


def _grid_graph(rows=6, cols=6):
    """Unweighted grid — a well-behaved matching target."""
    n = rows * cols
    us, vs = [], []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                us.append(v); vs.append(v + 1)
            if r + 1 < rows:
                us.append(v); vs.append(v + cols)
    w = np.ones(len(us), dtype=np.int64)
    return CSRGraph.from_edge_list(n, np.array(us), np.array(vs), w,
                                   np.ones((n, 2), dtype=np.int64))


class TestMatching:
    def test_matching_is_symmetric(self, rng):
        g = _grid_graph()
        match = heavy_edge_matching(g, rng)
        for v in range(g.n_vertices):
            assert match[match[v]] == v

    def test_matched_pairs_are_neighbors(self, rng):
        g = _grid_graph()
        match = heavy_edge_matching(g, rng)
        for v in range(g.n_vertices):
            if match[v] != v:
                assert match[v] in g.neighbors(v)

    def test_prefers_heavy_edges(self, rng):
        # Triangle with one heavy edge: the heavy pair should match.
        g = CSRGraph.from_edge_list(
            3, np.array([0, 1, 0]), np.array([1, 2, 2]),
            np.array([100, 1, 1]), np.ones((3, 1), dtype=np.int64),
        )
        match = heavy_edge_matching(g, rng)
        assert match[0] == 1 and match[1] == 0


class TestContract:
    def test_vertex_weight_conserved(self, rng):
        g = _grid_graph()
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        np.testing.assert_array_equal(coarse.total_vwgt(), g.total_vwgt())

    def test_edge_weight_conserved_minus_contracted(self, rng):
        g = _grid_graph()
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        # Every surviving edge's weight must appear; contracted edges vanish.
        src = np.repeat(np.arange(g.n_vertices), np.diff(g.xadj))
        crossing = cmap[src] != cmap[g.adjncy]
        assert coarse.adjwgt.sum() == g.adjwgt[crossing].sum()

    def test_map_is_dense(self, rng):
        g = _grid_graph()
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        assert set(cmap.tolist()) == set(range(coarse.n_vertices))

    def test_coarse_graph_valid(self, rng):
        g = _grid_graph()
        coarse, _ = contract(g, heavy_edge_matching(g, rng))
        coarse.validate()


class TestCoarsenGraph:
    def test_hierarchy_shrinks(self, rng):
        g = _grid_graph(10, 10)
        levels = coarsen_graph(g, rng, coarsen_to=10)
        sizes = [lv.graph.n_vertices for lv in levels]
        assert sizes[0] == 100
        assert all(b < a for a, b in zip(sizes, sizes[1:]))

    def test_stops_at_target(self, rng):
        g = _grid_graph(10, 10)
        levels = coarsen_graph(g, rng, coarsen_to=30)
        assert levels[-1].graph.n_vertices <= max(30, 100)

    def test_maps_chain_to_finest(self, rng):
        g = _grid_graph(8, 8)
        levels = coarsen_graph(g, rng, coarsen_to=8)
        # Composing the maps must send every fine vertex to a coarse one.
        ids = np.arange(g.n_vertices)
        for lv in levels[:-1]:
            ids = lv.coarse_map[ids]
        assert ids.max() < levels[-1].graph.n_vertices

    def test_works_on_bipartite_social_graph(self, tiny_graph, rng):
        csr = bipartite_to_csr(tiny_graph)
        levels = coarsen_graph(csr, rng, coarsen_to=100)
        assert levels[-1].graph.n_vertices < csr.n_vertices
        np.testing.assert_array_equal(
            levels[-1].graph.total_vwgt(), csr.total_vwgt()
        )
