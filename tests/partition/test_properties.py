"""Property-based tests: partitioner and splitLoc invariants on random inputs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partition.coarsen import coarsen_graph, contract, heavy_edge_matching
from repro.partition.csr import CSRGraph
from repro.partition.metis import MultilevelPartitioner, PartitionerOptions
from repro.partition.quality import csr_edge_cut
from repro.partition.refine import all_gains, move_gain
from repro.synthpop import PopulationConfig, generate_population
from repro.partition.splitloc import split_heavy_locations


@st.composite
def random_graph(draw):
    """A connected-ish random weighted graph with 2-constraint weights."""
    n = draw(st.integers(4, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    # Spanning chain guarantees no isolated vertices complicate matching.
    us = list(range(n - 1))
    vs = list(range(1, n))
    extra = draw(st.integers(0, 3 * n))
    for _ in range(extra):
        a, b = rng.integers(0, n, 2)
        if a != b:
            us.append(int(min(a, b)))
            vs.append(int(max(a, b)))
    ws = rng.integers(1, 20, len(us))
    vwgt = rng.integers(1, 50, (n, 2))
    vwgt[:, 1] = np.where(rng.random(n) < 0.5, 0, vwgt[:, 1])  # sparse 2nd constraint
    vwgt[:, 0] = np.maximum(vwgt[:, 0], 1)
    return CSRGraph.from_edge_list(n, np.array(us), np.array(vs), ws, vwgt)


class TestPartitionerProperties:
    @given(random_graph(), st.integers(2, 8), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_kway_assigns_every_vertex_in_range(self, g, k, seed):
        part = MultilevelPartitioner(PartitionerOptions(seed=seed)).kway(g, k)
        assert part.shape == (g.n_vertices,)
        assert part.min() >= 0 and part.max() < k

    @given(random_graph(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_bisection_cut_never_exceeds_total_weight(self, g, seed):
        part = MultilevelPartitioner(PartitionerOptions(seed=seed)).bisect(g, 0.5)
        assert 0 <= csr_edge_cut(g, part) <= g.adjwgt.sum() // 2

    @given(random_graph(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_all_gains_matches_scalar_gain(self, g, seed):
        rng = np.random.default_rng(seed)
        part = (rng.random(g.n_vertices) < 0.5).astype(np.int8)
        vector = all_gains(g, part)
        for v in range(g.n_vertices):
            assert vector[v] == move_gain(g, part, v)


class TestCoarseningProperties:
    @given(random_graph(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_matching_involution(self, g, seed):
        match = heavy_edge_matching(g, np.random.default_rng(seed))
        for v in range(g.n_vertices):
            assert match[match[v]] == v

    @given(random_graph(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_contraction_conserves_vertex_weight(self, g, seed):
        match = heavy_edge_matching(g, np.random.default_rng(seed))
        coarse, cmap = contract(g, match)
        np.testing.assert_array_equal(coarse.total_vwgt(), g.total_vwgt())
        assert coarse.n_vertices <= g.n_vertices

    @given(random_graph(), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_hierarchy_cut_projection_consistent(self, g, seed):
        """A partition's cut at a coarse level equals the projected
        partition's cut at the fine level (edges inside contracted
        pairs are internal either way)."""
        rng = np.random.default_rng(seed)
        levels = coarsen_graph(g, rng, coarsen_to=max(4, g.n_vertices // 4))
        if len(levels) < 2:
            return
        coarse = levels[-1].graph
        part_c = (rng.random(coarse.n_vertices) < 0.5).astype(np.int8)
        # Project down through the maps.
        part_f = part_c
        for level in reversed(levels[:-1]):
            part_f = part_f[level.coarse_map]
        assert csr_edge_cut(coarse, part_c) == csr_edge_cut(levels[0].graph, part_f)


class TestSplitLocProperties:
    @given(st.integers(0, 2**31), st.integers(2, 64))
    @settings(max_examples=15, deadline=None)
    def test_split_preserves_visits_and_persons(self, seed, max_partitions):
        g = generate_population(PopulationConfig(n_persons=150), seed)
        sr = split_heavy_locations(g, max_partitions=max_partitions)
        sr.graph.validate()
        assert sr.graph.n_visits == g.n_visits
        np.testing.assert_array_equal(
            np.bincount(sr.graph.visit_person, minlength=g.n_persons),
            np.bincount(g.visit_person, minlength=g.n_persons),
        )
        # Every new location's visits came from its origin location.
        orig_of_visit = sr.origin[sr.graph.visit_location]
        # Visit multiset per original location is conserved.
        np.testing.assert_array_equal(
            np.bincount(orig_of_visit, minlength=g.n_locations),
            np.bincount(g.visit_location, minlength=g.n_locations),
        )

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_resplitting_with_fixed_weights_converges(self, seed):
        """With the sublocation weights held fixed (rather than
        re-estimated from the modified graph, which legitimately
        churns), re-splitting at the same threshold is idempotent up to
        rounding of uneven pieces."""
        from repro.partition.splitloc import sublocation_type_weights

        g = generate_population(PopulationConfig(n_persons=200), seed)
        tw = sublocation_type_weights(g)
        sr1 = split_heavy_locations(g, max_partitions=32, subloc_weights=tw)
        sr2 = split_heavy_locations(
            sr1.graph, threshold=sr1.threshold, subloc_weights=tw
        )
        assert sr2.n_split == 0
        assert sr2.graph is sr1.graph
