"""splitLoc preprocessing: semantics preservation and load reduction."""

import numpy as np
import pytest

from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.loadmodel.workload import WorkloadModel
from repro.partition.splitloc import (
    location_weights,
    split_heavy_locations,
    split_threshold,
    sublocation_type_weights,
)


class TestThreshold:
    def test_threshold_rule(self, small_graph):
        t = split_threshold(small_graph, max_partitions=64)
        w = location_weights(small_graph)
        tw = sublocation_type_weights(small_graph)
        assert t == pytest.approx(max(w.sum() / 64, tw.max()))

    def test_threshold_floor_is_subloc_weight(self, small_graph):
        # With absurdly many partitions the floor is the sublocation weight.
        t = split_threshold(small_graph, max_partitions=10**9)
        tw = sublocation_type_weights(small_graph)
        assert t == pytest.approx(tw.max())

    def test_invalid_partitions(self, small_graph):
        with pytest.raises(ValueError):
            split_threshold(small_graph, 0)


class TestStructure:
    def test_result_graph_valid(self, small_graph):
        sr = split_heavy_locations(small_graph, max_partitions=256)
        sr.graph.validate()

    def test_visits_conserved(self, small_graph):
        sr = split_heavy_locations(small_graph, max_partitions=256)
        assert sr.graph.n_visits == small_graph.n_visits
        np.testing.assert_array_equal(
            np.sort(sr.graph.visit_person), np.sort(small_graph.visit_person)
        )

    def test_origin_mapping(self, small_graph):
        sr = split_heavy_locations(small_graph, max_partitions=256)
        assert sr.origin.shape[0] == sr.graph.n_locations
        # Pieces inherit the original's type.
        np.testing.assert_array_equal(
            sr.graph.location_type, small_graph.location_type[sr.origin]
        )

    def test_no_split_below_threshold(self, small_graph):
        sr = split_heavy_locations(small_graph, threshold=10**9)
        assert sr.n_split == 0
        assert sr.graph is small_graph

    def test_divide_mode_preserves_subloc_exclusivity(self, small_graph):
        """Each (original location, original sublocation) maps to exactly
        one split piece — the paper's no-added-communication property."""
        sr = split_heavy_locations(small_graph, max_partitions=256, mode="divide")
        g2 = sr.graph
        # Reconstruct original sublocation ids: piece offset + new subloc.
        # Verify via visitor sets: persons sharing an original sublocation
        # must share the new location as well.
        orig_loc = sr.origin[g2.visit_location]
        key_new = g2.visit_location.astype(np.int64) * 10**6 + g2.visit_subloc
        # Group by original (we can't recover orig subloc id directly, so
        # check the piece assignment function: same new-key => same orig loc).
        assert np.all(orig_loc == sr.origin[g2.visit_location])
        assert sr.coupling_pairs == 0

    def test_retain_mode_reports_coupling(self, small_graph):
        sr = split_heavy_locations(small_graph, max_partitions=256, mode="retain")
        assert sr.coupling_pairs > 0
        sr.graph.validate()

    def test_invalid_mode(self, small_graph):
        with pytest.raises(ValueError):
            split_heavy_locations(small_graph, max_partitions=8, mode="shred")

    def test_needs_threshold_or_partitions(self, small_graph):
        with pytest.raises(ValueError):
            split_heavy_locations(small_graph)


class TestLoadReduction:
    def test_lmax_drops(self, small_graph):
        wl = WorkloadModel()
        before = wl.location_weights(small_graph).max()
        sr = split_heavy_locations(small_graph, max_partitions=1024)
        after = wl.location_weights(sr.graph).max()
        assert sr.n_split > 0
        assert after < before

    def test_total_load_roughly_conserved(self, small_graph):
        # Events (2x visits) are exactly conserved; the modelled load may
        # shift slightly because the model is nonlinear in events.
        sr = split_heavy_locations(small_graph, max_partitions=1024)
        assert sr.graph.location_visit_counts.sum() == small_graph.location_visit_counts.sum()

    def test_size_increase_bounded(self, small_graph):
        # Paper: D grows by at most ~5.25%; allow slack for small graphs.
        sr = split_heavy_locations(small_graph, max_partitions=512)
        growth = sr.graph.n_locations / small_graph.n_locations
        assert growth < 1.6

    def test_dmax_reduction(self, small_graph):
        sr = split_heavy_locations(small_graph, max_partitions=1024)
        assert sr.graph.location_visit_counts.max() < small_graph.location_visit_counts.max()


class TestEpidemicEquivalence:
    def test_split_graph_same_epidemic_statistics(self, wy_graph):
        """Divide-mode splitting must not change epidemic dynamics in
        expectation: sublocation co-presence is preserved exactly, so a
        run on the split graph (same seed) differs only through RNG
        stream relabeling (location ids change).  Attack rates must be
        statistically indistinguishable."""
        sr = split_heavy_locations(wy_graph, max_partitions=512)
        assert sr.n_split > 0

        def attack(graph, seed):
            sc = Scenario(
                graph=graph, n_days=40, seed=seed, initial_infections=8,
                transmission=TransmissionModel(1.5e-4),
            )
            res = SequentialSimulator(sc).run()
            return res.curve.attack_rate(graph.n_persons)

        base = np.mean([attack(wy_graph, s) for s in range(4)])
        split = np.mean([attack(sr.graph, s) for s in range(4)])
        assert split == pytest.approx(base, abs=0.12)


class TestPostconditionProperties:
    """Hypothesis: splitLoc postconditions hold on arbitrary adversarial
    graphs drawn from the shared ``repro.validate.strategies`` pool."""

    @staticmethod
    def _prop(check, profiles=("uniform", "heavy-tail", "single-subloc")):
        from hypothesis import HealthCheck, given, settings

        from repro.validate.strategies import visit_graphs

        @settings(
            max_examples=30, deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(visit_graphs(profiles=profiles))
        def run(graph):
            check(graph, split_heavy_locations(graph, max_partitions=4))

        run()

    def test_split_graph_stays_valid_and_conserves_visits(self):
        def check(graph, sr):
            sr.graph.validate()
            assert sr.graph.n_visits == graph.n_visits
            np.testing.assert_array_equal(
                np.sort(sr.graph.visit_person), np.sort(graph.visit_person)
            )
            # Every visit's location maps back to its original.
            assert sr.origin.shape[0] == sr.graph.n_locations

        self._prop(check)

    def test_no_sublocation_split_across_pieces(self):
        """All visits that shared (location, sublocation) before the
        split land in the same piece — the DES of one sublocation is
        never divided (divide mode's defining postcondition)."""

        def check(graph, sr):
            if sr.n_split == 0:
                return
            # Row correspondence: the split preserves person/start/end and
            # the original location per row, so sorting both sides by
            # (person, start, end, original location) aligns them even
            # when one person has tied intervals at different locations.
            order0 = np.lexsort(
                (graph.visit_location, graph.visit_end, graph.visit_start, graph.visit_person)
            )
            new_origin = sr.origin[sr.graph.visit_location]
            order1 = np.lexsort(
                (new_origin, sr.graph.visit_end, sr.graph.visit_start, sr.graph.visit_person)
            )
            old_key = list(
                zip(graph.visit_location[order0].tolist(), graph.visit_subloc[order0].tolist())
            )
            new_loc = sr.graph.visit_location[order1]
            piece_of: dict[tuple, int] = {}
            for key, nl in zip(old_key, new_loc.tolist()):
                if key in piece_of:
                    assert piece_of[key] == nl, (
                        f"sublocation {key} split across pieces {piece_of[key]} and {nl}"
                    )
                else:
                    piece_of[key] = nl

        self._prop(check)

    def test_sublocation_totals_conserved(self):
        """Σ sublocations is conserved per original location, so with the
        *original* type weights the summed piece weights equal the
        original location weights exactly."""
        from repro.partition.splitloc import location_weights, sublocation_type_weights

        def check(graph, sr):
            per_original = np.zeros(graph.n_locations, dtype=np.int64)
            np.add.at(per_original, sr.origin, sr.graph.location_n_sublocs)
            np.testing.assert_array_equal(per_original, graph.location_n_sublocs)
            tw = sublocation_type_weights(graph)
            w_new = location_weights(sr.graph, tw)
            summed = np.zeros(graph.n_locations, dtype=np.float64)
            np.add.at(summed, sr.origin, w_new)
            np.testing.assert_allclose(summed, location_weights(graph, tw))

        self._prop(check)
