"""Multilevel k-way partitioner: correctness and quality."""

import numpy as np
import pytest

from repro.partition import (
    PartitionerOptions,
    imbalance,
    partition_bipartite,
    partition_loads,
    round_robin_partition,
    edge_cut,
)
from repro.partition.csr import CSRGraph
from repro.partition.metis import MultilevelPartitioner


def _two_cliques(m=8, bridge_w=1):
    """Two m-cliques joined by one light edge — the obvious bisection."""
    n = 2 * m
    us, vs, ws = [], [], []
    for base in (0, m):
        for i in range(m):
            for j in range(i + 1, m):
                us.append(base + i); vs.append(base + j); ws.append(10)
    us.append(0); vs.append(m); ws.append(bridge_w)
    return CSRGraph.from_edge_list(
        n, np.array(us), np.array(vs), np.array(ws), np.ones((n, 1), dtype=np.int64)
    )


class TestBisection:
    def test_two_cliques_split_cleanly(self):
        g = _two_cliques()
        part = MultilevelPartitioner().bisect(g, 0.5)
        # Each clique must land wholly in one part.
        first = part[:8]
        second = part[8:]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1
        assert first[0] != second[0]

    def test_balance_within_tolerance(self):
        g = _two_cliques(m=10)
        opts = PartitionerOptions(ubfactor=1.1)
        part = MultilevelPartitioner(opts).bisect(g, 0.5)
        w0 = g.vwgt[part == 0].sum()
        assert 0.4 * g.vwgt.sum() <= w0 <= 0.6 * g.vwgt.sum()


class TestKway:
    def test_every_vertex_assigned(self, tiny_graph):
        bp = partition_bipartite(tiny_graph, 8)
        assert bp.person_part.shape[0] == tiny_graph.n_persons
        assert bp.location_part.shape[0] == tiny_graph.n_locations
        assert set(np.concatenate([bp.person_part, bp.location_part]).tolist()) <= set(range(8))

    def test_all_parts_nonempty(self, tiny_graph):
        bp = partition_bipartite(tiny_graph, 8)
        used = set(bp.person_part.tolist()) | set(bp.location_part.tolist())
        assert used == set(range(8))

    def test_k1_trivial(self, tiny_graph):
        bp = partition_bipartite(tiny_graph, 1)
        assert np.all(bp.person_part == 0)
        assert np.all(bp.location_part == 0)

    def test_k_larger_than_vertices(self):
        g = _two_cliques(m=3)
        part = MultilevelPartitioner().kway(g, 16)
        assert part.max() < 16

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            partition_bipartite(tiny_graph, 0)

    def test_deterministic_under_seed(self, tiny_graph):
        a = partition_bipartite(tiny_graph, 4, options=PartitionerOptions(seed=5))
        b = partition_bipartite(tiny_graph, 4, options=PartitionerOptions(seed=5))
        np.testing.assert_array_equal(a.person_part, b.person_part)
        np.testing.assert_array_equal(a.location_part, b.location_part)


class TestQualityVsRoundRobin:
    def test_gp_cuts_fewer_edges_than_rr(self, small_graph):
        k = 8
        gp = partition_bipartite(small_graph, k)
        rr = round_robin_partition(small_graph, k)
        assert edge_cut(small_graph, gp) < edge_cut(small_graph, rr)

    def test_gp_respects_both_constraints_reasonably(self, small_graph):
        bp = partition_bipartite(small_graph, 4)
        ratios = imbalance(partition_loads(small_graph, bp))
        # Person constraint should balance well; location constraint is
        # bounded by the heavy tail but must beat gross imbalance.
        assert ratios[0] < 1.5
        assert ratios[1] < 4.0
