"""CSR graph construction and validation."""

import numpy as np
import pytest

from repro.partition.csr import CSRGraph, bipartite_to_csr


def _path_graph(n=4):
    u = np.arange(n - 1)
    v = np.arange(1, n)
    w = np.ones(n - 1, dtype=np.int64)
    return CSRGraph.from_edge_list(n, u, v, w, np.ones((n, 1), dtype=np.int64))


class TestFromEdgeList:
    def test_path_graph_structure(self):
        g = _path_graph(4)
        g.validate()
        assert g.n_vertices == 4
        assert g.n_edges == 3
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_symmetrised(self):
        g = _path_graph(3)
        assert 1 in g.neighbors(0)
        assert 0 in g.neighbors(1)

    def test_parallel_edges_merged(self):
        g = CSRGraph.from_edge_list(
            2,
            np.array([0, 0, 1]),
            np.array([1, 1, 0]),
            np.array([2, 3, 5]),
            np.ones((2, 1), dtype=np.int64),
        )
        assert g.n_edges == 1
        assert g.edge_weights_of(0)[0] == 10

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CSRGraph.from_edge_list(
                2, np.array([0]), np.array([0]), np.array([1]),
                np.ones((2, 1), dtype=np.int64),
            )

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edge_list(
                2, np.array([0]), np.array([5]), np.array([1]),
                np.ones((2, 1), dtype=np.int64),
            )

    def test_1d_vwgt_promoted(self):
        g = CSRGraph.from_edge_list(
            2, np.array([0]), np.array([1]), np.array([1]), np.array([3, 4])
        )
        assert g.vwgt.shape == (2, 1)
        assert g.ncon == 1

    def test_total_vwgt(self):
        g = _path_graph(5)
        np.testing.assert_array_equal(g.total_vwgt(), [5])


class TestBipartiteConversion:
    def test_vertex_count_and_constraints(self, tiny_graph):
        csr = bipartite_to_csr(tiny_graph)
        assert csr.n_vertices == tiny_graph.n_persons + tiny_graph.n_locations
        assert csr.ncon == 2
        csr.validate()

    def test_person_weights_in_constraint0(self, tiny_graph):
        csr = bipartite_to_csr(tiny_graph)
        n = tiny_graph.n_persons
        assert np.all(csr.vwgt[:n, 1] == 0)
        assert np.all(csr.vwgt[n:, 0] == 0)
        np.testing.assert_array_equal(csr.vwgt[:n, 0], np.maximum(tiny_graph.person_degrees, 1))

    def test_edge_weights_are_visit_multiplicities(self, tiny_graph):
        csr = bipartite_to_csr(tiny_graph)
        # Total adjacency weight = 2 x visits (each edge twice, weights = multiplicity).
        assert csr.adjwgt.sum() == 2 * tiny_graph.n_visits

    def test_graph_is_bipartite(self, tiny_graph):
        csr = bipartite_to_csr(tiny_graph)
        n = tiny_graph.n_persons
        for v in range(0, n, max(1, n // 20)):
            assert np.all(csr.neighbors(v) >= n)
