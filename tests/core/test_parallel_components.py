"""Unit tests of the parallel implementation's building blocks."""

import numpy as np
import pytest

from repro.charm.machine import Machine, MachineConfig
from repro.core.parallel import ComputeCostModel, Distribution, PhaseTimes
from repro.partition import partition_bipartite, round_robin_partition


class TestDistribution:
    def test_from_partition_maps_parts_to_chares(self, tiny_graph):
        m = Machine(MachineConfig(n_nodes=2, cores_per_node=4, smp=False))
        bp = round_robin_partition(tiny_graph, m.n_pes * 2)
        dist = Distribution.from_partition(bp, m)
        assert dist.n_pm == dist.n_lm == m.n_pes * 2
        np.testing.assert_array_equal(dist.person_chare, bp.person_part)
        np.testing.assert_array_equal(dist.location_chare, bp.location_part)
        # Chares wrap onto PEs round-robin.
        assert dist.pm_placement.max() < m.n_pes
        counts = np.bincount(dist.pm_placement, minlength=m.n_pes)
        assert counts.max() - counts.min() <= 1

    def test_every_person_and_location_owned(self, tiny_graph):
        m = Machine(MachineConfig(n_nodes=1, cores_per_node=4, smp=False))
        bp = partition_bipartite(tiny_graph, m.n_pes)
        dist = Distribution.from_partition(bp, m)
        owned_p = np.concatenate(
            [np.flatnonzero(dist.person_chare == c) for c in range(dist.n_pm)]
        )
        assert sorted(owned_p.tolist()) == list(range(tiny_graph.n_persons))

    def test_accepts_machine_config_directly(self, tiny_graph):
        mc = MachineConfig(n_nodes=1, cores_per_node=4, smp=False)
        bp = round_robin_partition(tiny_graph, 4)
        dist = Distribution.from_partition(bp, mc)
        assert dist.pm_placement.max() < 4


class TestComputeCostModel:
    def test_defaults_positive(self):
        cc = ComputeCostModel()
        assert cc.person_health_cost > 0
        assert cc.visit_compute_cost > 0
        assert cc.transition_cost > 0
        assert cc.infect_apply_cost > 0

    def test_location_cost_scales_with_events(self):
        cc = ComputeCostModel()
        assert cc.location_static.evaluate(10_000.0) > cc.location_static.evaluate(10.0)


class TestPhaseTimes:
    def test_derived_durations(self):
        pt = PhaseTimes(day=0, start=1.0, visits_done=3.0, locations_done=6.0, day_done=7.0)
        assert pt.person_phase == 2.0
        assert pt.location_phase == 3.0
        assert pt.total == 6.0


class TestNamespacing:
    def test_namespaced_objects_coexist(self, tiny_graph):
        """Two namespaced sims on one runtime create disjoint arrays."""
        from repro.charm.scheduler import RuntimeSimulator
        from repro.core import Scenario
        from repro.core.parallel import ParallelEpiSimdemics

        mc = MachineConfig(n_nodes=1, cores_per_node=4, smp=False)
        m = Machine(mc)
        rt = RuntimeSimulator(mc)
        part = round_robin_partition(tiny_graph, m.n_pes)
        for ns in ("a.", "b."):
            ParallelEpiSimdemics(
                Scenario(graph=tiny_graph, n_days=2, seed=1),
                mc,
                Distribution.from_partition(part, m),
                runtime=rt,
                namespace=ns,
            )
        assert "a.pm" in rt.arrays and "b.pm" in rt.arrays
        assert "a.visits" in rt.aggregators and "b.visits" in rt.aggregators
        assert "a.visits_phase" in rt._detectors and "b.visits_phase" in rt._detectors

    def test_duplicate_namespace_rejected(self, tiny_graph):
        from repro.charm.scheduler import RuntimeSimulator
        from repro.core import Scenario
        from repro.core.parallel import ParallelEpiSimdemics

        mc = MachineConfig(n_nodes=1, cores_per_node=4, smp=False)
        m = Machine(mc)
        rt = RuntimeSimulator(mc)
        part = round_robin_partition(tiny_graph, m.n_pes)

        def make():
            return ParallelEpiSimdemics(
                Scenario(graph=tiny_graph, n_days=2, seed=1),
                mc,
                Distribution.from_partition(part, m),
                runtime=rt,
                namespace="dup.",
            )

        make()
        with pytest.raises(ValueError):
            make()
