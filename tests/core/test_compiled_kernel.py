"""The compiled (C-via-ctypes) exposure kernel: bit-exact or absent.

The ``"compiled"`` kernel replaces the flat kernel's pair
materialisation with a streaming C loop.  Its contract has two halves:

* when a C toolchain is present, it is **bit-identical** to the
  pure-numpy kernels — same events in the same order, same minutes,
  same statistics, same epidemic through the SMP backend;
* when no toolchain is available (or ``REPRO_NO_CKERNEL=1``), nothing
  in the repo breaks — ``available()`` is False with a reason, the
  kernel raises a clear error, and everything else runs pure numpy.

These tests skip cleanly on toolchain-less machines; CI runs them both
ways (with the compiler and with ``REPRO_NO_CKERNEL=1``).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Scenario, TransmissionModel, ckernel
from repro.core.exposure import KERNELS, compute_infections
from repro.core.simulator import SequentialSimulator
from repro.synthpop import PopulationConfig, generate_population
from repro.util.rng import RngFactory
from repro.validate.strategies import scenarios

needs_ckernel = pytest.mark.skipif(
    not ckernel.available(),
    reason=f"no compiled kernel: {ckernel.build_error()}",
)


def test_compiled_is_a_registered_kernel():
    assert "compiled" in KERNELS


def _infection_tuples(result):
    # Order is part of the contract — no sorting here.
    return [(e.person, e.location, e.minute) for e in result.infections]


def _phase_inputs(scenario, infected_frac=0.25):
    g = scenario.graph
    d = scenario.disease
    state, _ = d.initial_health(g.n_persons)
    rng = np.random.default_rng(scenario.seed)
    n_sick = max(1, int(g.n_persons * infected_frac)) if g.n_persons else 0
    if n_sick:
        sick = rng.choice(g.n_persons, n_sick, replace=False)
        state[sick] = d.state_index(
            d.states[int(np.flatnonzero(d.is_infectious)[0])].name
        )
    rows = np.arange(g.n_visits, dtype=np.int64)
    return g, d, state, rows


@needs_ckernel
class TestCompiledBitExact:
    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_same_infections_same_order_same_stats(self, scenario):
        g, d, state, rows = _phase_inputs(scenario)
        f = RngFactory(scenario.seed)
        flat = compute_infections(
            rows, g, state, d, scenario.transmission, 0, f,
            collect_stats=True, kernel="flat",
        )
        compiled = compute_infections(
            rows, g, state, d, scenario.transmission, 0, f,
            collect_stats=True, kernel="compiled",
        )
        assert _infection_tuples(compiled) == _infection_tuples(flat)
        assert compiled.events == flat.events
        assert compiled.interactions == flat.interactions

    def test_full_run_differential(self):
        from repro.validate.oracle import run_kernel_differential

        graph = generate_population(
            PopulationConfig(n_persons=500), 13, name="ck-diff"
        )
        report = run_kernel_differential(
            graph, n_days=5, seed=3, kernel_a="flat", kernel_b="compiled"
        )
        assert report.equal, report.format()

    def test_sequential_simulator_accepts_compiled(self):
        graph = generate_population(
            PopulationConfig(n_persons=300), 7, name="ck-seq"
        )

        def scenario():
            return Scenario(
                graph=graph, n_days=4, seed=2, initial_infections=6,
                transmission=TransmissionModel(3e-4),
            )

        res_f = SequentialSimulator(scenario(), kernel="flat").run()
        res_c = SequentialSimulator(scenario(), kernel="compiled").run()
        assert res_c.curve == res_f.curve
        assert res_c.final_histogram == res_f.final_histogram

    def test_smp_backend_compiled_bitexact(self):
        from repro.validate.oracle import run_smp_matrix

        report = run_smp_matrix(
            workers=(2,), presets=("tiny",), n_days=4, kernel="compiled"
        )
        assert all(c.equal for c in report.cells), report.cells


def test_disabled_by_env_is_a_clean_miss():
    """REPRO_NO_CKERNEL=1 means unavailable-with-reason, not an error.

    Runs in a subprocess because availability is memoised per process.
    """
    code = (
        "from repro.core import ckernel\n"
        "assert not ckernel.available()\n"
        "assert 'REPRO_NO_CKERNEL' in ckernel.build_error()\n"
        "try:\n"
        "    ckernel.accumulate_exposures(*[None] * 13)\n"
        "except RuntimeError as exc:\n"
        "    assert 'unavailable' in str(exc)\n"
        "else:\n"
        "    raise AssertionError('expected RuntimeError')\n"
    )
    env = dict(os.environ, REPRO_NO_CKERNEL="1")
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    subprocess.run([sys.executable, "-c", code], check=True, env=env)


@needs_ckernel
def test_concurrent_fresh_builds_race_to_one_library(tmp_path):
    """N processes hitting an empty cache serialise on the build lock:
    all succeed, exactly one .so remains, no lock/tmp litter."""
    code = (
        "from repro.core import ckernel\n"
        "assert ckernel.available(), ckernel.build_error()\n"
    )
    env = dict(os.environ, REPRO_CKERNEL_CACHE=str(tmp_path))
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", code], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        for _ in range(3)
    ]
    for p in procs:
        _, err = p.communicate(timeout=120)
        assert p.returncode == 0, err.decode()
    assert len(list(tmp_path.glob("*.so"))) == 1
    assert list(tmp_path.glob("*.lock")) == []
    assert list(tmp_path.glob("*.tmp*")) == []
    assert list(tmp_path.glob("*.c")) == []


@needs_ckernel
def test_stale_lock_is_stolen(tmp_path, monkeypatch):
    """A lock left by a dead builder must not wedge later processes."""
    monkeypatch.setenv("REPRO_CKERNEL_CACHE", str(tmp_path))
    tag = __import__("hashlib").sha256(ckernel.C_SOURCE.encode()).hexdigest()[:16]
    lock = tmp_path / f"exposure-{tag}.lock"
    tmp_path.mkdir(exist_ok=True)
    lock.write_text("99999")
    stale = __import__("time").time() - 2 * ckernel._LOCK_STALE_SECONDS
    os.utime(lock, (stale, stale))
    out = ckernel._compile()
    assert out.exists()
    assert not lock.exists()


def test_fresh_lock_waiter_returns_when_library_appears(tmp_path):
    """While another process holds a live lock, a waiter polls and
    returns as soon as the .so lands — without ever compiling."""
    import threading

    out = tmp_path / "exposure-x.so"
    lock = tmp_path / "exposure-x.lock"
    lock.write_text("1")

    def finish_build():
        __import__("time").sleep(0.2)
        out.write_bytes(b"not really an so")
        lock.unlink()

    t = threading.Thread(target=finish_build)
    t.start()
    try:
        acquired = ckernel._acquire_build_lock(lock, out)
    finally:
        t.join()
    assert acquired is False
    assert out.exists()


@needs_ckernel
def test_cache_is_reused_not_rebuilt(tmp_path, monkeypatch):
    """A second process finds the .so in the cache (sha-named, atomic)."""
    cached = sorted(ckernel.cache_dir().glob("exposure-*.so"))
    assert cached, "available() implies a built library in the cache"
    # The library name embeds the source hash: editing the source would
    # miss the cache instead of loading stale bits.
    tag = ckernel.cache_dir() / (
        "exposure-"
        + __import__("hashlib").sha256(ckernel.C_SOURCE.encode()).hexdigest()[:16]
        + ".so"
    )
    assert tag in cached
