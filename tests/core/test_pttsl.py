"""PTTSL disease-model language: parsing, validation, round-trip."""

import numpy as np
import pytest

from repro.core.disease import UNTREATED, influenza_model, sir_model
from repro.core.pttsl import PTTSLError, format_ptts, parse_ptts
from repro.util.rng import RngFactory

SEIR = """
# a minimal SEIR
susceptible S
state S susceptibility=1.0
state E dwell=fixed(2)
state I infectivity=1.0 symptomatic dwell=uniform(3,5)
state R
transition E -> I:1.0
transition I -> R:1.0
entry -> E
"""


class TestParse:
    def test_seir_structure(self):
        m = parse_ptts(SEIR)
        assert [s.name for s in m.states] == ["S", "E", "I", "R"]
        assert m.susceptible_index == 0
        assert m.states[2].symptomatic
        assert m.states[2].infectivity == 1.0
        assert m.entry_state(UNTREATED) == m.state_index("E")

    def test_treatments_and_entries(self):
        src = """
        susceptible S
        treatment vax
        state S susceptibility=1.0
        state E dwell=fixed(1)
        state Evax dwell=fixed(1)
        state R
        transition E -> R:1.0
        transition Evax -> R:1.0
        entry -> E
        entry -> Evax treatment=vax
        """
        m = parse_ptts(src)
        assert m.entry_state(1) == m.state_index("Evax")

    def test_per_treatment_transitions(self):
        src = """
        susceptible S
        treatment vax
        state S susceptibility=1.0
        state E dwell=fixed(1)
        state I infectivity=1.0 dwell=fixed(2)
        state R
        transition E -> I:1.0
        transition E -> R:0.9, I:0.1 treatment=vax
        transition I -> R:1.0
        entry -> E
        """
        m = parse_ptts(src)
        e = m.state_index("E")
        assert (e, 1) in m._compiled
        targets, cum = m._compiled[(e, 1)]
        assert cum[-1] == pytest.approx(1.0)

    def test_split_probability_branches(self):
        src = """
        susceptible S
        state S susceptibility=1.0
        state E dwell=fixed(1)
        state A infectivity=0.5 dwell=fixed(2)
        state B infectivity=1.0 dwell=fixed(2)
        state R
        transition E -> A:0.33, B:0.67
        transition A -> R:1.0
        transition B -> R:1.0
        entry -> E
        """
        m = parse_ptts(src)
        # Statistically, about 2/3 of transitions go to B.
        f = RngFactory(0)
        n = 3000
        state, remaining = m.initial_health(n)
        tr = np.zeros(n, dtype=np.int32)
        m.infect(np.arange(n), state, remaining, tr, -1, f)
        m.advance_day(state, remaining, tr, 0, f)
        frac_b = np.mean(state == m.state_index("B"))
        assert frac_b == pytest.approx(0.67, abs=0.05)

    def test_parsed_model_runs_a_simulation(self, tiny_graph):
        from repro.core import Scenario, SequentialSimulator, TransmissionModel

        m = parse_ptts(SEIR)
        sc = Scenario(
            graph=tiny_graph, disease=m, n_days=15, seed=3, initial_infections=5,
            transmission=TransmissionModel(2e-4),
        )
        res = SequentialSimulator(sc).run()
        assert res.total_infections >= 5


class TestErrors:
    @pytest.mark.parametrize(
        "src, match",
        [
            ("bogus directive", "unknown directive"),
            ("state X dwell=sometimes(1)", "bad dwell"),
            ("state X color=red", "unknown state attribute"),
            ("susceptible S\nstate S dwell=fixed(2)\nentry -> S", "no transitions"),
            ("transition A -> B:1.0", "undeclared state"),
            ("entry -> X treatment=vax", "unknown treatment"),
        ],
    )
    def test_malformed_sources(self, src, match):
        with pytest.raises((PTTSLError, ValueError), match=match):
            # Wrap fragments so structural directives exist where needed.
            if "susceptible" not in src:
                src = "susceptible Z\nstate Z susceptibility=1\nentry -> Z\n" + src
            parse_ptts(src)

    def test_missing_susceptible(self):
        with pytest.raises(PTTSLError, match="susceptible"):
            parse_ptts("state S\nentry -> S")

    def test_missing_entry(self):
        with pytest.raises(PTTSLError, match="entry"):
            parse_ptts("susceptible S\nstate S susceptibility=1")

    def test_duplicate_state(self):
        with pytest.raises(PTTSLError, match="already declared"):
            parse_ptts("susceptible S\nstate S\nstate S\nentry -> S")


class TestRoundTrip:
    @pytest.mark.parametrize("model_factory", [sir_model, influenza_model])
    def test_format_parse_roundtrip(self, model_factory):
        m = model_factory()
        text = format_ptts(m)
        m2 = parse_ptts(text)
        assert [s.name for s in m2.states] == [s.name for s in m.states]
        assert m2.susceptible_index == m.susceptible_index
        np.testing.assert_allclose(m2.infectivity, m.infectivity)
        np.testing.assert_allclose(m2.susceptibility, m.susceptibility)
        np.testing.assert_array_equal(m2.symptomatic, m.symptomatic)
        for s1, s2 in zip(m.states, m2.states):
            assert s1.dwell.kind == s2.dwell.kind
            assert s1.dwell.a == s2.dwell.a

    def test_roundtrip_simulation_identical(self, tiny_graph):
        from repro.core import Scenario, SequentialSimulator

        def run(model):
            sc = Scenario(
                graph=tiny_graph, disease=model, n_days=10, seed=3, initial_infections=5
            )
            return SequentialSimulator(sc).run().curve

        m = influenza_model()
        assert run(m) == run(parse_ptts(format_ptts(m)))
