"""Intervention semantics and the script parser."""

import numpy as np
import pytest

from repro.core import (
    Scenario,
    SchoolClosure,
    SequentialSimulator,
    StayHomeWhenSymptomatic,
    TransmissionModel,
    Vaccination,
    WorkClosure,
    parse_intervention_script,
)
from repro.core.disease import VACCINATED, influenza_model
from repro.core.interventions import DayContext, InterventionSchedule, _Trigger
from repro.synthpop.graph import LocationType
from repro.util.rng import RngFactory


def _ctx(graph, day=0, prevalence=0.0):
    d = influenza_model()
    state, _ = d.initial_health(graph.n_persons)
    return DayContext(
        day=day,
        graph=graph,
        disease=d,
        health_state=state,
        treatment=np.zeros(graph.n_persons, dtype=np.int32),
        prevalence=prevalence,
        cumulative_attack=0.0,
        rng_factory=RngFactory(0),
    )


class TestTrigger:
    def test_requires_exactly_one_condition(self):
        with pytest.raises(ValueError):
            _Trigger()
        with pytest.raises(ValueError):
            _Trigger(day=1, prevalence=0.5)

    def test_day_trigger_window(self, tiny_graph):
        t = _Trigger(day=3, duration=2)
        assert not t.active(_ctx(tiny_graph, day=2))
        assert t.active(_ctx(tiny_graph, day=3))
        assert t.active(_ctx(tiny_graph, day=4))
        assert not t.active(_ctx(tiny_graph, day=5))

    def test_prevalence_trigger_latches(self, tiny_graph):
        t = _Trigger(prevalence=0.1, duration=None)
        assert not t.active(_ctx(tiny_graph, day=0, prevalence=0.05))
        assert t.active(_ctx(tiny_graph, day=1, prevalence=0.2))
        # Stays active even after prevalence drops (duration=None).
        assert t.active(_ctx(tiny_graph, day=2, prevalence=0.0))


class TestVaccination:
    def test_coverage_fraction(self, small_graph):
        ctx = _ctx(small_graph)
        Vaccination(coverage=0.4, day=0).update_treatments(ctx)
        frac = np.mean(ctx.treatment == VACCINATED)
        assert frac == pytest.approx(0.4, abs=0.06)

    def test_age_targeting(self, small_graph):
        ctx = _ctx(small_graph)
        Vaccination(coverage=1.0, day=0, age_min=5, age_max=17).update_treatments(ctx)
        ages = small_graph.person_age
        assert np.all(ctx.treatment[(ages >= 5) & (ages <= 17)] == VACCINATED)
        assert np.all(ctx.treatment[ages > 17] != VACCINATED)

    def test_one_shot(self, small_graph):
        ctx0 = _ctx(small_graph, day=0)
        iv = Vaccination(coverage=0.2, day=0)
        iv.update_treatments(ctx0)
        before = ctx0.treatment.copy()
        iv.update_treatments(_ctx(small_graph, day=1))
        np.testing.assert_array_equal(before, ctx0.treatment)

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            Vaccination(coverage=1.5)


class TestClosures:
    def test_school_closure_removes_school_visits(self, small_graph):
        ctx = _ctx(small_graph)
        sched = InterventionSchedule([SchoolClosure(day=0, duration=10)])
        keep = sched.visit_mask(ctx)
        types = small_graph.location_type[small_graph.visit_location]
        assert not np.any(keep & (types == LocationType.SCHOOL))
        assert np.all(keep[types == LocationType.HOME])

    def test_work_closure_respects_rows_subset(self, small_graph):
        ctx = _ctx(small_graph)
        sched = InterventionSchedule([WorkClosure(day=0)])
        full = sched.visit_mask(ctx)
        rows = np.arange(0, small_graph.n_visits, 3)
        sub = sched.visit_mask(_ctx(small_graph), rows=rows)
        np.testing.assert_array_equal(sub, full[rows])

    def test_inactive_before_trigger(self, small_graph):
        ctx = _ctx(small_graph, day=0)
        sched = InterventionSchedule([SchoolClosure(day=5)])
        assert sched.visit_mask(ctx).all()


class TestStayHome:
    def test_noop_when_nobody_sick(self, small_graph):
        ctx = _ctx(small_graph)
        sched = InterventionSchedule([StayHomeWhenSymptomatic(compliance=1.0)])
        assert sched.visit_mask(ctx).all()

    def test_sick_compliant_person_keeps_only_home_visits(self, small_graph):
        ctx = _ctx(small_graph)
        d = ctx.disease
        sick = 7
        ctx.health_state[sick] = d.state_index("infectious_symptomatic")
        sched = InterventionSchedule([StayHomeWhenSymptomatic(compliance=1.0)])
        keep = sched.visit_mask(ctx)
        g = small_graph
        mine = g.visit_person == sick
        at_home = g.visit_location == g.person_home[sick]
        assert np.all(keep[mine & at_home])
        assert not np.any(keep[mine & ~at_home])

    def test_subset_evaluation_matches_full(self, small_graph):
        ctx = _ctx(small_graph)
        d = ctx.disease
        rng = np.random.default_rng(0)
        sick = rng.choice(small_graph.n_persons, 40, replace=False)
        ctx.health_state[sick] = d.state_index("infectious_symptomatic")
        sched = InterventionSchedule([StayHomeWhenSymptomatic(compliance=0.5)])
        full = sched.visit_mask(ctx)
        # Evaluate per-person-chunk (as PersonManagers do) and compare.
        ptr = small_graph.person_visit_slices()
        got = np.ones_like(full)
        for chunk in np.array_split(np.arange(small_graph.n_persons), 7):
            if chunk.size == 0:
                continue
            rows = np.concatenate(
                [np.arange(ptr[p], ptr[p + 1]) for p in chunk]
            ).astype(np.int64)
            got[rows] = sched.visit_mask(ctx, rows=rows)
        np.testing.assert_array_equal(got, full)


class TestParser:
    def test_full_script(self):
        sched = parse_intervention_script(
            """
            # course-of-action study
            vaccinate coverage=0.25 day=0 ages=5-18
            close_schools prevalence=0.01 duration=21
            close_work day=30 duration=7
            stay_home compliance=0.6
            """
        )
        assert len(sched) == 4
        kinds = [type(iv).__name__ for iv in sched]
        assert kinds == [
            "Vaccination", "SchoolClosure", "WorkClosure", "StayHomeWhenSymptomatic",
        ]

    def test_unknown_directive(self):
        with pytest.raises(ValueError, match="unknown directive"):
            parse_intervention_script("quarantine day=1")

    def test_unexpected_argument(self):
        with pytest.raises(ValueError, match="unexpected"):
            parse_intervention_script("stay_home compliance=0.5 bogus=1")

    def test_malformed_kv(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_intervention_script("vaccinate coverage")

    def test_empty_script(self):
        assert len(parse_intervention_script("\n  # nothing\n")) == 0


class TestEndToEndEffect:
    def test_vaccination_reduces_attack_rate(self, wy_graph):
        base = Scenario(
            graph=wy_graph, n_days=40, seed=11, initial_infections=5,
            transmission=TransmissionModel(2e-4),
        )
        res_base = SequentialSimulator(base).run()
        vax = Scenario(
            graph=wy_graph, n_days=40, seed=11, initial_infections=5,
            transmission=TransmissionModel(2e-4),
            interventions=InterventionSchedule([Vaccination(coverage=0.8, day=0)]),
        )
        res_vax = SequentialSimulator(vax).run()
        assert res_vax.total_infections < res_base.total_infections
