"""Location-phase exposure computation: grouping invariance.

The keystone property for parallel correctness: splitting the visit
rows by location across multiple calls yields exactly the infections of
one whole-population call.
"""

import numpy as np
import pytest

from repro.core import Scenario, TransmissionModel
from repro.core.exposure import compute_infections
from repro.util.rng import RngFactory


def _setup(graph, infected_frac=0.1, seed=3):
    sc = Scenario(graph=graph, seed=seed, transmission=TransmissionModel(3e-4))
    d = sc.disease
    state, remaining = d.initial_health(graph.n_persons)
    rng = np.random.default_rng(seed)
    sick = rng.choice(graph.n_persons, int(graph.n_persons * infected_frac), replace=False)
    state[sick] = d.state_index("infectious_symptomatic")
    return sc, state


def _key(events):
    return sorted((e.person, e.location, e.minute) for e in events)


class TestGroupingInvariance:
    def test_split_by_location_equals_whole(self, tiny_graph):
        sc, state = _setup(tiny_graph)
        f = RngFactory(sc.seed)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        whole = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 0, f
        )
        # Partition rows by location parity — two "LocationManagers".
        locs = tiny_graph.visit_location
        part_a = rows[locs[rows] % 2 == 0]
        part_b = rows[locs[rows] % 2 == 1]
        a = compute_infections(part_a, tiny_graph, state, sc.disease, sc.transmission, 0, f)
        b = compute_infections(part_b, tiny_graph, state, sc.disease, sc.transmission, 0, f)
        assert _key(whole.infections) == _key(a.infections + b.infections)

    def test_row_order_irrelevant(self, tiny_graph):
        sc, state = _setup(tiny_graph)
        f = RngFactory(sc.seed)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        fwd = compute_infections(rows, tiny_graph, state, sc.disease, sc.transmission, 0, f)
        rev = compute_infections(rows[::-1], tiny_graph, state, sc.disease, sc.transmission, 0, f)
        assert _key(fwd.infections) == _key(rev.infections)

    def test_no_infectious_no_infections(self, tiny_graph):
        sc, _ = _setup(tiny_graph)
        d = sc.disease
        state, _ = d.initial_health(tiny_graph.n_persons)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        res = compute_infections(rows, tiny_graph, state, d, sc.transmission, 0, RngFactory(0))
        assert res.infections == []

    def test_empty_rows(self, tiny_graph):
        sc, state = _setup(tiny_graph)
        res = compute_infections(
            np.empty(0, dtype=np.int64), tiny_graph, state, sc.disease,
            sc.transmission, 0, RngFactory(0),
        )
        assert res.infections == []
        assert res.events == {}


class TestStats:
    def test_event_counts_are_two_per_visit(self, tiny_graph):
        sc, state = _setup(tiny_graph)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        res = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 0,
            RngFactory(0), collect_stats=True,
        )
        assert sum(res.events.values()) == 2 * tiny_graph.n_visits

    def test_merge_accumulates(self, tiny_graph):
        sc, state = _setup(tiny_graph)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        a = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 0,
            RngFactory(0), collect_stats=True,
        )
        before = sum(a.events.values())
        b = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 1,
            RngFactory(0), collect_stats=True,
        )
        a.merge(b)
        assert sum(a.events.values()) == before + sum(b.events.values())

    def test_infection_minutes_within_day(self, tiny_graph):
        sc, state = _setup(tiny_graph, infected_frac=0.3)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        res = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 0, RngFactory(3)
        )
        assert res.infections, "expected some transmissions at 30% prevalence"
        for ev in res.infections:
            assert 0 < ev.minute <= 1440


class TestCounterMerge:
    """Stats accumulate Counter-style: merging results that share
    location keys must *add* counts, never overwrite them."""

    def test_merge_adds_on_shared_locations(self, tiny_graph):
        sc, state = _setup(tiny_graph)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        a = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 0,
            RngFactory(0), collect_stats=True,
        )
        b = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 1,
            RngFactory(0), collect_stats=True,
        )
        expected = {loc: a.events[loc] + b.events[loc] for loc in set(a.events) | set(b.events)}
        expected_inter = {
            loc: a.interactions[loc] + b.interactions[loc]
            for loc in set(a.interactions) | set(b.interactions)
        }
        a.merge(b)
        assert dict(a.events) == expected
        assert dict(a.interactions) == expected_inter

    def test_merge_across_location_groups(self, tiny_graph):
        """The parallel path: each LocationManager computes a disjoint
        location group; merged per-location stats must equal the
        whole-population call's."""
        sc, state = _setup(tiny_graph)
        rows = np.arange(tiny_graph.n_visits, dtype=np.int64)
        whole = compute_infections(
            rows, tiny_graph, state, sc.disease, sc.transmission, 0,
            RngFactory(sc.seed), collect_stats=True,
        )
        locs = tiny_graph.visit_location
        merged = None
        for part in range(3):
            res = compute_infections(
                rows[locs[rows] % 3 == part], tiny_graph, state, sc.disease,
                sc.transmission, 0, RngFactory(sc.seed), collect_stats=True,
            )
            if merged is None:
                merged = res
            else:
                merged.merge(res)
        assert dict(merged.events) == dict(whole.events)
        assert dict(merged.interactions) == dict(whole.interactions)
        assert _key(merged.infections) == _key(whole.infections)

    def test_sequential_run_accumulates_location_stats(self, tiny_graph):
        from repro.core import SequentialSimulator

        sc = Scenario(
            graph=tiny_graph, n_days=6, seed=3, initial_infections=8,
            transmission=TransmissionModel(3e-4),
        )
        result = SequentialSimulator(sc, collect_location_stats=True).run()
        # Every day contributes 2 events per visit made.
        assert sum(result.location_events.values()) == 2 * sum(
            d.visits_made for d in result.days
        )
