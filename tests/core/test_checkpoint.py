"""Checkpoint/restart: resumed runs must equal uninterrupted runs."""

import numpy as np
import pytest

from repro.core import (
    Scenario,
    SchoolClosure,
    SequentialSimulator,
    TransmissionModel,
    Vaccination,
)
from repro.core.checkpoint import load_checkpoint, run_with_checkpointing, save_checkpoint
from repro.core.interventions import InterventionSchedule
from repro.core.metrics import EpiCurve


def _scenario(graph, n_days=14, with_interventions=False):
    interventions = InterventionSchedule(
        [Vaccination(coverage=0.2, day=1), SchoolClosure(prevalence=0.02, duration=4)]
        if with_interventions
        else []
    )
    return Scenario(
        graph=graph, n_days=n_days, seed=6, initial_infections=6,
        transmission=TransmissionModel(2.5e-4), interventions=interventions,
    )


class TestSaveLoad:
    def test_state_roundtrip(self, tiny_graph, tmp_path):
        sim = SequentialSimulator(_scenario(tiny_graph))
        for _ in range(5):
            sim.step_day()
        path = tmp_path / "ck.npz"
        save_checkpoint(sim, path)
        restored = load_checkpoint(_scenario(tiny_graph), path)
        assert restored.day == 5
        np.testing.assert_array_equal(restored.health_state, sim.health_state)
        np.testing.assert_array_equal(restored.days_remaining, sim.days_remaining)
        np.testing.assert_array_equal(restored._ever_infected, sim._ever_infected)

    def test_seed_mismatch_rejected(self, tiny_graph, tmp_path):
        sim = SequentialSimulator(_scenario(tiny_graph))
        sim.step_day()
        save_checkpoint(sim, tmp_path / "ck.npz")
        other = _scenario(tiny_graph)
        other.seed = 999
        with pytest.raises(ValueError, match="seed"):
            load_checkpoint(other, tmp_path / "ck.npz")

    def test_population_mismatch_rejected(self, tiny_graph, small_graph, tmp_path):
        sim = SequentialSimulator(_scenario(tiny_graph))
        sim.step_day()
        save_checkpoint(sim, tmp_path / "ck.npz")
        wrong = _scenario(small_graph)
        wrong.seed = 6
        with pytest.raises(ValueError, match="population"):
            load_checkpoint(wrong, tmp_path / "ck.npz")


class TestResumeEquality:
    def test_resume_reproduces_uninterrupted_run(self, tiny_graph, tmp_path):
        reference = SequentialSimulator(_scenario(tiny_graph)).run()

        # Interrupted: run 6 days, checkpoint, rebuild from disk, finish.
        sim = SequentialSimulator(_scenario(tiny_graph))
        curve = EpiCurve()
        for _ in range(6):
            dr, _ = sim.step_day()
            curve.record_day(dr.new_infections, dr.prevalence)
        sim._checkpoint_curve = curve
        save_checkpoint(sim, tmp_path / "ck.npz")

        resumed = load_checkpoint(_scenario(tiny_graph), tmp_path / "ck.npz")
        curve2 = resumed._checkpoint_curve
        while resumed.day < 14:
            dr, _ = resumed.step_day()
            curve2.record_day(dr.new_infections, dr.prevalence)

        assert curve2 == reference.curve

    def test_resume_with_interventions(self, tiny_graph, tmp_path):
        """Trigger state (fired closures, spent vaccinations) must survive."""
        reference = SequentialSimulator(_scenario(tiny_graph, with_interventions=True)).run()

        sim = SequentialSimulator(_scenario(tiny_graph, with_interventions=True))
        curve = EpiCurve()
        for _ in range(7):
            dr, _ = sim.step_day()
            curve.record_day(dr.new_infections, dr.prevalence)
        sim._checkpoint_curve = curve
        save_checkpoint(sim, tmp_path / "ck.npz")

        resumed = load_checkpoint(
            _scenario(tiny_graph, with_interventions=True), tmp_path / "ck.npz"
        )
        curve2 = resumed._checkpoint_curve
        while resumed.day < 14:
            dr, _ = resumed.step_day()
            curve2.record_day(dr.new_infections, dr.prevalence)
        assert curve2 == reference.curve


class TestRunWithCheckpointing:
    def test_full_run_matches_plain(self, tiny_graph, tmp_path):
        plain = SequentialSimulator(_scenario(tiny_graph)).run()
        ck = run_with_checkpointing(
            _scenario(tiny_graph), tmp_path / "ck.npz", checkpoint_every=4
        )
        assert ck.curve == plain.curve
        assert ck.final_histogram == plain.final_histogram

    def test_interrupted_and_resumed(self, tiny_graph, tmp_path):
        plain = SequentialSimulator(_scenario(tiny_graph)).run()
        # First attempt "crashes" after day 8 (we emulate by running a
        # short-horizon copy that checkpoints at day 8).
        partial = _scenario(tiny_graph, n_days=8)
        run_with_checkpointing(partial, tmp_path / "ck.npz", checkpoint_every=8)
        # Wait: horizon 8 finishes cleanly without a trailing checkpoint;
        # force one at day 8 by running with checkpoint_every=4.
        run_with_checkpointing(
            _scenario(tiny_graph, n_days=8), tmp_path / "ck.npz",
            checkpoint_every=4, resume=False,
        )
        # Resume to the full horizon.
        result = run_with_checkpointing(
            _scenario(tiny_graph), tmp_path / "ck.npz", checkpoint_every=4
        )
        assert result.curve == plain.curve


class TestRoundTripProperty:
    """Hypothesis: for arbitrary adversarial scenarios (drawn from the
    shared ``repro.validate.strategies`` pool), interrupting at *any*
    day boundary and resuming from disk reproduces the uninterrupted
    epidemic exactly."""

    @staticmethod
    def _run_tail(sim, curve):
        while sim.day < sim.scenario.n_days:
            dr, _ = sim.step_day()
            curve.record_day(dr.new_infections, dr.prevalence)
        return curve

    def test_roundtrip_any_scenario_any_cut(self):
        import tempfile
        from pathlib import Path

        from hypothesis import HealthCheck, given, settings, strategies as st

        from repro.validate.strategies import scenarios

        @settings(
            max_examples=15, deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(scenarios(max_persons=20, max_days=5), st.data())
        def prop(scenario, data):
            ref_sim = SequentialSimulator(scenario)
            reference = ref_sim.run()
            cut = data.draw(
                st.integers(0, scenario.n_days), label="checkpoint day"
            )
            sim = SequentialSimulator(scenario)
            curve = EpiCurve()
            for _ in range(cut):
                dr, _ = sim.step_day()
                curve.record_day(dr.new_infections, dr.prevalence)
            sim._checkpoint_curve = curve
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "ck.npz"
                save_checkpoint(sim, path)
                resumed = load_checkpoint(scenario, path)
            final = self._run_tail(resumed, resumed._checkpoint_curve)
            assert final == reference.curve
            np.testing.assert_array_equal(resumed.health_state, ref_sim.health_state)
            np.testing.assert_array_equal(resumed.days_remaining, ref_sim.days_remaining)

        prop()
