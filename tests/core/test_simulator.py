"""Sequential reference simulator behaviour."""

import numpy as np
import pytest

from repro.core import Scenario, SequentialSimulator, TransmissionModel, sir_model
from repro.core.metrics import state_histogram


class TestBasicRun:
    def test_runs_all_days(self, tiny_scenario):
        res = SequentialSimulator(tiny_scenario).run()
        assert res.curve.n_days == tiny_scenario.n_days
        assert len(res.days) == tiny_scenario.n_days

    def test_index_cases_counted_day0(self, tiny_scenario):
        res = SequentialSimulator(tiny_scenario).run()
        assert res.curve.new_infections[0] >= tiny_scenario.initial_infections

    def test_population_conserved(self, tiny_scenario):
        res = SequentialSimulator(tiny_scenario).run()
        assert sum(res.final_histogram.values()) == tiny_scenario.graph.n_persons

    def test_cumulative_matches_histogram(self, tiny_graph):
        sc = Scenario(
            graph=tiny_graph, n_days=25, seed=2, initial_infections=3,
            transmission=TransmissionModel(2e-4),
        )
        res = SequentialSimulator(sc).run()
        ever = tiny_graph.n_persons - res.final_histogram["susceptible"]
        assert res.total_infections == ever

    def test_determinism(self, tiny_scenario):
        a = SequentialSimulator(tiny_scenario).run()
        b = SequentialSimulator(tiny_scenario).run()
        assert a.curve == b.curve

    def test_seed_changes_outcome(self, tiny_graph):
        mk = lambda s: Scenario(
            graph=tiny_graph, n_days=20, seed=s, initial_infections=3,
            transmission=TransmissionModel(2.5e-4),
        )
        a = SequentialSimulator(mk(1)).run()
        b = SequentialSimulator(mk(2)).run()
        assert a.curve.new_infections != b.curve.new_infections


class TestEpidemiology:
    def test_no_transmission_when_rate_zero(self, tiny_graph):
        sc = Scenario(
            graph=tiny_graph, n_days=10, seed=1, initial_infections=5,
            transmission=TransmissionModel(0.0),
        )
        res = SequentialSimulator(sc).run()
        assert res.total_infections == 5  # only the index cases

    def test_zero_index_cases_stays_clean(self, tiny_graph):
        sc = Scenario(graph=tiny_graph, n_days=5, seed=1, initial_infections=0)
        res = SequentialSimulator(sc).run()
        assert res.total_infections == 0
        assert all(p == 0.0 for p in res.curve.prevalence)

    def test_higher_rate_more_infections(self, tiny_graph):
        def run(rate):
            sc = Scenario(
                graph=tiny_graph, n_days=25, seed=4, initial_infections=5,
                transmission=TransmissionModel(rate),
            )
            return SequentialSimulator(sc).run().total_infections

        assert run(3e-4) >= run(5e-5)

    def test_epidemic_eventually_burns_out(self, tiny_graph):
        sc = Scenario(
            graph=tiny_graph, n_days=80, seed=4, initial_infections=5,
            transmission=TransmissionModel(3e-4), disease=sir_model(),
        )
        sim = SequentialSimulator(sc)
        res = sim.run()
        hist = state_histogram(sim.health_state, sc.disease)
        assert hist["E"] == 0 and hist["I"] == 0  # all resolved
        assert res.curve.prevalence[-1] == 0.0

    def test_explicit_index_cases(self, tiny_graph):
        sc = Scenario(
            graph=tiny_graph, n_days=3, seed=1,
            initial_infections=np.array([0, 1, 2]),
        )
        sim = SequentialSimulator(sc)
        sim.run()
        d = sc.disease
        assert np.all(sim.health_state[[0, 1, 2]] != d.susceptible_index)


class TestLocationStats:
    def test_stats_collected_when_enabled(self, tiny_scenario):
        sim = SequentialSimulator(tiny_scenario, collect_location_stats=True)
        res = sim.run()
        assert len(res.location_events) > 0
        # Events are 2x visits and accumulate across days.
        total_events = sum(res.location_events.values())
        assert total_events > tiny_scenario.graph.n_visits  # > one day's worth

    def test_stats_empty_when_disabled(self, tiny_scenario):
        res = SequentialSimulator(tiny_scenario).run()
        assert res.location_events == {}


class TestScenarioValidation:
    def test_too_many_index_cases(self, tiny_graph):
        with pytest.raises(ValueError):
            Scenario(graph=tiny_graph, initial_infections=10**9)

    def test_bad_n_days(self, tiny_graph):
        with pytest.raises(ValueError):
            Scenario(graph=tiny_graph, n_days=0)

    def test_out_of_range_explicit_cases(self, tiny_graph):
        sc = Scenario(
            graph=tiny_graph, initial_infections=np.array([tiny_graph.n_persons + 1])
        )
        with pytest.raises(ValueError):
            sc.index_cases()
