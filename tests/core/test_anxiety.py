"""Anxiety-driven contact reduction (paper §II-A behaviour modelling)."""

import numpy as np
import pytest

from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.core.interventions import (
    AnxietyContactReduction,
    InterventionSchedule,
    parse_intervention_script,
)
from repro.synthpop.graph import LocationType
from tests.core.test_interventions import _ctx


class TestFilterBehaviour:
    def test_no_effect_at_zero_prevalence(self, small_graph):
        ctx = _ctx(small_graph, prevalence=0.0)
        sched = InterventionSchedule([AnxietyContactReduction(strength=1.0)])
        assert sched.visit_mask(ctx).all()

    def test_saturated_prevalence_drops_discretionary(self, small_graph):
        ctx = _ctx(small_graph, prevalence=0.5)
        sched = InterventionSchedule(
            [AnxietyContactReduction(strength=1.0, saturation=0.05)]
        )
        keep = sched.visit_mask(ctx)
        types = small_graph.location_type[small_graph.visit_location]
        discretionary = (types == LocationType.SHOP) | (types == LocationType.OTHER)
        assert not np.any(keep & discretionary)
        # Work, school and home visits untouched.
        assert keep[~discretionary].all()

    def test_response_scales_with_prevalence(self, small_graph):
        def kept(prev):
            ctx = _ctx(small_graph, prevalence=prev)
            sched = InterventionSchedule(
                [AnxietyContactReduction(strength=1.0, saturation=0.1)]
            )
            keep = sched.visit_mask(ctx)
            types = small_graph.location_type[small_graph.visit_location]
            disc = (types == LocationType.SHOP) | (types == LocationType.OTHER)
            return keep[disc].mean()

        assert kept(0.01) > kept(0.05) > kept(0.1)

    def test_subset_matches_full(self, small_graph):
        ctx = _ctx(small_graph, prevalence=0.03)
        sched = InterventionSchedule([AnxietyContactReduction()])
        full = sched.visit_mask(ctx)
        rows = np.arange(0, small_graph.n_visits, 2)
        np.testing.assert_array_equal(sched.visit_mask(ctx, rows=rows), full[rows])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AnxietyContactReduction(strength=1.5)
        with pytest.raises(ValueError):
            AnxietyContactReduction(saturation=0.0)

    def test_script_directive(self):
        sched = parse_intervention_script("anxiety strength=0.4 saturation=0.02")
        iv = sched.interventions[0]
        assert isinstance(iv, AnxietyContactReduction)
        assert iv.strength == 0.4


class TestEpidemiologicalEffect:
    def test_anxiety_flattens_the_curve(self, wy_graph):
        def run(interventions):
            sc = Scenario(
                graph=wy_graph, n_days=60, seed=11, initial_infections=5,
                transmission=TransmissionModel(2e-4),
                interventions=interventions,
            )
            return SequentialSimulator(sc).run()

        base = run(InterventionSchedule())
        anxious = run(
            InterventionSchedule([AnxietyContactReduction(strength=0.9, saturation=0.03)])
        )
        # Fewer infections at the peak and overall.
        assert max(anxious.curve.new_infections) < max(base.curve.new_infections)
        assert anxious.total_infections < base.total_infections
