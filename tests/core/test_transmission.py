"""Transmission function properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.transmission import TransmissionModel


class TestHazard:
    def test_zero_overlap_zero_hazard(self):
        tm = TransmissionModel(1e-4)
        assert tm.hazard(0.0, 1.0, 1.0) == 0.0

    def test_hazard_additivity_equals_independent_trials(self):
        # P(infected by A or B) with independent per-pair trials must equal
        # the probability from summed hazards.
        tm = TransmissionModel(3e-4)
        h1 = tm.hazard(120.0, 1.0, 1.0)
        h2 = tm.hazard(45.0, 0.5, 1.0)
        p_joint = tm.probability(h1 + h2)
        p_indep = 1.0 - (1.0 - tm.probability(h1)) * (1.0 - tm.probability(h2))
        assert p_joint == pytest.approx(p_indep, rel=1e-12)

    def test_small_rate_matches_poisson_form(self):
        tm = TransmissionModel(1e-6)
        h = tm.hazard(100.0, 1.0, 1.0)
        assert h == pytest.approx(100.0 * 1e-6, rel=1e-3)

    def test_vectorised(self):
        tm = TransmissionModel(1e-4)
        h = tm.hazard(np.array([10.0, 20.0]), np.array([1.0, 0.5]), 1.0)
        assert h.shape == (2,)
        assert h[0] > h[1] * 0.9

    @given(
        st.floats(0.0, 1440.0),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, tau, rho, sigma):
        tm = TransmissionModel(5e-4)
        p = tm.pair_probability(tau, rho, sigma)
        assert 0.0 <= p <= 1.0

    @given(st.floats(1.0, 1000.0), st.floats(1.0, 1000.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_exposure(self, a, b):
        tm = TransmissionModel(2e-4)
        lo, hi = min(a, b), max(a, b)
        assert tm.pair_probability(lo, 1.0, 1.0) <= tm.pair_probability(hi, 1.0, 1.0)

    def test_invalid_transmissibility(self):
        with pytest.raises(ValueError):
            TransmissionModel(1.0)
        with pytest.raises(ValueError):
            TransmissionModel(-0.1)
