"""Flat vs grouped exposure kernel: bit-for-bit equivalence properties.

The flat kernel replaces the per-location Python loop with one global
blocked pass; these properties pin it to the two references it must
match exactly:

* the **grouped** kernel (and therefore the golden traces) — identical
  infection events, in identical order, with identical statistics, on
  adversarially drawn populations;
* the **event-driven DES** — :func:`blocked_pairwise_exposures` must
  enumerate exactly the interaction set :class:`LocationDES` computes
  per location.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.des import LocationDES, blocked_pairwise_exposures, pairwise_exposures
from repro.core.exposure import compute_infections
from repro.core.simulator import SequentialSimulator
from repro.util.rng import RngFactory
from repro.validate.strategies import scenarios, visit_graphs


def _infection_tuples(result):
    # Order is part of the contract — no sorting here.
    return [(e.person, e.location, e.minute) for e in result.infections]


def _phase_inputs(scenario, infected_frac=0.25):
    g = scenario.graph
    d = scenario.disease
    state, _ = d.initial_health(g.n_persons)
    rng = np.random.default_rng(scenario.seed)
    n_sick = max(1, int(g.n_persons * infected_frac)) if g.n_persons else 0
    if n_sick:
        sick = rng.choice(g.n_persons, n_sick, replace=False)
        state[sick] = d.state_index(d.states[int(np.flatnonzero(d.is_infectious)[0])].name)
    rows = np.arange(g.n_visits, dtype=np.int64)
    return g, d, state, rows


class TestKernelEquivalence:
    @given(scenarios())
    @settings(max_examples=60, deadline=None)
    def test_same_infections_same_order(self, scenario):
        g, d, state, rows = _phase_inputs(scenario)
        f = RngFactory(scenario.seed)
        grouped = compute_infections(
            rows, g, state, d, scenario.transmission, 0, f,
            collect_stats=True, kernel="grouped",
        )
        flat = compute_infections(
            rows, g, state, d, scenario.transmission, 0, f,
            collect_stats=True, kernel="flat",
        )
        assert _infection_tuples(flat) == _infection_tuples(grouped)
        assert flat.events == grouped.events
        assert flat.interactions == grouped.interactions

    @given(scenarios())
    @settings(max_examples=20, deadline=None)
    def test_full_run_identical(self, scenario):
        """Whole-simulation differential: curves and final state match."""
        import copy

        res_g = SequentialSimulator(copy.deepcopy(scenario), kernel="grouped").run()
        res_f = SequentialSimulator(scenario, kernel="flat").run()
        assert res_f.curve.new_infections == res_g.curve.new_infections
        assert res_f.curve.prevalence == res_g.curve.prevalence
        assert res_f.final_histogram == res_g.final_histogram

    @given(visit_graphs())
    @settings(max_examples=40, deadline=None)
    def test_flat_kernel_grouping_invariance(self, graph):
        """Splitting visit rows by location across calls reproduces the
        whole-population flat-kernel call (the parallel-correctness
        keystone, previously asserted only for the grouped kernel)."""
        from repro.core import Scenario, TransmissionModel

        sc = Scenario(
            graph=graph, seed=5, initial_infections=0,
            transmission=TransmissionModel(3e-3),
        )
        g, d, state, rows = _phase_inputs(sc)
        f = RngFactory(sc.seed)
        whole = compute_infections(rows, g, state, d, sc.transmission, 0, f, kernel="flat")
        locs = g.visit_location
        parts = [
            compute_infections(
                rows[locs[rows] % 2 == m], g, state, d, sc.transmission, 0, f,
                kernel="flat",
            )
            for m in (0, 1)
        ]
        merged = sorted(_infection_tuples(parts[0]) + _infection_tuples(parts[1]))
        assert sorted(_infection_tuples(whole)) == merged


class TestBlockedPairsVsDES:
    @given(visit_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_pair_set_matches_event_driven_sweep(self, graph, seed):
        """blocked_pairwise_exposures over the whole visit set must
        enumerate exactly the interactions the per-location DES finds."""
        rng = np.random.default_rng(seed)
        n = graph.n_visits
        sus = rng.random(n) < 0.5
        inf = ~sus & (rng.random(n) < 0.6)

        s_idx, i_idx, o_start, o_end = blocked_pairwise_exposures(
            graph.visit_location, graph.visit_subloc,
            graph.visit_start, graph.visit_end, sus, inf,
        )
        got = {
            (int(s), int(i), int(a), int(b))
            for s, i, a, b in zip(s_idx, i_idx, o_start, o_end)
        }

        expected = set()
        for loc in range(graph.n_locations):
            rows = np.flatnonzero(graph.visit_location == loc)
            if rows.size == 0:
                continue
            interactions = LocationDES().run(
                graph.visit_subloc[rows], graph.visit_start[rows],
                graph.visit_end[rows], sus[rows], inf[rows],
            )
            for x in interactions:
                expected.add(
                    (int(rows[x.sus_visit]), int(rows[x.inf_visit]),
                     x.overlap_start, x.overlap_end)
                )
        assert got == expected

    @given(visit_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_per_location_vectorised_reference(self, graph):
        rng = np.random.default_rng(graph.n_visits)
        n = graph.n_visits
        sus = rng.random(n) < 0.4
        inf = rng.random(n) < 0.4  # deliberately allows sus&inf overlap

        s_idx, i_idx, o_start, o_end = blocked_pairwise_exposures(
            graph.visit_location, graph.visit_subloc,
            graph.visit_start, graph.visit_end, sus, inf,
        )
        got = set(zip(s_idx.tolist(), i_idx.tolist(), o_start.tolist(), o_end.tolist()))

        expected = set()
        for loc in range(graph.n_locations):
            rows = np.flatnonzero(graph.visit_location == loc)
            s, i, a, b = pairwise_exposures(
                graph.visit_subloc[rows], graph.visit_start[rows],
                graph.visit_end[rows], sus[rows], inf[rows],
            )
            expected |= set(
                zip(rows[s].tolist(), rows[i].tolist(), a.tolist(), b.tolist())
            )
        assert got == expected

    def test_empty_and_degenerate_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        out = blocked_pairwise_exposures(
            empty, empty, empty, empty,
            np.empty(0, dtype=bool), np.empty(0, dtype=bool),
        )
        assert all(a.size == 0 for a in out)
        # One susceptible alone: no pairs.
        one = np.zeros(1, dtype=np.int64)
        out = blocked_pairwise_exposures(
            one, one, one, one + 5, np.array([True]), np.array([False])
        )
        assert all(a.size == 0 for a in out)
