"""PTTS disease model: structure, transitions, determinism."""

import numpy as np
import pytest

from repro.core.disease import (
    FOREVER,
    UNTREATED,
    VACCINATED,
    DiseaseModel,
    DwellDistribution,
    HealthState,
    Transition,
    influenza_model,
    sir_model,
)
from repro.util.rng import RngFactory


class TestDwellDistribution:
    def test_fixed(self, rng):
        d = DwellDistribution.fixed(3)
        assert np.all(d.sample(rng, 10) == 3)
        assert d.mean == 3

    def test_uniform_range(self, rng):
        d = DwellDistribution.uniform(2, 5)
        s = d.sample(rng, 1000)
        assert s.min() >= 2 and s.max() <= 5
        assert d.mean == 3.5

    def test_geometric_support(self, rng):
        d = DwellDistribution.geometric(0.5)
        assert d.sample(rng, 500).min() >= 1
        assert d.mean == 2.0

    def test_gamma_at_least_one_day(self, rng):
        d = DwellDistribution.gamma(0.3, 0.3)
        assert d.sample(rng, 500).min() >= 1

    def test_forever_sentinel(self, rng):
        d = DwellDistribution.forever()
        assert np.all(d.sample(rng, 3) == FOREVER)
        assert d.mean == float("inf")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DwellDistribution.fixed(0)
        with pytest.raises(ValueError):
            DwellDistribution.uniform(3, 2)
        with pytest.raises(ValueError):
            DwellDistribution.geometric(0.0)


class TestModelValidation:
    def test_transition_probs_must_sum_to_one(self):
        states = [
            HealthState("S", susceptibility=1.0),
            HealthState(
                "I",
                infectivity=1.0,
                dwell=DwellDistribution.fixed(2),
                transitions={UNTREATED: (Transition("R", 0.5),)},
            ),
            HealthState("R"),
        ]
        with pytest.raises(ValueError, match="sum"):
            DiseaseModel(states, "S", {UNTREATED: "I"})

    def test_finite_dwell_needs_transitions(self):
        states = [
            HealthState("S", susceptibility=1.0),
            HealthState("I", infectivity=1.0, dwell=DwellDistribution.fixed(2)),
        ]
        with pytest.raises(ValueError, match="no transitions"):
            DiseaseModel(states, "S", {UNTREATED: "I"})

    def test_duplicate_names_rejected(self):
        states = [HealthState("S"), HealthState("S")]
        with pytest.raises(ValueError, match="duplicate"):
            DiseaseModel(states, "S", {UNTREATED: "S"})

    def test_missing_untreated_entry_rejected(self):
        m = sir_model()
        with pytest.raises(ValueError):
            DiseaseModel(m.states, "S", {VACCINATED: "E"})


class TestSIRDynamics:
    def test_infection_enters_e(self):
        m = sir_model(latent_days=2, infectious_days=3)
        state, remaining = m.initial_health(5)
        treatment = np.zeros(5, dtype=np.int32)
        hit = m.infect(np.array([1, 3]), state, remaining, treatment, 0, RngFactory(0))
        assert set(hit.tolist()) == {1, 3}
        assert state[1] == m.state_index("E")
        assert remaining[1] == 2

    def test_double_infection_ignored(self):
        m = sir_model()
        state, remaining = m.initial_health(3)
        treatment = np.zeros(3, dtype=np.int32)
        m.infect(np.array([0]), state, remaining, treatment, 0, RngFactory(0))
        again = m.infect(np.array([0, 0]), state, remaining, treatment, 1, RngFactory(0))
        assert again.size == 0

    def test_full_chain_timing(self):
        m = sir_model(latent_days=2, infectious_days=3)
        f = RngFactory(1)
        state, remaining = m.initial_health(1)
        treatment = np.zeros(1, dtype=np.int32)
        m.infect(np.array([0]), state, remaining, treatment, -1, f)
        names = []
        for day in range(7):
            m.advance_day(state, remaining, treatment, day, f)
            names.append(m.states[int(state[0])].name)
        # E for 2 days -> I for 3 days -> R forever.
        assert names == ["E", "I", "I", "I", "R", "R", "R"]

    def test_advance_subset_equals_whole(self):
        m = sir_model()
        f = RngFactory(9)
        n = 40
        state_a, rem_a = m.initial_health(n)
        tr = np.zeros(n, dtype=np.int32)
        m.infect(np.arange(0, n, 3), state_a, rem_a, tr, -1, f)
        state_b, rem_b = state_a.copy(), rem_a.copy()
        for day in range(6):
            m.advance_day(state_a, rem_a, tr, day, f)
            # Partitioned advance over two disjoint subsets.
            m.advance_day(state_b, rem_b, tr, day, f, subset=np.arange(0, n, 2))
            m.advance_day(state_b, rem_b, tr, day, f, subset=np.arange(1, n, 2))
            np.testing.assert_array_equal(state_a, state_b)
            np.testing.assert_array_equal(rem_a, rem_b)


class TestInfluenzaModel:
    def test_states_present(self):
        m = influenza_model()
        for name in (
            "susceptible", "latent", "latent_vax",
            "infectious_symptomatic", "infectious_asymptomatic", "recovered",
        ):
            assert name in m.index

    def test_vaccinated_entry_differs(self):
        m = influenza_model()
        assert m.entry_state(VACCINATED) == m.state_index("latent_vax")
        assert m.entry_state(UNTREATED) == m.state_index("latent")

    def test_vaccine_efficacy_statistics(self):
        m = influenza_model(vaccine_efficacy=0.8)
        f = RngFactory(5)
        n = 4000
        state, remaining = m.initial_health(n)
        treatment = np.full(n, VACCINATED, dtype=np.int32)
        m.infect(np.arange(n), state, remaining, treatment, -1, f)
        assert np.all(state == m.state_index("latent_vax"))
        # Run until everyone resolves.
        for day in range(10):
            m.advance_day(state, remaining, treatment, day, f)
        became_infectious = (
            np.sum(state == m.state_index("recovered")) < n
        )  # everyone eventually recovers; check the asymptomatic path was rare
        # Count via the recorded asymptomatic dwell: instead, re-run 1 day at a time
        # is complex; simpler statistical check on entry outcome below.
        state2, remaining2 = m.initial_health(n)
        m.infect(np.arange(n), state2, remaining2, treatment, -1, f)
        for day in range(4):
            m.advance_day(state2, remaining2, treatment, day, f)
        frac_asymp_or_recovered = np.mean(state2 != m.state_index("latent_vax"))
        assert frac_asymp_or_recovered > 0.9  # latents resolved within 3 days
        asymp = np.mean(state2 == m.state_index("infectious_asymptomatic"))
        assert asymp < 0.3  # most vaccinated latents resolve without infectiousness

    def test_invalid_efficacy(self):
        with pytest.raises(ValueError):
            influenza_model(vaccine_efficacy=1.5)

    def test_advance_day_deterministic_across_order(self):
        m = influenza_model()
        f = RngFactory(2)
        n = 60
        state_a, rem_a = m.initial_health(n)
        tr = np.zeros(n, dtype=np.int32)
        m.infect(np.arange(n), state_a, rem_a, tr, -1, f)
        state_b, rem_b = state_a.copy(), rem_a.copy()
        for day in range(8):
            m.advance_day(state_a, rem_a, tr, day, f)
            # Reverse-order subsets must give the same result.
            m.advance_day(state_b, rem_b, tr, day, f, subset=np.arange(n - 1, -1, -1))
        np.testing.assert_array_equal(state_a, state_b)
