"""Location DES: the event sweep vs the vectorised all-pairs kernel.

The central property: both implementations produce the *same set* of
susceptible×infectious interactions with the same overlap intervals, on
any input.  The hypothesis test generates random visit patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.des import LocationDES, pairwise_exposures


def _pairs_from_sweep(interactions):
    return {(i.sus_visit, i.inf_visit, i.overlap_start, i.overlap_end) for i in interactions}


def _pairs_from_vectorised(res):
    s, i, a, b = res
    return set(zip(s.tolist(), i.tolist(), a.tolist(), b.tolist()))


class TestSimpleCases:
    def test_basic_overlap(self):
        subloc = np.array([0, 0])
        start = np.array([100, 150])
        end = np.array([300, 400])
        sus = np.array([True, False])
        inf = np.array([False, True])
        sweep = LocationDES().run(subloc, start, end, sus, inf)
        assert len(sweep) == 1
        assert sweep[0].overlap_start == 150
        assert sweep[0].overlap_end == 300

    def test_different_sublocations_never_interact(self):
        subloc = np.array([0, 1])
        start = np.array([0, 0])
        end = np.array([100, 100])
        sus = np.array([True, False])
        inf = np.array([False, True])
        assert LocationDES().run(subloc, start, end, sus, inf) == []
        assert _pairs_from_vectorised(
            pairwise_exposures(subloc, start, end, sus, inf)
        ) == set()

    def test_touching_intervals_no_overlap(self):
        subloc = np.array([0, 0])
        start = np.array([0, 100])
        end = np.array([100, 200])
        sus = np.array([True, False])
        inf = np.array([False, True])
        assert LocationDES().run(subloc, start, end, sus, inf) == []

    def test_empty_location(self):
        e = np.empty(0, dtype=np.int64)
        b = np.empty(0, dtype=bool)
        assert LocationDES().run(e, e, e, b, b) == []

    def test_event_count_stat(self):
        subloc = np.zeros(3, dtype=np.int64)
        start = np.array([0, 10, 20])
        end = np.array([30, 40, 50])
        flags = np.array([False, False, False])
        des = LocationDES()
        des.run(subloc, start, end, flags, flags)
        assert des.stats.events == 6

    def test_interaction_stats_counted(self):
        subloc = np.zeros(3, dtype=np.int64)
        start = np.array([0, 0, 0])
        end = np.array([100, 100, 100])
        sus = np.array([True, True, False])
        inf = np.array([False, False, True])
        des = LocationDES()
        out = des.run(subloc, start, end, sus, inf)
        assert len(out) == 2
        assert des.stats.interactions == 2
        assert des.stats.recip_interactions > 0


@st.composite
def visit_pattern(draw):
    n = draw(st.integers(1, 18))
    subloc = draw(
        st.lists(st.integers(0, 2), min_size=n, max_size=n)
    )
    starts, ends, sus, inf = [], [], [], []
    for _ in range(n):
        a = draw(st.integers(0, 1430))
        b = draw(st.integers(a + 1, 1440))
        starts.append(a)
        ends.append(b)
        role = draw(st.sampled_from(["sus", "inf", "both", "neither"]))
        sus.append(role in ("sus", "both"))
        inf.append(role in ("inf", "both"))
    return (
        np.array(subloc),
        np.array(starts),
        np.array(ends),
        np.array(sus),
        np.array(inf),
    )


class TestEquivalence:
    @given(visit_pattern())
    @settings(max_examples=200, deadline=None)
    def test_sweep_equals_vectorised(self, pattern):
        subloc, start, end, sus, inf = pattern
        sweep = _pairs_from_sweep(LocationDES().run(subloc, start, end, sus, inf))
        vect = _pairs_from_vectorised(pairwise_exposures(subloc, start, end, sus, inf))
        assert sweep == vect

    @given(visit_pattern())
    @settings(max_examples=100, deadline=None)
    def test_overlaps_positive_and_within_bounds(self, pattern):
        subloc, start, end, sus, inf = pattern
        s, i, a, b = pairwise_exposures(subloc, start, end, sus, inf)
        assert np.all(b > a)
        assert np.all(a >= np.maximum(start[s], start[i]))
        assert np.all(b <= np.minimum(end[s], end[i]))

    @given(visit_pattern())
    @settings(max_examples=100, deadline=None)
    def test_no_self_interaction(self, pattern):
        subloc, start, end, sus, inf = pattern
        s, i, _, _ = pairwise_exposures(subloc, start, end, sus, inf)
        assert np.all(s != i)
