"""EpiCurve bookkeeping."""

import numpy as np
import pytest

from repro.core.disease import sir_model
from repro.core.metrics import EpiCurve, state_histogram


class TestEpiCurve:
    def test_cumulative_accumulates(self):
        c = EpiCurve()
        c.record_day(3, 0.1)
        c.record_day(5, 0.2)
        assert c.cumulative_infections == [3, 8]

    def test_peak_day(self):
        c = EpiCurve()
        for n in (1, 4, 9, 2):
            c.record_day(n, 0.0)
        assert c.peak_day == 2

    def test_peak_day_empty_raises(self):
        with pytest.raises(ValueError):
            EpiCurve().peak_day

    def test_attack_rate(self):
        c = EpiCurve()
        c.record_day(10, 0.0)
        c.record_day(10, 0.0)
        assert c.attack_rate(100) == pytest.approx(0.2)
        assert EpiCurve().attack_rate(100) == 0.0

    def test_as_arrays(self):
        c = EpiCurve()
        c.record_day(1, 0.5)
        arrays = c.as_arrays()
        np.testing.assert_array_equal(arrays["new_infections"], [1])
        np.testing.assert_array_equal(arrays["prevalence"], [0.5])

    def test_equality(self):
        a, b = EpiCurve(), EpiCurve()
        a.record_day(1, 0.1)
        b.record_day(1, 0.1)
        assert a == b
        b.record_day(2, 0.1)
        assert a != b
        assert (a == 42) is NotImplemented or not (a == 42)


class TestStateHistogram:
    def test_counts_by_name(self):
        m = sir_model()
        state = np.array([0, 0, 1, 3, 3, 3], dtype=np.int32)
        h = state_histogram(state, m)
        assert h == {"S": 2, "E": 1, "I": 0, "R": 3}
