"""The RunSpec layer: serialisation, hashing and executor equivalence.

The spec is the repo's one canonical definition of "a run": it must
round-trip losslessly through JSON and TOML, hash stably (and
sensitively — any knob change must change the key), and drive every
backend to the *same bits* the hand-assembled constructors produce.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.core.simulator import SequentialSimulator as SeqSim
from repro.spec import (
    PartitionSpec,
    PopulationSpec,
    RunSpec,
    RuntimeSpec,
    canonical_json,
    content_hash,
    execute,
)
from repro.synthpop import PopulationConfig, generate_population


def small_spec(**overrides) -> RunSpec:
    base = dict(
        population=PopulationSpec(n_persons=300, seed=11, name="tiny"),
        n_days=4,
        seed=3,
        initial_infections=8,
        transmissibility=3e-4,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSerialisation:
    def test_json_roundtrip_is_lossless(self):
        spec = small_spec(
            partition=PartitionSpec(method="rr", k=4, split=True),
            runtime=RuntimeSpec(backend="smp", workers=2, kernel="flat"),
            interventions="close_schools day=2 duration=7\n",
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_toml_roundtrip_is_lossless(self):
        spec = small_spec(runtime=RuntimeSpec(backend="charm", workers=4))
        assert RunSpec.from_toml(spec.to_toml()) == spec

    def test_load_dispatches_on_suffix(self, tmp_path):
        spec = small_spec()
        (tmp_path / "s.json").write_text(spec.to_json())
        (tmp_path / "s.toml").write_text(spec.to_toml())
        assert RunSpec.load(tmp_path / "s.json") == spec
        assert RunSpec.load(tmp_path / "s.toml") == spec

    def test_canonical_form_prunes_unset_knobs(self):
        # An absent knob and an explicit default-None knob are the same
        # run — they must hash identically.
        a = PopulationSpec(n_persons=100)
        b = PopulationSpec(n_persons=100, state=None, path=None)
        assert a.canonical() == b.canonical()
        assert a.content_hash() == b.content_hash()


class TestHashing:
    def test_hash_is_stable_across_processes(self):
        # Pinned value: the cache persists on disk across processes, so
        # the key derivation can never drift silently.
        assert content_hash({"n": 1}) == "984530e49acf879ea2a3b7c3062fca65"
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: dataclasses.replace(s, seed=s.seed + 1),
            lambda s: dataclasses.replace(s, n_days=s.n_days + 1),
            lambda s: dataclasses.replace(s, transmissibility=1e-3),
            lambda s: dataclasses.replace(
                s, population=dataclasses.replace(s.population, seed=99)
            ),
            lambda s: dataclasses.replace(
                s, runtime=RuntimeSpec(backend="smp", workers=2)
            ),
            lambda s: dataclasses.replace(
                s, interventions="close_schools day=1 duration=7\n"
            ),
        ],
    )
    def test_any_knob_change_changes_the_hash(self, mutate):
        spec = small_spec()
        assert mutate(spec).content_hash() != spec.content_hash()

    def test_partition_hash_mixes_population(self):
        part = PartitionSpec(method="rr", k=4)
        assert part.content_hash("aaa") != part.content_hash("bbb")


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RuntimeSpec(backend="mpi")

    def test_generated_requires_n_persons(self):
        with pytest.raises(ValueError, match="n_persons"):
            PopulationSpec(kind="generated")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            PopulationSpec(kind="preset", preset="exponential")

    def test_disease_name_validated(self):
        with pytest.raises(ValueError, match="disease"):
            small_spec(disease="measles")


class TestConstructionEquivalence:
    def test_population_spec_matches_direct_generation(self):
        direct = generate_population(
            PopulationConfig(n_persons=300), 11, name="tiny"
        )
        via_spec = PopulationSpec(n_persons=300, seed=11, name="tiny").build()
        assert (via_spec.visit_person == direct.visit_person).all()
        assert (via_spec.visit_location == direct.visit_location).all()
        assert (via_spec.visit_start == direct.visit_start).all()

    def test_preset_spec_matches_direct_builder(self):
        from repro.smp.presets import heavy_tailed_graph

        direct = heavy_tailed_graph(n_persons=200, n_locations=20)
        via_spec = PopulationSpec(
            kind="preset", preset="heavy-tailed", n_persons=200,
            params={"n_locations": 20},
        ).build()
        assert (via_spec.visit_location == direct.visit_location).all()

    def test_from_spec_equals_hand_assembled_sequential(self):
        spec = small_spec()
        graph = spec.population.build()
        hand = SequentialSimulator(
            Scenario(
                graph=graph, n_days=4, seed=3, initial_infections=8,
                transmission=TransmissionModel(3e-4),
            )
        ).run()
        via_spec = SeqSim.from_spec(spec, graph=graph).run()
        assert via_spec.curve == hand.curve
        assert via_spec.final_histogram == hand.final_histogram


class TestExecuteAcrossBackends:
    def test_all_backends_bit_identical(self):
        seq = execute(small_spec())
        smp = execute(small_spec(runtime=RuntimeSpec(backend="smp", workers=2)))
        charm = execute(small_spec(runtime=RuntimeSpec(backend="charm", workers=2)))
        for other in (smp, charm):
            assert other.new_infections == seq.new_infections
            assert other.prevalence == seq.prevalence
            assert other.final_histogram == seq.final_histogram
        # The deterministic projection must exclude timings entirely.
        rec = seq.record()
        assert "wall_seconds" not in rec and "spec_hash" in rec

    def test_execute_reports_builds_through_cache(self):
        from repro.lab import ArtifactCache

        cache = ArtifactCache()
        first = execute(small_spec(), cache=cache)
        second = execute(small_spec(), cache=cache)
        assert first.builds == 1 and second.builds == 0
