"""The warm worker pool and its wire protocol.

Warmness is the point: the fork happens once per pool, and consecutive
``map()`` batches reuse the same processes (pinned here by pid).  The
protocol tests hold the frames to their exact byte formulas, matching
the :mod:`repro.smp.protocol` conventions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.lab import LabWorkerError, WorkerPool, run_specs
from repro.lab import protocol as lp
from repro.spec import PopulationSpec, RunSpec


def tiny_spec(seed=0, n_days=2) -> RunSpec:
    return RunSpec(
        population=PopulationSpec(n_persons=120, seed=1, name="pool"),
        n_days=n_days,
        seed=seed,
        initial_infections=4,
    )


class TestProtocol:
    def test_task_frame_roundtrip_and_size(self):
        spec_json = tiny_spec().to_json()
        frame = lp.encode_task(7, spec_json)
        assert len(frame) == lp.TASK_HEADER_NBYTES + len(spec_json.encode())
        assert lp.decode_task(frame) == (7, spec_json)

    def test_result_frame_roundtrip_and_exact_nbytes(self):
        hist = {"recovered": 3, "susceptible": 117}
        result = lp.TaskResult(
            task_id=9,
            new_infections=np.array([4, 2], dtype=np.int64),
            prevalence=np.array([0.03, 0.05]),
            total_infections=6,
            final_histogram=hist,
            wall_seconds=0.25,
            builds=1,
            backpressure=2,
        )
        frame = lp.encode_result(result)
        hist_nbytes = len(json.dumps(hist, sort_keys=True,
                                     separators=(",", ":")).encode())
        assert len(frame) == lp.result_nbytes(2, hist_nbytes)
        back = lp.decode_result(frame)
        assert back.task_id == 9
        assert back.new_infections.tolist() == [4, 2]
        assert back.prevalence.tolist() == [0.03, 0.05]
        assert back.final_histogram == hist
        assert (back.builds, back.backpressure) == (1, 2)

    def test_error_frame_roundtrip(self):
        frame = lp.encode_error(3, "ValueError('x')", "trace\nback")
        assert lp.opcode(frame) == lp.OP_ERROR
        assert lp.decode_error(frame) == (3, "ValueError('x')", "trace\nback")

    def test_opcodes_disjoint_from_smp_protocol(self):
        from repro.smp import protocol as sp

        smp_ops = {getattr(sp, n) for n in dir(sp) if n.startswith("OP_")}
        lab_ops = {lp.OP_TASK, lp.OP_STOP, lp.OP_RESULT, lp.OP_ERROR}
        assert not (smp_ops & lab_ops)


class TestWorkerPool:
    def test_results_return_in_submission_order(self):
        specs = [tiny_spec(seed=s) for s in range(5)]
        with WorkerPool(2) as pool:
            results = pool.map(specs)
        assert [r.task_id for r in results] == [0, 1, 2, 3, 4]
        # Different seeds really were different runs.
        assert len({tuple(r.new_infections.tolist()) for r in results}) > 1

    def test_workers_stay_warm_across_batches(self):
        with WorkerPool(2) as pool:
            pids_before = pool.worker_pids
            pool.map([tiny_spec(seed=1)])
            pool.map([tiny_spec(seed=2), tiny_spec(seed=3)])
            assert pool.worker_pids == pids_before

    def test_inline_mode_matches_pool_mode(self):
        specs = [tiny_spec(seed=s) for s in range(3)]
        inline = WorkerPool(0)
        pooled_results, _, _ = run_specs(specs, workers=2)
        inline_results = inline.map(specs)
        for a, b in zip(inline_results, pooled_results):
            assert list(a.new_infections) == list(b.new_infections)
            assert a.final_histogram == b.final_histogram

    def test_task_failure_raises_with_worker_traceback(self):
        bad = tiny_spec()
        bad = bad.__class__.from_dict(
            {**bad.canonical(),
             "population": {"kind": "file", "path": "/nonexistent/pop.npz"}}
        )
        with WorkerPool(1) as pool:
            with pytest.raises(LabWorkerError, match="task 0"):
                pool.map([bad])

    def test_worker_survives_a_failed_task(self):
        # An error aborts the map() that contained it, but close() is
        # the only thing that ends a worker — a fresh pool still works.
        with WorkerPool(1) as pool:
            ok = pool.map([tiny_spec(seed=4)])
            assert ok[0].total_infections >= 4

    def test_closed_pool_rejects_map(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.map([tiny_spec()])

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(-1)
