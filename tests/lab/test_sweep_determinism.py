"""Sweep determinism: pool size can never leak into results.

The acceptance criterion for the lab: the same grid + master seed
produces a **byte-identical** ``results.jsonl`` whether executed
inline, on one worker or on four, and any stored run can be replayed
exactly from its embedded spec.
"""

from __future__ import annotations

import pytest

from repro.lab import (
    ResultStore,
    SweepConfig,
    expand,
    replay,
    run_sweep,
    spec_with,
)
from repro.spec import PopulationSpec, RunSpec
from repro.util.rng import derive_seed


def tiny_config(**overrides) -> SweepConfig:
    defaults = dict(
        base=RunSpec(
            population=PopulationSpec(n_persons=150, seed=1, name="det"),
            n_days=3,
            initial_infections=6,
        ),
        grid={"transmissibility": [2e-4, 4e-4]},
        replications=2,
        master_seed=5,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


class TestExpansion:
    def test_expansion_is_sorted_and_seeded(self):
        cfg = tiny_config(grid={"transmissibility": [2e-4], "n_days": [2, 3]})
        tasks = expand(cfg)
        # Grid keys in sorted order: n_days varies slowest of the two.
        assert [t.point["n_days"] for t in tasks] == [2, 2, 3, 3]
        assert [t.index for t in tasks] == [0, 1, 2, 3]
        # Seeds come from derive_seed(master, point_index, replicate) —
        # independent of execution.
        assert tasks[3].spec.seed == derive_seed(5, 1, 1)
        assert len({t.spec.seed for t in tasks}) == 4

    def test_replicates_share_the_population_subspec(self):
        tasks = expand(tiny_config())
        assert len({t.spec.population.content_hash() for t in tasks}) == 1

    def test_spec_with_rejects_unknown_paths(self):
        base = tiny_config().base
        with pytest.raises(ValueError, match="no field"):
            spec_with(base, "virulence", 2)
        with pytest.raises(ValueError, match="unset"):
            spec_with(base, "partition.k", 2)


class TestPoolSizeIndependence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_store_bytes_identical_to_inline(self, tmp_path, workers):
        cfg = tiny_config()
        run_sweep(cfg, workers=0, store_dir=tmp_path / "inline")
        run_sweep(cfg, workers=workers, store_dir=tmp_path / f"w{workers}")
        inline = (tmp_path / "inline" / "results.jsonl").read_bytes()
        pooled = (tmp_path / f"w{workers}" / "results.jsonl").read_bytes()
        assert pooled == inline

    def test_records_are_in_task_order_with_no_timings(self, tmp_path):
        run_sweep(tiny_config(), workers=2, store_dir=tmp_path)
        records = ResultStore(tmp_path).records()
        assert [r["index"] for r in records] == [0, 1, 2, 3]
        assert all("wall" not in k for r in records for k in r)

    def test_master_seed_changes_every_trajectory(self, tmp_path):
        run_sweep(tiny_config(), workers=0, store_dir=tmp_path / "a")
        run_sweep(tiny_config(master_seed=6), workers=0, store_dir=tmp_path / "b")
        a = ResultStore(tmp_path / "a").records()
        b = ResultStore(tmp_path / "b").records()
        assert [r["seed"] for r in a] != [r["seed"] for r in b]
        assert [r["spec_hash"] for r in a] != [r["spec_hash"] for r in b]


class TestReplay:
    def test_replay_reproduces_every_stored_trajectory(self, tmp_path):
        run_sweep(tiny_config(), workers=2, store_dir=tmp_path)
        store = ResultStore(tmp_path)
        for record in store.records():
            outcome = replay(store, record["index"])
            assert outcome.match, outcome.format()

    def test_replay_detects_a_corrupted_record(self, tmp_path):
        run_sweep(tiny_config(), workers=0, store_dir=tmp_path)
        store = ResultStore(tmp_path)
        lines = store.results_path.read_text().splitlines()
        import json

        tampered = json.loads(lines[0])
        tampered["total_infections"] += 1
        lines[0] = json.dumps(tampered, sort_keys=True, separators=(",", ":"))
        store.results_path.write_text("\n".join(lines) + "\n")
        outcome = replay(store, 0)
        assert not outcome.match
        assert any("total_infections" in d for d in outcome.diffs)
