"""The append-only result store: records, filters, summaries, manifest."""

from __future__ import annotations

import json

from repro.lab import ResultStore


def rec(index, x, total):
    return {
        "index": index,
        "point": {"x": x},
        "replicate": index % 2,
        "total_infections": total,
    }


class TestAppendOnly:
    def test_append_never_rewrites_earlier_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.append_records([rec(0, 1, 10)]) == 1
        first = store.results_path.read_bytes()
        store.append_records([rec(1, 1, 12), rec(2, 2, 7)])
        assert store.results_path.read_bytes().startswith(first)
        assert [r["index"] for r in store.records()] == [0, 1, 2]

    def test_lines_are_canonical_json(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_records([{"b": 1, "a": {"z": 2, "y": 3}, "index": 0}])
        line = store.results_path.read_text().strip()
        assert line == '{"a":{"y":3,"z":2},"b":1,"index":0}'

    def test_empty_store_reads_cleanly(self, tmp_path):
        store = ResultStore(tmp_path / "nothing")
        assert not store.exists()
        assert store.records() == []
        assert store.manifest() == {}
        assert "empty store" in store.format_summary()


class TestQueries:
    def test_record_by_index_and_missing_index(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_records([rec(0, 1, 10), rec(1, 2, 20)])
        assert store.record(1)["total_infections"] == 20
        try:
            store.record(7)
        except KeyError as exc:
            assert "7" in str(exc)
        else:
            raise AssertionError("expected KeyError")

    def test_filter_matches_grid_point_params(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_records([rec(0, 1, 10), rec(1, 1, 12), rec(2, 2, 7)])
        assert [r["index"] for r in store.filter(x=1)] == [0, 1]
        assert store.filter(x=3) == []

    def test_summary_aggregates_per_point(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_records([rec(0, 1, 10), rec(1, 1, 14), rec(2, 2, 7)])
        by_point = {json.dumps(g["point"]): g for g in store.summary()}
        g1 = by_point['{"x": 1}']
        assert g1["n"] == 2
        assert g1["total_infections"] == {"mean": 12.0, "min": 10, "max": 14}


class TestManifest:
    def test_manifest_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_manifest({"name": "m", "n_runs": 4})
        assert store.manifest() == {"name": "m", "n_runs": 4}

    def test_format_summary_includes_manifest_header(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_records([rec(0, 1, 10)])
        store.write_manifest(
            {"name": "m", "n_runs": 1, "n_points": 1, "replications": 1,
             "master_seed": 0}
        )
        text = store.format_summary()
        assert "sweep 'm'" in text and "x=1" in text
