"""The content-addressed artifact cache: hits, keys and persistence.

Contract (ISSUE acceptance criteria): a second identical sweep builds
*zero* artifacts — asserted through the :mod:`repro.observe` spans the
cache emits, not through its own counters, so the claim is visible to
any profiler — and any mutation of a generating sub-spec changes the
cache key.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import observe
from repro.lab import ArtifactCache, SweepConfig, run_sweep
from repro.spec import PartitionSpec, PopulationSpec, RunSpec, RuntimeSpec


def base_spec(**overrides) -> RunSpec:
    defaults = dict(
        population=PopulationSpec(n_persons=200, seed=2, name="cache-test"),
        n_days=3,
        initial_infections=6,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


def sweep_config(**overrides) -> SweepConfig:
    defaults = dict(
        base=base_spec(),
        grid={"transmissibility": [2e-4, 4e-4]},
        replications=2,
        master_seed=9,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def build_span_names(obs) -> list[str]:
    return [s.name for s in obs.closed_spans()
            if s.name in ("lab.pop_build", "lab.part_build")]


class TestObserveVisibleHits:
    def test_second_identical_sweep_builds_nothing(self, tmp_path):
        """The headline criterion: sweep twice, second pass = 0 builds.

        Runs inline (workers=0) so every cache event lands in this
        process's observe spans.
        """
        cfg = sweep_config()
        with observe.observing() as first:
            run_sweep(cfg, workers=0, store_dir=tmp_path / "s1",
                      cache_dir=tmp_path / "cache")
        with observe.observing() as second:
            run_sweep(cfg, workers=0, store_dir=tmp_path / "s2",
                      cache_dir=tmp_path / "cache")
        assert build_span_names(first) == ["lab.pop_build"]
        assert build_span_names(second) == []
        # Hits are visible as counters: 4 runs × 2 sweeps = 8 demands,
        # 1 build, 7 hits.
        assert first.counters.get("lab.pop_hit", 0) == 3
        assert second.counters.get("lab.pop_hit", 0) == 4

    def test_partition_artifacts_cached_for_distributed_backends(self, tmp_path):
        cfg = sweep_config(
            base=base_spec(runtime=RuntimeSpec(backend="smp", workers=2)),
            grid={"transmissibility": [2e-4]},
        )
        with observe.observing() as first:
            run_sweep(cfg, workers=0, store_dir=None, cache_dir=tmp_path)
        with observe.observing() as second:
            run_sweep(cfg, workers=0, store_dir=None, cache_dir=tmp_path)
        assert sorted(build_span_names(first)) == ["lab.part_build", "lab.pop_build"]
        assert build_span_names(second) == []


class TestKeys:
    def test_mutated_subspec_changes_key_and_misses(self):
        cache = ArtifactCache()
        spec = PopulationSpec(n_persons=120, seed=1)
        cache.population(spec)
        cache.population(dataclasses.replace(spec, seed=2))
        cache.population(dataclasses.replace(spec, params={"mean_visits": 5.0}))
        assert cache.stats.pop_builds == 3
        assert cache.stats.pop_hits == 0

    def test_identical_subspec_hits_in_memory(self):
        cache = ArtifactCache()
        spec = PopulationSpec(n_persons=120, seed=1)
        g1 = cache.population(spec)
        g2 = cache.population(PopulationSpec(n_persons=120, seed=1))
        assert g1 is g2
        assert (cache.stats.pop_builds, cache.stats.pop_hits) == (1, 1)

    def test_partition_key_depends_on_population(self):
        cache = ArtifactCache()
        part = PartitionSpec(method="rr", k=2)
        pop_a = PopulationSpec(n_persons=120, seed=1)
        pop_b = PopulationSpec(n_persons=120, seed=2)
        cache.partition(pop_a, part, cache.population(pop_a))
        cache.partition(pop_b, part, cache.population(pop_b))
        assert cache.stats.part_builds == 2

    def test_file_populations_bypass_the_cache(self, tmp_path):
        from repro.synthpop import save_population

        graph = PopulationSpec(n_persons=80, seed=3).build()
        path = tmp_path / "pop.npz"
        save_population(graph, path)
        cache = ArtifactCache()
        spec = PopulationSpec(kind="file", path=str(path))
        cache.population(spec)
        cache.population(spec)
        assert cache.stats.pop_builds == 0 and cache.stats.pop_hits == 0


class TestDiskPersistence:
    def test_artifacts_survive_across_cache_instances(self, tmp_path):
        spec = PopulationSpec(n_persons=150, seed=4)
        first = ArtifactCache(root=tmp_path)
        built = first.population(spec)
        second = ArtifactCache(root=tmp_path)  # fresh process, same disk
        loaded = second.population(spec)
        assert second.stats.pop_builds == 0
        assert second.stats.pop_hits == 1
        assert (loaded.visit_person == built.visit_person).all()
        assert (loaded.visit_start == built.visit_start).all()

    def test_split_partition_roundtrips_transformed_graph(self, tmp_path):
        pop = PopulationSpec(
            kind="preset", preset="heavy-tailed", n_persons=300,
            params={"n_locations": 12},
        )
        part = PartitionSpec(method="rr", k=2, split=True, max_partitions=32)
        first = ArtifactCache(root=tmp_path)
        g1, p1 = first.partition(pop, part, first.population(pop))
        second = ArtifactCache(root=tmp_path)
        g2, p2 = second.partition(pop, part, second.population(pop))
        assert second.stats.part_builds == 0
        # The split graph (more locations than the source) comes back
        # bit-identical, not re-derived.
        assert g1.n_locations == g2.n_locations
        assert (g1.visit_location == g2.visit_location).all()
        assert (p1.location_part == p2.location_part).all()
        assert np.array_equal(p1.person_part, p2.person_part)


class TestStreamedPopulations:
    """Memmap-backed streamed populations persist as ``pop/<key>.d``
    directories: the generation backing is *renamed* into the cache
    (zero-copy), and later loads memmap the columns back."""

    def _spec(self, backing):
        return PopulationSpec(
            kind="streamed", n_persons=400, seed=6, backing=backing
        )

    def test_memmap_build_stores_directory_artifact(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        graph = cache.population(self._spec("memmap"))
        key = self._spec("memmap").content_hash()
        d = tmp_path / "pop" / f"{key}.d"
        assert d.is_dir() and (d / "header.json").exists()
        # persist() handed the temp dir to the cache: same files.
        assert graph.backing.dir == d and not graph.backing.owned

    def test_directory_artifact_hits_and_memmaps(self, tmp_path):
        ArtifactCache(root=tmp_path).population(self._spec("memmap"))
        second = ArtifactCache(root=tmp_path)
        loaded = second.population(self._spec("memmap"))
        assert second.stats.pop_builds == 0 and second.stats.pop_hits == 1
        assert isinstance(loaded.visit_person, np.memmap)

    def test_backing_variants_share_one_artifact(self, tmp_path):
        """backing is execution-only: a ram request hits the memmap
        artifact and vice versa (one key, one build)."""
        first = ArtifactCache(root=tmp_path)
        built = first.population(self._spec("memmap"))
        second = ArtifactCache(root=tmp_path)
        loaded = second.population(self._spec("ram"))
        assert second.stats.pop_builds == 0
        assert loaded.content_hash() == built.content_hash()

    def test_ram_build_stores_npz(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.population(self._spec("ram"))
        key = self._spec("ram").content_hash()
        assert (tmp_path / "pop" / f"{key}.npz").exists()

    def test_streamed_sweep_caches_clean(self, tmp_path):
        config = sweep_config(
            base=base_spec(population=self._spec("memmap"))
        )
        run_sweep(config, workers=0, store_dir=tmp_path / "s1",
                  cache_dir=tmp_path / "cache")
        with observe.observing() as obs:
            run_sweep(config, workers=0, store_dir=tmp_path / "s2",
                      cache_dir=tmp_path / "cache")
        assert build_span_names(obs) == []
