"""The differential oracle itself, plus the hypothesis-driven
equivalence property over adversarial scenarios.

The property test is the subsystem's reason to exist: for *any* small
scenario the strategies can dream up (heavy-tailed locations, zero
visits, one person, single sublocations), the parallel runtime must
reproduce the sequential reference exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.charm.machine import Machine, MachineConfig
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.core.simulator import SequentialSimulator
from repro.partition import round_robin_partition
from repro.validate.oracle import (
    DELIVERY_MODES,
    DISTRIBUTIONS,
    SYNC_MODES,
    Divergence,
    run_matrix,
    sequential_reference,
)
from repro.validate.strategies import scenarios

SMALL_MACHINE = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)


class TestMatrix:
    def test_full_matrix_on_tiny_graph(self, tiny_graph):
        report = run_matrix(tiny_graph, n_days=3, seed=3, initial_infections=6)
        assert len(report.cells) == len(DISTRIBUTIONS) * len(SYNC_MODES) * len(DELIVERY_MODES)
        assert report.all_equal, report.format()
        assert report.total_checks > 0
        assert "bit-identical" in report.format()

    def test_report_formats_divergence(self):
        d = Divergence(kind="events", day=2, location=7, person=13, rng_key=0xABC,
                       detail="sequential-only infection event")
        text = d.format()
        assert "day 2" in text and "location 7" in text and "person 13" in text
        assert "0x0000000000000abc" in text


class TestSequentialReference:
    def test_reference_matches_plain_run(self, tiny_scenario):
        result, events, state, remaining = sequential_reference(tiny_scenario)
        plain = SequentialSimulator(tiny_scenario).run()
        assert result.curve == plain.curve
        assert result.final_histogram == plain.final_histogram
        # Unique persons hit per day total the curve (minus index cases);
        # one person can draw events at several locations on one day.
        seeded = tiny_scenario.initial_infections
        unique_hits = sum(len({p for p, _ in e}) for e in events.values())
        assert unique_hits == plain.total_infections - seeded


class TestEquivalenceProperty:
    """Sequential == parallel for arbitrary adversarial scenarios."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(scenarios(max_persons=20, max_days=4))
    def test_parallel_reproduces_sequential(self, scenario):
        machine = Machine(SMALL_MACHINE)
        seq = SequentialSimulator(scenario).run()
        dist = Distribution.from_partition(
            round_robin_partition(scenario.graph, machine.n_pes), machine
        )
        sim = ParallelEpiSimdemics(
            scenario, SMALL_MACHINE, dist, validate=True
        )
        sim.run()
        assert sim.curve == seq.curve
        assert sim.checker is not None and sim.checker.checks_passed > 0
