"""External distribution oracle: power, calibration and determinism.

The mutation tests are the subsystem's reason to exist: an oracle that
cannot flag a deliberately broken model is decoration.  Each supported
model-side bug injection must flip the verdict on the *same*
configuration that passes for the unmodified model — same seeds, same
replication counts, same thresholds.
"""

import numpy as np
import pytest

from repro.validate.external import (
    BASELINES,
    EXTERNAL_PRESETS,
    MUTATIONS,
    run_external_oracle,
)

#: One shared configuration: small enough for CI, powerful enough that
#: both mutations separate the distributions completely.
CONFIG = dict(
    presets=("tiny",),
    n_days=10,
    replications=16,
    seed=0,
    tiny_persons=200,
    heavy_tail=False,
)


@pytest.fixture(scope="module")
def clean_report():
    return run_external_oracle(**CONFIG)


class TestUnmodifiedModelPasses:
    def test_all_cells_agree(self, clean_report):
        assert clean_report.all_equal, clean_report.format()
        assert len(clean_report.cells) == len(BASELINES)

    def test_report_is_structured(self, clean_report):
        text = clean_report.format()
        assert "external distribution oracle" in text
        assert "indistinguishable" in text
        for cell in clean_report.cells:
            assert cell.model_final_sizes.shape == (CONFIG["replications"],)
            assert cell.model_prevalence.shape == (
                CONFIG["replications"], CONFIG["n_days"],
            )
            # final-size (KS + AD in one comparison) and trajectory
            assert len(cell.comparisons) == 2
            assert [c.metric for c in cell.comparisons] == [
                "final-size", "prevalence",
            ]

    def test_full_preset_list_is_exported(self):
        assert EXTERNAL_PRESETS == ("tiny", "heavy")


class TestOraclePower:
    """Injected model bugs must be flagged by the same configuration."""

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_mutation_is_flagged(self, mutation):
        report = run_external_oracle(mutation=mutation, **CONFIG)
        assert not report.all_equal, (
            f"oracle failed to flag injected mutation {mutation!r}:\n"
            + report.format()
        )
        # The verdict is carried by the statistics, not a side channel:
        # at least one comparison in some cell rejects.
        assert any(c.reject for cell in report.cells for c in cell.comparisons)
        assert report.mutation == mutation
        assert mutation in report.format()

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            run_external_oracle(mutation="swap_sign", **CONFIG)


class TestDeterminism:
    def test_worker_counts_are_bit_identical(self):
        reports = [
            run_external_oracle(workers=w, **CONFIG) for w in (1, 2)
        ]
        for a, b in zip(reports[0].cells, reports[1].cells):
            assert np.array_equal(a.model_final_sizes, b.model_final_sizes)
            assert np.array_equal(a.model_prevalence, b.model_prevalence)
            assert np.array_equal(a.baseline_final_sizes, b.baseline_final_sizes)
            assert [c.ks_pvalue for c in a.comparisons] == [
                c.ks_pvalue for c in b.comparisons
            ]

    def test_same_seed_same_report(self, clean_report):
        again = run_external_oracle(**CONFIG)
        for a, b in zip(clean_report.cells, again.cells):
            assert np.array_equal(a.model_final_sizes, b.model_final_sizes)
            assert [(c.ks, c.ks_pvalue, c.ad, c.ad_pvalue) for c in a.comparisons] \
                == [(c.ks, c.ks_pvalue, c.ad, c.ad_pvalue) for c in b.comparisons]


class TestGuards:
    def test_under_resolved_permutations_rejected(self):
        with pytest.raises(ValueError, match="cannot resolve"):
            run_external_oracle(n_permutations=50, **CONFIG)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown presets"):
            run_external_oracle(presets=("tiny", "galaxy"))
