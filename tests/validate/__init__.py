"""Tests for the repro.validate differential-correctness subsystem."""
