"""Golden-trace replay: the recorded traces in ``tests/golden/`` must
reproduce exactly on every run.

A failure here means the simulation's observable behaviour changed.  If
the change is intentional, refresh with
``PYTHONPATH=src python -m repro validate --refresh-golden`` and commit
the JSON diff; if not, a determinism or semantics regression slipped in.
"""

import json

import pytest

from repro.validate.golden import GOLDEN_CASES, _diff, capture, golden_dir, verify


def test_golden_dir_has_all_traces():
    recorded = {p.stem for p in golden_dir().glob("*.json")}
    assert {c.name for c in GOLDEN_CASES} <= recorded


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
def test_trace_replays_exactly(case):
    diffs = verify(case)
    assert not diffs, "trace diverged:\n" + "\n".join(diffs[:10])


def test_recorded_spec_matches_registry():
    """The JSON spec block must agree with the in-code case (guards
    against editing one without the other)."""
    for case in GOLDEN_CASES:
        recorded = json.loads((golden_dir() / f"{case.name}.json").read_text())
        spec = recorded["spec"]
        assert spec["distribution"] == case.distribution
        assert spec["sync"] == case.sync
        assert spec["delivery"] == case.delivery
        assert spec["n_days"] == case.n_days == len(recorded["curve"]["new_infections"])


def test_diff_reports_changed_leaves():
    a = {"x": 1, "y": [1.0, 2.0], "z": "s"}
    assert _diff(a, {"x": 1, "y": [1.0, 2.0], "z": "s"}) == []
    diffs = _diff(a, {"x": 2, "y": [1.0, 2.0 + 1e-6], "z": "t"})
    assert len(diffs) == 3
    assert any("x" in d for d in diffs)


def test_missing_trace_reports_single_diff(tmp_path):
    diffs = verify(GOLDEN_CASES[0], directory=tmp_path)
    assert len(diffs) == 1 and "missing" in diffs[0]


def test_capture_is_deterministic():
    case = GOLDEN_CASES[0]
    assert _diff(capture(case), capture(case)) == []
