"""Mutation-style negative tests: every invariant check must actually
fire when its invariant is broken.

Two styles of corruption:

* direct checker-method corruption — feed the checker a broken event
  stream (a lost row, a duplicate key, a teleporting person) and assert
  the matching :class:`InvariantViolation`;
* end-to-end monkeypatch mutation — break the *simulator* (duplicate a
  partition, corrupt the delivered rows) and assert a full run aborts.

A genuinely dropped message would stall the completion detector (the
run livelocks rather than finishing wrong), so the lost/duplicate
delivery cases corrupt the checker's view directly.
"""

import numpy as np
import pytest

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, TransmissionModel
from repro.core.disease import influenza_model
from repro.core.exposure import InfectionEvent
from repro.core.metrics import EpiCurve
from repro.core.parallel import Distribution, ParallelEpiSimdemics, _LocationManager
from repro.partition import round_robin_partition
from repro.validate.invariants import InvariantChecker, InvariantViolation

SMALL_MACHINE = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)


def _scenario(graph, n_days=4):
    return Scenario(
        graph=graph,
        n_days=n_days,
        seed=3,
        initial_infections=6,
        transmission=TransmissionModel(2e-4),
    )


@pytest.fixture()
def checker(tiny_graph):
    sc = _scenario(tiny_graph)
    m = Machine(SMALL_MACHINE)
    dist = Distribution.from_partition(
        round_robin_partition(tiny_graph, m.n_pes), m
    )
    return InvariantChecker(tiny_graph, sc.disease, dist)


def _partition_lists(checker):
    """Correct pm_persons / pm_rows / lm_locations for the distribution."""
    g = checker.graph
    d = checker.distribution
    n_pm = int(d.person_chare.max()) + 1
    n_lm = int(d.location_chare.max()) + 1
    pm_persons = [np.flatnonzero(d.person_chare == i) for i in range(n_pm)]
    pm_rows = [
        np.flatnonzero(np.isin(g.visit_person, pm_persons[i])) for i in range(n_pm)
    ]
    lm_locations = [np.flatnonzero(d.location_chare == i) for i in range(n_lm)]
    return pm_persons, pm_rows, lm_locations


class TestPartitionConservation:
    def test_correct_partition_passes(self, checker):
        checker.check_partition(*_partition_lists(checker))
        assert checker.checks_passed == 3

    def test_double_owned_person_fires(self, checker):
        pm_persons, pm_rows, lm_locations = _partition_lists(checker)
        pm_persons[1] = np.append(pm_persons[1], pm_persons[0][0])
        with pytest.raises(InvariantViolation, match="person conservation"):
            checker.check_partition(pm_persons, pm_rows, lm_locations)

    def test_orphaned_visit_row_fires(self, checker):
        pm_persons, pm_rows, lm_locations = _partition_lists(checker)
        pm_rows[0] = pm_rows[0][1:]
        with pytest.raises(InvariantViolation, match="visit-row conservation"):
            checker.check_partition(pm_persons, pm_rows, lm_locations)

    def test_double_owned_location_fires(self, checker):
        pm_persons, pm_rows, lm_locations = _partition_lists(checker)
        lm_locations[0] = np.append(lm_locations[0], lm_locations[1][0])
        with pytest.raises(InvariantViolation, match="location conservation"):
            checker.check_partition(pm_persons, pm_rows, lm_locations)


class TestVisitDelivery:
    def _open_day(self, checker):
        g = checker.graph
        checker.begin_day(0, np.zeros(g.n_persons, dtype=np.int64))

    def test_lost_visit_fires(self, checker):
        self._open_day(checker)
        checker.record_visits_sent(np.array([0, 1, 2]))
        for row in (0, 1):
            lm = int(checker.distribution.location_chare[checker.graph.visit_location[row]])
            checker.record_visit_received(row, lm)
        with pytest.raises(InvariantViolation, match="never arrived"):
            checker.close_visit_phase()

    def test_duplicate_visit_fires(self, checker):
        self._open_day(checker)
        checker.record_visits_sent(np.array([0]))
        lm = int(checker.distribution.location_chare[checker.graph.visit_location[0]])
        checker.record_visit_received(0, lm)
        checker.record_visit_received(0, lm)
        with pytest.raises(InvariantViolation, match="delivered 1 more time"):
            checker.close_visit_phase()

    def test_late_delivery_after_close_fires(self, checker):
        self._open_day(checker)
        checker.close_visit_phase()
        lm = int(checker.distribution.location_chare[checker.graph.visit_location[0]])
        with pytest.raises(InvariantViolation, match="closure soundness"):
            checker.record_visit_received(0, lm)

    def test_misrouted_visit_fires(self, checker):
        self._open_day(checker)
        owner = int(checker.distribution.location_chare[checker.graph.visit_location[0]])
        with pytest.raises(InvariantViolation, match="misrouted visit"):
            checker.record_visit_received(0, owner + 1)


class TestInfectPhase:
    def test_duplicate_rng_key_fires(self, checker):
        checker.begin_day(0, np.zeros(checker.graph.n_persons, dtype=np.int64))
        ev = InfectionEvent(person=3, location=1, minute=100)
        checker.record_infections(0, [ev])
        with pytest.raises(InvariantViolation, match="duplicate transmission RNG key"):
            checker.record_infections(0, [ev])

    def test_lost_infect_fires(self, checker):
        checker.begin_day(0, np.zeros(checker.graph.n_persons, dtype=np.int64))
        checker.record_infections(0, [InfectionEvent(person=3, location=1, minute=100)])
        with pytest.raises(InvariantViolation, match="infect delivery broken"):
            checker.close_infect_phase()

    def test_late_infect_after_close_fires(self, checker):
        checker.begin_day(0, np.zeros(checker.graph.n_persons, dtype=np.int64))
        checker.close_infect_phase()
        with pytest.raises(InvariantViolation, match="closure soundness"):
            checker.record_infect_received(3)


class TestDayBoundary:
    def _curve(self, cumulative):
        c = EpiCurve()
        c.record_day(cumulative, 0.0)
        return c

    def test_illegal_ptts_step_fires(self, checker):
        d = influenza_model()
        n = checker.graph.n_persons
        state0 = np.full(n, d.susceptible_index, dtype=np.int64)
        checker.begin_day(0, state0)
        checker.close_visit_phase()
        checker.close_infect_phase()
        state1 = state0.copy()
        state1[0] = d.index["recovered"]  # susceptible -> recovered teleport
        with pytest.raises(InvariantViolation, match="illegal PTTS step"):
            checker.end_day(0, state1, np.zeros(n, dtype=bool), self._curve(0))

    def test_conservation_mismatch_fires(self, checker):
        n = checker.graph.n_persons
        state = np.full(n, checker.disease.susceptible_index, dtype=np.int64)
        checker.begin_day(0, state)
        checker.close_visit_phase()
        checker.close_infect_phase()
        ever = np.zeros(n, dtype=bool)
        ever[:5] = True  # 5 ever infected, curve says 3
        with pytest.raises(InvariantViolation, match="infection conservation"):
            checker.end_day(0, state, ever, self._curve(3))

    def test_open_phase_at_day_end_fires(self, checker):
        n = checker.graph.n_persons
        state = np.full(n, checker.disease.susceptible_index, dtype=np.int64)
        checker.begin_day(0, state)
        with pytest.raises(InvariantViolation, match="open"):
            checker.end_day(0, state, np.zeros(n, dtype=bool), self._curve(0))


class TestEndToEnd:
    """Break the simulator itself; the full run must abort."""

    def _sim(self, graph, **kwargs):
        m = Machine(SMALL_MACHINE)
        dist = Distribution.from_partition(round_robin_partition(graph, m.n_pes), m)
        return ParallelEpiSimdemics(
            _scenario(graph), SMALL_MACHINE, dist, validate=True, **kwargs
        )

    def test_clean_run_passes_and_counts(self, tiny_graph):
        sim = self._sim(tiny_graph)
        sim.run()
        # 3 partition checks + 5 per day (2 visit + 1 infect + 3 day-end
        # minus none) — just require real coverage, not an exact count.
        assert sim.checker.checks_passed > 3 + 4 * sim.scenario.n_days

    def test_duplicated_delivery_aborts_run(self, tiny_graph, monkeypatch):
        sim = self._sim(tiny_graph)
        original = _LocationManager.recv_visits
        corrupted = {"done": False}

        def corrupt(self, row):
            original(self, row)
            if not corrupted["done"]:
                corrupted["done"] = True
                original(self, row)  # one row arrives twice

        monkeypatch.setattr(_LocationManager, "recv_visits", corrupt)
        with pytest.raises(InvariantViolation):
            sim.run()

    def test_double_seeded_curve_aborts_run(self, tiny_graph, monkeypatch):
        sim = self._sim(tiny_graph)
        original = EpiCurve.record_day

        def inflate(self, new, prevalence):
            return original(self, new + 1, prevalence)

        monkeypatch.setattr(EpiCurve, "record_day", inflate)
        with pytest.raises(InvariantViolation, match="infection conservation"):
            sim.run()


class TestDetectorCounters:
    @staticmethod
    def _runtime():
        from repro.charm.network import NetworkModel
        from repro.charm.scheduler import RuntimeSimulator

        return RuntimeSimulator(Machine(SMALL_MACHINE), NetworkModel(), validate=True)

    def test_producer_done_overflow_fires(self):
        from repro.charm.completion import CompletionDetector

        rt = self._runtime()
        det = CompletionDetector(rt, "t")
        det.begin_phase(n_producers=1, target=("x", 0, "y"))
        rt._exec_pe = 0
        det.done_flag[0] = 1  # the real announcement already happened
        with pytest.raises(InvariantViolation, match="producer_done"):
            det.producer_done()  # the phantom second announcement

    def test_phantom_consumption_fires(self):
        from repro.charm.completion import CompletionDetector

        rt = self._runtime()
        det = CompletionDetector(rt, "t2")
        det.begin_phase(n_producers=0, target=("x", 0, "y"))
        with pytest.raises(InvariantViolation, match="phantom consumption"):
            det._wave_result(None, (2, 5, 0))

    def test_undrained_channel_fires(self):
        from repro.charm.aggregation import AggregationRecord

        rt = self._runtime()
        rt.create_channel("stuck", 1 << 16)
        rt.aggregators["stuck"].append(
            0, 1, AggregationRecord("visits", 0, "recv", None, 8)
        )
        with pytest.raises(InvariantViolation, match="stuck"):
            rt._check_drained()
