"""The strategies must only ever produce structurally valid inputs —
otherwise the equivalence property would fail on malformed data rather
than real divergences."""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.charm.machine import Machine
from repro.synthpop.graph import MINUTES_PER_DAY
from repro.validate.strategies import machine_configs, scenarios, visit_graphs

_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVisitGraphs:
    @_settings
    @given(visit_graphs())
    def test_graphs_validate(self, graph):
        graph.validate()  # raises on any structural breakage
        assert graph.n_persons >= 1
        assert graph.n_locations >= 1

    @_settings
    @given(visit_graphs())
    def test_visits_sorted_and_bounded(self, graph):
        if graph.n_visits:
            assert np.all(np.diff(graph.visit_person) >= 0)
            assert graph.visit_start.min() >= 0
            assert graph.visit_end.max() <= MINUTES_PER_DAY
            assert np.all(graph.visit_end > graph.visit_start)

    @_settings
    @given(visit_graphs(profiles=("heavy-tail",)))
    def test_heavy_tail_concentrates_visits(self, graph):
        # Location 0 must carry a plurality of the visits.
        counts = np.bincount(graph.visit_location, minlength=graph.n_locations)
        assert counts[0] == counts.max()

    @_settings
    @given(visit_graphs(profiles=("zero-visits",)))
    def test_zero_visit_profile_is_empty(self, graph):
        assert graph.n_visits == 0

    @_settings
    @given(visit_graphs(profiles=("one-person",)))
    def test_one_person_profile(self, graph):
        assert graph.n_persons == 1

    @_settings
    @given(visit_graphs(profiles=("single-subloc",)))
    def test_single_subloc_profile(self, graph):
        assert np.all(graph.location_n_sublocs == 1)


class TestScenarios:
    @_settings
    @given(scenarios())
    def test_scenarios_are_runnable_specs(self, scenario):
        scenario.graph.validate()
        assert 1 <= scenario.n_days <= 5
        assert 0 <= scenario.initial_infections <= scenario.graph.n_persons
        assert scenario.transmission.transmissibility > 0


class TestMachineConfigs:
    @_settings
    @given(machine_configs())
    def test_machines_have_pes(self, config):
        assert Machine(config).n_pes >= 1
