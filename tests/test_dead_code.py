"""Static dead-code guard: no statement after a terminating statement.

A duplicated ``raise`` once slipped into ``CostAccumulator.add``
unnoticed because unreachable code neither runs nor fails.  This test
walks every module under ``src/repro`` and rejects any statement that
follows ``return`` / ``raise`` / ``break`` / ``continue`` in the same
block — the same class of defect ruff's unreachable-code rule flags in
CI, but enforced here with the stdlib so it runs in tier-1 without any
extra tooling.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

#: statement fields that hold a straight-line block of statements
_BLOCK_FIELDS = ("body", "orelse", "finalbody")


def _unreachable_in(tree: ast.AST):
    for node in ast.walk(tree):
        for fld in _BLOCK_FIELDS:
            block = getattr(node, fld, None)
            if not isinstance(block, list):
                continue
            for stmt, nxt in zip(block, block[1:]):
                if isinstance(stmt, TERMINATORS):
                    yield nxt


def _modules():
    return sorted(SRC.rglob("*.py"))


@pytest.mark.parametrize("path", _modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_unreachable_statements(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    dead = [
        f"{path.relative_to(SRC)}:{stmt.lineno}: unreachable "
        f"{type(stmt).__name__} after a terminating statement"
        for stmt in _unreachable_in(tree)
    ]
    assert not dead, "\n".join(dead)


def test_guard_catches_seeded_duplicate_raise():
    """The guard itself must flag the original defect's shape."""
    snippet = (
        "def add(self, category, amount):\n"
        "    if amount < 0:\n"
        "        raise ValueError('negative')\n"
        "        raise ValueError('negative')\n"
        "    self.buckets[category] = amount\n"
    )
    dead = list(_unreachable_in(ast.parse(snippet)))
    assert len(dead) == 1 and isinstance(dead[0], ast.Raise)
