"""Tracer: event capture, utilisation, profiles, timeline rendering."""

import numpy as np
import pytest

from repro.charm import Chare, MachineConfig, RuntimeSimulator
from repro.charm.trace import Tracer, attach_tracer


class Busy(Chare):
    def work(self, amount):
        self.charge(amount)

    def relay(self, payload):
        self.charge(1e-6)
        self.send("busy", payload, "work", 2e-6, 8)


def _traced_runtime():
    rt = RuntimeSimulator(MachineConfig(n_nodes=2, cores_per_node=4, smp=False))
    rt.ensure_pe_agents()
    rt.create_array("busy", lambda i: Busy(), np.arange(8) % rt.machine.n_pes)
    tracer = attach_tracer(rt)
    return rt, tracer


class TestCapture:
    def test_events_recorded(self):
        rt, tracer = _traced_runtime()
        rt.inject("busy", 0, "work", 5e-6)
        rt.run()
        assert len(tracer.events) == 1
        (e,) = tracer.events
        assert e.array == "busy" and e.method == "work"
        assert e.duration >= 5e-6  # includes interference factor

    def test_relay_produces_two_events(self):
        rt, tracer = _traced_runtime()
        rt.inject("busy", 0, "relay", 5)
        rt.run()
        methods = sorted(e.method for e in tracer.events)
        assert methods == ["relay", "work"]

    def test_span_covers_all_events(self):
        rt, tracer = _traced_runtime()
        rt.inject("busy", 0, "relay", 5)
        rt.run()
        assert tracer.span >= max(e.duration for e in tracer.events)


class TestAnalysis:
    def _loaded(self):
        rt, tracer = _traced_runtime()
        for i in range(8):
            rt.inject("busy", i, "work", 1e-5 * (i + 1))
        rt.run()
        return rt, tracer

    def test_utilization_bounds(self):
        rt, tracer = self._loaded()
        util = tracer.utilization()
        assert util.shape == (rt.machine.n_pes,)
        assert np.all(util >= 0) and np.all(util <= 1.0 + 1e-9)

    def test_critical_pe_is_heaviest(self):
        rt, tracer = self._loaded()
        # Element 7 (heaviest) lives on PE 7%8; but elements 6/7 weights
        # differ; compute expected directly.
        busy = np.zeros(rt.machine.n_pes)
        for e in tracer.events:
            busy[e.pe] += e.duration
        assert tracer.critical_pe() == int(np.argmax(busy))

    def test_method_profile_totals(self):
        rt, tracer = self._loaded()
        prof = tracer.method_profile()
        calls, total = prof[("busy", "work")]
        assert calls == 8
        assert total == pytest.approx(sum(e.duration for e in tracer.events))

    def test_empty_trace_guards(self):
        tracer = Tracer(_n_pes=4)
        assert tracer.span == 0.0
        assert tracer.timeline() == "(empty trace)"
        with pytest.raises(ValueError):
            tracer.critical_pe()


class TestRendering:
    def test_timeline_shape(self):
        rt, tracer = _traced_runtime()
        for i in range(8):
            rt.inject("busy", i, "work", 1e-5)
        rt.run()
        text = tracer.timeline(width=40)
        lines = text.splitlines()
        assert len(lines) == rt.machine.n_pes
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_profile_table(self):
        rt, tracer = _traced_runtime()
        rt.inject("busy", 0, "work", 1e-5)
        rt.run()
        table = tracer.profile_table()
        assert "busy.work" in table

    def test_tracing_full_parallel_simulation(self, tiny_graph):
        """End to end: trace a real EpiSimdemics run and find the phases."""
        from repro.charm.machine import Machine
        from repro.core import Scenario, TransmissionModel
        from repro.core.parallel import Distribution, ParallelEpiSimdemics
        from repro.partition import round_robin_partition

        mc = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
        m = Machine(mc)
        sc = Scenario(
            graph=tiny_graph, n_days=3, seed=5, initial_infections=5,
            transmission=TransmissionModel(2e-4),
        )
        dist = Distribution.from_partition(round_robin_partition(tiny_graph, m.n_pes), m)
        sim = ParallelEpiSimdemics(sc, mc, dist)
        tracer = attach_tracer(sim.runtime)
        sim.run()
        prof = tracer.method_profile()
        # The phase-driving methods must appear in the profile.
        assert ("__pe__", "bcast") in prof
        assert ("driver", "start_day") in prof
        assert prof[("driver", "start_day")][0] == 3
