"""Torus topology and placement helpers."""

import numpy as np
import pytest

from repro.charm.network import NetworkModel
from repro.charm.topology import (
    TorusTopology,
    blocked_placement,
    linear_placement,
    torus_network,
)


class TestTorus:
    def test_coords_roundtrip(self):
        t = TorusTopology((3, 4, 5))
        for node in range(t.n_nodes):
            x, y, z = t.coords(node)
            assert (x * 4 + y) * 5 + z == node

    def test_wraparound_distance(self):
        t = TorusTopology((8, 1, 1))
        assert t.hops(0, 7) == 1  # wraps around
        assert t.hops(0, 4) == 4  # half-way is the worst case

    def test_hops_symmetric_and_triangle(self):
        t = TorusTopology((3, 3, 3))
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b, c = rng.integers(0, t.n_nodes, 3)
            assert t.hops(a, b) == t.hops(b, a)
            assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    def test_fitting_covers_requested_nodes(self):
        for n in (1, 7, 64, 100, 1000):
            t = TorusTopology.fitting(n)
            assert t.n_nodes >= n
            assert max(t.dims) <= 2 * min(t.dims) + 2  # near-cubic

    def test_mean_hops_grows_with_size(self):
        small = TorusTopology((4, 4, 4)).mean_hops()
        big = TorusTopology((16, 16, 16)).mean_hops()
        assert big > small

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TorusTopology((0, 2, 2))


class TestTorusNetwork:
    def test_alpha_increases_with_machine_size(self):
        base = NetworkModel()
        small = torus_network(base, TorusTopology.fitting(64))
        big = torus_network(base, TorusTopology.fitting(22_528))  # Blue Waters
        assert small.alpha_inter_node > base.alpha_inter_node
        assert big.alpha_inter_node > small.alpha_inter_node

    def test_other_fields_untouched(self):
        base = NetworkModel()
        derived = torus_network(base, TorusTopology((4, 4, 4)))
        assert derived.send_overhead == base.send_overhead
        assert derived.beta_inter_node == base.beta_inter_node


class TestPlacement:
    def test_linear_is_monotone_blocks(self):
        p = linear_placement(100, 10)
        assert p.min() == 0 and p.max() == 9
        assert np.all(np.diff(p) >= 0)
        assert np.all(np.bincount(p) == 10)

    def test_blocked_groups_fit_in_cubes(self):
        """Aligned groups of 8 consecutive items land inside one 2x2x2
        block — bounded pairwise distance regardless of torus size
        (linear placement's groups stretch along whole dimension lines
        as the torus grows)."""
        t = TorusTopology((8, 8, 8))
        p = blocked_placement(t.n_nodes, t)
        for s in range(0, t.n_nodes, 8):
            group = p[s : s + 8]
            worst = max(
                t.hops(int(a), int(b)) for a in group for b in group
            )
            assert worst <= 3  # cube diameter
        # Linear placement's 8-groups span an 8-long line: diameter 4
        # (wraparound) in one dimension on this torus.
        lin = linear_placement(t.n_nodes, t.n_nodes)
        worst_lin = max(
            t.hops(int(a), int(b)) for a in lin[:8] for b in lin[:8]
        )
        assert worst_lin >= 4

    def test_blocked_covers_all_nodes(self):
        t = TorusTopology((4, 4, 4))
        p = blocked_placement(4 * t.n_nodes, t)
        assert set(p.tolist()) == set(range(t.n_nodes))
