"""Runtime simulator: messaging, clocks, broadcasts, reductions."""

import numpy as np
import pytest

from repro.charm import Chare, MachineConfig, RuntimeSimulator


def _runtime(n_nodes=2, cores=4, smp=True, procs=1):
    return RuntimeSimulator(
        MachineConfig(n_nodes=n_nodes, cores_per_node=cores, smp=smp, processes_per_node=procs)
    )


class Echo(Chare):
    def __init__(self):
        self.received = []

    def recv(self, payload):
        self.charge(1e-6)
        self.received.append(payload)

    def relay(self, payload):
        target, value = payload
        self.charge(1e-6)
        self.send("echo", target, "recv", value, 8)


class TestBasics:
    def test_inject_and_execute(self):
        rt = _runtime()
        arr = rt.create_array("echo", lambda i: Echo(), np.arange(4) % rt.machine.n_pes)
        rt.inject("echo", 2, "recv", "hi")
        t = rt.run()
        assert arr.element(2).received == ["hi"]
        assert t > 0

    def test_send_between_chares(self):
        rt = _runtime()
        arr = rt.create_array("echo", lambda i: Echo(), np.arange(4) % rt.machine.n_pes)
        rt.inject("echo", 0, "relay", (3, "x"))
        rt.run()
        assert arr.element(3).received == ["x"]

    def test_virtual_time_includes_charges(self):
        rt = _runtime()
        rt.create_array("echo", lambda i: Echo(), np.zeros(1, dtype=np.int64))
        rt.inject("echo", 0, "recv", 1)
        rt.inject("echo", 0, "recv", 2)
        t = rt.run()
        assert t >= 2e-6  # two serialized executions on one PE

    def test_placement_validated(self):
        rt = _runtime()
        with pytest.raises(ValueError):
            rt.create_array("bad", lambda i: Echo(), np.array([999]))

    def test_duplicate_array_rejected(self):
        rt = _runtime()
        rt.create_array("a", lambda i: Echo(), np.zeros(1, dtype=np.int64))
        with pytest.raises(ValueError):
            rt.create_array("a", lambda i: Echo(), np.zeros(1, dtype=np.int64))

    def test_negative_charge_rejected(self):
        rt = _runtime()

        class Bad(Chare):
            def go(self, _):
                self.charge(-1.0)

        rt.create_array("bad", lambda i: Bad(), np.zeros(1, dtype=np.int64))
        rt.inject("bad", 0, "go")
        with pytest.raises(ValueError):
            rt.run()

    def test_message_tier_accounting(self):
        rt = _runtime(n_nodes=2, cores=4, smp=True, procs=1)
        rt.create_array("echo", lambda i: Echo(), np.array([0, rt.machine.n_pes - 1]))
        rt.inject("echo", 0, "relay", (1, "远"))
        rt.run()
        assert rt.msg_counter.get("inter_node", 0) >= 1


class TestBroadcast:
    def test_broadcast_reaches_every_element(self):
        rt = _runtime(n_nodes=2, cores=8, smp=True, procs=2)
        rt.ensure_pe_agents()
        n = 20
        arr = rt.create_array("echo", lambda i: Echo(), np.arange(n) % rt.machine.n_pes)
        rt.broadcast("echo", "recv", "all")
        rt.run()
        for i in range(n):
            assert arr.element(i).received == ["all"]

    def test_broadcast_cost_scales_with_tree_depth(self):
        def bcast_time(n_nodes):
            rt = _runtime(n_nodes=n_nodes, cores=4, smp=True, procs=1)
            rt.ensure_pe_agents()
            rt.create_array(
                "echo", lambda i: Echo(), np.arange(rt.machine.n_pes, dtype=np.int64)
            )
            rt.broadcast("echo", "recv", 0)
            return rt.run()

        assert bcast_time(64) > bcast_time(2)


class Contributor(Chare):
    def go(self, _):
        self.charge(1e-7)
        self.contribute("sum", self.index + 1)


class Sink(Chare):
    def __init__(self):
        self.value = None
        self.count = 0

    def result(self, value):
        self.value = value
        self.count += 1


class TestReduction:
    def _setup(self, n_elements, n_nodes=2):
        rt = _runtime(n_nodes=n_nodes, cores=4, smp=True, procs=1)
        rt.ensure_pe_agents()
        rt.create_array(
            "c", lambda i: Contributor(), np.arange(n_elements) % rt.machine.n_pes
        )
        sink_arr = rt.create_array("sink", lambda i: Sink(), np.zeros(1, dtype=np.int64))
        rt.register_reduction(
            "sum", combine=lambda a, b: a + b, arrays=["c"], target=("sink", 0, "result")
        )
        return rt, sink_arr

    def test_sum_reduction(self):
        rt, sink = self._setup(10)
        rt.broadcast("c", "go")
        rt.run()
        assert sink.element(0).value == sum(range(1, 11))

    def test_reduction_reusable_across_rounds(self):
        rt, sink = self._setup(6)
        rt.broadcast("c", "go")
        rt.run()
        first = sink.element(0).value
        rt.broadcast("c", "go")
        rt.run()
        assert sink.element(0).count == 2
        assert sink.element(0).value == first

    def test_single_element_reduction(self):
        rt, sink = self._setup(1, n_nodes=1)
        rt.broadcast("c", "go")
        rt.run()
        assert sink.element(0).value == 1


class TestStats:
    def test_stats_summary_fields(self):
        rt = _runtime()
        rt.create_array("echo", lambda i: Echo(), np.zeros(2, dtype=np.int64))
        rt.inject("echo", 0, "relay", (1, "v"))
        rt.run()
        s = rt.stats_summary()
        assert s["events"] > 0
        assert s["compute_total"] > 0
        assert s["virtual_time"] == rt.current_time
