"""Scheduler edge cases: eager sends, global advances, interference."""

import numpy as np
import pytest

from repro.charm import Chare, MachineConfig, NetworkModel, RuntimeSimulator


class Sleeper(Chare):
    def heavy_then_forward(self, payload):
        # Forward eagerly BEFORE the heavy local charge: the child must
        # receive the message long before this entry's end.
        self.runtime._send_eager(self.pe, "sleeper", 1, "mark", None, 8)
        self.charge(1e-3)

    def heavy_then_outbox(self, payload):
        self.send("sleeper", 1, "mark", None, 8)
        self.charge(1e-3)

    def mark(self, _):
        self.marked_at = self.now()
        self.charge(1e-7)


class TestEagerSend:
    def _run(self, method):
        rt = RuntimeSimulator(MachineConfig(n_nodes=2, cores_per_node=2, smp=False))
        arr = rt.create_array(
            "sleeper", lambda i: Sleeper(), np.array([0, rt.machine.n_pes - 1])
        )
        rt.inject("sleeper", 0, method, None)
        rt.run()
        return arr.element(1).marked_at

    def test_eager_departs_before_entry_end(self):
        eager = self._run("heavy_then_forward")
        lazy = self._run("heavy_then_outbox")
        assert eager < lazy
        assert eager < 1e-3  # long before the 1 ms charge completes
        assert lazy >= 1e-3


class TestAdvanceAllPes:
    def test_advances_to_common_horizon(self):
        rt = RuntimeSimulator(MachineConfig(n_nodes=1, cores_per_node=4, smp=False))
        rt.pe_clock[:] = [1.0, 2.0, 3.0, 0.5]
        rt.advance_all_pes(1.0)
        assert np.all(rt.pe_clock == 4.0)

    def test_rejects_negative(self):
        rt = RuntimeSimulator(MachineConfig(n_nodes=1, cores_per_node=2, smp=False))
        with pytest.raises(ValueError):
            rt.advance_all_pes(-1.0)


class TestInterference:
    def test_non_smp_compute_inflated(self):
        class W(Chare):
            def work(self, _):
                self.charge(1e-4)

        def total_compute(smp):
            mc = (
                MachineConfig(n_nodes=1, cores_per_node=4, smp=True, processes_per_node=2)
                if smp
                else MachineConfig(n_nodes=1, cores_per_node=4, smp=False)
            )
            rt = RuntimeSimulator(mc)
            rt.create_array("w", lambda i: W(), np.zeros(1, dtype=np.int64))
            rt.inject("w", 0, "work", None)
            rt.run()
            return rt.pe_costs[0].get("compute")

        penalty = NetworkModel().non_smp_compute_interference
        assert total_compute(False) == pytest.approx(1e-4 * penalty)
        assert total_compute(True) == pytest.approx(1e-4)

    def test_single_pe_machine_pays_no_interference(self):
        class W(Chare):
            def work(self, _):
                self.charge(1e-4)

        rt = RuntimeSimulator(MachineConfig(n_nodes=1, cores_per_node=1, smp=False))
        rt.create_array("w", lambda i: W(), np.zeros(1, dtype=np.int64))
        rt.inject("w", 0, "work", None)
        rt.run()
        assert rt.pe_costs[0].get("compute") == pytest.approx(1e-4)


class TestIdleAccounting:
    def test_idle_recorded_when_pe_waits(self):
        class W(Chare):
            def work(self, _):
                self.charge(1e-5)

        rt = RuntimeSimulator(MachineConfig(n_nodes=2, cores_per_node=2, smp=False))
        rt.create_array("w", lambda i: W(), np.array([0, rt.machine.n_pes - 1]))
        rt.inject("w", 0, "work", None)
        rt.run()
        # PE for element 1 never executed; inject a late message to it and
        # check idle time accrues on delivery gaps.
        rt.inject("w", 1, "work", None)
        rt.run()
        assert rt.pe_costs[rt.machine.n_pes - 1].get("compute") > 0


class TestRunGuard:
    def test_max_events_raises(self):
        class Pinger(Chare):
            def ping(self, n):
                self.charge(1e-9)
                self.send("p", (self.index + 1) % 2, "ping", n + 1, 8)

        rt = RuntimeSimulator(MachineConfig(n_nodes=1, cores_per_node=2, smp=False))
        rt.create_array("p", lambda i: Pinger(), np.array([0, 1]))
        rt.inject("p", 0, "ping", 0)
        with pytest.raises(RuntimeError, match="livelock"):
            rt.run(max_events=500)
