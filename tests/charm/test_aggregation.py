"""Message aggregation buffers."""

import numpy as np
import pytest

from repro.charm import Chare, MachineConfig, RuntimeSimulator
from repro.charm.aggregation import AggregationRecord, MessageAggregator


def _rec(i=0, nbytes=16):
    return AggregationRecord("arr", i, "m", None, nbytes)


class TestBuffering:
    def test_flush_on_threshold(self):
        agg = MessageAggregator("t", buffer_bytes=64)
        assert agg.append(0, 1, _rec(nbytes=32)) is None
        batch = agg.append(0, 1, _rec(nbytes=32))
        assert batch is not None and len(batch) == 2

    def test_zero_buffer_disables_aggregation(self):
        agg = MessageAggregator("t", buffer_bytes=0)
        batch = agg.append(0, 1, _rec())
        assert batch is not None and len(batch) == 1
        assert agg.aggregation_ratio == 1.0

    def test_buffers_keyed_by_pair(self):
        agg = MessageAggregator("t", buffer_bytes=64)
        agg.append(0, 1, _rec(nbytes=40))
        agg.append(0, 2, _rec(nbytes=40))  # different destination: no flush
        assert agg.pending_sources() == {0}
        flushed = agg.flush_source(0)
        assert {dst for dst, _ in flushed} == {1, 2}

    def test_flush_source_drains_only_that_source(self):
        agg = MessageAggregator("t", buffer_bytes=1024)
        agg.append(0, 1, _rec())
        agg.append(5, 1, _rec())
        agg.flush_source(0)
        assert agg.pending_sources() == {5}

    def test_aggregation_ratio(self):
        agg = MessageAggregator("t", buffer_bytes=1024)
        for _ in range(10):
            agg.append(0, 1, _rec(nbytes=16))
        agg.flush_source(0)
        assert agg.aggregation_ratio == 10.0

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            MessageAggregator("t", buffer_bytes=-1)


class Sender(Chare):
    def go(self, n):
        self.charge(1e-6)
        for j in range(n):
            self.send_via("ch", "sink", j % 2, "recv", j, 16)
        self.runtime.flush_channel("ch", self.pe)


class Sink(Chare):
    def __init__(self):
        self.got = []

    def recv(self, v):
        self.charge(1e-7)
        self.got.append(v)


class TestChannelIntegration:
    def _run(self, buffer_bytes, n=40):
        rt = RuntimeSimulator(
            MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
        )
        rt.ensure_pe_agents()
        rt.create_channel("ch", buffer_bytes)
        rt.create_array("send", lambda i: Sender(), np.zeros(1, dtype=np.int64))
        sink = rt.create_array(
            "sink", lambda i: Sink(), np.array([0, rt.machine.n_pes - 1])
        )
        rt.inject("send", 0, "go", n)
        t = rt.run()
        got = sorted(sink.element(0).got + sink.element(1).got)
        return t, got, rt

    def test_all_records_delivered(self):
        _, got, _ = self._run(buffer_bytes=256)
        assert got == list(range(40))

    def test_delivery_identical_with_and_without_aggregation(self):
        _, got_agg, _ = self._run(buffer_bytes=512)
        _, got_none, _ = self._run(buffer_bytes=0)
        assert got_agg == got_none

    def test_aggregation_reduces_wire_messages(self):
        _, _, rt_agg = self._run(buffer_bytes=4096)
        _, _, rt_none = self._run(buffer_bytes=0)
        wires_agg = sum(rt_agg.msg_counter.values())
        wires_none = sum(rt_none.msg_counter.values())
        assert wires_agg < wires_none

    def test_aggregation_reduces_remote_virtual_time(self):
        t_agg, _, _ = self._run(buffer_bytes=4096, n=200)
        t_none, _, _ = self._run(buffer_bytes=0, n=200)
        assert t_agg < t_none
