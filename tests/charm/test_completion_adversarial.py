"""Adversarial interleavings for the CD/QD wave protocols.

Hypothesis drives the dangerous schedule shapes at the detectors:

* **relay traffic** — consumers that produce *new* messages upon
  consumption, so traffic is still being created long after every
  original producer announced done (the classic premature-closure
  trap: the done-count is reached while messages are still multiplying
  in flight);
* **skewed timing** — per-entry charge times drawn adversarially, so
  sends, deliveries and detection waves interleave differently in
  virtual time on every example.

The soundness property checked is the strong one: *at the instant the
completion target fires*, every message ever produced has already been
consumed.  The target snapshots the detector counters when it fires;
if a wave ever closed the phase with a message in flight, that message
would be consumed after the snapshot and the final totals would exceed
it.  Liveness is checked too — the phase must actually close.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.charm import (
    Chare,
    CompletionDetector,
    MachineConfig,
    QuiescenceDetector,
    RuntimeSimulator,
)


class Seeder(Chare):
    """Original producer: sends its plan of (depth, branch) seeds, done."""

    def start(self, payload):
        plan, charge = payload
        det = self.runtime._detectors["phase"]
        self.charge(charge)
        n = self.runtime.arrays["relay"].n_elements
        for j, (depth, branch, delay) in enumerate(plan):
            det.produce()
            self.send("relay", (self.index * 5 + j) % n, "recv",
                      (depth, branch, delay), 32)
        det.producer_done()


class Relay(Chare):
    """Consume, then spawn ``branch`` messages while ``depth`` remains."""

    def __init__(self):
        self.got = 0

    def recv(self, payload):
        depth, branch, delay = payload
        det = self.runtime._detectors["phase"]
        self.charge(delay)
        det.consume()
        self.got += 1
        if depth > 0:
            n = self.runtime.arrays["relay"].n_elements
            for b in range(branch):
                det.produce()
                self.send("relay", (self.index + self.got + b) % n, "recv",
                          (depth - 1, branch, delay), 32)


class SnapshotTarget(Chare):
    """Records the detector counters at the moment completion fires."""

    def __init__(self):
        self.snapshots = []

    def done(self, _):
        det = self.runtime._detectors["phase"]
        self.snapshots.append(
            (int(det.produced.sum()), int(det.consumed.sum()))
        )


def expected_messages(plans) -> int:
    total = 0
    for plan in plans:
        for depth, branch, _delay in plan:
            chain = 1
            generation = 1
            for _ in range(depth):
                generation *= branch
                chain += generation
            total += chain
    return total


#: One seed message: relay depth, fan-out per hop, per-entry charge.
seed_msg = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=1, max_value=2),
    st.sampled_from([1e-7, 1e-6, 3e-6, 1e-5]),
)
#: Per-producer plan (possibly empty: a producer with nothing to say).
plans_strategy = st.lists(
    st.lists(seed_msg, max_size=4), min_size=1, max_size=5
)


def run_phase(detector_cls, plans, producer_charges):
    rt = RuntimeSimulator(
        MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
    )
    rt.ensure_pe_agents()
    n_producers = len(plans)
    rt.create_array(
        "seeder", lambda i: Seeder(), np.arange(n_producers) % rt.machine.n_pes
    )
    relays = rt.create_array(
        "relay", lambda i: Relay(), np.arange(7) % rt.machine.n_pes
    )
    tgt = rt.create_array("target", lambda i: SnapshotTarget(),
                          np.zeros(1, dtype=np.int64))
    det = detector_cls(rt, "phase")
    det.begin_phase(n_producers, ("target", 0, "done"))
    for i, plan in enumerate(plans):
        rt.inject("seeder", i, "start",
                  (plan, producer_charges[i % len(producer_charges)]))
    rt.run()
    delivered = sum(relays.element(i).got for i in range(7))
    return det, tgt.element(0), delivered


@given(
    plans=plans_strategy,
    producer_charges=st.lists(
        st.sampled_from([1e-7, 2e-6, 5e-5]), min_size=1, max_size=3
    ),
)
@settings(max_examples=30, deadline=None)
def test_cd_never_closes_with_messages_in_flight(plans, producer_charges):
    det, target, delivered = run_phase(CompletionDetector, plans, producer_charges)
    total = expected_messages(plans)

    # Liveness: the phase closed, exactly once.
    assert det.completions == 1
    assert len(target.snapshots) == 1

    # Soundness: at fire time everything produced had been consumed —
    # and "everything" was already the final total, i.e. no relay was
    # still manufacturing traffic after closure.
    produced_at_fire, consumed_at_fire = target.snapshots[0]
    assert produced_at_fire == consumed_at_fire == total
    assert delivered == total
    assert int(det.produced.sum()) == int(det.consumed.sum()) == total


@given(plans=plans_strategy)
@settings(max_examples=15, deadline=None)
def test_qd_never_closes_with_messages_in_flight(plans):
    det, target, delivered = run_phase(QuiescenceDetector, plans, [1e-6])
    total = expected_messages(plans)

    assert det.completions == 1
    assert len(target.snapshots) == 1
    produced_at_fire, consumed_at_fire = target.snapshots[0]
    assert produced_at_fire == consumed_at_fire == total
    assert delivered == total
    # QD's two-identical-clean-waves guard costs at least one extra wave.
    assert det.waves_run >= 2


@given(
    plans=plans_strategy,
    producer_charges=st.lists(
        st.sampled_from([1e-7, 2e-6, 5e-5]), min_size=1, max_size=3
    ),
)
@settings(max_examples=15, deadline=None)
def test_cd_reused_across_adversarial_phases(plans, producer_charges):
    """begin_phase must fully re-arm the detector: stale counters or a
    stale clean-streak from phase 1 must not leak into phase 2."""
    rt = RuntimeSimulator(
        MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
    )
    rt.ensure_pe_agents()
    n_producers = len(plans)
    rt.create_array(
        "seeder", lambda i: Seeder(), np.arange(n_producers) % rt.machine.n_pes
    )
    rt.create_array("relay", lambda i: Relay(), np.arange(7) % rt.machine.n_pes)
    tgt = rt.create_array("target", lambda i: SnapshotTarget(),
                          np.zeros(1, dtype=np.int64))
    det = CompletionDetector(rt, "phase")
    for phase in range(2):
        det.begin_phase(n_producers, ("target", 0, "done"))
        for i, plan in enumerate(plans):
            rt.inject("seeder", i, "start",
                      (plan, producer_charges[i % len(producer_charges)]))
        rt.run()
    assert det.completions == 2
    total = expected_messages(plans)
    for produced_at_fire, consumed_at_fire in tgt.element(0).snapshots:
        assert produced_at_fire == consumed_at_fire == total
