"""Spanning-tree topology."""

import pytest

from repro.charm.reduction import ReductionRound, ReductionTree


class TestTree:
    def test_root_has_no_parent(self):
        t = ReductionTree(10)
        assert t.parent(0) is None

    def test_parent_child_consistency(self):
        t = ReductionTree(50, arity=4)
        for pe in range(1, 50):
            assert pe in t.children(t.parent(pe))

    def test_children_within_bounds(self):
        t = ReductionTree(10, arity=4)
        for pe in range(10):
            for c in t.children(pe):
                assert 0 <= c < 10

    def test_depth_log_like(self):
        assert ReductionTree(1).depth() == 0
        assert ReductionTree(5, arity=4).depth() == 1
        assert ReductionTree(64, arity=4).depth() == 3
        assert ReductionTree(4096, arity=4).depth() == 6

    def test_every_pe_reachable_from_root(self):
        t = ReductionTree(37, arity=3)
        seen = set()
        stack = [0]
        while stack:
            pe = stack.pop()
            seen.add(pe)
            stack.extend(t.children(pe))
        assert seen == set(range(37))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReductionTree(0)
        with pytest.raises(ValueError):
            ReductionTree(4, arity=1)


class TestReductionRound:
    def test_combines_in_order(self):
        r = ReductionRound()
        r.add(lambda a, b: a + b, 3)
        r.add(lambda a, b: a + b, 4)
        assert r.partial == 7

    def test_first_value_initialises(self):
        r = ReductionRound()
        r.add(min, 9)
        assert r.partial == 9 and r.has_partial
