"""Machine model: PE/process/node topology."""

import pytest

from repro.charm.machine import BLUE_WATERS_NODE, Machine, MachineConfig


class TestMachineConfig:
    def test_blue_waters_node_size(self):
        assert BLUE_WATERS_NODE == 16

    def test_smp_loses_comm_cores(self):
        c = MachineConfig(n_nodes=2, cores_per_node=16, smp=True, processes_per_node=2)
        assert c.compute_pes_per_node == 14
        assert c.n_pes == 28
        assert c.total_cores == 32

    def test_non_smp_uses_all_cores(self):
        c = MachineConfig(n_nodes=2, cores_per_node=16, smp=False)
        assert c.n_pes == 32
        assert c.total_cores == 32

    def test_processes_must_divide_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(cores_per_node=16, smp=True, processes_per_node=3)

    def test_processes_bound(self):
        with pytest.raises(ValueError):
            MachineConfig(cores_per_node=4, smp=True, processes_per_node=4)

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=0)


class TestMachineTopology:
    def test_smp_process_assignment(self):
        m = Machine(MachineConfig(n_nodes=2, cores_per_node=8, smp=True, processes_per_node=2))
        # 8 cores/node, 2 procs/node -> 4 cores/proc -> 3 compute PEs/proc.
        assert m.pes_per_process == 3
        assert m.n_processes == 4
        assert m.n_pes == 12
        assert m.process_of(0) == 0
        assert m.process_of(3) == 1
        assert m.node_of(0) == 0
        assert m.node_of(6) == 1

    def test_same_process_and_node(self):
        m = Machine(MachineConfig(n_nodes=2, cores_per_node=8, smp=True, processes_per_node=2))
        assert m.same_process(0, 1)
        assert not m.same_process(2, 3)
        assert m.same_node(2, 3)
        assert not m.same_node(5, 6)

    def test_non_smp_each_core_own_process(self):
        m = Machine(MachineConfig(n_nodes=2, cores_per_node=4, smp=False))
        assert m.n_processes == 8
        assert m.pes_per_process == 1
        assert not m.same_process(0, 1)
        assert m.same_node(0, 3)
        assert not m.same_node(3, 4)
