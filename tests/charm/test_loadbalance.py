"""Load-balancer strategies and the runtime's migration machinery."""

import numpy as np
import pytest

from repro.charm import Chare, MachineConfig, RuntimeSimulator
from repro.charm.loadbalance import MigrationCostModel, greedy_lb, refine_lb
from repro.charm.machine import Machine
from repro.charm.network import NetworkModel


class TestGreedyLB:
    def test_balances_uniform_costs(self):
        placement = greedy_lb(np.ones(12), 4)
        counts = np.bincount(placement, minlength=4)
        assert np.all(counts == 3)

    def test_heavy_chare_isolated(self):
        costs = np.array([10.0, 1.0, 1.0, 1.0, 1.0])
        placement = greedy_lb(costs, 2)
        # The heavy chare's PE should get nothing else.
        heavy_pe = placement[0]
        assert np.sum(placement == heavy_pe) == 1

    def test_makespan_near_optimal(self):
        rng = np.random.default_rng(0)
        costs = rng.pareto(1.5, 200) + 0.1
        placement = greedy_lb(costs, 8)
        loads = np.bincount(placement, weights=costs, minlength=8)
        lower_bound = max(costs.sum() / 8, costs.max())
        assert loads.max() <= 4 / 3 * lower_bound + 1e-9  # LPT guarantee

    def test_invalid_pes(self):
        with pytest.raises(ValueError):
            greedy_lb(np.ones(3), 0)


class TestRefineLB:
    def test_no_moves_when_balanced(self):
        costs = np.ones(8)
        placement = np.arange(8) % 4
        new = refine_lb(costs, placement, 4)
        np.testing.assert_array_equal(new, placement)

    def test_sheds_overload(self):
        costs = np.ones(8)
        placement = np.zeros(8, dtype=np.int64)  # everything on PE 0
        new = refine_lb(costs, placement, 4)
        loads = np.bincount(new, weights=costs, minlength=4)
        assert loads.max() < 8  # strictly improved

    def test_moves_fewer_chares_than_greedy(self):
        rng = np.random.default_rng(1)
        costs = rng.random(40) + 0.1
        placement = np.arange(40) % 8
        # Perturb: overload PE 0.
        placement[:10] = 0
        refined = refine_lb(costs, placement, 8)
        greedy = greedy_lb(costs, 8)
        assert np.sum(refined != placement) <= np.sum(greedy != placement)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            refine_lb(np.ones(3), np.zeros(4, dtype=int), 2)


class TestMigrationCostModel:
    def test_no_moves_costs_decision_only(self):
        m = Machine(MachineConfig(n_nodes=2, cores_per_node=4, smp=False))
        model = MigrationCostModel()
        old = np.arange(8) % m.n_pes
        assert model.step_cost(m, NetworkModel(), old, old) == model.decision_cost

    def test_cost_grows_with_moves(self):
        m = Machine(MachineConfig(n_nodes=2, cores_per_node=4, smp=False))
        model = MigrationCostModel()
        net = NetworkModel()
        old = np.zeros(8, dtype=np.int64)
        one = old.copy(); one[0] = 1
        many = np.arange(8) % m.n_pes
        assert model.step_cost(m, net, old, one) < model.step_cost(m, net, old, many) + 1e-12


class Worker(Chare):
    def __init__(self, weight):
        self.weight = weight

    def work(self, _):
        self.charge(self.weight)

    def probe(self, sink):
        self.send("sink", 0, "note", (self.index, self.pe))


class Sink(Chare):
    def __init__(self):
        self.notes = []

    def note(self, payload):
        self.notes.append(payload)


class TestRuntimeMigration:
    def _runtime(self):
        rt = RuntimeSimulator(MachineConfig(n_nodes=2, cores_per_node=4, smp=False))
        rt.ensure_pe_agents()
        weights = [1e-6 * (i + 1) for i in range(8)]
        rt.create_array("w", lambda i: Worker(weights[i]), np.arange(8) % rt.machine.n_pes)
        rt.create_array("sink", lambda i: Sink(), np.zeros(1, dtype=np.int64))
        return rt

    def test_cost_tracking_accumulates(self):
        rt = self._runtime()
        rt.enable_chare_cost_tracking("w")
        rt.broadcast("w", "work")
        rt.run()
        assert rt.chare_costs[("w", 7)] == pytest.approx(8e-6)
        assert rt.chare_costs[("w", 0)] == pytest.approx(1e-6)

    def test_tracking_unknown_array(self):
        rt = self._runtime()
        with pytest.raises(ValueError):
            rt.enable_chare_cost_tracking("nope")

    def test_migration_moves_delivery(self):
        rt = self._runtime()
        new = np.zeros(8, dtype=np.int64)  # all chares to PE 0
        summary = rt.migrate_array("w", new)
        assert summary["moved"] > 0
        rt.broadcast("w", "probe")
        rt.run()
        sink = rt.arrays["sink"].element(0)
        assert sorted(i for i, _pe in sink.notes) == list(range(8))
        assert all(pe == 0 for _i, pe in sink.notes)

    def test_migration_rebuilds_reductions(self):
        rt = self._runtime()
        results = []

        class Root(Chare):
            def got(self, v):
                results.append(v)

        rt.create_array("root", lambda i: Root(), np.zeros(1, dtype=np.int64))
        rt.register_reduction(
            "s", combine=lambda a, b: a + b, arrays=["w"], target=("root", 0, "got")
        )

        class Contribute(Chare):
            pass

        def contribute_all():
            for i in range(8):
                rt.inject("w", i, "contrib", None)

        # Give workers a contribute method dynamically via subclassing is
        # awkward; use the agent-side API through a tiny driver instead.
        Worker.contrib = lambda self, _: self.contribute("s", 1)
        try:
            contribute_all()
            rt.run()
            assert results == [8]
            rt.migrate_array("w", np.zeros(8, dtype=np.int64))
            contribute_all()
            rt.run()
            assert results == [8, 8]
        finally:
            del Worker.contrib

    def test_migration_validates_placement(self):
        rt = self._runtime()
        with pytest.raises(ValueError):
            rt.migrate_array("w", np.array([99] * 8))
        with pytest.raises(ValueError):
            rt.migrate_array("w", np.zeros(3, dtype=np.int64))


class TestLBIntegration:
    def test_lb_improves_day_time_and_preserves_epidemic(self, tiny_graph):
        from repro.core import Scenario, TransmissionModel
        from repro.core.parallel import Distribution, ParallelEpiSimdemics
        from repro.core.simulator import SequentialSimulator
        from repro.partition import round_robin_partition

        mc = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
        m = Machine(mc)

        def scenario():
            return Scenario(
                graph=tiny_graph, n_days=12, seed=5, initial_infections=6,
                transmission=TransmissionModel(2e-4),
            )

        # Over-decomposed RR so the balancer has chares to move.
        part = round_robin_partition(tiny_graph, m.n_pes * 4)
        dist = Distribution.from_partition(part, m)

        seq = SequentialSimulator(scenario()).run()
        base = ParallelEpiSimdemics(scenario(), mc, dist).run()
        lb = ParallelEpiSimdemics(
            scenario(), mc,
            Distribution.from_partition(part, m),
            lb_period=3, lb_strategy="greedy",
        )
        lb_res = lb.run()

        # Semantics untouched by migration.
        assert lb_res.result.curve == seq.curve == base.result.curve
        assert lb.lb_steps >= 3
        # Location phase after the first LB step should not be worse on
        # average than before it (measured balance kicks in).
        loc_before = np.mean([p.location_phase for p in lb_res.phase_times[:3]])
        loc_after = np.mean([p.location_phase for p in lb_res.phase_times[4:]])
        assert loc_after <= loc_before * 1.5

    @pytest.mark.parametrize("strategy", ["greedy", "refine", "predictive"])
    def test_all_strategies_run(self, tiny_graph, strategy):
        from repro.core import Scenario, TransmissionModel
        from repro.core.parallel import Distribution, ParallelEpiSimdemics
        from repro.partition import round_robin_partition

        mc = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
        m = Machine(mc)
        part = round_robin_partition(tiny_graph, m.n_pes * 2)
        sc = Scenario(
            graph=tiny_graph, n_days=6, seed=5, initial_infections=6,
            transmission=TransmissionModel(2e-4),
        )
        sim = ParallelEpiSimdemics(
            sc, mc, Distribution.from_partition(part, m),
            lb_period=2, lb_strategy=strategy,
        )
        res = sim.run()
        assert sim.lb_steps >= 2
        assert res.result.curve.n_days == 6

    def test_invalid_lb_options(self, tiny_graph):
        from repro.core import Scenario
        from repro.core.parallel import Distribution, ParallelEpiSimdemics
        from repro.partition import round_robin_partition

        mc = MachineConfig(n_nodes=1, cores_per_node=2, smp=False)
        m = Machine(mc)
        dist = Distribution.from_partition(round_robin_partition(tiny_graph, m.n_pes), m)
        sc = Scenario(graph=tiny_graph, n_days=2)
        with pytest.raises(ValueError):
            ParallelEpiSimdemics(sc, mc, dist, lb_strategy="magic")
        with pytest.raises(ValueError):
            ParallelEpiSimdemics(sc, mc, dist, lb_period=0)
