"""Completion and quiescence detection protocols."""

import numpy as np
import pytest

from repro.charm import Chare, CompletionDetector, MachineConfig, QuiescenceDetector, RuntimeSimulator


class Producer(Chare):
    """Sends ``fanout`` messages to consumers, then announces done."""

    def start(self, fanout):
        det = self.runtime._detectors["phase"]
        self.charge(1e-6)
        n = self.runtime.arrays["consumer"].n_elements
        for j in range(fanout):
            det.produce()
            self.send("consumer", (self.index * 7 + j) % n, "recv", j, 32)
        det.producer_done()


class Consumer(Chare):
    def __init__(self):
        self.got = 0

    def recv(self, _):
        self.charge(2e-6)
        self.runtime._detectors["phase"].consume()
        self.got += 1


class Target(Chare):
    def __init__(self):
        self.completed_at = []

    def done(self, _):
        self.completed_at.append(self.now())


def _build(detector_cls, n_nodes=2, n_producers=6, n_consumers=9):
    rt = RuntimeSimulator(
        MachineConfig(n_nodes=n_nodes, cores_per_node=4, smp=True, processes_per_node=1)
    )
    rt.ensure_pe_agents()
    rt.create_array(
        "producer", lambda i: Producer(), np.arange(n_producers) % rt.machine.n_pes
    )
    cons = rt.create_array(
        "consumer", lambda i: Consumer(), np.arange(n_consumers) % rt.machine.n_pes
    )
    tgt = rt.create_array("target", lambda i: Target(), np.zeros(1, dtype=np.int64))
    det = detector_cls(rt, "phase")
    return rt, det, cons, tgt


class TestCompletionDetection:
    def test_completes_after_all_consumed(self):
        rt, det, cons, tgt = _build(CompletionDetector)
        det.begin_phase(6, ("target", 0, "done"))
        rt.broadcast("producer", "start", 3)
        rt.run()
        assert tgt.element(0).completed_at, "completion never fired"
        assert det.completions == 1
        total = sum(cons.element(i).got for i in range(9))
        assert total == 18  # every message consumed before completion

    def test_zero_message_phase_completes(self):
        rt, det, cons, tgt = _build(CompletionDetector)
        det.begin_phase(6, ("target", 0, "done"))
        rt.broadcast("producer", "start", 0)
        rt.run()
        assert det.completions == 1

    def test_detector_reusable_across_phases(self):
        rt, det, cons, tgt = _build(CompletionDetector)
        det.begin_phase(6, ("target", 0, "done"))
        rt.broadcast("producer", "start", 2)
        rt.run()
        det.begin_phase(6, ("target", 0, "done"))
        rt.broadcast("producer", "start", 4)
        rt.run()
        assert det.completions == 2
        assert len(tgt.element(0).completed_at) == 2

    def test_duplicate_name_rejected(self):
        rt, det, _, _ = _build(CompletionDetector)
        with pytest.raises(ValueError):
            CompletionDetector(rt, "phase")


class TestQuiescenceVsCompletion:
    def test_qd_needs_more_waves(self):
        rt_cd, det_cd, _, tgt_cd = _build(CompletionDetector)
        det_cd.begin_phase(6, ("target", 0, "done"))
        rt_cd.broadcast("producer", "start", 3)
        rt_cd.run()

        rt_qd, det_qd, _, tgt_qd = _build(QuiescenceDetector)
        det_qd.begin_phase(6, ("target", 0, "done"))
        rt_qd.broadcast("producer", "start", 3)
        rt_qd.run()

        assert det_qd.waves_run > det_cd.waves_run
        assert det_qd.completions == 1

    def test_qd_completion_is_later(self):
        """The double-wave protocol costs extra virtual time."""
        rt_cd, det_cd, _, tgt_cd = _build(CompletionDetector)
        det_cd.begin_phase(6, ("target", 0, "done"))
        rt_cd.broadcast("producer", "start", 3)
        rt_cd.run()

        rt_qd, det_qd, _, tgt_qd = _build(QuiescenceDetector)
        det_qd.begin_phase(6, ("target", 0, "done"))
        rt_qd.broadcast("producer", "start", 3)
        rt_qd.run()

        assert tgt_qd.element(0).completed_at[0] > tgt_cd.element(0).completed_at[0]


class TestSafety:
    def test_no_completion_before_producers_done(self):
        """A detector expecting a producer that never reports must not fire."""
        rt, det, cons, tgt = _build(CompletionDetector)
        det.begin_phase(7, ("target", 0, "done"))  # one producer will never exist
        rt.broadcast("producer", "start", 1)
        rt.run(max_events=50_000)
        assert det.completions == 0
        assert tgt.element(0).completed_at == []

    def test_completion_without_target_raises(self):
        rt, det, cons, tgt = _build(CompletionDetector)
        det.begin_phase(6, ("target", 0, "done"))
        det.target = None
        rt.broadcast("producer", "start", 1)
        with pytest.raises(RuntimeError, match="without a target"):
            rt.run()
