"""Memory-footprint model (§IV-A benefit iii)."""

import pytest

from repro.charm.machine import MachineConfig
from repro.charm.memory import MemoryModel


class TestMemoryModel:
    def test_smp_reduces_read_only_copies(self, small_graph):
        model = MemoryModel()
        smp = model.per_node(
            small_graph, MachineConfig(n_nodes=2, cores_per_node=16, smp=True,
                                       processes_per_node=2)
        )
        flat = model.per_node(
            small_graph, MachineConfig(n_nodes=2, cores_per_node=16, smp=False)
        )
        assert smp.copies_per_node == 2
        assert flat.copies_per_node == 16
        assert smp.read_only_per_node * 8 == flat.read_only_per_node
        assert smp.total_per_node < flat.total_per_node

    def test_mutable_state_independent_of_smp(self, small_graph):
        model = MemoryModel()
        mk = lambda smp: model.per_node(
            small_graph,
            MachineConfig(n_nodes=2, cores_per_node=16, smp=smp,
                          processes_per_node=2 if smp else 2),
            n_chares=64,
        )
        assert mk(True).mutable_per_node == mk(False).mutable_per_node

    def test_scales_with_population(self, tiny_graph, small_graph):
        model = MemoryModel()
        mc = MachineConfig(n_nodes=1, cores_per_node=4, smp=False)
        assert (
            model.per_node(small_graph, mc).total_per_node
            > model.per_node(tiny_graph, mc).total_per_node
        )

    def test_more_nodes_less_per_node(self, small_graph):
        model = MemoryModel()
        one = model.per_node(small_graph, MachineConfig(1, 16, True, 2))
        four = model.per_node(small_graph, MachineConfig(4, 16, True, 2))
        assert four.total_per_node < one.total_per_node

    def test_report_str(self, tiny_graph):
        model = MemoryModel()
        rep = model.per_node(tiny_graph, MachineConfig(1, 4, smp=False))
        assert "MiB/node" in str(rep)


class TestWeekendSchedule:
    """WeekendSchedule lives in core but is tested here alongside the
    §IV-A material it complements (weekly rhythm over long runs)."""

    def test_weekday_untouched(self, small_graph):
        import numpy as np

        from repro.core.interventions import InterventionSchedule, WeekendSchedule
        from tests.core.test_interventions import _ctx

        ctx = _ctx(small_graph, day=2)  # a weekday
        sched = InterventionSchedule([WeekendSchedule(compliance=1.0)])
        assert sched.visit_mask(ctx).all()

    def test_weekend_drops_work_and_school(self, small_graph):
        import numpy as np

        from repro.core.interventions import InterventionSchedule, WeekendSchedule
        from repro.synthpop.graph import LocationType
        from tests.core.test_interventions import _ctx

        ctx = _ctx(small_graph, day=5)  # weekend
        sched = InterventionSchedule([WeekendSchedule(compliance=1.0)])
        keep = sched.visit_mask(ctx)
        types = small_graph.location_type[small_graph.visit_location]
        workish = (types == LocationType.WORK) | (types == LocationType.SCHOOL)
        assert not np.any(keep & workish)
        assert keep[~workish].all()

    def test_partial_compliance_statistics(self, small_graph):
        import numpy as np

        from repro.core.interventions import InterventionSchedule, WeekendSchedule
        from repro.synthpop.graph import LocationType
        from tests.core.test_interventions import _ctx

        ctx = _ctx(small_graph, day=6)
        sched = InterventionSchedule([WeekendSchedule(compliance=0.5)])
        keep = sched.visit_mask(ctx)
        types = small_graph.location_type[small_graph.visit_location]
        workish = (types == LocationType.WORK) | (types == LocationType.SCHOOL)
        frac_kept = keep[workish].mean()
        assert 0.3 < frac_kept < 0.7

    def test_script_directive(self):
        from repro.core.interventions import WeekendSchedule, parse_intervention_script

        sched = parse_intervention_script("weekends compliance=0.8")
        assert isinstance(sched.interventions[0], WeekendSchedule)
        assert sched.interventions[0].compliance == 0.8

    def test_parallel_equivalence_with_weekends(self, tiny_graph):
        from repro.charm.machine import Machine, MachineConfig
        from repro.core import Scenario, SequentialSimulator, TransmissionModel
        from repro.core.interventions import InterventionSchedule, WeekendSchedule
        from repro.core.parallel import Distribution, ParallelEpiSimdemics
        from repro.partition import round_robin_partition

        def scenario():
            return Scenario(
                graph=tiny_graph, n_days=10, seed=4, initial_infections=5,
                transmission=TransmissionModel(2e-4),
                interventions=InterventionSchedule([WeekendSchedule()]),
            )

        seq = SequentialSimulator(scenario()).run()
        mc = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
        m = Machine(mc)
        dist = Distribution.from_partition(round_robin_partition(tiny_graph, m.n_pes), m)
        par = ParallelEpiSimdemics(scenario(), mc, dist).run()
        assert par.result.curve == seq.curve
