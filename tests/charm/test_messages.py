"""Message envelope accounting."""

from repro.charm.messages import (
    CONTROL_BYTES,
    ENVELOPE_BYTES,
    INFECT_BYTES,
    VISIT_BYTES,
    Message,
)


class TestMessage:
    def test_wire_bytes_adds_envelope(self):
        m = Message("a", 0, "m", payload_bytes=100)
        assert m.wire_bytes() == 100 + ENVELOPE_BYTES

    def test_default_payload_is_control_sized(self):
        m = Message("a", 0, "m")
        assert m.payload_bytes == CONTROL_BYTES

    def test_seq_monotone(self):
        a, b = Message("x", 0, "m"), Message("x", 0, "m")
        assert b.seq > a.seq

    def test_record_sizes_are_packed(self):
        # The paper reduces message sizes (§IV); visits must stay small
        # relative to the envelope so aggregation matters.
        assert VISIT_BYTES <= 16
        assert INFECT_BYTES <= 16
        assert ENVELOPE_BYTES > VISIT_BYTES  # per-message overhead dominates
