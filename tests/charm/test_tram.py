"""TRAM mesh routing: geometry, delivery, aggregation economics."""

import numpy as np
import pytest

from repro.charm import Chare, MachineConfig, RuntimeSimulator
from repro.charm.aggregation import AggregationRecord
from repro.charm.tram import TramChannel, TramRecord


def _rec(i=0, nbytes=16):
    return TramRecord(dst_pe=i, inner=AggregationRecord("arr", i, "m", None, nbytes))


class TestGeometry:
    def test_row_first_routing(self):
        chan = TramChannel("t", n_pes=16)  # 4x4
        # (0,0) -> (3,3): first hop fixes the column: (0,3) = pe 3.
        assert chan.next_hop(0, 15) == 3
        # From (0,3), go down the column directly to the target.
        assert chan.next_hop(3, 15) == 15

    def test_same_column_goes_direct(self):
        chan = TramChannel("t", n_pes=16)
        assert chan.next_hop(1, 13) == 13  # both column 1

    def test_two_hops_max(self):
        chan = TramChannel("t", n_pes=25)
        for src in range(25):
            for dst in range(25):
                hop1 = chan.next_hop(src, dst)
                hop2 = chan.next_hop(hop1, dst)
                assert hop2 == dst, f"{src}->{dst} needs >2 hops"

    def test_ragged_grid_still_routes(self):
        chan = TramChannel("t", n_pes=7)  # 2x... ragged
        for src in range(7):
            for dst in range(7):
                hop = src
                for _ in range(4):
                    if hop == dst:
                        break
                    hop = chan.next_hop(hop, dst)
                assert hop == dst

    @pytest.mark.parametrize("n_pes", [5, 7, 12])
    def test_ragged_grids_deliver_in_two_mesh_hops(self, n_pes):
        """The docstring's claim, on grids whose last row is ragged:
        every (src, dst) pair resolves in at most two next_hop steps."""
        chan = TramChannel("t", n_pes=n_pes)
        for src in range(n_pes):
            for dst in range(n_pes):
                hop1 = chan.next_hop(src, dst)
                assert 0 <= hop1 < n_pes, f"{src}->{dst} routed off-grid"
                hops = 0 if src == dst else 1
                if hop1 != dst:
                    hop2 = chan.next_hop(hop1, dst)
                    hops = 2
                    assert hop2 == dst, f"{src}->{dst} needs >2 hops"
                assert hops <= 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TramChannel("t", 0)
        with pytest.raises(ValueError):
            TramChannel("t", 4, buffer_bytes=-1)


class TestBuffering:
    def test_flush_on_threshold(self):
        chan = TramChannel("t", n_pes=16, buffer_bytes=48)
        assert chan.append(0, _rec(15, nbytes=16)) is None
        out = chan.append(0, _rec(15, nbytes=32))
        assert out is not None
        hop, records = out
        assert hop == 3
        assert len(records) == 2

    def test_reaggregation_shares_buffers(self):
        """Records for different PEs in the same column share one buffer
        — the whole point of topological aggregation."""
        chan = TramChannel("t", n_pes=16, buffer_bytes=10**6)
        chan.append(0, _rec(7))   # (1,3) — column 3
        chan.append(0, _rec(15))  # (3,3) — column 3
        flushed = chan.flush_pe(0)
        assert len(flushed) == 1  # one buffer toward (0,3)
        assert len(flushed[0][1]) == 2


class Sender(Chare):
    def go(self, n):
        self.charge(1e-6)
        n_sinks = self.runtime.arrays["sink"].n_elements
        for j in range(n):
            self.send_via("tram", "sink", j % n_sinks, "recv", j, 16)
        self.runtime.flush_channel("tram", self.pe)


class Sink(Chare):
    def __init__(self):
        self.got = []

    def recv(self, v):
        self.charge(1e-7)
        self.got.append(v)


class TestRuntimeIntegration:
    def _run(self, buffer_bytes, n=60):
        rt = RuntimeSimulator(
            MachineConfig(n_nodes=4, cores_per_node=4, smp=True, processes_per_node=1)
        )
        rt.create_tram_channel("tram", buffer_bytes)
        rt.create_array("send", lambda i: Sender(), np.zeros(1, dtype=np.int64))
        sinks = rt.create_array(
            "sink", lambda i: Sink(), np.arange(6) % rt.machine.n_pes
        )
        rt.inject("send", 0, "go", n)
        t = rt.run()
        got = sorted(v for i in range(6) for v in sinks.element(i).got)
        return t, got, rt

    def test_all_records_delivered(self):
        _, got, _ = self._run(buffer_bytes=4096)
        assert got == list(range(60))

    def test_unbuffered_mesh_also_delivers(self):
        _, got, _ = self._run(buffer_bytes=0)
        assert got == list(range(60))

    def test_mesh_uses_fewer_source_buffers_than_direct(self):
        """TRAM's structural property: the source touches at most
        ~2*sqrt(P) distinct next hops."""
        chan = TramChannel("t", n_pes=144, buffer_bytes=10**9)
        for dst in range(144):
            chan.append(0, _rec(dst))
        assert len(chan.pending_pes()) == 1
        hops = {k for k in chan._buffers}
        assert len(hops) <= 2 * 12

    def test_cost_accounting_charges_forwarding(self):
        t_tram, _, rt = self._run(buffer_bytes=4096)
        assert rt.aggregators["tram"].forwards > 0
        assert t_tram > 0
