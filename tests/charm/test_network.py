"""Network cost model tiers and SMP/non-SMP cost structure."""

import pytest

from repro.charm.machine import Machine, MachineConfig
from repro.charm.network import NetworkModel


@pytest.fixture()
def smp_machine():
    return Machine(MachineConfig(n_nodes=2, cores_per_node=8, smp=True, processes_per_node=2))


@pytest.fixture()
def flat_machine():
    return Machine(MachineConfig(n_nodes=2, cores_per_node=8, smp=False))


class TestTiers:
    def test_intra_process_cheapest(self, smp_machine):
        net = NetworkModel()
        same_proc = net.message_costs(smp_machine, 0, 1, 1000).total
        same_node = net.message_costs(smp_machine, 0, 3, 1000).total
        remote = net.message_costs(smp_machine, 0, 6, 1000).total
        assert same_proc < same_node < remote

    def test_self_send_uses_memcpy_even_without_smp(self, flat_machine):
        net = NetworkModel()
        c = net.message_costs(flat_machine, 5, 5, 100)
        assert c.latency == pytest.approx(
            net.alpha_intra_process + net.beta_intra_process * 100
        )

    def test_latency_grows_with_bytes(self, smp_machine):
        net = NetworkModel()
        small = net.message_costs(smp_machine, 0, 6, 100).latency
        big = net.message_costs(smp_machine, 0, 6, 1_000_000).latency
        assert big > small
        assert big - small == pytest.approx(net.beta_inter_node * (1_000_000 - 100))


class TestSMPOffload:
    def test_smp_moves_overhead_to_comm_thread(self, smp_machine):
        net = NetworkModel()
        c = net.message_costs(smp_machine, 0, 6, 1000)
        assert c.src_comm > 0 and c.dst_comm > 0
        assert c.src_cpu < net.send_overhead  # PE pays only the hand-off

    def test_non_smp_pays_inline_with_penalty(self, flat_machine):
        net = NetworkModel()
        c = net.message_costs(flat_machine, 0, 9, 1000)
        assert c.src_comm == 0 and c.dst_comm == 0
        assert c.src_cpu > net.send_overhead  # inflated by the penalty

    def test_non_smp_pe_cpu_cost_exceeds_smp(self, smp_machine, flat_machine):
        net = NetworkModel()
        smp = net.message_costs(smp_machine, 0, 6, 1000)
        flat = net.message_costs(flat_machine, 0, 9, 1000)
        assert flat.src_cpu + flat.dst_cpu > smp.src_cpu + smp.dst_cpu

    def test_tree_hop_cost_positive(self):
        assert NetworkModel().tree_hop_cost() > 0
