"""Benchmark-artifact hygiene: one emitter, one schema.

Every benchmark must publish its headline numbers through
:func:`benchmarks.emit.emit_result` so the ``BENCH_<name>.json``
trajectory stays machine-readable.  Two guards:

* every committed ``BENCH_*.json`` follows the emitter's schema, and
* no benchmark script writes benchmark JSON behind the emitter's back
  (asserted by AST scan, so a regression cannot hide in a new file).
"""

import ast
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

SCHEMA_KEYS = {"name", "params", "wall_seconds", "speedup", "git_sha"}


def bench_artifacts() -> list[Path]:
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def bench_scripts() -> list[Path]:
    return sorted(p for p in BENCH_DIR.glob("*.py") if p.name != "emit.py")


class TestArtifactSchema:
    def test_artifacts_exist(self):
        assert bench_artifacts(), "no BENCH_*.json committed at the repo root"

    @pytest.mark.parametrize("path", bench_artifacts(), ids=lambda p: p.name)
    def test_schema(self, path):
        payload = json.loads(path.read_text())
        assert set(payload) == SCHEMA_KEYS, (
            f"{path.name} keys {sorted(payload)} != schema {sorted(SCHEMA_KEYS)}"
        )
        assert path.name == f"BENCH_{payload['name']}.json"
        assert isinstance(payload["params"], dict)
        assert payload["wall_seconds"], "wall_seconds must be non-empty"
        for label, seconds in payload["wall_seconds"].items():
            assert isinstance(label, str)
            assert isinstance(seconds, (int, float)) and seconds >= 0
        for label, ratio in payload["speedup"].items():
            assert isinstance(ratio, (int, float)) and ratio > 0


class TestSweepArtifact:
    """BENCH_sweep.json: the lab's perf trajectory must stay honest."""

    def test_sweep_artifact_committed(self):
        assert (REPO_ROOT / "BENCH_sweep.json") in bench_artifacts()

    def test_sweep_artifact_contents(self):
        payload = json.loads((REPO_ROOT / "BENCH_sweep.json").read_text())
        assert {"sweep_cold_w2", "sweep_warm_w2", "sweep_warm_w1"} <= set(
            payload["wall_seconds"]
        )
        assert {"warm_over_cold", "w2_over_w1"} <= set(payload["speedup"])
        # The artifact is only meaningful if the runs it measured were
        # deterministic and the warm cache actually hit.
        assert payload["params"]["stores_identical"] is True
        assert payload["params"]["warm_cache_hit_rate"] == 1.0


class TestSynthpopScaleArtifact:
    """BENCH_synthpop_scale.json: the scaling playbook's evidence.

    The committed artifact must show a ≥10M-person population generated
    and block-partitioned on a capped anonymous-memory budget, with the
    bytes/person accounting and the RAM↔memmap equality proofs intact
    (see docs/scaling.md and ISSUE acceptance criteria).
    """

    @pytest.fixture()
    def payload(self):
        path = REPO_ROOT / "BENCH_synthpop_scale.json"
        assert path in bench_artifacts(), "BENCH_synthpop_scale.json not committed"
        return json.loads(path.read_text())

    def test_ten_million_persons_reached(self, payload):
        assert payload["params"]["max_persons"] >= 10_000_000
        assert payload["params"]["tiny"] is False, (
            "committed artifact must come from a full run, not REPRO_BENCH_TINY"
        )

    def test_memory_accounting_present(self, payload):
        p = payload["params"]
        assert p["bytes_per_person"] > 0
        assert p["budget_bytes"] > 0
        assert any(k.startswith("maxrss_mb_") for k in p)
        assert any(k.startswith("disk_mb_") for k in p)

    def test_memmap_path_verified(self, payload):
        p = payload["params"]
        assert p["memmap_verified"] is True
        assert p["content_hash_equal"] is True
        assert p["epidemic_equal"] is True
        assert p["spec_hash_equal"] is True

    def test_generation_and_partition_timed_per_scale(self, payload):
        wall = payload["wall_seconds"]
        for n in payload["params"]["scales"]:
            label = f"{n // 1000}k" if n < 1_000_000 else f"{n // 1_000_000}m"
            assert f"gen_{label}" in wall and f"part_{label}" in wall


class TestSingleEmitter:
    @pytest.mark.parametrize("path", bench_scripts(), ids=lambda p: p.name)
    def test_no_direct_bench_json_writes(self, path):
        """Benchmarks reach BENCH_*.json only through benchmarks.emit."""
        tree = ast.parse(path.read_text())
        offenders: list[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                fn = node.func
                # json.dump / json.dumps calls
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in ("dump", "dumps")
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == "json"
                ):
                    offenders.append(f"line {node.lineno}: json.{fn.attr}(...)")
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value.startswith("BENCH_"):
                    offenders.append(f"line {node.lineno}: literal {node.value!r}")
        assert not offenders, (
            f"{path.name} bypasses benchmarks.emit: " + "; ".join(offenders)
        )

    def test_json_emitting_benches_route_through_emitter(self):
        # Figure benches write plain-text results via conftest; any
        # bench touching JSON at all must do it through emit_result.
        for path in bench_scripts():
            text = path.read_text()
            if "json" in text:
                assert "emit_result" in text, (
                    f"{path.name} handles JSON without benchmarks.emit"
                )

    def test_no_import_of_json_module_outside_emitter(self):
        for path in bench_scripts():
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    assert not any(a.name == "json" for a in node.names), (
                        f"{path.name} imports json directly; use benchmarks.emit"
                    )
                if isinstance(node, ast.ImportFrom):
                    assert node.module != "json", (
                        f"{path.name} imports from json; use benchmarks.emit"
                    )
