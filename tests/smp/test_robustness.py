"""Failure handling, resource hygiene, and the integration surfaces.

A worker process dying mid-phase must surface as a clean
:class:`~repro.smp.SmpWorkerError` on the driver — never a hang on the
completion spin loop — and every shared-memory segment must be
unlinked on that path too (the autouse conftest fixture enforces the
latter for every test here).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import Scenario, TransmissionModel
from repro.smp import SmpSimulator, SmpWorkerError
from repro.smp.worker import FAULT_EXIT_CODE
from repro.synthpop import PopulationConfig, generate_population


@pytest.fixture(scope="module")
def graph():
    return generate_population(PopulationConfig(n_persons=250), 31, name="smp-rob")


def make_scenario(graph, n_days=4):
    return Scenario(
        graph=graph, n_days=n_days, seed=4, initial_infections=6,
        transmission=TransmissionModel(2e-4),
    )


@pytest.mark.parametrize("phase", ["person", "location", "apply"])
def test_worker_crash_raises_not_hangs(graph, phase):
    sim = SmpSimulator(
        make_scenario(graph), n_workers=2,
        _fault={"rank": 1, "day": 0, "phase": phase},
    )
    t0 = time.monotonic()
    with pytest.raises(SmpWorkerError, match=f"exit code {FAULT_EXIT_CODE}"):
        sim.run()
    # The driver detects the death by polling liveness, not by waiting
    # out the phase timeout — seconds, not minutes.
    assert time.monotonic() - t0 < 30.0


def test_crash_on_later_day_after_real_progress(graph):
    with pytest.raises(SmpWorkerError):
        SmpSimulator(
            make_scenario(graph), n_workers=2,
            _fault={"rank": 0, "day": 2, "phase": "location"},
        ).run()


def test_surviving_workers_do_not_deadlock_each_other(graph):
    # With 4 workers and one death, three peers are spinning in
    # wait_closed; the driver's abort flag must break all of them out.
    with pytest.raises(SmpWorkerError):
        SmpSimulator(
            make_scenario(graph), n_workers=4,
            _fault={"rank": 2, "day": 0, "phase": "person"},
        ).run()


def test_bad_arguments_rejected(graph):
    sc = make_scenario(graph)
    with pytest.raises(ValueError, match="n_workers"):
        SmpSimulator(sc, n_workers=0)
    with pytest.raises(ValueError, match="ring_capacity"):
        SmpSimulator(sc, n_workers=2, ring_capacity=8, batch=64)


def test_parallel_facade_delegates_to_smp(graph):
    from repro.charm.machine import Machine, MachineConfig
    from repro.core.parallel import Distribution, ParallelEpiSimdemics
    from repro.core.simulator import SequentialSimulator
    from repro.partition.metis import partition_bipartite

    machine = MachineConfig(n_nodes=1, cores_per_node=4, processes_per_node=2)
    bp = partition_bipartite(graph, 2)
    dist = Distribution.from_partition(bp, Machine(machine))
    sim = ParallelEpiSimdemics(
        make_scenario(graph), machine, dist, backend="smp"
    )
    out = sim.run()
    seq = SequentialSimulator(make_scenario(graph)).run()
    assert out.result.curve == seq.curve
    assert out.n_workers == 2


def test_parallel_facade_rejects_unknown_backend(graph):
    from repro.charm.machine import Machine, MachineConfig
    from repro.core.parallel import Distribution, ParallelEpiSimdemics
    from repro.partition.metis import partition_bipartite

    machine = MachineConfig(n_nodes=1, cores_per_node=4, processes_per_node=2)
    dist = Distribution.from_partition(
        partition_bipartite(graph, 2), Machine(machine)
    )
    with pytest.raises(ValueError, match="backend"):
        ParallelEpiSimdemics(make_scenario(graph), machine, dist, backend="mpi")


def test_smp_oracle_matrix_cell():
    from repro.validate import run_smp_matrix

    report = run_smp_matrix(
        workers=(2,), presets=("tiny",), n_days=3, tiny_persons=120
    )
    assert report.all_equal
    assert [c.label for c in report.cells] == ["tiny×w2"]
    assert "exact" in report.format()


def test_profile_backend_smp_emits_per_pe_tracks(tmp_path):
    from repro.observe.profile import run_profile

    rep = run_profile("tiny", backend="smp", workers=2, out_dir=tmp_path)
    assert rep.curves_identical
    assert rep.n_pes == 2
    pes = {span.pe for span in rep.observer.virtual_spans}
    assert pes == {0, 1}
    names = {span.name for span in rep.observer.virtual_spans}
    assert "pe.person_phase" in names and "pe.location_phase" in names
    assert (tmp_path / "trace.json").exists()


def test_final_state_arrays_are_copies(graph):
    # The result must stay valid after the arena is unlinked.
    out = SmpSimulator(make_scenario(graph, n_days=2), n_workers=2).run()
    assert isinstance(out.final_health_state, np.ndarray)
    assert out.final_health_state.base is None or isinstance(
        out.final_health_state.base, np.ndarray
    )
    # Touching the data must not fault (segment is gone by now).
    assert out.final_health_state.sum() >= 0
