"""SPSC ring grid and aggregating mailbox unit tests.

Everything runs on plain in-process int64 arrays — the ring code is
memory-layout-agnostic, so wraparound, atomicity and backpressure are
exercised here without forking a single process.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.smp import Mailbox, RingFull, RingGrid


def make_grid(n=2, capacity=8) -> RingGrid:
    return RingGrid(np.zeros(RingGrid.shape(n, capacity), dtype=np.int64), capacity)


class TestRingGrid:
    def test_fifo_roundtrip(self):
        grid = make_grid()
        assert grid.try_push(0, 1, [1, 2, 3])
        assert grid.try_push(0, 1, [4])
        assert grid.pop_all(1, 0).tolist() == [1, 2, 3, 4]
        assert grid.pop_all(1, 0).size == 0

    def test_wraparound_preserves_order(self):
        # Capacity 8; push/pop 100 words in ragged bursts so the
        # monotonic counters lap the buffer many times.
        grid = make_grid(capacity=8)
        sent, got = [], []
        value = 0
        rng = np.random.default_rng(0)
        while len(got) < 100:
            k = int(rng.integers(1, 6))
            words = list(range(value, value + k))
            if grid.try_push(0, 1, words):
                sent += words
                value += k
            got += grid.pop_all(1, 0).tolist()
        assert got == sent[: len(got)] == list(range(len(got)))

    def test_full_burst_rejected_atomically(self):
        grid = make_grid(capacity=8)
        assert grid.try_push(0, 1, [0] * 6)
        # 3 words > 2 free: rejected whole, nothing partially written.
        assert not grid.try_push(0, 1, [7, 8, 9])
        assert grid.pending(1, 0) == 6
        assert grid.pop_all(1, 0).tolist() == [0] * 6
        # After the drain the burst fits.
        assert grid.try_push(0, 1, [7, 8, 9])
        assert grid.pop_all(1, 0).tolist() == [7, 8, 9]

    def test_burst_larger_than_capacity_raises(self):
        grid = make_grid(capacity=8)
        with pytest.raises(ValueError, match="exceeds ring capacity"):
            grid.try_push(0, 1, list(range(9)))

    def test_free_and_pending_agree(self):
        grid = make_grid(capacity=8)
        grid.try_push(0, 1, [1, 2, 3])
        assert grid.free(0, 1) == 5
        assert grid.pending(1, 0) == 3

    def test_rings_are_independent(self):
        grid = make_grid(n=3)
        grid.try_push(0, 1, [10])
        grid.try_push(2, 1, [20])
        grid.try_push(0, 2, [30])
        assert dict(grid.drain_into(1)) .keys() == {0, 2}
        assert grid.pop_all(2, 0).tolist() == [30]

    def test_block_shape_validated(self):
        with pytest.raises(ValueError, match="does not match"):
            RingGrid(np.zeros((2, 2, 4), dtype=np.int64), capacity=8)


class TestMailbox:
    def test_batch_flush_threshold(self):
        grid = make_grid()
        a, b = Mailbox(grid, 0, batch=4), Mailbox(grid, 1, batch=4)
        a.send(1, [1, 2])
        assert b.receive() == []          # staged, below threshold
        assert a.staged_words == 2
        a.send(1, [3, 4])                 # hits the batch -> flushed
        assert [(s, w.tolist()) for s, w in b.receive()] == [(0, [1, 2, 3, 4])]
        assert a.staged_words == 0

    def test_records_never_torn(self):
        # record=3 events through a capacity-9 ring: every burst the
        # consumer sees is a whole number of records.
        grid = make_grid(capacity=9)
        a = Mailbox(grid, 0, batch=6, record=3,
                    on_backpressure=lambda: drain())
        b = Mailbox(grid, 1, batch=6, record=3)
        got = []

        def drain():
            for _, words in b.receive():
                assert words.size % 3 == 0
                got.extend(map(tuple, words.reshape(-1, 3)))

        records = [(i, 100 + i, 200 + i) for i in range(40)]
        for r in records:
            a.send(1, list(r))
        a.flush()
        drain()
        assert got == records

    def test_partial_record_rejected(self):
        a = Mailbox(make_grid(), 0, batch=6, record=3)
        with pytest.raises(ValueError, match="not a multiple of record"):
            a.send(1, [1, 2])

    def test_batch_floored_to_record_multiple(self):
        a = Mailbox(make_grid(capacity=32), 0, batch=8, record=3)
        assert a.batch == 6

    def test_backpressure_drains_and_counts(self):
        grid = make_grid(capacity=4)
        b = Mailbox(grid, 1, batch=4)
        delivered = []
        a = Mailbox(
            grid, 0, batch=4,
            on_backpressure=lambda: delivered.extend(
                w for _, ws in b.receive() for w in ws.tolist()),
        )
        for i in range(0, 40, 2):
            a.send(1, [i, i + 1])
        a.flush()
        delivered.extend(w for _, ws in b.receive() for w in ws.tolist())
        assert delivered == list(range(40))
        assert a.backpressure_events > 0
        assert a.words_sent == 40

    def test_ring_full_without_handler_raises(self):
        grid = make_grid(capacity=4)
        a = Mailbox(grid, 0, batch=4)
        a.send(1, [1, 2, 3, 4])           # fills the ring
        with pytest.raises(RingFull, match="0->1 full"):
            a.send(1, [5, 6, 7, 8])

    def test_on_sent_counts_at_publication(self):
        grid = make_grid()
        pushed = []
        a = Mailbox(grid, 0, batch=4, on_sent=pushed.append)
        a.send(1, [1, 2])
        assert pushed == []               # staged only
        a.flush()
        assert sum(pushed) == 2
