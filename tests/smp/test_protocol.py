"""The struct-packed day-barrier wire protocol and zero-copy routing.

These are the regression teeth behind the SMP slowdown fix: the
per-day pipe traffic must stay *flat-layout bytes whose size is an
explicit function of the counts* (no pickled tuples, no pickled numpy
arrays), and visit/event routing must hand the mailboxes contiguous
slices of one destination-sorted array (no per-destination copies).
A real two-worker run is held to the exact byte budget.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import Scenario, TransmissionModel
from repro.smp import SmpSimulator, protocol
from repro.smp.backoff import BASE_SLEEP, MAX_SLEEP, YIELD_LAPS, Backoff
from repro.smp.ring import DEFAULT_BURST_BYTES, Mailbox, RingGrid, route_records
from repro.synthpop import PopulationConfig, generate_population


class TestCommands:
    def test_day_roundtrip_is_fixed_size(self):
        buf = protocol.encode_day(17, 0.125, 0.75)
        assert len(buf) == protocol.COMMAND_NBYTES
        assert protocol.decode_command(buf) == (protocol.OP_DAY, 17, 0.125, 0.75)

    def test_stop_roundtrip(self):
        buf = protocol.encode_stop()
        assert len(buf) == protocol.COMMAND_NBYTES
        assert protocol.decode_command(buf)[0] == protocol.OP_STOP


def make_report(n_events=5, stats=False):
    events = np.arange(n_events * 3, dtype=np.int64).reshape(n_events, 3)
    pairs = (
        (np.array([7, 9], dtype=np.int64), np.array([2, 4], dtype=np.int64))
        if stats
        else None
    )
    return protocol.DayReport(
        day=3, transitions=11, visits_made=200, infected=n_events,
        backpressure=1, clocks=(1.0, 2.0, 3.5, 4.25), events=events,
        stats_events=pairs, stats_interactions=pairs,
    )


class TestReports:
    @pytest.mark.parametrize("n_events", [0, 1, 13])
    @pytest.mark.parametrize("stats", [False, True])
    def test_roundtrip(self, n_events, stats):
        r = make_report(n_events, stats)
        buf = protocol.encode_report(r)
        out = protocol.decode_report(buf)
        assert (out.day, out.transitions, out.visits_made, out.infected,
                out.backpressure, out.clocks) == (
                   r.day, r.transitions, r.visits_made, r.infected,
                   r.backpressure, r.clocks)
        np.testing.assert_array_equal(out.events, r.events)
        if stats:
            for got, want in ((out.stats_events, r.stats_events),
                              (out.stats_interactions, r.stats_interactions)):
                np.testing.assert_array_equal(got[0], want[0])
                np.testing.assert_array_equal(got[1], want[1])
        else:
            assert out.stats_events is None and out.stats_interactions is None

    @pytest.mark.parametrize("n_events,stats", [(0, False), (9, False), (4, True)])
    def test_size_is_exactly_the_budget_formula(self, n_events, stats):
        r = make_report(n_events, stats)
        n_pairs = 2 if stats else 0
        assert len(protocol.encode_report(r)) == protocol.report_nbytes(
            n_events, n_pairs, n_pairs
        )

    def test_payload_contains_no_pickle(self):
        """The uplink is raw little-endian words — if anyone reintroduces
        ``conn.send`` of arrays, the size formula and these markers break."""
        buf = protocol.encode_report(make_report(50, stats=True))
        for marker in (
            pickle.dumps(np.int64(0))[:2],  # pickle protocol header
            b"numpy",                       # ndarray reconstructor path
            b"ndarray",
        ):
            assert marker not in buf

    def test_decode_is_zero_copy(self):
        buf = protocol.encode_report(make_report(8))
        out = protocol.decode_report(buf)
        assert out.events.base is not None  # a view of the buffer, not a copy

    def test_opcode_peek_and_error_roundtrip(self):
        err = protocol.encode_error("ValueError('x')", "trace\nback")
        assert protocol.opcode(err) == protocol.OP_ERROR
        assert protocol.decode_error(err) == ("ValueError('x')", "trace\nback")
        assert protocol.opcode(protocol.encode_report(make_report())) \
            == protocol.OP_DAY_DONE


class TestRouteRecords:
    def test_parts_are_views_of_one_sorted_array(self):
        values = np.arange(100, dtype=np.int64)
        dests = values % 3
        routed, parts = route_records(values, dests, 3)
        assert len(parts) == 3
        for dst, part in enumerate(parts):
            assert np.shares_memory(part, routed)  # zero-copy contract
            assert part.tolist() == sorted(values[dests == dst].tolist())

    def test_record_rows_stay_whole(self):
        ev = np.arange(30, dtype=np.int64).reshape(10, 3)
        dests = np.array([0, 1] * 5)
        routed, parts = route_records(ev, dests, 2)
        assert np.shares_memory(parts[0], routed)
        got = {tuple(r) for p in parts for r in p.reshape(-1, 3)}
        assert got == {tuple(r) for r in ev}

    def test_empty_destination_gets_empty_view(self):
        _, parts = route_records(np.array([1, 2], dtype=np.int64),
                                 np.array([0, 0]), 3)
        assert parts[1].size == 0 and parts[2].size == 0


class TestBurstSizing:
    def make_grid(self, n=2, capacity=1024):
        return RingGrid(
            np.zeros(RingGrid.shape(n, capacity), dtype=np.int64), capacity
        )

    def test_default_burst_is_bytes_not_words(self):
        mb = Mailbox(self.make_grid(), 0)
        assert mb.burst_bytes == DEFAULT_BURST_BYTES
        assert mb.batch == DEFAULT_BURST_BYTES // 8

    def test_wide_records_get_fewer_per_burst(self):
        mb = Mailbox(self.make_grid(), 0, burst_bytes=2048, record=3)
        assert mb.batch == 255          # floor(2048/24) records * 3 words
        assert mb.batch % 3 == 0

    def test_legacy_batch_kwarg_still_words(self):
        mb = Mailbox(self.make_grid(), 0, batch=64)
        assert mb.batch == 64 and mb.burst_bytes == 512

    def test_batch_and_burst_bytes_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            Mailbox(self.make_grid(), 0, batch=8, burst_bytes=64)


class TestBackoff:
    def test_yields_then_doubles_to_cap(self):
        b = Backoff()
        delays = []
        for _ in range(12):
            delays.append(b.next_delay())
            b.pause()
        assert delays[:YIELD_LAPS] == [0.0] * YIELD_LAPS
        sleeps = delays[YIELD_LAPS:]
        assert sleeps[0] == BASE_SLEEP
        assert all(b == min(a * 2, MAX_SLEEP)
                   for a, b in zip(sleeps, sleeps[1:]))
        assert max(sleeps) == MAX_SLEEP

    def test_reset_restarts_the_ladder(self):
        b = Backoff()
        for _ in range(8):
            b.pause()
        b.reset()
        assert b.next_delay() == 0.0


class TestWireBudget:
    def test_two_worker_run_matches_exact_byte_budget(self):
        """End-to-end: the day barrier of a real forked run carries
        exactly commands + headers + 24 bytes per infection event."""
        graph = generate_population(
            PopulationConfig(n_persons=300), 21, name="wire-budget"
        )
        n_days, n_workers = 5, 2
        out = SmpSimulator(
            Scenario(
                graph=graph, n_days=n_days, seed=2, initial_infections=8,
                transmission=TransmissionModel(2e-4),
            ),
            n_workers=n_workers,
        ).run()
        n_events = sum(len(evs) for evs in out.infection_log.values())
        expected = n_days * n_workers * (
            protocol.COMMAND_NBYTES + protocol.REPORT_HEADER_NBYTES
        ) + 24 * n_events
        assert out.wire_bytes == expected
        assert n_events > 0  # the budget must be exercised, not vacuous
