"""Fixtures for the shared-memory backend tests.

The autouse leak guard is the teeth behind the "segments are always
unlinked" contract: any test that leaves a ``repro-smp-*`` segment in
``/dev/shm`` — success path, crash path, or exception path — fails.
"""

from __future__ import annotations

import glob
import os

import pytest

SHM_DIR = "/dev/shm"


def _segments() -> set[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return set(glob.glob(os.path.join(SHM_DIR, "repro-smp-*")))


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Fail any test that leaks a shared-memory segment."""
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
