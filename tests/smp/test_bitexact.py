"""Bit-exactness of the forked backend against the sequential reference.

The whole point of the smp backend: same keyed RNG, same phase
ordering, therefore the *identical* epidemic — curve, every individual
infection event, and the final per-person state arrays — regardless of
how many real processes the population is split across.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Scenario, TransmissionModel
from repro.core.interventions import parse_intervention_script
from repro.smp import SmpSimulator, heavy_tailed_graph
from repro.synthpop import PopulationConfig, generate_population
from repro.validate.oracle import sequential_reference


def assert_bitexact(make_scenario, workers: int, **smp_kwargs) -> None:
    seq_result, seq_events, seq_state, seq_remaining = sequential_reference(
        make_scenario()
    )
    out = SmpSimulator(make_scenario(), n_workers=workers, **smp_kwargs).run()

    assert out.result.curve == seq_result.curve
    smp_events = {
        day: {(e.person, e.location) for e in events}
        for day, events in out.infection_log.items()
    }
    assert smp_events == seq_events
    np.testing.assert_array_equal(out.final_health_state, seq_state)
    np.testing.assert_array_equal(out.final_days_remaining, seq_remaining)


@pytest.fixture(scope="module")
def tiny_graph():
    return generate_population(PopulationConfig(n_persons=300), 21, name="smp-tiny")


@pytest.fixture(scope="module")
def heavy_graph():
    return heavy_tailed_graph(n_persons=1500, n_locations=200, seed=9)


def make_tiny(graph, **overrides):
    def factory():
        kwargs = dict(
            graph=graph, n_days=6, seed=2, initial_infections=8,
            transmission=TransmissionModel(2e-4),
        )
        kwargs.update(overrides)
        return Scenario(**kwargs)

    return factory


@pytest.mark.parametrize("workers", [1, 2])
def test_tiny_population(tiny_graph, workers):
    assert_bitexact(make_tiny(tiny_graph), workers)


@pytest.mark.slow
def test_tiny_population_four_workers(tiny_graph):
    assert_bitexact(make_tiny(tiny_graph), 4)


@pytest.mark.slow
@pytest.mark.parametrize("workers", [2, 4])
def test_heavy_tailed_population(heavy_graph, workers):
    # Zipf location popularity: one location absorbs a big share of
    # all visits, so the row traffic between workers is maximally
    # lopsided — the splitLoc-motivating regime.
    assert_bitexact(
        make_tiny(heavy_graph, transmission=TransmissionModel(3e-4)), workers
    )


def test_tight_rings_still_exact(tiny_graph):
    # Force heavy backpressure: rings barely larger than one batch.
    # Correctness must not depend on ring capacity, only progress does.
    out_kwargs = dict(ring_capacity=64, batch=16)
    assert_bitexact(make_tiny(tiny_graph), 2, **out_kwargs)


SCRIPT = """
vaccinate coverage=0.3 day=1 ages=5-18
close_schools prevalence=0.02 duration=3
stay_home compliance=0.5
"""


@pytest.mark.parametrize("workers", [2])
def test_interventions_bitexact(tiny_graph, workers):
    # Treatments mutate centrally on the driver, triggers fire off
    # broadcast prevalence — the schedule state must evolve identically
    # in every forked copy for this to pass.  Trigger state lives in
    # the schedule, so each run parses a fresh one.
    def factory():
        return make_tiny(
            tiny_graph,
            interventions=parse_intervention_script(SCRIPT),
            transmission=TransmissionModel(4e-4),
        )()

    assert_bitexact(factory, workers)


def test_phase_times_cover_every_day(tiny_graph):
    out = SmpSimulator(make_tiny(tiny_graph)(), n_workers=2).run()
    assert [pt.day for pt in out.phase_times] == list(range(6))
    for pt in out.phase_times:
        assert 0.0 <= pt.person_phase and 0.0 <= pt.location_phase
        assert pt.total >= pt.person_phase + pt.location_phase
