"""Shared-counter phase completion: closure logic and its stability.

The detector runs on plain arrays here; the property under test is the
predicate itself — ``all(done) and sum(produced) == sum(consumed)`` —
and the snapshot order that makes it sound (done before produced
before consumed, see the :mod:`repro.smp.completion` docstring).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.smp import PhaseTimeout, ShmPhaseDetector


def make_pair(n=2):
    counters = np.zeros((3, n), dtype=np.int64)
    return [ShmPhaseDetector(counters, rank=r) for r in range(n)]


def test_not_closed_until_all_done():
    a, b = make_pair()
    a.producer_done()
    assert not a.closed()                 # b never declared done
    b.producer_done()
    assert a.closed()


def test_not_closed_with_messages_in_flight():
    a, b = make_pair()
    a.produce(5)
    a.producer_done()
    b.producer_done()
    assert not a.closed()
    b.consume(4)
    assert not b.closed()
    b.consume(1)
    assert a.closed() and b.closed()


def test_cross_consumption_balances_globally():
    # Closure is on the global sums, not per-pair matching: a's 3
    # messages may be consumed entirely by b while a consumes b's 2.
    a, b = make_pair()
    a.produce(3)
    b.produce(2)
    a.consume(2)
    b.consume(3)
    a.producer_done()
    b.producer_done()
    assert a.closed()


@given(
    st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=5),
)
def test_closed_is_stable_once_true(produced_per_worker):
    """Once closed() returns True it can never flip back (no writers run
    after closure in a correct phase, and the counts are exact)."""
    n = len(produced_per_worker)
    counters = np.zeros((3, n), dtype=np.int64)
    dets = [ShmPhaseDetector(counters, rank=r) for r in range(n)]
    for det, k in zip(dets, produced_per_worker):
        det.produce(k)
        det.producer_done()
    total = sum(produced_per_worker)
    dets[0].consume(total)
    for det in dets:
        assert det.closed()
    assert dets[0].closed()               # repeated reads stay closed


def test_wait_closed_runs_drain_until_closure():
    a, b = make_pair()
    a.produce(4)
    a.producer_done()
    b.producer_done()
    inbox = [4]

    def drain():
        if inbox:
            b.consume(inbox.pop())
            return True
        return False

    b.wait_closed(drain, timeout=5.0)
    assert b.closed()


def test_wait_closed_times_out_on_dead_peer():
    a, b = make_pair()
    a.produce(1)                          # a dies before producer_done()
    b.producer_done()
    with pytest.raises(PhaseTimeout, match="did not close"):
        b.wait_closed(lambda: False, timeout=0.05)


def test_wait_closed_abort_hook_raises_out():
    class Torn(RuntimeError):
        pass

    def abort():
        raise Torn

    a, b = make_pair()
    b.producer_done()                     # a never finishes
    with pytest.raises(Torn):
        b.wait_closed(lambda: False, timeout=5.0, should_abort=abort)


def test_reset_reopens_the_phase():
    a, b = make_pair()
    a.producer_done()
    b.producer_done()
    assert a.closed()
    a.reset()
    assert not a.closed()
    assert a.counters.sum() == 0


def test_counter_shape_validated():
    with pytest.raises(ValueError, match=r"expected \(3, n\)"):
        ShmPhaseDetector(np.zeros((2, 4), dtype=np.int64), rank=0)
