"""Population persistence round-trips."""

import numpy as np
import pytest

from repro.synthpop import (
    PopulationConfig,
    generate_population,
    load_population,
    save_population,
)


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path, tiny_graph):
        path = tmp_path / "pop.npz"
        save_population(tiny_graph, path)
        back = load_population(path)
        assert back.name == tiny_graph.name
        assert back.n_persons == tiny_graph.n_persons
        assert back.n_locations == tiny_graph.n_locations
        for f in (
            "visit_person", "visit_location", "visit_subloc", "visit_start",
            "visit_end", "location_n_sublocs", "location_type", "person_age",
            "person_home",
        ):
            np.testing.assert_array_equal(getattr(back, f), getattr(tiny_graph, f))

    def test_suffix_added(self, tmp_path):
        g = generate_population(PopulationConfig(n_persons=60), 0)
        save_population(g, tmp_path / "x")  # numpy appends .npz
        back = load_population(tmp_path / "x")
        assert back.n_persons == 60

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_population(tmp_path / "nope.npz")

    def test_loaded_graph_usable_in_simulation(self, tmp_path, tiny_graph):
        from repro.core import Scenario, SequentialSimulator

        save_population(tiny_graph, tmp_path / "g.npz")
        g = load_population(tmp_path / "g.npz")
        res = SequentialSimulator(Scenario(graph=g, n_days=3, seed=1)).run()
        assert res.curve.n_days == 3
