"""Power-law samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synthpop.powerlaw import (
    bounded_zipf_sample,
    pareto_attractiveness,
    powerlaw_normalisation,
)
from repro.util.histogram import fit_powerlaw_exponent


class TestParetoAttractiveness:
    def test_respects_bounds(self, rng):
        x = pareto_attractiveness(rng, 10_000, beta=2.0, x_min=1.0, x_max=500.0)
        assert x.min() >= 1.0
        assert x.max() <= 500.0

    def test_unbounded_tail_exponent(self, rng):
        x = pareto_attractiveness(rng, 300_000, beta=2.2, x_min=1.0)
        assert fit_powerlaw_exponent(x) == pytest.approx(2.2, rel=0.03)

    def test_rejects_beta_at_most_one(self, rng):
        with pytest.raises(ValueError):
            pareto_attractiveness(rng, 10, beta=1.0)

    def test_rejects_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            pareto_attractiveness(rng, 10, x_min=2.0, x_max=1.0)

    def test_zero_samples(self, rng):
        assert pareto_attractiveness(rng, 0).shape == (0,)

    @given(st.floats(1.3, 4.0), st.integers(1, 1000))
    @settings(max_examples=25, deadline=None)
    def test_always_at_least_xmin(self, beta, n):
        rng = np.random.default_rng(0)
        x = pareto_attractiveness(rng, n, beta=beta, x_min=3.0)
        assert np.all(x >= 3.0)


class TestBoundedZipf:
    def test_support(self, rng):
        d = bounded_zipf_sample(rng, 5000, beta=2.0, d_min=2, d_max=50)
        assert d.min() >= 2 and d.max() <= 50

    def test_heavier_tail_for_smaller_beta(self, rng):
        light = bounded_zipf_sample(rng, 20_000, beta=3.0, d_max=1000)
        heavy = bounded_zipf_sample(rng, 20_000, beta=1.6, d_max=1000)
        assert heavy.mean() > light.mean()

    def test_rejects_bad_range(self, rng):
        with pytest.raises(ValueError):
            bounded_zipf_sample(rng, 10, 2.0, d_min=5, d_max=4)


class TestNormalisation:
    def test_matches_zeta_for_beta2(self):
        # c = 1/zeta(2) = 6/pi^2
        c = powerlaw_normalisation(2.0)
        assert c == pytest.approx(6.0 / np.pi**2, rel=1e-6)

    def test_diverges_at_one(self):
        with pytest.raises(ValueError):
            powerlaw_normalisation(1.0)
