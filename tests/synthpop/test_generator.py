"""Population generator: structure, statistics, determinism."""

import numpy as np
import pytest

from repro.synthpop import PopulationConfig, generate_population
from repro.synthpop.graph import LocationType
from repro.util.histogram import fit_powerlaw_exponent


@pytest.fixture(scope="module")
def pop():
    return generate_population(PopulationConfig(n_persons=4000), 42, name="gen-test")


class TestStructure:
    def test_validates(self, pop):
        pop.validate()  # does not raise

    def test_every_person_visits_home_twice(self, pop):
        home_visits = pop.visit_location == pop.person_home[pop.visit_person]
        per_person = np.bincount(pop.visit_person[home_visits], minlength=pop.n_persons)
        assert np.all(per_person >= 2)

    def test_home_buildings_are_home_type(self, pop):
        homes = np.unique(pop.person_home)
        assert np.all(pop.location_type[homes] == LocationType.HOME)

    def test_visits_sorted_by_person(self, pop):
        assert np.all(np.diff(pop.visit_person) >= 0)

    def test_sublocation_bounds(self, pop):
        assert np.all(pop.visit_subloc < pop.location_n_sublocs[pop.visit_location])


class TestStatistics:
    def test_person_degree_moments_match_paper(self, pop):
        deg = pop.person_degrees
        assert deg.mean() == pytest.approx(5.5, abs=0.25)
        assert deg.std() == pytest.approx(2.6, abs=0.4)

    def test_location_degree_mean_near_target(self, pop):
        assert pop.n_visits / pop.n_locations == pytest.approx(21.5, rel=0.15)

    def test_location_indegree_heavy_tailed(self, pop):
        ind = pop.location_in_degrees()
        # Heavy tail: the max location dwarfs the median.
        assert ind.max() > 20 * np.median(ind[ind > 0])
        beta = fit_powerlaw_exponent(ind[ind >= 5].astype(float), xmin=5.0)
        assert 1.2 < beta < 3.5

    def test_locations_per_person_ratio(self, pop):
        # Table I: US has 0.256 locations per person.
        assert pop.n_locations / pop.n_persons == pytest.approx(0.256, rel=0.2)


class TestDeterminism:
    def test_same_seed_same_graph(self):
        cfg = PopulationConfig(n_persons=500)
        a = generate_population(cfg, 7)
        b = generate_population(cfg, 7)
        np.testing.assert_array_equal(a.visit_person, b.visit_person)
        np.testing.assert_array_equal(a.visit_location, b.visit_location)
        np.testing.assert_array_equal(a.visit_start, b.visit_start)

    def test_different_seed_different_graph(self):
        cfg = PopulationConfig(n_persons=500)
        a = generate_population(cfg, 7)
        b = generate_population(cfg, 8)
        assert not np.array_equal(a.visit_location, b.visit_location)


class TestConfigValidation:
    def test_rejects_tiny_mean_visits(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_persons=10, mean_visits=2.0)

    def test_rejects_zero_persons(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_persons=0)

    def test_rejects_bad_type_fractions(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_persons=10, type_fractions=(0.5, 0.5, 0.5, 0.5))

    def test_poisson_fallback_for_tight_dispersion(self):
        g = generate_population(
            PopulationConfig(n_persons=300, mean_visits=5.0, std_visits=1.0), 3
        )
        assert g.person_degrees.mean() == pytest.approx(5.0, abs=0.5)
