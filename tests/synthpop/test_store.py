"""PopulationBacking lifecycle and the directory population format."""

from __future__ import annotations

import gc
from pathlib import Path

import numpy as np
import pytest

from repro.synthpop import (
    PopulationBacking,
    PopulationConfig,
    generate_population,
    generate_population_streamed,
    load_population_dir,
    save_population_dir,
)


class TestBacking:
    def test_ram_allocate(self):
        b = PopulationBacking.create("ram")
        a = b.allocate("x", (10,), np.int32)
        assert a.shape == (10,) and a.dtype == np.int32 and (a == 0).all()
        assert b.nbytes == 40

    def test_memmap_allocate_creates_npy(self):
        b = PopulationBacking.create("memmap")
        a = b.allocate("visit_start", (100,), np.int32)
        a[:] = np.arange(100)
        f = Path(b.dir) / "visit_start.npy"
        assert f.exists()
        b.flush()
        np.testing.assert_array_equal(np.load(f), np.arange(100))
        b.close()

    def test_duplicate_name_rejected(self):
        b = PopulationBacking.create("ram")
        b.allocate("x", (1,), np.int8)
        with pytest.raises(ValueError, match="already allocated"):
            b.allocate("x", (1,), np.int8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="ram.*memmap"):
            PopulationBacking("weird")

    def test_close_removes_owned_dir(self):
        b = PopulationBacking.create("memmap")
        d = Path(b.dir)
        b.allocate("x", (5,), np.int64)
        b.close()
        assert not d.exists()

    def test_gc_removes_owned_dir(self):
        b = PopulationBacking.create("memmap")
        d = Path(b.dir)
        del b
        gc.collect()
        assert not d.exists()

    def test_persist_moves_and_disarms_cleanup(self, tmp_path):
        b = PopulationBacking.create("memmap")
        a = b.allocate("x", (4,), np.int64)
        a[:] = 7
        target = tmp_path / "artifact"
        assert b.persist(target) == target
        assert not b.owned
        del b
        gc.collect()
        np.testing.assert_array_equal(np.load(target / "x.npy"), [7, 7, 7, 7])

    def test_persist_requires_ownership(self, tmp_path):
        (tmp_path / "pre").mkdir()
        b = PopulationBacking("memmap", tmp_path / "pre", owned=False)
        with pytest.raises(ValueError, match="own"):
            b.persist(tmp_path / "out")

    def test_ram_cannot_persist(self, tmp_path):
        with pytest.raises(ValueError, match="memmap"):
            PopulationBacking.create("ram").persist(tmp_path / "out")


class TestPopulationDir:
    def test_round_trip_dense_graph(self, tmp_path):
        # The directory format also accepts plain dense graphs.
        g = generate_population(PopulationConfig(n_persons=150), 3)
        d = save_population_dir(g, tmp_path / "dense.d")
        g2 = load_population_dir(d)
        assert g2.content_hash() == g.content_hash()
        assert g2.name == g.name

    def test_mmap_false_loads_plain_arrays(self, tmp_path):
        g = generate_population_streamed(PopulationConfig(n_persons=80), 2)
        d = save_population_dir(g, tmp_path / "p.d")
        g2 = load_population_dir(d, mmap=False)
        assert not isinstance(g2.visit_person, np.memmap)
        assert g2.content_hash() == g.content_hash()

    def test_regions_round_trip(self, tmp_path):
        g = generate_population_streamed(
            PopulationConfig(n_persons=120, n_regions=3), 2
        )
        g2 = load_population_dir(save_population_dir(g, tmp_path / "r.d"))
        np.testing.assert_array_equal(
            np.asarray(g2.person_region), np.asarray(g.person_region)
        )

    def test_missing_column_rejected(self, tmp_path):
        g = generate_population_streamed(PopulationConfig(n_persons=50), 0)
        d = save_population_dir(g, tmp_path / "bad.d")
        (d / "visit_start.npy").unlink()
        with pytest.raises(ValueError, match="visit_start"):
            load_population_dir(d)

    def test_bad_format_version_rejected(self, tmp_path):
        g = generate_population_streamed(PopulationConfig(n_persons=50), 0)
        d = save_population_dir(g, tmp_path / "v.d")
        header = d / "header.json"
        header.write_text(header.read_text().replace('"format_version": 1', '"format_version": 99'))
        with pytest.raises(ValueError, match="format"):
            load_population_dir(d)

    def test_loaded_graph_backing_not_owned(self, tmp_path):
        g = generate_population_streamed(PopulationConfig(n_persons=50), 0)
        d = save_population_dir(g, tmp_path / "keep.d")
        g2 = load_population_dir(d)
        del g2
        gc.collect()
        assert d.is_dir()  # loading never claims ownership
