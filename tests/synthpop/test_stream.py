"""The streaming generator: structure, determinism, backing equivalence.

The load-bearing contracts:

* **backing is invisible** — RAM and memmap builds of the same spec are
  bit-identical (same content hash) and drive identical epidemics;
* **chunking is invisible** — ``chunk_persons`` (the flush-buffer size)
  never changes a byte, for *any* value (hypothesis property);
* **block_persons is identity** — it keys the per-block RNG streams, so
  it is part of the population's content (and of the spec hash);
* **no leaks** — dropping the last reference to a memmap-backed graph
  removes its temp directory.
"""

from __future__ import annotations

import gc
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spec import PopulationSpec, RunSpec, execute
from repro.synthpop import (
    PopulationConfig,
    generate_population_streamed,
    load_population_dir,
    save_population_dir,
)
from repro.synthpop.graph import MINUTES_PER_DAY


CFG = PopulationConfig(n_persons=600)


@pytest.fixture(scope="module")
def graph():
    return generate_population_streamed(CFG, 11, block_persons=128)


class TestStructure:
    def test_validates(self, graph):
        graph.validate()

    def test_counts(self, graph):
        assert graph.n_persons == 600
        # 2 home visits per person plus >= 0 activity visits
        assert graph.n_visits >= 2 * 600
        assert graph.n_locations > 0

    def test_sorted_by_person_then_start(self, graph):
        keys = graph.visit_person.astype(np.int64) * MINUTES_PER_DAY + graph.visit_start
        assert (np.diff(keys) >= 0).all()

    def test_every_person_has_home_visits(self, graph):
        home = graph.visit_location == graph.person_home[graph.visit_person]
        per_person = np.bincount(
            graph.visit_person[home], minlength=graph.n_persons
        )
        assert (per_person >= 2).all()

    def test_times_within_day(self, graph):
        assert (graph.visit_start >= 0).all()
        assert (graph.visit_end <= MINUTES_PER_DAY).all()
        assert (graph.visit_start < graph.visit_end).all()

    def test_sublocs_in_range(self, graph):
        assert (graph.visit_subloc >= 0).all()
        assert (
            graph.visit_subloc < graph.location_n_sublocs[graph.visit_location]
        ).all()

    def test_mean_degree_near_target(self):
        g = generate_population_streamed(
            PopulationConfig(n_persons=4000), 3
        )
        mean = g.n_visits / g.n_persons
        assert abs(mean - 5.5) < 0.5

    def test_regions_cover_all(self):
        g = generate_population_streamed(
            PopulationConfig(n_persons=800, n_regions=4), 5
        )
        assert set(np.unique(g.person_region)) == {0, 1, 2, 3}
        assert set(np.unique(g.location_region)) == {0, 1, 2, 3}


class TestDeterminism:
    def test_same_seed_same_content(self, graph):
        again = generate_population_streamed(CFG, 11, block_persons=128)
        assert again.content_hash() == graph.content_hash()

    def test_seed_changes_content(self, graph):
        other = generate_population_streamed(CFG, 12, block_persons=128)
        assert other.content_hash() != graph.content_hash()

    def test_block_size_changes_content(self, graph):
        other = generate_population_streamed(CFG, 11, block_persons=64)
        assert other.content_hash() != graph.content_hash()


class TestBackingEquivalence:
    def test_memmap_bit_identical_to_ram(self, graph):
        mm = generate_population_streamed(
            CFG, 11, block_persons=128, backing="memmap"
        )
        assert mm.backing.kind == "memmap"
        assert mm.content_hash() == graph.content_hash()
        np.testing.assert_array_equal(
            np.asarray(mm.visit_person), np.asarray(graph.visit_person)
        )

    def test_epidemics_identical_across_backings(self):
        def result(backing):
            spec = PopulationSpec(
                kind="streamed", n_persons=1500, seed=4, backing=backing
            )
            return execute(RunSpec(population=spec, n_days=12, seed=9)).record()

        assert result("ram") == result("memmap")

    def test_spec_hash_excludes_backing_and_chunk(self):
        hashes = {
            PopulationSpec(
                kind="streamed", n_persons=100, backing=b, chunk_persons=c
            ).content_hash()
            for b in (None, "ram", "memmap", "auto")
            for c in (None, 64)
        }
        assert len(hashes) == 1

    def test_spec_hash_includes_block_persons(self):
        a = PopulationSpec(kind="streamed", n_persons=100)
        b = PopulationSpec(
            kind="streamed", n_persons=100, params={"block_persons": 64}
        )
        assert a.content_hash() != b.content_hash()

    def test_backing_rejected_on_other_kinds(self):
        with pytest.raises(ValueError):
            PopulationSpec(n_persons=100, backing="memmap")


class TestChunkInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(30, 300),
        block=st.sampled_from([16, 64, 4096]),
        chunk=st.integers(1, 400),
    )
    def test_chunked_equals_one_shot(self, n, block, chunk):
        cfg = PopulationConfig(n_persons=n)
        one_shot = generate_population_streamed(
            cfg, 2, block_persons=block, chunk_persons=10**9
        )
        chunked = generate_population_streamed(
            cfg, 2, block_persons=block, chunk_persons=chunk
        )
        assert chunked.content_hash() == one_shot.content_hash()


class TestRoundTrip:
    def test_dir_round_trip(self, tmp_path, graph):
        d = save_population_dir(graph, tmp_path / "pop.d")
        loaded = load_population_dir(d)
        assert loaded.content_hash() == graph.content_hash()
        assert isinstance(loaded.visit_person, np.memmap)

    def test_streamed_matches_spec_build(self, graph):
        via_spec = PopulationSpec(
            kind="streamed", n_persons=600, seed=11,
            params={"block_persons": 128},
        ).build()
        assert via_spec.content_hash() == graph.content_hash()


class TestLifecycle:
    def test_temp_backing_removed_on_gc(self):
        g = generate_population_streamed(
            PopulationConfig(n_persons=200), 1, backing="memmap"
        )
        d = Path(g.backing.dir)
        assert d.is_dir() and any(d.iterdir())
        del g
        gc.collect()
        assert not d.exists()

    def test_persisted_dir_survives_gc(self, tmp_path):
        g = generate_population_streamed(
            PopulationConfig(n_persons=200), 1, backing="memmap"
        )
        target = tmp_path / "kept.d"
        g.backing.persist(target)
        del g
        gc.collect()
        assert target.is_dir() and any(target.iterdir())

    def test_pop_dir_env_controls_parent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POP_DIR", str(tmp_path / "pops"))
        g = generate_population_streamed(
            PopulationConfig(n_persons=100), 0, backing="memmap"
        )
        assert Path(g.backing.dir).parent == tmp_path / "pops"
