"""Table-I presets and the 49-state sweep."""

import pytest

from repro.synthpop.states import (
    STATE_POPULATIONS_2009,
    STATE_PRESETS,
    state_population,
    synthetic_state_sweep,
)


class TestPresets:
    def test_table1_rows_present(self):
        assert set(STATE_PRESETS) == {"US", "CA", "NY", "MI", "NC", "IA", "AR", "WY"}

    def test_us_ratios(self):
        us = STATE_PRESETS["US"]
        assert us.visits_per_person == pytest.approx(5.497, abs=0.01)
        assert us.visits_per_location == pytest.approx(21.5, abs=0.1)

    def test_sweep_covers_49_regions(self):
        assert len(STATE_POPULATIONS_2009) == 49  # 48 contiguous + DC


class TestStatePopulation:
    def test_scaled_size(self):
        g = state_population("WY", scale=1e-3, seed=0)
        assert g.n_persons == round(STATE_PRESETS["WY"].people * 1e-3)

    def test_unknown_state_rejected(self):
        with pytest.raises(KeyError):
            state_population("ZZ")

    def test_states_differ_under_same_seed(self):
        a = state_population("WY", scale=1e-3, seed=0)
        b = state_population("AR", scale=0.5e-3, seed=0)
        # Different states must not be clones (beyond size).
        assert a.n_visits != b.n_visits

    def test_ratios_preserved(self):
        g = state_population("IA", scale=2e-3, seed=1)
        preset = STATE_PRESETS["IA"]
        assert g.n_visits / g.n_persons == pytest.approx(preset.visits_per_person, rel=0.05)
        assert g.n_visits / g.n_locations == pytest.approx(
            preset.visits_per_location, rel=0.15
        )


class TestSweep:
    def test_sweep_generates_all(self):
        graphs = synthetic_state_sweep(scale=2e-5, seed=0)
        assert len(graphs) == 49
        for name, g in graphs.items():
            assert g.n_persons >= 50
            g.validate()

    def test_sweep_sizes_ordered_by_population(self):
        graphs = synthetic_state_sweep(scale=5e-5, seed=0)
        assert graphs["CA"].n_persons > graphs["WY"].n_persons
