"""Regional (county) structure in synthetic populations."""

import numpy as np
import pytest

from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.partition import edge_cut, partition_bipartite, round_robin_partition
from repro.synthpop import PopulationConfig, generate_population, load_population, save_population
from repro.synthpop.graph import LocationType


@pytest.fixture(scope="module")
def regional():
    return generate_population(
        PopulationConfig(n_persons=2000, n_regions=8, region_locality=0.9),
        21,
        name="regional",
    )


class TestStructure:
    def test_region_arrays_present_and_valid(self, regional):
        regional.validate()
        assert regional.person_region is not None
        assert set(np.unique(regional.person_region)) == set(range(8))
        assert set(np.unique(regional.location_region)) == set(range(8))

    def test_no_regions_by_default(self, tiny_graph):
        assert tiny_graph.person_region is None

    def test_home_region_matches_person_region(self, regional):
        np.testing.assert_array_equal(
            regional.person_region,
            regional.location_region[regional.person_home],
        )

    def test_visits_mostly_local(self, regional):
        vr = regional.person_region[regional.visit_person]
        lr = regional.location_region[regional.visit_location]
        local_frac = np.mean(vr == lr)
        # Home visits are always local; activity visits ~90% local.
        assert local_frac > 0.85

    def test_some_cross_region_travel_exists(self, regional):
        vr = regional.person_region[regional.visit_person]
        lr = regional.location_region[regional.visit_location]
        assert np.any(vr != lr)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_persons=10, n_regions=0)
        with pytest.raises(ValueError):
            PopulationConfig(n_persons=10, region_locality=1.5)


class TestLocalityPaysOff:
    def test_gp_cut_much_lower_on_regional_graph(self, regional):
        """With community structure the partitioner has something to
        find: GP's cut should be a small fraction of RR's."""
        k = 8
        gp = partition_bipartite(regional, k)
        rr = round_robin_partition(regional, k)
        assert edge_cut(regional, gp) < 0.5 * edge_cut(regional, rr)

    def test_region_partition_is_a_good_cut(self, regional):
        """Partitioning by region directly yields a low cut — the
        ground-truth communities."""
        from repro.partition.quality import BipartitePartition

        bp = BipartitePartition(
            person_part=regional.person_region.astype(np.int64),
            location_part=regional.location_region.astype(np.int64),
            k=8,
            method="regions",
        )
        rr = round_robin_partition(regional, 8)
        assert edge_cut(regional, bp) < 0.35 * edge_cut(regional, rr)


class TestEpidemicWave:
    def test_epidemic_starts_concentrated_in_seed_region(self, regional):
        """Seeding one region should keep early infections local — the
        spatial wavefront that motivates §VII's predictive LB."""
        seed_region = 0
        candidates = np.flatnonzero(regional.person_region == seed_region)[:10]
        sc = Scenario(
            graph=regional, n_days=8, seed=3,
            initial_infections=candidates,
            transmission=TransmissionModel(2.5e-4),
        )
        sim = SequentialSimulator(sc)
        sim.run()
        infected = sim._ever_infected
        if infected.sum() > 15:  # enough spread to measure
            frac_in_seed_region = np.mean(
                regional.person_region[np.flatnonzero(infected)] == seed_region
            )
            assert frac_in_seed_region > 0.5


class TestPersistence:
    def test_regions_roundtrip(self, tmp_path, regional):
        save_population(regional, tmp_path / "r.npz")
        back = load_population(tmp_path / "r.npz")
        np.testing.assert_array_equal(back.person_region, regional.person_region)
        np.testing.assert_array_equal(back.location_region, regional.location_region)

    def test_splitloc_propagates_regions(self, regional):
        from repro.partition import split_heavy_locations

        sr = split_heavy_locations(regional, max_partitions=512)
        assert sr.graph.location_region is not None
        np.testing.assert_array_equal(
            sr.graph.location_region, regional.location_region[sr.origin]
        )
        sr.graph.validate()
