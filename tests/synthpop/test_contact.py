"""Person–person contact network extraction."""

import numpy as np
import pytest

from repro.synthpop.contact import contact_network
from repro.synthpop.graph import PersonLocationGraph


def _two_room_graph():
    """3 persons: A and B share room 0 (overlap 60m), C alone in room 1."""
    return PersonLocationGraph(
        name="rooms",
        n_persons=3,
        n_locations=1,
        visit_person=np.array([0, 1, 2]),
        visit_location=np.array([0, 0, 0]),
        visit_subloc=np.array([0, 0, 1], dtype=np.int32),
        visit_start=np.array([100, 140, 100], dtype=np.int32),
        visit_end=np.array([200, 260, 200], dtype=np.int32),
        location_n_sublocs=np.array([2], dtype=np.int32),
        location_type=np.array([4], dtype=np.int8),
        person_age=np.array([30, 30, 30], dtype=np.int16),
        person_home=np.array([0, 0, 0]),
    )


class TestSmallCases:
    def test_single_overlap_pair(self):
        net = contact_network(_two_room_graph())
        assert net.n_edges == 1
        assert net.person_a[0] == 0 and net.person_b[0] == 1
        assert net.minutes[0] == 60.0  # [140, 200]

    def test_different_sublocations_no_contact(self):
        g = _two_room_graph()
        net = contact_network(g)
        deg = net.degrees()
        assert deg[2] == 0

    def test_repeat_visits_accumulate(self):
        g = _two_room_graph()
        # Duplicate all visits -> same pairs, doubled + cross-visit overlaps.
        g2 = g.with_visits(
            np.concatenate([g.visit_person, g.visit_person]),
            np.concatenate([g.visit_location, g.visit_location]),
            np.concatenate([g.visit_subloc, g.visit_subloc]),
            np.concatenate([g.visit_start, g.visit_start]),
            np.concatenate([g.visit_end, g.visit_end]),
        )
        net2 = contact_network(g2)
        assert net2.n_edges == 1
        assert net2.minutes[0] == 4 * 60.0  # 2x2 visit combinations

    def test_empty_population(self):
        g = _two_room_graph()
        g2 = g.with_visits(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
        )
        net = contact_network(g2)
        assert net.n_edges == 0


class TestOnSyntheticPopulation:
    def test_household_contacts_exist(self, tiny_graph):
        net = contact_network(tiny_graph)
        assert net.n_edges > 0
        # Mean contact degree should be well above 1 (household + anchor).
        assert net.degrees().mean() > 1.0

    def test_no_self_edges_and_canonical_order(self, tiny_graph):
        net = contact_network(tiny_graph)
        assert np.all(net.person_a < net.person_b)

    def test_minutes_positive_and_bounded(self, tiny_graph):
        net = contact_network(tiny_graph)
        assert np.all(net.minutes > 0)
        # A pair can't share more minutes than a few full days of visits.
        assert net.minutes.max() < 10 * 1440

    def test_cap_reduces_edges(self, tiny_graph):
        full = contact_network(tiny_graph)
        capped = contact_network(tiny_graph, max_pairs_per_sublocation=3)
        assert capped.n_edges <= full.n_edges

    def test_networkx_export(self, tiny_graph):
        net = contact_network(tiny_graph, max_pairs_per_sublocation=10)
        g = net.to_networkx()
        assert g.number_of_nodes() == tiny_graph.n_persons
        assert g.number_of_edges() == net.n_edges

    def test_degree_dispersion(self, small_graph):
        """Contact degrees are broad but bounded: sublocations cap
        co-presence (capacity ~25), so the person–person tail is
        moderated relative to the location in-degree tail — which is
        why the paper's splitLoc operates on locations, not people."""
        net = contact_network(small_graph, max_pairs_per_sublocation=500)
        deg = net.degrees()
        assert deg.max() >= 2.5 * max(np.median(deg), 1)
        assert deg.mean() > 10  # everyone meets household + anchor groups
