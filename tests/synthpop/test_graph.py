"""PersonLocationGraph invariants and accessors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synthpop import PopulationConfig, generate_population
from repro.synthpop.graph import MINUTES_PER_DAY, PersonLocationGraph


def _manual_graph(**overrides):
    """A hand-built 3-person, 2-location graph."""
    base = dict(
        name="manual",
        n_persons=3,
        n_locations=2,
        visit_person=np.array([0, 0, 1, 2]),
        visit_location=np.array([0, 1, 1, 0]),
        visit_subloc=np.array([0, 0, 1, 0], dtype=np.int32),
        visit_start=np.array([0, 500, 480, 60], dtype=np.int32),
        visit_end=np.array([480, 900, 960, 1440], dtype=np.int32),
        location_n_sublocs=np.array([1, 2], dtype=np.int32),
        location_type=np.array([0, 2], dtype=np.int8),
        person_age=np.array([30, 10, 44], dtype=np.int16),
        person_home=np.array([0, 0, 0]),
    )
    base.update(overrides)
    return PersonLocationGraph(**base)


class TestValidation:
    def test_valid_graph_passes(self):
        _manual_graph().validate()

    def test_rejects_subloc_out_of_range(self):
        g = _manual_graph(visit_subloc=np.array([0, 2, 1, 0], dtype=np.int32))
        with pytest.raises(ValueError, match="subloc"):
            g.validate()

    def test_rejects_zero_duration_visit(self):
        g = _manual_graph(visit_end=np.array([0, 900, 960, 1440], dtype=np.int32))
        with pytest.raises(ValueError, match="duration"):
            g.validate()

    def test_rejects_unsorted_visits(self):
        g = _manual_graph(visit_person=np.array([1, 0, 0, 2]))
        with pytest.raises(ValueError, match="sorted"):
            g.validate()

    def test_rejects_visit_past_midnight(self):
        g = _manual_graph(visit_end=np.array([480, 900, MINUTES_PER_DAY + 1, 1440], dtype=np.int32))
        with pytest.raises(ValueError):
            g.validate()


class TestAccessors:
    def test_person_degrees(self):
        g = _manual_graph()
        np.testing.assert_array_equal(g.person_degrees, [2, 1, 1])

    def test_location_visit_counts(self):
        g = _manual_graph()
        np.testing.assert_array_equal(g.location_visit_counts, [2, 2])

    def test_in_degrees_count_unique_visitors(self):
        g = _manual_graph()
        # location 0: persons 0 and 2; location 1: persons 0 and 1.
        np.testing.assert_array_equal(g.location_in_degrees(), [2, 2])

    def test_person_visit_slices(self):
        g = _manual_graph()
        ptr = g.person_visit_slices()
        np.testing.assert_array_equal(ptr, [0, 2, 3, 4])

    def test_location_visit_index_groups_all_visits(self):
        g = _manual_graph()
        order, ptr = g.location_visit_index()
        for loc in range(g.n_locations):
            rows = order[ptr[loc] : ptr[loc + 1]]
            assert np.all(g.visit_location[rows] == loc)
        assert ptr[-1] == g.n_visits

    def test_bipartite_adjacency_collapses_multiplicity(self):
        g = _manual_graph(
            visit_location=np.array([0, 0, 1, 0]),
            visit_subloc=np.array([0, 0, 1, 0], dtype=np.int32),
        )
        p, l, w = g.bipartite_adjacency()
        # person 0 visits location 0 twice -> one edge of weight 2.
        edge = dict(zip(zip(p.tolist(), l.tolist()), w.tolist()))
        assert edge[(0, 0)] == 2

    def test_summary_fields(self):
        s = _manual_graph().summary()
        assert s["visits"] == 4
        assert s["people"] == 3
        assert s["locations"] == 2


class TestWithVisits:
    def test_resorts_and_revalidates(self):
        g = _manual_graph()
        # Shuffle the visit order; with_visits must restore person-sorting.
        perm = np.array([3, 1, 0, 2])
        g2 = g.with_visits(
            g.visit_person[perm],
            g.visit_location[perm],
            g.visit_subloc[perm],
            g.visit_start[perm],
            g.visit_end[perm],
        )
        g2.validate()
        assert np.all(np.diff(g2.visit_person) >= 0)
        assert g2.n_visits == g.n_visits

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_generated_graphs_always_valid(self, seed):
        g = generate_population(PopulationConfig(n_persons=120), seed)
        g.validate()
