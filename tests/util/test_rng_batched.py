"""Batched keyed-uniform primitive vs the per-stream reference.

The contract under test is *bit-for-bit* equality: every element the
vectorised pipeline (``derive_seeds`` → ``repro.util.pcg`` →
``keyed_uniforms``) produces must equal what a freshly constructed
``np.random.Generator(np.random.PCG64(seed))`` would draw first.  The
golden traces and the cross-kernel differential both rest on this.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.util.pcg import first_uniforms
from repro.util.rng import RngFactory, derive_seed, derive_seeds, keyed_uniforms

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def reference_first_uniform(seed: int) -> float:
    return np.random.Generator(np.random.PCG64(int(seed))).random()


class TestFirstUniforms:
    def test_edge_seeds_exact(self):
        seeds = np.array([0, 1, 2, 2**32 - 1, 2**32, 2**63, 2**64 - 1], dtype=np.uint64)
        expected = np.array([reference_first_uniform(s) for s in seeds])
        np.testing.assert_array_equal(first_uniforms(seeds), expected)

    def test_random_seed_sample_exact(self):
        rng = np.random.default_rng(1234)
        seeds = rng.integers(0, 2**64, size=500, dtype=np.uint64)
        expected = np.array([reference_first_uniform(s) for s in seeds])
        np.testing.assert_array_equal(first_uniforms(seeds), expected)

    def test_empty(self):
        out = first_uniforms(np.empty(0, dtype=np.uint64))
        assert out.shape == (0,) and out.dtype == np.float64

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=50)
    def test_any_seed_exact(self, seed):
        got = first_uniforms(np.array([seed], dtype=np.uint64))[0]
        assert got == reference_first_uniform(seed)


class TestDeriveSeeds:
    def test_matches_scalar_derivation(self):
        keys = np.array([[0, 0, 0], [1, 2, 3], [-1, 5, 2**31], [7, -9, -(2**62)]])
        got = derive_seeds(42, keys)
        expected = np.array([derive_seed(42, *row) for row in keys], dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_one_dimensional_input_is_one_row(self):
        got = derive_seeds(0, np.array([3, 4]))
        assert got.shape == (1,)
        assert int(got[0]) == derive_seed(0, 3, 4)

    def test_empty(self):
        out = derive_seeds(0, np.empty((0, 4), dtype=np.int64))
        assert out.shape == (0,) and out.dtype == np.uint64

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.lists(i64, min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_any_key_tuple(self, root, keys):
        got = derive_seeds(root, np.array([keys], dtype=np.int64))
        assert int(got[0]) == derive_seed(root, *keys)


class TestKeyedUniforms:
    def test_matches_per_stream_draws(self):
        f = RngFactory(7)
        days = np.arange(40) % 5
        persons = np.arange(40) * 13 % 29
        got = f.keyed_uniforms(RngFactory.LOCATION, days, persons)
        expected = np.array(
            [f.stream(RngFactory.LOCATION, int(d), int(p)).random()
             for d, p in zip(days, persons)]
        )
        np.testing.assert_array_equal(got, expected)

    def test_scalar_columns_broadcast(self):
        got = keyed_uniforms(3, 2, np.arange(10), 0)
        expected = np.array(
            [np.random.Generator(np.random.PCG64(derive_seed(3, 2, i, 0))).random()
             for i in range(10)]
        )
        np.testing.assert_array_equal(got, expected)

    def test_preserves_shape(self):
        locs = np.arange(12).reshape(3, 4)
        got = keyed_uniforms(0, 1, locs)
        assert got.shape == (3, 4)
        np.testing.assert_array_equal(got.ravel(), keyed_uniforms(0, 1, locs.ravel()))


class TestUniformsForRegression:
    """The satellite: ``uniforms_for`` must delegate without drift."""

    def test_exact_equality_with_per_stream_reference(self):
        f = RngFactory(4)
        ids = [5, 9, 2, 0, 2**31 - 1]
        for salt in (0, 1, 17):
            got = f.uniforms_for(RngFactory.INTERVENTION, 3, ids, salt)
            expected = np.array(
                [f.stream(RngFactory.INTERVENTION, 3, i, salt).random() for i in ids]
            )
            np.testing.assert_array_equal(got, expected)

    def test_accepts_generators_and_ranges(self):
        f = RngFactory(0)
        a = f.uniforms_for(RngFactory.PERSON, 0, range(50))
        b = f.uniforms_for(RngFactory.PERSON, 0, (i for i in range(50)))
        np.testing.assert_array_equal(a, b)

    def test_empty_ids(self):
        f = RngFactory(0)
        out = f.uniforms_for(RngFactory.PERSON, 0, [])
        assert out.shape == (0,)

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=-1, max_value=400),
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30)
    def test_property_exact(self, root, day, ids, salt):
        f = RngFactory(root)
        got = f.uniforms_for(RngFactory.PERSON, day, ids, salt)
        expected = np.array(
            [f.stream(RngFactory.PERSON, day, i, salt).random() for i in ids]
        )
        np.testing.assert_array_equal(got, expected)
