"""Log-binned histogram and power-law exponent estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.histogram import fit_powerlaw_exponent, log_binned_histogram


class TestLogBinnedHistogram:
    def test_counts_conserved(self):
        v = np.array([1.0, 2.0, 3.0, 10.0, 100.0, 1000.0])
        h = log_binned_histogram(v)
        assert h.counts.sum() == v.size

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            log_binned_histogram([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_binned_histogram([1.0, 0.0])

    def test_single_value(self):
        h = log_binned_histogram([5.0, 5.0, 5.0])
        assert h.counts.sum() == 3

    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        v = rng.pareto(1.5, size=20_000) + 1.0
        h = log_binned_histogram(v)
        mass = float((h.density * np.diff(h.edges)).sum())
        assert mass == pytest.approx(1.0, abs=1e-6)

    def test_centers_are_geometric_means(self):
        h = log_binned_histogram([1.0, 10.0, 100.0])
        np.testing.assert_allclose(h.centers, np.sqrt(h.edges[:-1] * h.edges[1:]))

    @given(st.integers(2, 40))
    @settings(max_examples=20, deadline=None)
    def test_bins_per_decade_controls_resolution(self, bpd):
        v = np.geomspace(1, 1000, 50)
        h = log_binned_histogram(v, bins_per_decade=bpd)
        assert len(h.counts) == len(h.edges) - 1
        assert h.counts.sum() == 50


class TestPowerlawFit:
    def test_recovers_known_exponent(self):
        rng = np.random.default_rng(3)
        beta = 2.5
        # Inverse-CDF sampling of a pure power law with density exponent beta.
        u = rng.random(200_000)
        x = (1.0 - u) ** (-1.0 / (beta - 1.0))
        est = fit_powerlaw_exponent(x, xmin=1.0)
        assert est == pytest.approx(beta, rel=0.02)

    def test_requires_samples_above_xmin(self):
        with pytest.raises(ValueError):
            fit_powerlaw_exponent([0.5, 0.7], xmin=1.0)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_powerlaw_exponent([1.0, 1.0, 1.0], xmin=1.0)
