"""Determinism and independence of the keyed RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngFactory, derive_seed, spawn_generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_key_order_matters(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)

    def test_root_seed_matters(self):
        assert derive_seed(0, 5) != derive_seed(1, 5)

    def test_negative_keys_allowed(self):
        # Day -1 is used for index-case seeding.
        assert derive_seed(7, -1, 3) != derive_seed(7, 1, 3)

    def test_64bit_range(self):
        s = derive_seed(2**63, 2**62)
        assert 0 <= s < 2**64

    @given(st.integers(0, 2**32), st.integers(-(2**31), 2**31))
    def test_always_in_range(self, root, key):
        assert 0 <= derive_seed(root, key) < 2**64

    def test_no_trivial_collisions_across_adjacent_keys(self):
        seeds = {derive_seed(0, d, p) for d in range(20) for p in range(200)}
        assert len(seeds) == 20 * 200


class TestSpawnGenerator:
    def test_reproducible_draws(self):
        a = spawn_generator(9, 1, 2).random(5)
        b = spawn_generator(9, 1, 2).random(5)
        np.testing.assert_array_equal(a, b)

    def test_distinct_streams_differ(self):
        a = spawn_generator(9, 1, 2).random(5)
        b = spawn_generator(9, 1, 3).random(5)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_requires_integer_seed(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]

    def test_person_stream_matches_generic(self):
        f = RngFactory(4)
        a = f.person_stream(3, 17).random()
        b = f.stream(RngFactory.PERSON, 3, 17).random()
        assert a == b

    def test_uniforms_for_order_independent(self):
        f = RngFactory(4)
        ids = [5, 9, 2]
        fwd = f.uniforms_for(RngFactory.INTERVENTION, 1, ids)
        rev = f.uniforms_for(RngFactory.INTERVENTION, 1, ids[::-1])
        np.testing.assert_array_equal(fwd, rev[::-1])

    def test_uniforms_for_uniformity(self):
        f = RngFactory(0)
        u = f.uniforms_for(RngFactory.PERSON, 0, range(4000))
        # Keyed streams should still look U(0,1) in aggregate.
        assert 0.45 < u.mean() < 0.55
        assert abs(np.var(u) - 1 / 12) < 0.01

    def test_streams_statistically_independent(self):
        # Draws keyed (day, p) and (day, p+1) should be uncorrelated.
        f = RngFactory(2)
        a = f.uniforms_for(RngFactory.PERSON, 0, range(2000))
        b = f.uniforms_for(RngFactory.PERSON, 1, range(2000))
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.08
