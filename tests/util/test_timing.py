"""Timer and CostAccumulator behaviour."""

import pytest

from repro.util.timing import CostAccumulator, Timer


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(10000))
        assert t.elapsed >= 0.0
        assert first >= 0.0


class TestCostAccumulator:
    def test_accumulates_by_category(self):
        c = CostAccumulator()
        c.add("compute", 1.0)
        c.add("compute", 2.0)
        c.add("comm", 0.5)
        assert c.get("compute") == 3.0
        assert c.get("comm") == 0.5
        assert c.total == 3.5

    def test_unknown_category_is_zero(self):
        assert CostAccumulator().get("nope") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostAccumulator().add("compute", -1.0)

    def test_merge(self):
        a, b = CostAccumulator(), CostAccumulator()
        a.add("compute", 1.0)
        b.add("compute", 2.0)
        b.add("idle", 4.0)
        a.merge(b)
        assert a.get("compute") == 3.0
        assert a.get("idle") == 4.0

    def test_reset(self):
        c = CostAccumulator()
        c.add("x", 1.0)
        c.reset()
        assert c.total == 0.0
