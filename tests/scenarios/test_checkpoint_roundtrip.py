"""Mid-epidemic checkpoint round-trips for stateful components.

Property: interrupting a scenario run at any day, saving, restoring
into a *fresh* scenario and continuing reproduces the uninterrupted
run bit for bit.  The interesting components are the stateful ones —
waning vaccination (fired trigger + done flag) and contact tracing
(reported mask, pending report queue, quarantine clocks), whose
declared state must survive the npz round-trip exactly.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.simulator import SequentialSimulator
from repro.scenarios import build_scenario
from repro.spec import PopulationSpec

N_DAYS = 8

_GRAPH = None


def graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = PopulationSpec(n_persons=200, seed=0, name="ckpt").build()
    return _GRAPH


def build(name, seed):
    return build_scenario(
        name, graph(), n_days=N_DAYS, seed=seed, transmissibility=4e-4,
        params={"day": 1} if name == "waning-vaccination" else None,
    )


def fingerprint(sim):
    return (
        sim.health_state.copy(),
        sim.days_remaining.copy(),
        sim.treatment.copy(),
        sim.scenario.interventions.checkpoint_state(),
    )


def assert_fingerprints_equal(a, b):
    for x, y in zip(a[:3], b[:3]):
        assert np.array_equal(x, y)
    assert len(a[3]) == len(b[3])
    for sa, sb in zip(a[3], b[3]):
        assert sorted(sa) == sorted(sb)
        for key in sa:
            if isinstance(sa[key], np.ndarray):
                assert np.array_equal(sa[key], sb[key]), key
            else:
                assert sa[key] == sb[key], key


def roundtrip(name, seed, split_day):
    # Uninterrupted reference.
    ref = SequentialSimulator(build(name, seed))
    for _ in range(N_DAYS):
        ref.step_day()

    # Interrupted run: stop at split_day, checkpoint, restore, continue.
    sim = SequentialSimulator(build(name, seed))
    for _ in range(split_day):
        sim.step_day()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ckpt.npz"
        save_checkpoint(sim, path)
        resumed = load_checkpoint(build(name, seed), path)
        assert_fingerprints_equal(fingerprint(sim), fingerprint(resumed))
    for _ in range(split_day, N_DAYS):
        resumed.step_day()
    assert_fingerprints_equal(fingerprint(ref), fingerprint(resumed))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), split_day=st.integers(1, N_DAYS - 1))
def test_waning_vaccination_roundtrip(seed, split_day):
    roundtrip("waning-vaccination", seed, split_day)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), split_day=st.integers(1, N_DAYS - 1))
def test_contact_tracing_roundtrip(seed, split_day):
    roundtrip("contact-tracing", seed, split_day)


@pytest.mark.parametrize("name", ["hospital-capacity", "turnover", "two-variant"])
def test_remaining_scenarios_roundtrip_once(name):
    roundtrip(name, seed=0, split_day=3)


def test_tracing_checkpoint_carries_the_pending_queue():
    """The report queue mid-delay is the state most easily dropped."""
    sc = build_scenario(
        "contact-tracing", graph(), n_days=N_DAYS, seed=0,
        transmissibility=6e-4, params={"report_delay": 3, "detection": 1.0},
    )
    sim = SequentialSimulator(sc)
    for _ in range(4):
        sim.step_day()
    (state,) = sc.interventions.checkpoint_state()
    assert state["pending"].shape[1] == 2
    assert state["pending"].size > 0, "no reports in flight at the split"
    assert state["reported"].any()
