"""Model-component semantics, unit-level and end-to-end.

Unit tests drive single hooks through a hand-built DayContext; the
end-to-end tests run whole scenarios on the sequential simulator and
assert the component's observable contract (ward occupancy bound,
quarantine keeps people home, vaccinated persons wane back).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.disease import FOREVER, UNTREATED, VACCINATED, sir_model
from repro.core.interventions import DayContext
from repro.core.simulator import SequentialSimulator
from repro.scenarios import (
    DemographicTurnover,
    HospitalCapacity,
    TestTraceQuarantine,
    VariantAssignment,
    build_scenario,
    hospital_model,
    two_variant_model,
)
from repro.spec import PopulationSpec
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def graph():
    return PopulationSpec(n_persons=250, seed=0, name="components").build()


def make_ctx(graph, disease, health_state, day=0, days_remaining=None,
             treatment=None):
    return DayContext(
        day=day,
        graph=graph,
        disease=disease,
        health_state=health_state,
        treatment=(treatment if treatment is not None
                   else np.full(graph.n_persons, UNTREATED, dtype=np.int64)),
        prevalence=0.0,
        cumulative_attack=0.0,
        rng_factory=RngFactory(7),
        days_remaining=(days_remaining if days_remaining is not None
                        else np.full(graph.n_persons, FOREVER, dtype=np.int64)),
    )


class TestHospitalCapacityUnit:
    def test_overflow_moves_excess_keeping_timers(self, graph):
        d = hospital_model()
        state = np.full(graph.n_persons, d.susceptible_index, dtype=np.int64)
        ward = np.array([3, 10, 25, 40, 77, 90, 120, 200])
        state[ward] = d.index["H"]
        remaining = np.full(graph.n_persons, FOREVER, dtype=np.int64)
        remaining[ward] = 5
        ctx = make_ctx(graph, d, state, days_remaining=remaining)
        HospitalCapacity(beds=5).post_apply(ctx)
        assert (state == d.index["H"]).sum() == 5
        moved = np.flatnonzero(state == d.index["H_over"])
        # Deterministic rule: the highest person ids overflow.
        assert moved.tolist() == [90, 120, 200]
        assert (remaining[moved] == 5).all()

    def test_no_op_within_capacity(self, graph):
        d = hospital_model()
        state = np.full(graph.n_persons, d.susceptible_index, dtype=np.int64)
        state[:3] = d.index["H"]
        HospitalCapacity(beds=5).post_apply(make_ctx(graph, d, state))
        assert (state == d.index["H_over"]).sum() == 0


class TestDemographicTurnoverUnit:
    def test_rate_one_rebirths_every_terminal_person(self, graph):
        d = sir_model()
        state = np.full(graph.n_persons, d.index["R"], dtype=np.int64)
        state[:10] = d.index["I"]
        remaining = np.zeros(graph.n_persons, dtype=np.int64)
        treatment = np.full(graph.n_persons, VACCINATED, dtype=np.int64)
        ctx = make_ctx(graph, d, state, days_remaining=remaining,
                       treatment=treatment)
        DemographicTurnover(rate=1.0).post_apply(ctx)
        reborn = np.flatnonzero(state == d.susceptible_index)
        assert reborn.size == graph.n_persons - 10
        assert (remaining[reborn] == FOREVER).all()
        assert (treatment[reborn] == UNTREATED).all()
        # Infectious persons are never recycled.
        assert (state[:10] == d.index["I"]).all()

    def test_declares_reinfection(self):
        assert DemographicTurnover(rate=0.1).reinfection_possible(sir_model())


class TestVariantAssignmentUnit:
    def test_routes_all_to_dominant_variant(self, graph):
        d = two_variant_model()
        state = np.full(graph.n_persons, d.susceptible_index, dtype=np.int64)
        state[:5] = d.index["E_pick"]
        state[50:55] = d.index["I_A"]  # only variant A circulates
        VariantAssignment(bias=0.5).update_treatments(make_ctx(graph, d, state))
        assert (state[:5] == d.index["E_A"]).all()

    def test_bias_breaks_the_tie_when_nothing_circulates(self, graph):
        d = two_variant_model()
        state = np.full(graph.n_persons, d.susceptible_index, dtype=np.int64)
        state[:40] = d.index["E_pick"]
        VariantAssignment(bias=1.0).update_treatments(make_ctx(graph, d, state))
        assert (state[:40] == d.index["E_A"]).all()
        state[:40] = d.index["E_pick"]
        VariantAssignment(bias=0.0).update_treatments(
            make_ctx(graph, d, state, day=1)
        )
        assert (state[:40] == d.index["E_B"]).all()


class TestTraceQuarantineUnit:
    def test_filter_drops_only_non_home_visits(self, graph):
        c = TestTraceQuarantine()
        d = sir_model()
        state = np.full(graph.n_persons, d.susceptible_index, dtype=np.int64)
        person = int(graph.visit_person[0])
        c._ensure(graph.n_persons)
        c._quarantined_until[person] = 10
        ctx = make_ctx(graph, d, state, day=3)
        keep = np.ones(graph.n_visits, dtype=bool)
        c.filter_visits(ctx, keep)
        mine = graph.visit_person == person
        non_home = graph.visit_location != graph.person_home[graph.visit_person]
        assert not keep[mine & non_home].any()
        assert keep[mine & ~non_home].all()
        assert keep[~mine].all()

    def test_wire_roundtrip_reproduces_the_mask(self, graph):
        c = TestTraceQuarantine()
        d = sir_model()
        state = np.full(graph.n_persons, d.susceptible_index, dtype=np.int64)
        c._ensure(graph.n_persons)
        c._quarantined_until[[4, 9, 40]] = [8, 2, 15]
        remote = TestTraceQuarantine()
        remote.load_wire_state(c.wire_state())
        ctx = make_ctx(graph, d, state, day=5)
        keep_central = np.ones(graph.n_visits, dtype=bool)
        keep_remote = np.ones(graph.n_visits, dtype=bool)
        c.filter_visits(ctx, keep_central)
        remote.filter_visits(ctx, keep_remote)
        # Person 9's quarantine expired (until=2 < day=5) on both sides.
        assert np.array_equal(keep_central, keep_remote)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="detection"):
            TestTraceQuarantine(detection=1.5)
        with pytest.raises(ValueError, match="quarantine_days"):
            TestTraceQuarantine(quarantine_days=0)


class TestEndToEnd:
    def test_ward_occupancy_never_exceeds_beds(self, graph):
        beds = 2
        sc = build_scenario(
            "hospital-capacity", graph, n_days=10, seed=0,
            transmissibility=4e-4, params={"beds": beds, "hospitalization": 0.8},
        )
        sim = SequentialSimulator(sc)
        h = sc.disease.index["H"]
        hit_capacity = False
        for _ in range(sc.n_days):
            sim.step_day()
            ward = int((sim.health_state == h).sum())
            assert ward <= beds
            hit_capacity = hit_capacity or ward == beds
        assert hit_capacity, "epidemic never stressed the ward"
        assert (sim.health_state == sc.disease.index["H_over"]).sum() > 0

    def test_vaccinated_persons_wane_back_untreated(self, graph):
        sc = build_scenario(
            "waning-vaccination", graph, n_days=12, seed=0,
            initial_infections=0, transmissibility=0.0,
            params={"coverage": 1.0, "day": 0, "wane_lo": 2, "wane_hi": 4},
        )
        sim = SequentialSimulator(sc)
        v = sc.disease.index["V"]
        sim.step_day()
        assert (sim.health_state == v).all()
        assert (sim.treatment == VACCINATED).all()
        for _ in range(sc.n_days - 1):
            sim.step_day()
        # Everyone waned back: susceptible again, tag cleared.
        assert (sim.health_state == sc.disease.susceptible_index).all()
        assert (sim.treatment == UNTREATED).all()

    def test_turnover_reopens_the_susceptible_pool(self, graph):
        sc = build_scenario(
            "turnover", graph, n_days=16, seed=0, transmissibility=5e-4,
            params={"rate": 0.5},
        )
        result = SequentialSimulator(sc).run()
        # With rebirth, cumulative infections can exceed the population.
        assert result.total_infections > 0
        assert result.final_histogram.get("S", 0) > 0

    def test_quarantine_reduces_attack_rate(self, graph):
        def run(detection):
            sc = build_scenario(
                "contact-tracing", graph, n_days=14, seed=0,
                transmissibility=5e-4,
                params={"detection": detection, "report_delay": 0,
                        "compliance": 1.0, "quarantine_days": 14},
            )
            return SequentialSimulator(sc).run().total_infections

        assert run(1.0) < run(0.0)
