"""Scenario reuse regression: one Scenario object, many identical runs.

Intervention and component objects hold mutable state (fired triggers,
quarantine rosters, wire blobs).  Every backend calls
``InterventionSchedule.reset()`` at run start, so reusing a single
Scenario across runs — the natural thing to write — must reproduce the
same epidemic each time.  This was a silent footgun before reset()
existed: the second run saw day-one triggers already fired.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interventions import (
    InterventionSchedule,
    Vaccination,
    parse_intervention_script,
)
from repro.core.scenario import Scenario
from repro.core.simulator import SequentialSimulator
from repro.core.transmission import TransmissionModel
from repro.scenarios import build_scenario, names
from repro.smp.backend import SmpSimulator
from repro.spec import PopulationSpec


@pytest.fixture(scope="module")
def graph():
    return PopulationSpec(n_persons=250, seed=0, name="reuse").build()


def seq_fingerprint(scenario):
    sim = SequentialSimulator(scenario)
    result = sim.run()
    return (
        list(result.curve.new_infections),
        sim.health_state.copy(),
        sim.days_remaining.copy(),
        sim.treatment.copy(),
    )


def assert_identical(a, b):
    assert a[0] == b[0]
    for x, y in zip(a[1:], b[1:]):
        assert np.array_equal(x, y)


def test_triggered_intervention_scenario_is_reusable(graph):
    sc = Scenario(
        graph=graph,
        n_days=8,
        seed=3,
        initial_infections=8,
        transmission=TransmissionModel(4e-4),
        interventions=parse_intervention_script(
            "vaccinate coverage=0.5 day=2\nclose_schools prevalence=0.01 duration=3"
        ),
    )
    assert_identical(seq_fingerprint(sc), seq_fingerprint(sc))


@pytest.mark.parametrize("name", names())
def test_every_registered_scenario_is_reusable(graph, name):
    sc = build_scenario(name, graph, n_days=6, seed=0, transmissibility=3e-4)
    assert_identical(seq_fingerprint(sc), seq_fingerprint(sc))


def test_reuse_across_backends(graph):
    """The same object run on seq then smp then seq stays bit-stable."""
    sc = build_scenario("contact-tracing", graph, n_days=6, seed=0,
                        transmissibility=3e-4)
    first = seq_fingerprint(sc)
    out = SmpSimulator(sc, n_workers=2, ring_capacity=1024).run()
    assert list(out.result.curve.new_infections) == first[0]
    assert np.array_equal(out.final_health_state, first[1])
    assert_identical(seq_fingerprint(sc), first)


def test_reset_clears_fired_triggers():
    sched = InterventionSchedule([Vaccination(coverage=0.4, day=1)])
    (vax,) = sched.interventions
    vax.trigger.fired_on = 1
    sched.reset()
    assert vax.trigger.fired_on is None
