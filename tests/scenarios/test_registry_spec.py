"""Registry, ScenarioSpec and RunSpec/CLI integration.

A scenario choice must behave like every other spec in the repo: named
and validated at construction, JSON/TOML round-trippable, stably
hashed, and reachable from both the RunSpec layer and the CLI.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.scenarios import (
    ScenarioDefinition,
    ScenarioSpec,
    build_components,
    get,
    names,
    register,
)
from repro.spec import PopulationSpec, RunSpec


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert names() == sorted(names())
        assert set(names()) == {
            "waning-vaccination", "contact-tracing", "hospital-capacity",
            "turnover", "two-variant",
        }

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario 'nope'"):
            get("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(get("turnover"))

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            build_components("turnover", speed=3)

    def test_builder_applies_overrides(self):
        disease, components = build_components(
            "two-variant", cross_immunity=0.25, bias=0.9
        )
        assert disease.states[disease.index["R_A"]].susceptibility == 0.75
        assert components[0].bias == 0.9

    def test_definitions_describe_themselves(self):
        for name in names():
            defn = get(name)
            assert isinstance(defn, ScenarioDefinition)
            assert defn.description
            assert defn.params() == defn.defaults


class TestScenarioSpec:
    def test_json_and_toml_roundtrip(self):
        spec = ScenarioSpec("hospital-capacity", {"beds": 3})
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_hash_is_stable_and_param_sensitive(self):
        a = ScenarioSpec("turnover")
        b = ScenarioSpec("turnover", {})
        c = ScenarioSpec("turnover", {"rate": 0.2})
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()
        # Key order never matters: canonical JSON sorts.
        d = ScenarioSpec("waning-vaccination", {"coverage": 0.5, "day": 1})
        e = ScenarioSpec("waning-vaccination", {"day": 1, "coverage": 0.5})
        assert d.content_hash() == e.content_hash()

    def test_invalid_specs_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSpec("no-such")
        with pytest.raises(ValueError, match="no parameter"):
            ScenarioSpec("turnover", {"beds": 1})

    def test_build_materialises_a_scenario(self):
        g = PopulationSpec(n_persons=60, name="spec-build").build()
        sc = ScenarioSpec("turnover", {"rate": 0.3}).build(g, n_days=2)
        assert sc.n_days == 2
        assert sc.interventions.interventions[0].rate == 0.3


class TestRunSpecIntegration:
    def base(self, **kw):
        return RunSpec(
            population=PopulationSpec(n_persons=120, name="rs"), n_days=3, **kw
        )

    def test_scenario_fields_roundtrip_and_hash(self):
        spec = self.base(scenario="two-variant",
                         scenario_params={"bias": 0.8})
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert RunSpec.from_toml(spec.to_toml()) == spec
        assert spec.content_hash() != self.base().content_hash()
        # Absent and empty scenario hash identically (pruned canonical).
        assert "scenario" not in self.base().canonical()

    def test_validation(self):
        with pytest.raises(ValueError, match="scenario_params"):
            self.base(scenario_params={"bias": 0.8})
        with pytest.raises(ValueError, match="own disease model"):
            self.base(scenario="turnover", disease="sir")
        with pytest.raises(ValueError, match="unknown scenario"):
            self.base(scenario="no-such")
        with pytest.raises(ValueError, match="no parameter"):
            self.base(scenario="turnover", scenario_params={"beds": 1})

    def test_build_scenario_prepends_components(self):
        spec = self.base(scenario="hospital-capacity",
                         interventions="stay_home compliance=0.5")
        sc = spec.build_scenario()
        kinds = [type(iv).__name__ for iv in sc.interventions]
        assert kinds == ["HospitalCapacity", "StayHomeWhenSymptomatic"]
        assert "H_over" in sc.disease.index
        assert spec.build_disease().index == sc.disease.index

    def test_scenario_run_executes_on_seq(self):
        result = self.base(scenario="turnover").run()
        assert result.total_infections >= 0
        assert "S" in result.final_histogram


class TestCli:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in names():
            assert name in out

    def test_scenarios_show(self, capsys):
        assert main(["scenarios", "show", "--name", "two-variant"]) == 0
        out = capsys.readouterr().out
        assert "cross_immunity" in out
        assert main(["scenarios", "show"]) == 2

    def test_run_with_scenario_flag(self, capsys, tmp_path):
        spec_path = tmp_path / "s.json"
        assert main([
            "run", "--persons", "120", "--days", "3", "--backend", "seq",
            "--scenario", "waning-vaccination",
            "--scenario-param", "coverage=0.5",
            "--save-spec", str(spec_path),
        ]) == 0
        assert "attack rate" in capsys.readouterr().out
        saved = json.loads(spec_path.read_text())
        assert saved["scenario"] == "waning-vaccination"
        assert saved["scenario_params"] == {"coverage": 0.5}
        # The saved spec replays.
        assert main(["run", "--spec", str(spec_path)]) == 0

    def test_sweepable(self):
        spec = RunSpec(
            population=PopulationSpec(n_persons=100, name="axis"), n_days=2
        )
        swept = dataclasses.replace(spec, scenario="turnover")
        assert swept.canonical()["scenario"] == "turnover"
