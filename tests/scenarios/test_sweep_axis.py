"""The scenario as a sweep axis in repro.lab.

``scenario`` is a top-level RunSpec field, so the lab grid machinery
(``spec_with`` / ``expand``) sweeps it like any other knob; the
content-addressed artifact cache must hit on re-sweep because every
scenario shares the same population.
"""

from __future__ import annotations

import json

from repro.lab import ResultStore, SweepConfig, expand, run_sweep, spec_with
from repro.spec import PopulationSpec, RunSpec


def config(**overrides) -> SweepConfig:
    defaults = dict(
        base=RunSpec(
            population=PopulationSpec(n_persons=150, seed=1, name="scen-axis"),
            n_days=3,
            initial_infections=6,
            transmissibility=4e-4,
        ),
        grid={"scenario": ["turnover", "waning-vaccination", "two-variant"]},
        replications=2,
        master_seed=5,
        name="scenario-axis",
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def test_spec_with_sets_the_scenario_axis():
    base = config().base
    swept = spec_with(base, "scenario", "hospital-capacity")
    assert swept.scenario == "hospital-capacity"
    assert swept.population is base.population


def test_expansion_varies_scenario_not_population():
    tasks = expand(config())
    assert len(tasks) == 6
    assert {t.point["scenario"] for t in tasks} == {
        "turnover", "waning-vaccination", "two-variant",
    }
    assert len({t.spec.population.content_hash() for t in tasks}) == 1
    assert len({t.spec.content_hash() for t in tasks}) == 6


def test_sweep_runs_and_caches_across_resweeps(tmp_path):
    cfg = config()
    first = run_sweep(cfg, workers=0, store_dir=tmp_path / "a",
                      cache_dir=tmp_path / "cache")
    assert first.n_runs == 6
    assert first.builds >= 1
    # Warm cache: the shared population is never rebuilt.
    second = run_sweep(cfg, workers=0, store_dir=tmp_path / "b",
                       cache_dir=tmp_path / "cache")
    assert second.builds == 0
    assert second.cache_hit_rate == 1.0
    a = (tmp_path / "a" / "results.jsonl").read_bytes()
    b = (tmp_path / "b" / "results.jsonl").read_bytes()
    assert a == b


def test_scenarios_produce_distinct_trajectories(tmp_path):
    run_sweep(config(), workers=0, store_dir=tmp_path)
    records = ResultStore(tmp_path).records()
    by_scenario = {}
    for r in records:
        key = json.dumps(r["point"], sort_keys=True)
        by_scenario.setdefault(key, []).append(tuple(r["new_infections"]))
    assert len(by_scenario) == 3
    # Different models, same population/seed: different epidemics.
    trajectories = {v[0] for v in by_scenario.values()}
    assert len(trajectories) == 3
