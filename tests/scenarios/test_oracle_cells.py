"""Scenario differential cells: exact cross-backend/cross-kernel parity.

The named cells the issue pins — {waning, tracing, hospital-cap,
two-variant} × {sequential kernels, smp-w2} — plus a hypothesis sweep
over random scenario compositions on adversarial graphs, checked
grouped-vs-flat at the event level.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from repro.core.simulator import SequentialSimulator
from repro.validate.oracle import run_scenario_matrix, sequential_reference
from repro.validate.strategies import scenario_compositions

PINNED = ("waning-vaccination", "contact-tracing", "hospital-capacity",
          "two-variant")


def test_pinned_scenario_cells_are_exact():
    report = run_scenario_matrix(
        scenarios=PINNED, workers=(2,), n_days=5, persons=250, seed=0,
    )
    assert report.all_equal, report.format()
    backends = {c.backend for c in report.cells}
    assert {"seq-flat", "charm-rr", "smp-w2"} <= backends
    assert {c.scenario for c in report.cells} == set(PINNED)
    # The charm cells ran with the invariant checker on.
    assert all(c.checks_passed > 0
               for c in report.cells if c.backend == "charm-rr")


def test_divergence_reporting_shape():
    report = run_scenario_matrix(
        scenarios=("turnover",), workers=(1,), n_days=2, persons=80,
    )
    assert report.all_equal
    assert "turnover×smp-w1" in report.format()
    assert "bit-identical" in report.format()


@settings(max_examples=12, deadline=None)
@given(sc=scenario_compositions())
def test_random_composition_kernels_agree(sc):
    """grouped vs flat on random component stacks over corner graphs."""
    res_a, ev_a, st_a, rem_a = sequential_reference(sc, "grouped")
    res_b, ev_b, st_b, rem_b = sequential_reference(sc, "flat")
    assert ev_a == ev_b
    assert list(res_a.curve.new_infections) == list(res_b.curve.new_infections)
    assert np.array_equal(st_a, st_b)
    assert np.array_equal(rem_a, rem_b)


@settings(max_examples=12, deadline=None)
@given(sc=scenario_compositions())
def test_random_composition_is_deterministic(sc):
    """Rerunning the same drawn composition reproduces the epidemic."""
    sim1 = SequentialSimulator(sc)
    r1 = sim1.run()
    sim2 = SequentialSimulator(sc)
    r2 = sim2.run()
    assert list(r1.curve.new_infections) == list(r2.curve.new_infections)
    assert np.array_equal(sim1.health_state, sim2.health_state)
    assert np.array_equal(sim1.days_remaining, sim2.days_remaining)
