"""PTTS scenario templates: structure and parameter validation.

The templates compile through the unchanged DiseaseModel, so the flat
arrays every kernel consumes already exist; these tests pin the state
graphs the components rely on (names, susceptibilities, entry lanes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.disease import UNTREATED
from repro.scenarios import hospital_model, two_variant_model, waning_model


class TestWaningModel:
    def test_state_chain(self):
        m = waning_model(efficacy=0.5, wane_lo=3, wane_hi=6)
        assert [s.name for s in m.states] == ["S", "V", "E", "I", "R"]
        assert m.states[m.index["V"]].susceptibility == 0.5
        # V is finite: it wanes back to S.
        v = m.states[m.index["V"]]
        (tr,) = v.transitions[UNTREATED]
        assert tr.target == "S"

    def test_wane_dwell_range(self):
        m = waning_model(wane_lo=3, wane_hi=6)
        gen = np.random.default_rng(0)
        samples = m.states[m.index["V"]].dwell.sample(gen, 500)
        assert samples.min() >= 3 and samples.max() <= 6

    def test_efficacy_bounds(self):
        with pytest.raises(ValueError, match="efficacy"):
            waning_model(efficacy=1.5)


class TestHospitalModel:
    def test_states_and_branches(self):
        m = hospital_model(hospitalization=0.3, mortality=0.1,
                           overflow_mortality=0.4)
        assert sorted(m.index) == ["D", "E", "H", "H_over", "I", "R", "S"]
        h = {tr.target: tr.prob
             for tr in m.states[m.index["H"]].transitions[UNTREATED]}
        over = {tr.target: tr.prob
                for tr in m.states[m.index["H_over"]].transitions[UNTREATED]}
        assert h["D"] == 0.1 and over["D"] == 0.4

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="mortality"):
            hospital_model(mortality=-0.1)


class TestTwoVariantModel:
    def test_reinfection_lanes(self):
        m = two_variant_model(cross_immunity=0.6)
        assert m.infection_entry_by_state == {"R_A": "E_B2", "R_B": "E_A2"}
        for name in ("R_A", "R_B"):
            s = m.states[m.index[name]]
            assert s.susceptibility == pytest.approx(0.4)
            # Absorbing until reinfected: no declared transitions out.
            assert s.dwell.kind.name == "FOREVER" and not s.transitions

    def test_variant_b_is_hotter(self):
        m = two_variant_model(variant_b_infectivity=1.3)
        assert m.states[m.index["I_B"]].infectivity == pytest.approx(1.3)
        assert m.states[m.index["I_B2"]].infectivity == pytest.approx(1.3)
        assert m.states[m.index["I_A"]].infectivity == 1.0

    def test_terminal_state_is_fully_immune(self):
        m = two_variant_model()
        assert m.states[m.index["R_AB"]].susceptibility == 0.0

    def test_parameter_bounds(self):
        with pytest.raises(ValueError, match="cross_immunity"):
            two_variant_model(cross_immunity=1.0)
        with pytest.raises(ValueError, match="variant_b_infectivity"):
            two_variant_model(variant_b_infectivity=0.0)
