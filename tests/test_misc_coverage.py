"""Error paths and format guards not covered elsewhere."""

import json

import numpy as np
import pytest

from repro.synthpop import save_population


class TestFormatGuards:
    def test_population_format_version_rejected(self, tmp_path, tiny_graph):
        from repro.synthpop import load_population

        path = tmp_path / "pop.npz"
        save_population(tiny_graph, path)
        # Corrupt the header's version.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["format_version"] = 999
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_population(path)

    def test_checkpoint_format_version_rejected(self, tmp_path, tiny_scenario):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint
        from repro.core.simulator import SequentialSimulator

        sim = SequentialSimulator(tiny_scenario)
        sim.step_day()
        path = tmp_path / "ck.npz"
        save_checkpoint(sim, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["format_version"] = 999
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="checkpoint format"):
            load_checkpoint(tiny_scenario, path)


class TestTorusInScalingModel:
    def test_torus_network_raises_large_machine_day_time(self, tiny_graph):
        """Wiring a torus-derived network into the phase-cost model must
        increase the comm/sync terms on a big machine."""
        from repro.analysis.scaling import PhaseCostModel, machine_for_core_modules
        from repro.charm.machine import Machine
        from repro.charm.network import NetworkModel
        from repro.charm.topology import TorusTopology, torus_network
        from repro.partition import round_robin_partition

        mc = machine_for_core_modules(256)
        m = Machine(mc)
        bp = round_robin_partition(tiny_graph, m.n_pes)
        flat = PhaseCostModel(network=NetworkModel())
        torus = PhaseCostModel(
            network=torus_network(NetworkModel(), TorusTopology.fitting(mc.n_nodes))
        )
        t_flat = flat.day_time(tiny_graph, bp, m)
        t_torus = torus.day_time(tiny_graph, bp, m)
        assert t_torus.sync > t_flat.sync
        assert t_torus.total > t_flat.total


class TestChareArrayGuards:
    def test_out_of_range_element(self):
        from repro.charm import Chare
        from repro.charm.chare import ChareArray

        arr = ChareArray("a", lambda i: Chare(), np.zeros(2, dtype=np.int64))
        with pytest.raises(IndexError):
            arr.element(5)

    def test_empty_placement_rejected(self):
        from repro.charm import Chare
        from repro.charm.chare import ChareArray

        with pytest.raises(ValueError):
            ChareArray("a", lambda i: Chare(), np.empty(0, dtype=np.int64))


class TestScenarioProperties:
    def test_index_cases_deterministic(self, tiny_graph):
        from repro.core import Scenario

        a = Scenario(graph=tiny_graph, seed=9, initial_infections=7)
        b = Scenario(graph=tiny_graph, seed=9, initial_infections=7)
        np.testing.assert_array_equal(a.index_cases(), b.index_cases())

    def test_index_cases_unique(self, tiny_graph):
        from repro.core import Scenario

        cases = Scenario(graph=tiny_graph, seed=2, initial_infections=50).index_cases()
        assert len(set(cases.tolist())) == 50
