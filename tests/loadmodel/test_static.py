"""Static load model: the paper's piecewise-linear/sigmoid form."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.loadmodel.static import PAPER_STATIC_MODEL, PiecewiseLoadModel


class TestPaperModel:
    def test_small_regime_matches_ya(self):
        # Well below the crossover, Y ≈ Ya.
        x = 100.0
        expected = 6.09e-6 + 7.72e-7 * x
        assert PAPER_STATIC_MODEL.evaluate(x) == pytest.approx(expected, rel=1e-3)

    def test_large_regime_matches_yb(self):
        x = 50_000.0
        expected = -1.25e-4 + 8.67e-7 * x
        assert PAPER_STATIC_MODEL.evaluate(x) == pytest.approx(expected, rel=1e-3)

    def test_crossover_is_line_intersection(self):
        m = PAPER_STATIC_MODEL
        x_star = (m.intercept_a - m.intercept_b) / (m.slope_b - m.slope_a)
        assert m.crossover == pytest.approx(x_star, rel=0.01)

    def test_continuous_through_crossover(self):
        m = PAPER_STATIC_MODEL
        xs = np.linspace(m.crossover * 0.5, m.crossover * 1.5, 200)
        ys = m.evaluate(xs)
        rel_jumps = np.abs(np.diff(ys)) / ys[:-1]
        assert rel_jumps.max() < 0.05  # smooth blend, no cliff

    def test_positive_floor(self):
        assert PAPER_STATIC_MODEL.evaluate(0.0) > 0


class TestModelProperties:
    @given(st.floats(1.0, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_nonnegative_everywhere(self, x):
        assert PAPER_STATIC_MODEL.evaluate(x) > 0

    def test_monotone_over_realistic_range(self):
        xs = np.geomspace(1, 1e6, 500)
        ys = PAPER_STATIC_MODEL.evaluate(xs)
        assert np.all(np.diff(ys) >= -1e-12)

    def test_mu_scales_input(self):
        m2 = PiecewiseLoadModel(
            intercept_a=0.0, slope_a=1.0, intercept_b=0.0, slope_b=1.0,
            crossover=100.0, mu=2.0,
        )
        m1 = PiecewiseLoadModel(
            intercept_a=0.0, slope_a=1.0, intercept_b=0.0, slope_b=1.0,
            crossover=100.0, mu=1.0,
        )
        assert m2.evaluate(50.0) == pytest.approx(m1.evaluate(100.0))

    def test_vectorised_matches_scalar(self):
        xs = np.array([10.0, 1000.0, 100000.0])
        ys = PAPER_STATIC_MODEL.evaluate(xs)
        for x, y in zip(xs, ys):
            assert PAPER_STATIC_MODEL.evaluate(float(x)) == pytest.approx(float(y))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PiecewiseLoadModel(0, 1, 0, 1, crossover=-1)
        with pytest.raises(ValueError):
            PiecewiseLoadModel(0, 1, 0, 1, crossover=1, transition_width=0)
