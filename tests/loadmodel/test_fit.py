"""Load-model fitting (the Figure-3a procedure)."""

import numpy as np
import pytest

from repro.loadmodel.fit import fit_piecewise_linear
from repro.loadmodel.static import PAPER_STATIC_MODEL


class TestFit:
    def test_recovers_paper_model_from_its_own_samples(self):
        xs = np.geomspace(10, 2e5, 300)
        ys = np.asarray(PAPER_STATIC_MODEL.evaluate(xs))
        report = fit_piecewise_linear(xs, ys)
        assert report.mean_relative_error < 0.05  # the paper's ~5% figure
        # Slopes of both regimes recovered.
        assert report.model.slope_a == pytest.approx(7.72e-7, rel=0.15)
        assert report.model.slope_b == pytest.approx(8.67e-7, rel=0.15)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        xs = np.geomspace(10, 2e5, 400)
        ys = np.asarray(PAPER_STATIC_MODEL.evaluate(xs))
        noisy = ys * rng.normal(1.0, 0.05, size=ys.shape)
        report = fit_piecewise_linear(xs, noisy)
        assert report.mean_relative_error < 0.12

    def test_pure_line_fits_perfectly(self):
        xs = np.linspace(1, 100, 50)
        ys = 2.0 + 3.0 * xs
        report = fit_piecewise_linear(xs, ys)
        assert report.mean_relative_error < 1e-9

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_piecewise_linear([1, 2, 3], [1, 2, 3])

    def test_rejects_negative_loads(self):
        with pytest.raises(ValueError):
            fit_piecewise_linear([1, 2, 3, 4], [1, -2, 3, 4])

    def test_mu_applied(self):
        xs = np.geomspace(10, 1e5, 100)
        ys = np.asarray(PAPER_STATIC_MODEL.evaluate(xs))
        # Fitting with mu=2 against x/2 samples should recover the same fit quality.
        report = fit_piecewise_linear(xs / 2.0, ys, mu=2.0)
        assert report.mean_relative_error < 0.05

    def test_report_str(self):
        xs = np.geomspace(10, 1e5, 100)
        ys = np.asarray(PAPER_STATIC_MODEL.evaluate(xs))
        report = fit_piecewise_linear(xs, ys)
        assert "phi" in str(report)


class TestFitAgainstMeasuredKernel:
    def test_fit_real_des_timings(self):
        """Measure the actual interaction kernel and fit the model to it —
        the end-to-end Figure-3a procedure on this machine."""
        import time

        from repro.core.des import pairwise_exposures

        rng = np.random.default_rng(1)
        sizes = np.unique(np.geomspace(4, 600, 24).astype(int))
        xs, ys = [], []
        for n in sizes:
            subloc = np.zeros(n, dtype=np.int64)
            start = rng.integers(0, 700, n)
            end = start + rng.integers(1, 700, n)
            sus = rng.random(n) < 0.7
            inf = ~sus
            t0 = time.perf_counter()
            for _ in range(3):
                pairwise_exposures(subloc, start, end, sus, inf)
            ys.append((time.perf_counter() - t0) / 3)
            xs.append(2 * n)
        report = fit_piecewise_linear(np.array(xs), np.array(ys))
        # Wall-clock noise is real; just require a sane fit.
        assert report.mean_relative_error < 0.8
        assert report.model.slope_b >= 0
