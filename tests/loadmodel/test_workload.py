"""Vertex-weight assignment for multi-constraint partitioning."""

import numpy as np
import pytest

from repro.loadmodel.dynamic import DynamicLoadModel
from repro.loadmodel.workload import (
    WorkloadModel,
    location_loads,
    person_loads,
    vertex_weight_matrix,
)


class TestPersonLoads:
    def test_equals_visit_counts(self, tiny_graph):
        np.testing.assert_array_equal(person_loads(tiny_graph), tiny_graph.person_degrees)


class TestLocationLoads:
    def test_monotone_in_visits(self, tiny_graph):
        loads = location_loads(tiny_graph)
        counts = tiny_graph.location_visit_counts
        order = np.argsort(counts)
        # Loads sorted by visit count must be non-decreasing.
        assert np.all(np.diff(loads[order]) >= -1e-12)

    def test_positive(self, tiny_graph):
        assert np.all(location_loads(tiny_graph) > 0)


class TestWeightMatrix:
    def test_shape_and_disjoint_constraints(self, tiny_graph):
        w = vertex_weight_matrix(tiny_graph)
        n, m = tiny_graph.n_persons, tiny_graph.n_locations
        assert w.shape == (n + m, 2)
        assert np.all(w[:n, 1] == 0)
        assert np.all(w[n:, 0] == 0)
        assert np.all(w[:n, 0] >= 1)
        assert np.all(w[n:, 1] >= 1)

    def test_int_scale_resolution(self, tiny_graph):
        coarse = WorkloadModel(int_scale=1.0)
        fine = WorkloadModel(int_scale=1e8)
        wc = coarse.location_weights(tiny_graph)
        wf = fine.location_weights(tiny_graph)
        # Finer scaling must distinguish more load levels.
        assert len(np.unique(wf)) >= len(np.unique(wc))


class TestDynamicModel:
    def test_linear_composition(self):
        m = DynamicLoadModel(c_events=1.0, c_interactions=2.0, c_recip=3.0)
        assert m.evaluate(1.0, 1.0, 1.0) == pytest.approx(6.0)

    def test_vectorised(self):
        m = DynamicLoadModel()
        out = m.evaluate(np.array([2.0, 4.0]), np.array([10.0, 0.0]))
        assert out.shape == (2,)
        assert out[0] > out[1]

    def test_defaults_are_minor_share(self):
        """Dynamic cost should be a minority of a busy location's total."""
        from repro.loadmodel.static import PAPER_STATIC_MODEL

        events = 2000.0
        interactions = 500.0
        dyn = DynamicLoadModel().evaluate(events, interactions)
        sta = PAPER_STATIC_MODEL.evaluate(events)
        assert dyn < sta
