"""§III-B closed-form machinery and its empirical cross-checks."""

import numpy as np
import pytest

from repro.analysis.theory import (
    PowerLawTheory,
    characteristic_dmax,
    empirical_tail,
    expected_max_degree,
)
from repro.synthpop import PopulationConfig, generate_population
from repro.synthpop.powerlaw import bounded_zipf_sample


class TestClosedForms:
    def test_dmax_grows_sublinearly(self):
        d1 = characteristic_dmax(2.0, 10_000)
        d2 = characteristic_dmax(2.0, 40_000)
        # (cD)^(1/2): 4x vertices -> 2x dmax.
        assert d2 / d1 == pytest.approx(2.0, rel=1e-6)

    def test_heavier_tail_bigger_dmax(self):
        assert characteristic_dmax(1.8, 10**5) > characteristic_dmax(2.8, 10**5)

    def test_doubling_loss_is_d_independent(self):
        t = PowerLawTheory(beta=2.0, d_avg=14.35)
        assert t.doubling_loss(10**4) == pytest.approx(t.doubling_loss(10**6), rel=1e-9)
        assert t.doubling_loss(10**4) == pytest.approx(1 - 2 ** (-1 / 2.0), rel=1e-9)

    def test_sub_over_d_decreasing(self):
        t = PowerLawTheory(beta=2.0, d_avg=14.35)
        values = [t.sub_over_d_bound(d) for d in (10**3, 10**4, 10**5, 10**6)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PowerLawTheory(beta=1.0, d_avg=10)
        with pytest.raises(ValueError):
            characteristic_dmax(2.0, 0)


class TestAgainstSampledDegrees:
    def test_expected_max_tracks_samples(self):
        """The order-statistics form brackets realised sample maxima;
        the paper's density form is a (deliberate) underestimate."""
        rng = np.random.default_rng(7)
        beta = 2.0
        for n in (2_000, 20_000, 200_000):
            sample_max = bounded_zipf_sample(rng, n, beta, d_max=10**6).max()
            tail = expected_max_degree(beta, n)
            density = characteristic_dmax(beta, n)
            assert tail / 8 < sample_max < tail * 8
            assert density < sample_max  # conservative by construction

    def test_forms_ordered(self):
        for beta in (1.7, 2.0, 2.5):
            assert expected_max_degree(beta, 10**5) > characteristic_dmax(beta, 10**5)

    def test_empirical_fit_on_generated_population(self):
        """The fitted theory must at least bound the realised tail from
        both sides: density-dmax <= realised dmax <= ~tail-dmax."""
        g = generate_population(PopulationConfig(n_persons=3000), 5)
        theory = empirical_tail(g)
        assert 1.3 < theory.beta < 3.5
        deg = g.location_in_degrees().astype(float)
        realised = deg.max()
        assert characteristic_dmax(theory.beta, g.n_locations) < realised
        assert realised < 30 * expected_max_degree(theory.beta, g.n_locations)
