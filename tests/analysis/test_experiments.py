"""Replicate harness and policy comparison."""

import numpy as np
import pytest

from repro.analysis.experiments import compare_policies, run_replicates
from repro.core import Scenario, TransmissionModel, Vaccination
from repro.core.interventions import InterventionSchedule


def _factory(graph, rate=2e-4, interventions=None):
    def make(seed):
        return Scenario(
            graph=graph, n_days=20, seed=seed, initial_infections=5,
            transmission=TransmissionModel(rate),
            interventions=InterventionSchedule(
                list(interventions()) if interventions else []
            ),
        )

    return make


class TestRunReplicates:
    def test_shapes(self, tiny_graph):
        s = run_replicates(_factory(tiny_graph), range(3))
        assert s.n_replicates == 3
        assert s.new_infections.shape == (3, 20)
        assert s.attack_rates.shape == (3,)
        assert s.mean_curve.shape == (20,)

    def test_replicates_differ_across_seeds(self, tiny_graph):
        s = run_replicates(_factory(tiny_graph), range(4))
        assert np.ptp(s.attack_rates) > 0

    def test_same_seed_identical(self, tiny_graph):
        s = run_replicates(_factory(tiny_graph), [7, 7])
        np.testing.assert_array_equal(s.new_infections[0], s.new_infections[1])

    def test_ci_contains_mean(self, tiny_graph):
        s = run_replicates(_factory(tiny_graph), range(5))
        lo, hi = s.attack_rate_ci()
        assert lo <= s.mean_attack_rate <= hi

    def test_band_orders(self, tiny_graph):
        s = run_replicates(_factory(tiny_graph), range(4))
        lo, hi = s.curve_band()
        assert np.all(lo <= hi)

    def test_empty_seeds_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            run_replicates(_factory(tiny_graph), [])


class TestComparePolicies:
    def test_vaccination_beats_baseline(self, tiny_graph):
        policies = {
            "baseline": _factory(tiny_graph, rate=3e-4),
            "vax": _factory(
                tiny_graph, rate=3e-4,
                interventions=lambda: [Vaccination(coverage=0.9, day=0)],
            ),
        }
        summaries, contrasts = compare_policies(policies, range(4))
        assert summaries["vax"].mean_attack_rate < summaries["baseline"].mean_attack_rate
        (c,) = contrasts
        assert c.mean_difference > 0  # baseline − vax

    def test_identical_policies_not_significant(self, tiny_graph):
        policies = {
            "a": _factory(tiny_graph),
            "b": _factory(tiny_graph),
        }
        _, contrasts = compare_policies(policies, range(3))
        assert contrasts[0].p_value == 1.0
        assert not contrasts[0].significant
