"""ASCII figure rendering."""

import pytest

from repro.analysis.figures import AsciiChart, render_series


class TestAsciiChart:
    def test_renders_grid_of_requested_size(self):
        out = render_series({"a": [(1, 1), (10, 10), (100, 100)]}, width=30, height=8)
        lines = out.splitlines()
        # height rows + x-axis labels + legend
        assert len(lines) == 8 + 2
        assert "o=a" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        out = render_series(
            {"rr": [(1, 10), (10, 9)], "gp": [(1, 8), (10, 2)]},
            width=20, height=6,
        )
        assert "o=rr" in out and "x=gp" in out
        assert "o" in out and "x" in out

    def test_empty_series(self):
        assert render_series({}) == "(no data)"

    def test_log_axes_reject_nonpositive_gracefully(self):
        assert "(no positive data" in render_series({"a": [(0, 0)]})

    def test_linear_axes(self):
        out = AsciiChart(width=20, height=5, logx=False, logy=False).render(
            {"a": [(0.0, 0.0), (1.0, 1.0)]}
        )
        assert "o" in out

    def test_monotone_series_renders_monotone(self):
        """Columns of glyphs must descend for a decreasing series."""
        pts = [(10**i, 10.0 ** (3 - i)) for i in range(4)]
        out = render_series({"s": pts}, width=40, height=10)
        lines = out.splitlines()[:10]
        cols = []
        for r, line in enumerate(lines):
            for c, ch in enumerate(line[12:]):
                if ch == "o":
                    cols.append((c, r))
        cols.sort()
        rows_in_col_order = [r for _, r in cols]
        assert rows_in_col_order == sorted(rows_in_col_order)

    def test_strong_scaling_figure_smoke(self, tiny_graph):
        """Render a real Figure-13-style chart from the scaling model."""
        from repro.analysis.scaling import strong_scaling_curve
        from repro.partition import round_robin_partition

        pts = strong_scaling_curve(
            tiny_graph, lambda n: round_robin_partition(tiny_graph, n), [1, 16, 64]
        )
        chart = render_series(
            {"RR": [(p.core_modules, p.time_per_day) for p in pts]}
        )
        assert "o=RR" in chart
