"""Degree/load distribution helpers (Figures 3c/d, 7a/b)."""

import numpy as np

from repro.analysis.distributions import degree_distribution, load_distribution
from repro.partition.splitloc import split_heavy_locations


class TestDegreeDistribution:
    def test_counts_all_locations(self, small_graph):
        h = degree_distribution(small_graph)
        assert h.counts.sum() == small_graph.n_locations

    def test_heavy_tail_spans_decades(self, small_graph):
        h = degree_distribution(small_graph)
        span = h.edges[-1] / h.edges[0]
        assert span > 100  # at least two decades of in-degree


class TestLoadDistribution:
    def test_counts_all_locations(self, small_graph):
        h = load_distribution(small_graph)
        assert h.counts.sum() == small_graph.n_locations


class TestSplitEffect:
    def test_split_compresses_the_tail(self, small_graph):
        """Figure 7 vs Figure 3: after splitLoc the maximum degree drops."""
        before = degree_distribution(small_graph)
        sr = split_heavy_locations(small_graph, max_partitions=2048)
        after = degree_distribution(sr.graph)
        assert after.edges[-1] < before.edges[-1]
