"""Phase-cost model and strong-scaling harness."""

import numpy as np
import pytest

from repro.analysis.scaling import (
    PhaseCostModel,
    machine_for_core_modules,
    speedup_table,
    strong_scaling_curve,
)
from repro.charm.machine import Machine
from repro.partition import round_robin_partition, split_heavy_locations
from repro.partition.quality import BipartitePartition
from repro.analysis.speedup import lpt_location_partition
from repro.loadmodel.workload import WorkloadModel


def _gp_like_provider(graph):
    wl = WorkloadModel()
    loads = wl.location_weights(graph).astype(float)

    def provider(n_pes):
        return BipartitePartition(
            person_part=np.arange(graph.n_persons, dtype=np.int64) % n_pes,
            location_part=lpt_location_partition(loads, n_pes),
            k=n_pes,
            method="LPT",
        )

    return provider


class TestMachineBuilder:
    def test_subnode_machine(self):
        mc = machine_for_core_modules(4)
        assert mc.n_nodes == 1 and mc.cores_per_node == 4 and not mc.smp

    def test_multi_node_smp(self):
        mc = machine_for_core_modules(64)
        assert mc.n_nodes == 4 and mc.smp
        assert Machine(mc).n_pes == 4 * 14

    def test_invalid(self):
        with pytest.raises(ValueError):
            machine_for_core_modules(0)


class TestDayTime:
    def test_partition_machine_mismatch_rejected(self, tiny_graph):
        model = PhaseCostModel()
        bp = round_robin_partition(tiny_graph, 4)
        with pytest.raises(ValueError, match="does not match"):
            model.day_time(tiny_graph, bp, machine_for_core_modules(64))

    def test_breakdown_components_nonnegative(self, tiny_graph):
        model = PhaseCostModel()
        mc = machine_for_core_modules(8)
        bp = round_robin_partition(tiny_graph, Machine(mc).n_pes)
        bd = model.day_time(tiny_graph, bp, mc)
        for f in ("person_phase", "location_phase", "comm", "sync", "collect"):
            assert getattr(bd, f) >= 0
        assert bd.total > 0

    def test_serial_time_has_no_overheads(self, tiny_graph):
        model = PhaseCostModel()
        bp1 = BipartitePartition(
            np.zeros(tiny_graph.n_persons, dtype=np.int64),
            np.zeros(tiny_graph.n_locations, dtype=np.int64),
            1,
        )
        bd = model.day_time(tiny_graph, bp1, machine_for_core_modules(1))
        assert bd.comm == 0 and bd.sync == 0 and bd.collect == 0
        assert model.serial_day_time(tiny_graph) == pytest.approx(bd.total)


class TestStrongScaling:
    def test_speedup_at_one_core_is_one(self, small_graph):
        pts = strong_scaling_curve(
            small_graph, lambda n: round_robin_partition(small_graph, n), [1]
        )
        assert pts[0].speedup == pytest.approx(1.0)
        assert pts[0].efficiency == pytest.approx(1.0)

    def test_split_scales_further_than_rr(self, small_graph):
        """The Figure-13 headline: GP/RR saturate at Ltot/lmax while
        splitLoc keeps scaling."""
        cores = [1, 16, 256, 2048]
        rr_pts = strong_scaling_curve(
            small_graph, lambda n: round_robin_partition(small_graph, n), cores
        )
        sr = split_heavy_locations(small_graph, max_partitions=4096)
        split_pts = strong_scaling_curve(
            sr.graph, _gp_like_provider(sr.graph), cores
        )
        assert split_pts[-1].speedup > 2 * rr_pts[-1].speedup

    def test_qd_sync_costs_more_than_cd(self, tiny_graph):
        cd = PhaseCostModel(sync_waves=1)
        qd = PhaseCostModel(sync_waves=3)
        mc = machine_for_core_modules(64)
        bp = round_robin_partition(tiny_graph, Machine(mc).n_pes)
        assert qd.day_time(tiny_graph, bp, mc).sync > cd.day_time(tiny_graph, bp, mc).sync

    def test_no_aggregation_costs_more_at_scale(self, small_graph):
        agg = PhaseCostModel(aggregation_bytes=64 * 1024)
        none = PhaseCostModel(aggregation_bytes=0)
        mc = machine_for_core_modules(128)
        bp = round_robin_partition(small_graph, Machine(mc).n_pes)
        assert none.day_time(small_graph, bp, mc).comm > agg.day_time(small_graph, bp, mc).comm

    def test_table_formatting(self, tiny_graph):
        pts = strong_scaling_curve(
            tiny_graph, lambda n: round_robin_partition(tiny_graph, n), [1, 16]
        )
        table = speedup_table(pts)
        assert "speedup" in table and len(table.splitlines()) == 3
