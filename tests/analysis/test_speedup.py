"""S_ub speedup bounds and the §III-B analytic form."""

import numpy as np
import pytest

from repro.analysis.speedup import (
    analytic_sub_over_d_bound,
    lpt_location_partition,
    speedup_bound_curve,
    sub_over_d,
    upper_bound_speedup,
)
from repro.loadmodel.workload import WorkloadModel
from repro.partition.splitloc import split_heavy_locations


class TestUpperBound:
    def test_balanced_gives_k(self):
        assert upper_bound_speedup([5.0, 5.0, 5.0, 5.0]) == pytest.approx(4.0)

    def test_single_heavy_partition_dominates(self):
        assert upper_bound_speedup([10.0, 1.0, 1.0]) == pytest.approx(1.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            upper_bound_speedup([])


class TestLPT:
    def test_assigns_all(self):
        loads = np.array([5.0, 3.0, 2.0, 2.0, 1.0, 1.0])
        part = lpt_location_partition(loads, 2)
        assert part.shape == loads.shape
        sums = np.bincount(part, weights=loads, minlength=2)
        assert sums.max() == pytest.approx(7.0)  # LPT on this input is optimal

    def test_k_one(self):
        part = lpt_location_partition(np.array([1.0, 2.0]), 1)
        assert np.all(part == 0)


class TestBoundCurve:
    def test_monotone_then_saturates(self, small_graph):
        ks = [1, 2, 8, 64, 512, 4096]
        curve = speedup_bound_curve(small_graph, ks)
        values = [curve[k] for k in ks]
        assert values[0] == 1.0
        assert values[-1] >= values[1]
        # Saturation: S_ub can never exceed Ltot/lmax.
        wl = WorkloadModel()
        loads = wl.location_weights(small_graph).astype(float)
        cap = loads.sum() / loads.max()
        assert all(v <= cap + 1e-9 for v in values)

    def test_gp_method_agrees_roughly_with_lpt_at_small_k(self, tiny_graph):
        lpt = speedup_bound_curve(tiny_graph, [4], method="lpt")[4]
        gp = speedup_bound_curve(tiny_graph, [4], method="gp")[4]
        assert gp <= lpt * 1.05  # LPT is the balance-optimal reference
        assert gp > 1.0

    def test_unknown_method(self, tiny_graph):
        with pytest.raises(ValueError):
            speedup_bound_curve(tiny_graph, [2], method="magic")


class TestSplitLocEffect:
    def test_split_raises_max_sub(self, small_graph):
        """The paper's headline §III-C effect: Ltot/lmax grows by a large
        factor after splitting."""
        before = sub_over_d(small_graph) * small_graph.n_locations
        sr = split_heavy_locations(small_graph, max_partitions=4096)
        after = sub_over_d(sr.graph) * sr.graph.n_locations
        assert after > 3 * before

    def test_sub_over_d_closed_form_matches_sweep(self, tiny_graph):
        closed = sub_over_d(tiny_graph)
        swept = sub_over_d(tiny_graph, ks=[1, 4, 16, 64, 256, 1024, 8192])
        assert swept <= closed + 1e-9
        assert swept >= 0.5 * closed  # sweep approaches the cap


class TestAnalyticBound:
    def test_decreases_with_data_size(self):
        small = analytic_sub_over_d_bound(2.0, 14.35, 10_000)
        big = analytic_sub_over_d_bound(2.0, 14.35, 10_000_000)
        assert big < small

    def test_higher_beta_scales_better(self):
        # Lighter tails (bigger beta) hurt scalability less.
        light = analytic_sub_over_d_bound(3.0, 14.35, 10**6)
        heavy = analytic_sub_over_d_bound(1.8, 14.35, 10**6)
        assert light > heavy

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            analytic_sub_over_d_bound(2.0, 14.35, 0)
