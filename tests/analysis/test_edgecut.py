"""Per-partition edge-cut sweep (Figure 14)."""

import pytest

from repro.analysis.edgecut import edge_cut_sweep


class TestEdgeCutSweep:
    def test_points_structure(self, tiny_graph):
        pts = edge_cut_sweep(tiny_graph, [2, 8])
        assert [p.k for p in pts] == [2, 8]
        for p in pts:
            assert p.max_partition_cut >= 0
            assert p.all_remote_baseline == pytest.approx(tiny_graph.n_visits / p.k)

    def test_k1_no_cut(self, tiny_graph):
        (p,) = edge_cut_sweep(tiny_graph, [1])
        assert p.max_partition_cut == 0

    def test_ratio_exceeds_one_at_large_k(self, small_graph):
        """The paper's point: the max per-partition cut is several times
        the all-remote average because heavy locations concentrate
        communication."""
        pts = edge_cut_sweep(small_graph, [64])
        assert pts[0].ratio > 1.0
