"""CLI commands end-to-end (in-process)."""

import pytest

from repro.cli import main
from repro.synthpop import save_population


@pytest.fixture()
def pop_file(tmp_path, tiny_graph):
    path = tmp_path / "pop.npz"
    save_population(tiny_graph, path)
    return str(path)


class TestGenerate:
    def test_generate_state(self, tmp_path, capsys):
        out = str(tmp_path / "wy.npz")
        assert main(["generate", out, "--state", "WY", "--scale", "2e-4", "--seed", "3"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (tmp_path / "wy.npz").exists()

    def test_generate_explicit_persons(self, tmp_path, capsys):
        out = str(tmp_path / "c.npz")
        assert main(["generate", out, "--persons", "150"]) == 0
        assert "150 people" in capsys.readouterr().out


class TestInfo:
    def test_info_fields(self, pop_file, capsys):
        assert main(["info", pop_file]) == 0
        out = capsys.readouterr().out
        assert "people" in out and "max location in-degree" in out


class TestSimulate:
    def test_simulate_prints_curve(self, pop_file, capsys):
        assert main(["simulate", pop_file, "--days", "5", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "attack rate" in out
        assert out.count("\n") > 6  # csv rows

    def test_simulate_with_scripts(self, pop_file, tmp_path, capsys):
        iv = tmp_path / "iv.txt"
        iv.write_text("vaccinate coverage=0.5 day=0\nstay_home compliance=0.5\n")
        dm = tmp_path / "m.ptts"
        dm.write_text(
            "susceptible S\nstate S susceptibility=1.0\nstate E dwell=fixed(1)\n"
            "state I infectivity=1.0 dwell=fixed(2)\nstate R\n"
            "transition E -> I:1.0\ntransition I -> R:1.0\nentry -> E\n"
        )
        assert main([
            "simulate", pop_file, "--days", "4",
            "--interventions", str(iv), "--disease", str(dm),
        ]) == 0
        assert "attack rate" in capsys.readouterr().out


class TestPartition:
    def test_partition_gp(self, pop_file, capsys):
        assert main(["partition", pop_file, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "S_ub" in out and "edge cut" in out

    def test_partition_rr_with_split(self, pop_file, capsys):
        assert main(["partition", pop_file, "-k", "4", "--method", "rr", "--split"]) == 0
        out = capsys.readouterr().out
        assert "splitLoc" in out


class TestScale:
    def test_scale_sweep(self, pop_file, capsys):
        assert main(["scale", pop_file, "--cores", "1", "16", "--split"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_scale_rr(self, pop_file, capsys):
        assert main(["scale", pop_file, "--cores", "1", "16", "--strategy", "rr"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestRunSpecFlow:
    def test_run_saves_and_reloads_a_spec(self, tmp_path, capsys):
        spec_path = str(tmp_path / "run.toml")
        assert main([
            "run", "--persons", "200", "--backend", "seq", "--days", "3",
            "--save-spec", spec_path,
        ]) == 0
        first = capsys.readouterr().out
        assert "wrote spec" in first and "total cases" in first
        assert main(["run", "--spec", spec_path]) == 0
        second = capsys.readouterr().out
        # Same spec => same epidemic (timing lines differ).
        assert first.split("total cases")[1] == second.split("total cases")[1]

    def test_run_rejects_ambiguous_population(self, pop_file, capsys):
        assert main(["run", pop_file, "--persons", "100"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestSweep:
    def test_quick_sweep_and_results_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "sweep", "--quick", "--workers", "0", "--out", store,
            "--cache", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 runs" in out and "result store" in out

        assert main(["results", store]) == 0
        out = capsys.readouterr().out
        assert "transmissibility=0.0002" in out

        assert main(["results", store, "--replay", "0"]) == 0
        assert "reproduced exactly" in capsys.readouterr().out

        assert main(["results", store, "--point", "transmissibility=0.0004"]) == 0
        out = capsys.readouterr().out
        assert out.count("replicate") == 2

    def test_sweep_dry_run_lists_tasks(self, capsys):
        assert main([
            "sweep", "--quick", "--dry-run",
            "--grid", "transmissibility=1e-4,2e-4", "--replications", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "6 runs" in out
        assert out.count("hash") == 6

    def test_sweep_rejects_malformed_grid(self, capsys):
        assert main(["sweep", "--quick", "--grid", "transmissibility"]) == 2
        assert "--grid" in capsys.readouterr().err
