"""Dijkstra baseline: determinism, degenerate regimes, FastSIR agreement.

The saturated-chain test is shared with FastSIR deliberately — with
probability-one edges both algorithms are deterministic and must agree
*exactly*, which pins their day-index conventions to each other (the
stochastic agreement is the distribution oracle's job).
"""

import numpy as np
import pytest

from repro.baselines import SEIRParams, project_contact_graph, run_dijkstra, run_fastsir
from repro.util.rng import RngFactory

from tests.baselines.test_fastsir import PARAMS, chain_graph


class TestDeterminism:
    def test_same_seed_bit_identical(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        runs = [
            run_dijkstra(contact, PARAMS, 10, 3,
                         RngFactory(42).stream(RngFactory.BASELINE, 0, 1))
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].infection_day, runs[1].infection_day)
        assert np.array_equal(runs[0].new_infections, runs[1].new_infections)
        assert np.array_equal(runs[0].prevalence, runs[1].prevalence)


class TestDegenerateRegimes:
    def test_zero_transmissibility_keeps_only_seeds(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        result = run_dijkstra(contact, SEIRParams(0.0), 10, 5,
                              RngFactory(1).stream(RngFactory.BASELINE, 0, 1))
        assert result.final_size == 5
        assert result.new_infections[1:].sum() == 0

    def test_curve_accounting(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        result = run_dijkstra(contact, PARAMS, 12, 4,
                              RngFactory(9).stream(RngFactory.BASELINE, 0, 1))
        assert result.final_size == int(result.new_infections.sum())
        assert np.all(result.prevalence >= 0) and np.all(result.prevalence <= 1)

    def test_n_days_must_be_positive(self):
        with pytest.raises(ValueError, match="n_days"):
            run_dijkstra(chain_graph(2), PARAMS, 0, 1,
                         RngFactory(0).stream(RngFactory.BASELINE, 0, 1))


class TestExactTiming:
    def test_saturated_chain_equals_fastsir_exactly(self):
        # With probability-one edges both simulators are deterministic:
        # same infection days, same curve, regardless of their different
        # RNG consumption patterns.
        graph = chain_graph(6)
        params = SEIRParams(0.9, 2, 4)
        dj = run_dijkstra(graph, params, 12, np.array([0]),
                          RngFactory(3).stream(RngFactory.BASELINE, 0, 1))
        fs = run_fastsir(graph, params, 12, np.array([0]),
                         RngFactory(4).stream(RngFactory.BASELINE, 0, 0))
        assert np.array_equal(dj.infection_day, fs.infection_day)
        assert np.array_equal(dj.new_infections, fs.new_infections)
        assert np.array_equal(dj.prevalence, fs.prevalence)
        assert dj.infection_day.tolist() == [-1, 1, 3, 5, 7, 9]

    def test_infection_beyond_horizon_is_dropped(self):
        result = run_dijkstra(chain_graph(8), SEIRParams(0.9, 2, 4), 6,
                              np.array([0]),
                              RngFactory(0).stream(RngFactory.BASELINE, 0, 1))
        assert result.final_size == 4
        assert np.all(result.infection_day[:4] < 6)
