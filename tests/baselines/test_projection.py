"""Contact-graph projection: structural invariants and weight conservation.

The hypothesis property is the load-bearing one: for *any* small visit
graph the strategies generate, the projected contact network must be
symmetric, self-loop-free, and conserve total co-presence minutes
against a brute-force enumeration of visit pairs — the three properties
the baselines' distributional-equivalence argument rests on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines import ContactGraph, project_contact_graph
from repro.validate.strategies import visit_graphs


def brute_force_pair_minutes(graph) -> float:
    """Total overlap minutes over unordered distinct-person visit pairs."""
    total = 0.0
    v = graph
    for i in range(v.n_visits):
        for j in range(i + 1, v.n_visits):
            if v.visit_person[i] == v.visit_person[j]:
                continue
            if v.visit_location[i] != v.visit_location[j]:
                continue
            if v.visit_subloc[i] != v.visit_subloc[j]:
                continue
            overlap = min(v.visit_end[i], v.visit_end[j]) - max(
                v.visit_start[i], v.visit_start[j]
            )
            if overlap > 0:
                total += float(overlap)
    return total


class TestProjectionProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph=visit_graphs())
    def test_projection_invariants(self, graph):
        contact = project_contact_graph(graph)
        contact.validate()  # symmetry, no self-loops, CSR sanity
        assert contact.n_persons == graph.n_persons
        # Weight conservation against the O(V^2) reference.
        assert contact.total_weight == pytest.approx(
            brute_force_pair_minutes(graph)
        )

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph=visit_graphs())
    def test_edge_list_matches_adjacency(self, graph):
        contact = project_contact_graph(graph)
        u, v, w = contact.edge_list()
        assert np.all(u < v)
        assert u.size == contact.n_edges
        assert w.sum() == pytest.approx(contact.total_weight)
        # Every listed edge appears in both endpoints' adjacency.
        for a, b, weight in zip(u[:20], v[:20], w[:20]):
            nbr, nw = contact.neighbors(int(a))
            k = np.flatnonzero(nbr == b)
            assert k.size == 1 and nw[k[0]] == pytest.approx(weight)


class TestProjectionOnPresets:
    def test_tiny_graph_projects_clean(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        contact.validate()
        assert contact.n_edges > 0
        assert contact.name.endswith("-contact")
        # Projection is deterministic.
        again = project_contact_graph(tiny_graph)
        assert np.array_equal(contact.indptr, again.indptr)
        assert np.array_equal(contact.indices, again.indices)
        assert np.array_equal(contact.weights, again.weights)

    def test_empty_visit_graph_projects_to_empty(self, tiny_graph):
        none = np.empty(0, dtype=np.int64)
        empty = tiny_graph.with_visits(none, none, none, none, none)
        contact = project_contact_graph(empty)
        contact.validate()
        assert contact.n_edges == 0 and contact.total_weight == 0.0


class TestValidateCatchesCorruption:
    def _chain(self) -> ContactGraph:
        return ContactGraph(
            n_persons=3,
            indptr=np.array([0, 1, 3, 4]),
            indices=np.array([1, 0, 2, 1]),
            weights=np.array([5.0, 5.0, 7.0, 7.0]),
        )

    def test_clean_chain_passes(self):
        self._chain().validate()

    def test_self_loop_rejected(self):
        g = self._chain()
        g.indices[0] = 0
        with pytest.raises(ValueError, match="self-loop|symmetric"):
            g.validate()

    def test_asymmetric_weight_rejected(self):
        g = self._chain()
        g.weights[1] = 99.0
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_nonpositive_weight_rejected(self):
        g = self._chain()
        g.weights[2] = 0.0
        with pytest.raises(ValueError, match="positive"):
            g.validate()

    def test_bad_indptr_rejected(self):
        g = self._chain()
        g.indptr[-1] = 99
        with pytest.raises(ValueError, match="CSR"):
            g.validate()
