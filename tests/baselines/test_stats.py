"""Statistical machinery: correctness, calibration, determinism.

The calibration class is the oracle's own insurance policy: with fixed
seeds, permutation p-values on same-distribution samples must be
(super-)uniform, so the false-positive rate at any level alpha stays at
or below alpha.  If this ever fails, a green external oracle means
nothing — which is why it is tested empirically here, not assumed.
"""

import numpy as np
import pytest

from repro.baselines import (
    anderson_darling_statistic,
    compare_samples,
    ks_statistic,
    permutation_pvalue,
    trajectory_ks_statistic,
)
from repro.util.rng import RngFactory


class TestKsStatistic:
    def test_identical_samples_give_zero(self):
        a = np.array([1.0, 2.0, 2.0, 5.0])
        assert ks_statistic(a, a.copy()) == 0.0

    def test_disjoint_samples_give_one(self):
        assert ks_statistic(np.zeros(10), np.ones(10)) == 1.0

    def test_known_value_with_ties(self):
        # ECDFs: a jumps to 1 at 0; b has 1/2 at 0, 1 at 1.
        a = np.array([0.0, 0.0])
        b = np.array([0.0, 1.0])
        assert ks_statistic(a, b) == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.array([1.0]))


class TestAndersonDarling:
    def test_identical_samples_give_zero(self):
        a = np.arange(10.0)
        assert anderson_darling_statistic(a, a.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_all_tied_pooled_sample_is_zero(self):
        assert anderson_darling_statistic(np.zeros(5), np.zeros(7)) == 0.0

    def test_shifted_samples_score_high(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 50)
        b = rng.normal(2, 1, 50)
        assert anderson_darling_statistic(a, b) > 10 * anderson_darling_statistic(
            a, rng.normal(0, 1, 50)
        )

    def test_tail_sensitivity_beats_ks(self):
        # Same median, different tails: AD reacts more strongly
        # (relative to its null scale) than the KS sup-distance.
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 80)
        b = rng.normal(0, 3, 80)
        assert anderson_darling_statistic(a, b) > 2.0
        assert ks_statistic(a, b) < 0.5


class TestTrajectoryStatistic:
    def test_max_over_days(self):
        a = np.zeros((6, 4))
        b = np.zeros((6, 4))
        b[:, 2] = 1.0
        assert trajectory_ks_statistic(a, b) == 1.0

    def test_day_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same days"):
            trajectory_ks_statistic(np.zeros((3, 4)), np.zeros((3, 5)))


class TestPermutationPvalue:
    def test_deterministic_for_fixed_stream(self):
        a = np.random.default_rng(0).poisson(10, 30).astype(float)
        b = np.random.default_rng(1).poisson(10, 30).astype(float)
        runs = [
            permutation_pvalue(a, b, RngFactory(5).stream(RngFactory.BASELINE, 0, 3),
                               n_permutations=99)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_never_returns_zero(self):
        a, b = np.zeros(20), np.ones(20)
        _stat, p = permutation_pvalue(a, b, np.random.default_rng(0),
                                      n_permutations=99)
        assert p == pytest.approx(1 / 100)

    def test_identical_samples_are_not_rejected(self):
        a = np.arange(20.0)
        _stat, p = permutation_pvalue(a, a.copy(), np.random.default_rng(0),
                                      n_permutations=99)
        assert p == 1.0


class TestCalibration:
    """Empirical false-positive rate under the null, fixed seeds."""

    N_PAIRS = 200
    ALPHA = 0.05

    def _null_pvalues(self, statistic) -> np.ndarray:
        factory = RngFactory(77)
        pvals = np.empty(self.N_PAIRS)
        for i in range(self.N_PAIRS):
            data_rng = factory.stream(RngFactory.BASELINE, i, 50)
            a = data_rng.poisson(8, 25).astype(float)
            b = data_rng.poisson(8, 25).astype(float)
            _s, pvals[i] = permutation_pvalue(
                a, b, factory.stream(RngFactory.BASELINE, i, 51),
                statistic=statistic, n_permutations=99,
            )
        return pvals

    def test_ks_false_positive_rate_bounded(self):
        pvals = self._null_pvalues(ks_statistic)
        fpr = float((pvals <= self.ALPHA).mean())
        # Binomial(200, 0.05) stays below 0.09 with probability > 0.99;
        # the permutation construction guarantees E[fpr] <= alpha.
        assert fpr <= 0.09, f"KS false-positive rate {fpr:.3f} at alpha 0.05"

    def test_ad_false_positive_rate_bounded(self):
        pvals = self._null_pvalues(anderson_darling_statistic)
        fpr = float((pvals <= self.ALPHA).mean())
        assert fpr <= 0.09, f"AD false-positive rate {fpr:.3f} at alpha 0.05"

    def test_null_pvalues_not_degenerate(self):
        # Guards against a broken statistic that always "rejects
        # nothing": the p-value spread must cover low and high values.
        pvals = self._null_pvalues(ks_statistic)
        assert pvals.min() < 0.3 and pvals.max() > 0.7


class TestCompareSamples:
    def test_detects_separated_samples(self):
        a = np.random.default_rng(0).normal(0, 1, 40)
        b = np.random.default_rng(1).normal(4, 1, 40)
        comparison = compare_samples(
            a, b, np.random.default_rng(2), metric="final-size",
            threshold=0.01, n_permutations=199,
        )
        assert comparison.reject
        assert "final-size" in comparison.format()

    def test_accepts_same_distribution(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 40)
        b = rng.normal(0, 1, 40)
        comparison = compare_samples(
            a, b, np.random.default_rng(4), metric="final-size",
            threshold=0.01, n_permutations=199,
        )
        assert not comparison.reject
