"""FastSIR baseline: determinism, degenerate regimes, exact timing.

The deterministic chain tests pin the day-index semantics the
distribution oracle depends on: index cases behave as infected on day
−1, an infection on day ``d`` turns infectious on day ``d + L``, and
``new_infections[0]`` counts the seeds — the exact conventions of the
sequential reference.
"""

import numpy as np
import pytest

from repro.baselines import ContactGraph, SEIRParams, project_contact_graph, run_fastsir
from repro.util.rng import RngFactory


def chain_graph(n: int, weight: float = 1e6) -> ContactGraph:
    """Path graph 0—1—…—n−1 with saturating edge weights."""
    indptr = [0]
    indices: list[int] = []
    for i in range(n):
        if i > 0:
            indices.append(i - 1)
        if i < n - 1:
            indices.append(i + 1)
        indptr.append(len(indices))
    return ContactGraph(
        n_persons=n,
        indptr=np.array(indptr, dtype=np.int64),
        indices=np.array(indices, dtype=np.int64),
        weights=np.full(len(indices), weight),
    )


PARAMS = SEIRParams(transmissibility=2e-4, latent_days=2, infectious_days=4)


class TestDeterminism:
    def test_same_seed_bit_identical(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        runs = [
            run_fastsir(contact, PARAMS, 10, 3,
                        RngFactory(42).stream(RngFactory.BASELINE, 0))
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].infection_day, runs[1].infection_day)
        assert np.array_equal(runs[0].new_infections, runs[1].new_infections)
        assert np.array_equal(runs[0].prevalence, runs[1].prevalence)

    def test_different_replication_streams_differ(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        a = run_fastsir(contact, PARAMS, 10, 3,
                        RngFactory(42).stream(RngFactory.BASELINE, 0))
        b = run_fastsir(contact, PARAMS, 10, 3,
                        RngFactory(42).stream(RngFactory.BASELINE, 1))
        assert not np.array_equal(a.infection_day, b.infection_day)


class TestDegenerateRegimes:
    def test_zero_transmissibility_keeps_only_seeds(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        result = run_fastsir(contact, SEIRParams(0.0), 10, 5,
                             RngFactory(1).stream(RngFactory.BASELINE, 0))
        assert result.final_size == 5
        assert result.new_infections[0] == 5
        assert result.new_infections[1:].sum() == 0

    def test_explicit_index_cases_are_respected(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        cases = np.array([7, 11, 13])
        result = run_fastsir(contact, SEIRParams(0.0), 6, cases,
                             RngFactory(1).stream(RngFactory.BASELINE, 0))
        assert np.all(result.infection_day[cases] == -1)
        assert result.final_size == 3

    def test_curve_accounting(self, tiny_graph):
        contact = project_contact_graph(tiny_graph)
        result = run_fastsir(contact, PARAMS, 12, 4,
                             RngFactory(9).stream(RngFactory.BASELINE, 0))
        assert result.final_size == int(result.new_infections.sum())
        assert result.final_size == int((result.infection_day < 12).sum())
        assert np.all(result.prevalence >= 0) and np.all(result.prevalence <= 1)
        assert result.n_days == 12


class TestExactTiming:
    def test_saturated_chain_marches_one_hop_per_infectious_onset(self):
        # Saturating weights make every transmission happen on the first
        # infectious day.  Seed at node 0 (day −1) turns infectious on
        # day L−1 = 1 and infects node 1 that day; node 1 turns
        # infectious on day 1+L = 3, and so on: infection days −1, 1,
        # 3, 5, …
        n = 5
        result = run_fastsir(chain_graph(n), SEIRParams(0.9, 2, 4), 12,
                             np.array([0]),
                             RngFactory(0).stream(RngFactory.BASELINE, 0))
        expected = np.array([-1, 1, 3, 5, 7])
        assert np.array_equal(result.infection_day, expected)

    def test_horizon_truncates_the_chain(self):
        result = run_fastsir(chain_graph(8), SEIRParams(0.9, 2, 4), 6,
                             np.array([0]),
                             RngFactory(0).stream(RngFactory.BASELINE, 0))
        # Infections land on days 1, 3, 5 only; day 7 is past n_days=6.
        assert result.final_size == 4
        assert result.new_infections.tolist() == [1, 1, 0, 1, 0, 1]

    def test_n_days_must_be_positive(self):
        with pytest.raises(ValueError, match="n_days"):
            run_fastsir(chain_graph(2), PARAMS, 0, 1,
                        RngFactory(0).stream(RngFactory.BASELINE, 0))
