"""Critical-transmissibility machinery and the heavy-tail fingerprint."""

import numpy as np
import pytest

from repro.baselines import (
    SEIRParams,
    critical_transmissibility,
    heavy_tail_check,
    mean_offspring,
    project_contact_graph,
)
from repro.smp import heavy_tailed_graph
from repro.util.rng import RngFactory

from tests.baselines.test_fastsir import chain_graph


@pytest.fixture(scope="module")
def heavy_contact():
    return project_contact_graph(heavy_tailed_graph(n_persons=800, n_locations=100))


class TestMeanOffspring:
    def test_single_edge_graph_has_zero_offspring(self):
        # Arriving via the only edge leaves no other edge to transmit on.
        two = chain_graph(2, weight=100.0)
        assert mean_offspring(two, SEIRParams(0.01)) == 0.0

    def test_monotone_in_transmissibility(self, heavy_contact):
        values = [
            mean_offspring(heavy_contact, SEIRParams(r))
            for r in (1e-6, 1e-5, 1e-4, 1e-3)
        ]
        assert values == sorted(values)
        assert values[0] > 0.0

    def test_interior_chain_node_offspring(self):
        # On a 3-chain, arrival at the middle node leaves exactly one
        # other edge: offspring q; arrival at an end node leaves none.
        # Directed edges: 0→1 (offspring q), 1→0 (0), 1→2 (0), 2→1 (q)
        # — mean q/2.
        chain = chain_graph(3, weight=1.0)
        params = SEIRParams(0.1, 2, 4)
        q = 1.0 - (1.0 - 0.1) ** 4
        assert mean_offspring(chain, params) == pytest.approx(q / 2)


class TestCriticalTransmissibility:
    def test_bisection_lands_on_unit_offspring(self, heavy_contact):
        r_c = critical_transmissibility(heavy_contact)
        assert mean_offspring(heavy_contact, SEIRParams(r_c)) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_subcritical_graph_raises(self):
        with pytest.raises(ValueError, match="subcritical"):
            critical_transmissibility(chain_graph(2, weight=0.5))


class TestHeavyTailFingerprint:
    def test_critical_outbreaks_are_heavy_tailed(self, heavy_contact):
        check = heavy_tail_check(
            heavy_contact,
            rng_factory=RngFactory(0),
            replications=150,
            n_days=40,
        )
        assert check.passed, check.format()
        # Near-critical Galton–Watson sizes: exponent near 3/2, strongly
        # super-Poissonian dispersion.
        assert 1.1 <= check.tail_exponent <= 3.2
        assert check.dispersion > 3.0
        assert check.final_sizes.size == 150

    def test_threshold_separates_regimes(self, heavy_contact):
        # r_c actually sits at the epidemic threshold: well below it
        # outbreaks die immediately; well above it the mean final size
        # is an order of magnitude larger.
        from repro.baselines import run_fastsir

        r_c = critical_transmissibility(heavy_contact)
        factory = RngFactory(1)

        def mean_size(r: float, salt: int) -> float:
            return float(np.mean([
                run_fastsir(
                    heavy_contact, SEIRParams(r), 40, 1,
                    factory.stream(RngFactory.BASELINE, rep, salt),
                ).final_size
                for rep in range(60)
            ]))

        sub, sup = mean_size(r_c / 5.0, 8), mean_size(r_c * 5.0, 9)
        assert sub < 3.0, f"subcritical outbreaks too large: {sub}"
        assert sup > 10.0 * sub, f"supercritical not separated: {sup} vs {sub}"

    def test_format_mentions_verdict(self, heavy_contact):
        check = heavy_tail_check(
            heavy_contact, rng_factory=RngFactory(0), replications=60, n_days=30,
        )
        text = check.format()
        assert "tail exponent" in text and ("ok" in text or "FAIL" in text)
