"""Shared fixtures: small deterministic populations and scenarios.

Session-scoped where construction is costly; tests must not mutate
fixture graphs (use ``graph.with_visits`` / copies for transforms).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Scenario, TransmissionModel
from repro.synthpop import PopulationConfig, generate_population, state_population


@pytest.fixture(scope="session")
def tiny_graph():
    """~300 persons — fast enough for per-test simulation."""
    return generate_population(PopulationConfig(n_persons=300), 11, name="tiny")


@pytest.fixture(scope="session")
def small_graph():
    """~1000 persons with a visible heavy tail."""
    return generate_population(PopulationConfig(n_persons=1000), 12, name="small")


@pytest.fixture(scope="session")
def wy_graph():
    """Scaled Wyoming (Table I ratios), ~1000 persons."""
    return state_population("WY", scale=2e-3, seed=5)


@pytest.fixture()
def tiny_scenario(tiny_graph):
    return Scenario(
        graph=tiny_graph,
        n_days=12,
        initial_infections=4,
        seed=3,
        transmission=TransmissionModel(2e-4),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
