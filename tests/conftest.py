"""Shared fixtures: small deterministic populations and scenarios.

Session-scoped where construction is costly; tests must not mutate
fixture graphs (use ``graph.with_visits`` / copies for transforms).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.core import Scenario, TransmissionModel
from repro.synthpop import PopulationConfig, generate_population, state_population

# Property-test profiles (select with --hypothesis-profile=<name>):
# "ci" disables the per-example deadline (simulation examples are
# seconds-scale on cold caches) and prints the reproduction blob on
# failure so a CI flake can be replayed locally with @reproduce_failure.
settings.register_profile("ci", deadline=None, print_blob=True, max_examples=25)
settings.register_profile("dev", deadline=None)
settings.register_profile("thorough", deadline=None, max_examples=200)


@pytest.fixture(scope="session")
def tiny_graph():
    """~300 persons — fast enough for per-test simulation."""
    return generate_population(PopulationConfig(n_persons=300), 11, name="tiny")


@pytest.fixture(scope="session")
def small_graph():
    """~1000 persons with a visible heavy tail."""
    return generate_population(PopulationConfig(n_persons=1000), 12, name="small")


@pytest.fixture(scope="session")
def wy_graph():
    """Scaled Wyoming (Table I ratios), ~1000 persons."""
    return state_population("WY", scale=2e-3, seed=5)


@pytest.fixture()
def tiny_scenario(tiny_graph):
    return Scenario(
        graph=tiny_graph,
        n_days=12,
        initial_infections=4,
        seed=3,
        transmission=TransmissionModel(2e-4),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
