"""Repository hygiene: generated artefacts must never be committed.

``benchmarks/_cache/*.npz`` (synthesised-population caches) and
``__pycache__`` bytecode once crept into the tree; this guard keeps
the git index free of machine-generated files.  It asks git for the
tracked file list, so it is a no-op (skipped) outside a git checkout.
"""

import fnmatch
import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: glob patterns that must never match a tracked path
FORBIDDEN = (
    "benchmarks/_cache/*",
    "*__pycache__*",
    "*.pyc",
    ".pytest_cache/*",
    ".hypothesis/*",
)


def _tracked_files():
    try:
        out = subprocess.run(
            ["git", "ls-files"], cwd=REPO, capture_output=True, text=True, timeout=30
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    return out.stdout.splitlines()


def test_no_generated_files_tracked():
    tracked = _tracked_files()
    if tracked is None:
        pytest.skip("not a git checkout")
    offenders = [
        path
        for path in tracked
        if any(fnmatch.fnmatch(path, pat) for pat in FORBIDDEN)
    ]
    assert not offenders, (
        "machine-generated files are tracked by git (add them to "
        f".gitignore and `git rm --cached`): {offenders}"
    )


def test_gitignore_covers_bench_cache():
    ignore = (REPO / ".gitignore").read_text().splitlines()
    assert "benchmarks/_cache/" in ignore
    assert "__pycache__/" in ignore
