"""Span recording: nesting, exception safety, thread safety, disabled no-op."""

import threading

import pytest

from repro import observe
from repro.observe.recorder import _NULL_SPAN


class TestDisabled:
    def test_disabled_by_default(self):
        assert not observe.enabled()
        assert observe.active() is None

    def test_span_returns_shared_null_handle(self):
        h1 = observe.span("a", x=1)
        h2 = observe.span("b")
        assert h1 is _NULL_SPAN and h2 is _NULL_SPAN

    def test_null_handle_is_inert(self):
        with observe.span("a") as s:
            assert s.set(x=1) is s

    def test_counter_noop(self):
        observe.counter("n", 5)  # must not raise, must not record anywhere

    def test_traced_passthrough(self):
        @observe.traced("demo")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f.__name__ == "f"


class TestNesting:
    def test_parent_indices(self):
        with observe.observing() as obs:
            with observe.span("outer"):
                with observe.span("inner"):
                    pass
                with observe.span("inner2"):
                    pass
        spans = {s.name: s for s in obs.closed_spans()}
        outer_idx = obs.spans.index(spans["outer"])
        assert spans["outer"].parent == -1
        assert spans["inner"].parent == outer_idx
        assert spans["inner2"].parent == outer_idx

    def test_sibling_roots(self):
        with observe.observing() as obs:
            with observe.span("a"):
                pass
            with observe.span("b"):
                pass
        assert [s.parent for s in obs.closed_spans()] == [-1, -1]

    def test_times_monotone_and_nested(self):
        with observe.observing() as obs:
            with observe.span("outer"):
                with observe.span("inner"):
                    pass
        spans = {s.name: s for s in obs.closed_spans()}
        o, i = spans["outer"], spans["inner"]
        assert o.start <= i.start <= i.end <= o.end

    def test_attrs_via_set(self):
        with observe.observing() as obs:
            with observe.span("a", day=1) as s:
                s.set(found=3)
        (s,) = obs.closed_spans()
        assert s.attrs == {"day": 1, "found": 3}


class TestExceptionSafety:
    def test_span_closes_and_tags_error(self):
        with observe.observing() as obs:
            with pytest.raises(ValueError):
                with observe.span("boom"):
                    raise ValueError("no")
        (s,) = obs.closed_spans()
        assert s.name == "boom" and s.attrs["error"] == "ValueError"

    def test_stack_unwinds_after_error(self):
        with observe.observing() as obs:
            with pytest.raises(RuntimeError):
                with observe.span("outer"):
                    raise RuntimeError
            with observe.span("after"):
                pass
        spans = {s.name: s for s in obs.closed_spans()}
        assert spans["after"].parent == -1  # not parented under the dead span

    def test_observing_restores_on_error(self):
        with pytest.raises(KeyError):
            with observe.observing():
                raise KeyError
        assert not observe.enabled()


class TestThreads:
    def test_concurrent_recording(self):
        n_threads, per_thread = 4, 50

        def work():
            for _ in range(per_thread):
                with observe.span("t.outer"):
                    with observe.span("t.inner"):
                        pass

        with observe.observing() as obs:
            threads = [threading.Thread(target=work) for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = obs.closed_spans()
        assert len(spans) == n_threads * per_thread * 2
        # every inner span's parent is an outer span on the same thread
        for s in spans:
            if s.name == "t.inner":
                parent = obs.spans[s.parent]
                assert parent.name == "t.outer" and parent.tid == s.tid
        # OS thread idents are recycled, so distinct tids may be fewer
        # than n_threads — but never more.
        assert 1 <= len({s.tid for s in spans}) <= n_threads


class TestSwitchboard:
    def test_start_stop(self):
        obs = observe.start()
        try:
            assert observe.active() is obs and observe.enabled()
        finally:
            assert observe.stop() is obs
        assert observe.stop() is None  # idempotent

    def test_observing_accepts_existing_observer(self):
        mine = observe.Observer()
        with observe.observing(mine) as obs:
            assert obs is mine
            with observe.span("x"):
                pass
        assert len(mine.closed_spans()) == 1

    def test_counter_accumulates(self):
        with observe.observing() as obs:
            observe.counter("msgs", 2)
            observe.counter("msgs", 3)
        assert obs.counters["msgs"] == 5.0
        assert [c.total for c in obs.counter_samples] == [2.0, 5.0]

    def test_traced_records_span(self):
        @observe.traced("demo.fn", kind="unit")
        def f(x):
            return x

        with observe.observing() as obs:
            f(1)
        (s,) = obs.closed_spans()
        assert s.name == "demo.fn" and s.attrs == {"kind": "unit"}
