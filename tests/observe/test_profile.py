"""The `repro profile` driver: coverage, artefacts, CLI plumbing."""

import json

import pytest

from repro.observe import PRESETS, run_profile


@pytest.fixture(scope="module")
def tiny_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("profile")
    return run_profile("tiny", out_dir=out), out


class TestRunProfile:
    def test_curves_identical(self, tiny_report):
        report, _ = tiny_report
        assert report.curves_identical

    def test_phase_coverage(self, tiny_report):
        """Every pipeline stage appears in the wall-clock breakdown."""
        report, _ = tiny_report
        phases = set(report.phase_totals)
        assert {"synthpop.generate", "partition.splitloc", "partition.kway",
                "sequential.run", "sim.day", "exposure.compute",
                "parallel.run", "charm.runtime.run"} <= phases

    def test_virtual_spans_cover_all_pes(self, tiny_report):
        report, _ = tiny_report
        assert report.n_pes == 3  # tiny preset: 1 node x 4 cores, smp, ppn=1
        assert {v.pe for v in report.observer.virtual_spans} == {0, 1, 2}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            run_profile("galactic")

    def test_presets_are_consistent(self):
        for name, preset in PRESETS.items():
            assert preset.n_persons > 0 and preset.n_days > 0, name
            assert preset.machine().n_pes > 0, name


class TestArtefacts:
    def test_files_written(self, tiny_report):
        report, out = tiny_report
        assert set(report.paths) == {"trace", "timeline", "report"}
        for path in report.paths.values():
            assert (out / path.split("/")[-1]).exists()

    def test_trace_json_loads(self, tiny_report):
        report, _ = tiny_report
        doc = json.load(open(report.paths["trace"]))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}  # wall clock + virtual PEs

    def test_report_text(self, tiny_report):
        report, _ = tiny_report
        text = report.summary()
        assert "wall-clock phase breakdown" in text
        assert "per-PE timeline (virtual time)" in text
        assert "identical to untraced semantics: True" in text


class TestCli:
    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["profile", "--preset", "tiny", "--out", str(tmp_path / "p")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "preset 'tiny'" in out
        assert "wrote trace" in out
        assert (tmp_path / "p" / "trace.json").exists()

    def test_profile_print_only(self, capsys):
        from repro.cli import main

        rc = main(["profile", "--preset", "tiny", "--out", "-"])
        assert rc == 0
        assert "wrote" not in capsys.readouterr().out
