"""Every documented example in the audited public APIs must run.

The docstring-audit contract: each ``__all__`` export of
``repro.observe``, ``repro.validate``, ``repro.charm.trace``,
``repro.synthpop`` and ``repro.scenarios`` carries a runnable example.
CI also runs ``pytest --doctest-modules`` over these trees directly;
this tier-1 test keeps the guarantee under a plain ``pytest tests/``
run too.
"""

import doctest

import pytest

import repro.charm.trace
import repro.observe.export
import repro.observe.profile
import repro.observe.recorder
import repro.scenarios.components
import repro.scenarios.models
import repro.scenarios.registry
import repro.scenarios.spec
import repro.synthpop.generator
import repro.synthpop.graph
import repro.synthpop.io
import repro.synthpop.powerlaw
import repro.synthpop.states
import repro.synthpop.store
import repro.synthpop.stream
import repro.validate.invariants
import repro.validate.oracle

MODULES = [
    repro.observe.recorder,
    repro.observe.export,
    repro.observe.profile,
    repro.charm.trace,
    repro.validate.invariants,
    repro.validate.oracle,
    repro.scenarios.components,
    repro.scenarios.models,
    repro.scenarios.registry,
    repro.scenarios.spec,
    repro.synthpop.generator,
    repro.synthpop.graph,
    repro.synthpop.io,
    repro.synthpop.powerlaw,
    repro.synthpop.states,
    repro.synthpop.store,
    repro.synthpop.stream,
]


@pytest.mark.parametrize("mod", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(mod):
    result = doctest.testmod(mod, verbose=False)
    assert result.attempted > 0, f"{mod.__name__} has no doctests"
    assert result.failed == 0


def _documented_exports(mod):
    return [(name, getattr(mod, name)) for name in mod.__all__]


@pytest.mark.parametrize("mod", [
    __import__("repro.observe", fromlist=["x"]),
    __import__("repro.validate", fromlist=["x"]),
    __import__("repro.synthpop", fromlist=["x"]),
    __import__("repro.scenarios", fromlist=["x"]),
    repro.charm.trace,
], ids=lambda m: m.__name__)
def test_every_export_has_docstring_with_example(mod):
    missing, no_example = [], []
    for name, obj in _documented_exports(mod):
        doc = getattr(obj, "__doc__", None)
        if not doc:
            missing.append(name)
        elif ">>>" not in doc and not isinstance(obj, dict):
            no_example.append(name)
    assert not missing, f"{mod.__name__}: exports without docstrings: {missing}"
    assert not no_example, f"{mod.__name__}: exports without runnable examples: {no_example}"
