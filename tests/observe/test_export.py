"""Exporter views pinned against golden files.

The golden observer is built from explicit (deterministic) times —
wall-clock epochs are nondeterministic, manual records are not.  To
regenerate after an intentional format change:

    PYTHONPATH=src python tests/observe/test_export.py refresh

then review the diff of ``tests/golden/observe_*``.
"""

import json
import sys
from pathlib import Path

import pytest

from repro import observe
from repro.observe import (
    chrome_trace_events,
    method_profile,
    method_profile_table,
    pe_timeline,
    phase_breakdown,
    phase_table,
    utilization,
    utilization_table,
    write_chrome_trace,
)

GOLDEN = Path(__file__).resolve().parent.parent / "golden"


def golden_observer() -> observe.Observer:
    """A small, fully deterministic traced 'run'."""
    obs = observe.Observer(epoch=0.0)
    gen = obs.record_span("synthpop.generate", 0.00, 0.30, attrs={"persons": 100})
    obs.record_span("synthpop.sample_degrees", 0.02, 0.10, parent=gen)
    kway = obs.record_span("partition.kway", 0.30, 0.90, attrs={"k": 4})
    obs.record_span("partition.bisect", 0.35, 0.60, parent=kway)
    obs.record_span("partition.bisect", 0.60, 0.80, parent=kway)
    run = obs.record_span("sequential.run", 0.90, 1.50)
    obs.record_span("sim.day", 0.90, 1.20, parent=run, attrs={"day": 0})
    obs.record_span("sim.day", 1.20, 1.50, parent=run, attrs={"day": 1})
    for day in range(2):
        t = day * 0.010
        for pe in range(3):
            obs.add_virtual_span(pe, t, t + 0.004, "pm.person_phase")
            obs.add_virtual_span(pe, t + 0.005, t + 0.005 + 0.001 * (pe + 1),
                                 "lm.location_phase")
    obs.record_counter("exposure.infections", 3.0, t=1.0)
    obs.record_counter("exposure.infections", 2.0, t=1.4)
    return obs


class TestChromeTrace:
    def test_matches_golden(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(golden_observer(), path)
        assert json.loads(path.read_text()) == json.loads(
            (GOLDEN / "observe_chrome.json").read_text()
        )

    def test_structure(self):
        events = chrome_trace_events(golden_observer())
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "C"}
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}  # wall + virtual processes
        # virtual thread metadata names each PE
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert names == ["PE 0", "PE 1", "PE 2"]

    def test_durations_in_microseconds(self):
        events = chrome_trace_events(golden_observer())
        gen = next(e for e in events if e["name"] == "synthpop.generate")
        assert gen["ts"] == 0.0 and gen["dur"] == pytest.approx(300000.0)

    def test_counter_events_carry_running_total(self):
        events = chrome_trace_events(golden_observer())
        cs = [e for e in events if e["ph"] == "C"]
        assert [c["args"]["exposure.infections"] for c in cs] == [3.0, 5.0]


class TestTextViews:
    def test_timeline_matches_golden(self):
        text = pe_timeline(golden_observer(), width=40)
        assert text == (GOLDEN / "observe_timeline.txt").read_text().rstrip("\n")

    def test_phase_table_matches_golden(self):
        text = phase_table(golden_observer())
        assert text == (GOLDEN / "observe_phases.txt").read_text().rstrip("\n")

    def test_timeline_guards(self):
        empty = observe.Observer(epoch=0.0)
        assert pe_timeline(empty) == "(empty trace)"
        empty.add_virtual_span(0, 1.0, 1.0, "a.m")
        assert pe_timeline(empty) == "(zero-length trace)"

    def test_utilization(self):
        util = utilization(golden_observer())
        assert util.shape == (3,)
        # pe2's location phase is 3x pe0's, so it is the busiest
        assert util[2] > util[1] > util[0]
        assert "mean util" in utilization_table(golden_observer())

    def test_method_profile(self):
        prof = method_profile(golden_observer())
        assert prof["pm.person_phase"][0] == 6
        assert prof["lm.location_phase"][0] == 6
        table = method_profile_table(golden_observer())
        assert table.splitlines()[1].split()[0] == "pm.person_phase"


class TestPhaseBreakdown:
    def test_self_excludes_children(self):
        pb = phase_breakdown(golden_observer())
        assert pb["partition.kway"]["incl"] == pytest.approx(0.6)
        assert pb["partition.kway"]["self"] == pytest.approx(0.15)  # 0.6 - 0.25 - 0.20
        assert pb["sim.day"]["calls"] == 2
        assert pb["sequential.run"]["self"] == pytest.approx(0.0)

    def test_open_placeholders_ignored(self):
        obs = observe.Observer(epoch=0.0)
        obs.spans.append(None)  # simulate a span still open
        obs.record_span("a", 0.0, 1.0)
        assert phase_breakdown(obs) == {"a": {"calls": 1, "incl": 1.0, "self": 1.0}}


def refresh() -> None:
    obs = golden_observer()
    write_chrome_trace(obs, GOLDEN / "observe_chrome.json")
    (GOLDEN / "observe_timeline.txt").write_text(pe_timeline(obs, width=40) + "\n")
    (GOLDEN / "observe_phases.txt").write_text(phase_table(obs) + "\n")
    print(f"refreshed golden files in {GOLDEN}")


if __name__ == "__main__":
    if sys.argv[1:] == ["refresh"]:
        refresh()
    else:
        print(__doc__)
