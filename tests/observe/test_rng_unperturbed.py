"""Regression: tracing must not perturb the epidemic.

Instrumentation draws no random numbers and every simulation draw is
keyed by stable identifiers, so a traced run must be bit-identical to
an untraced one — the observability layer's no-Heisenberg contract.
"""

import numpy as np

from repro import observe
from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.partition import round_robin_partition


def _scenario(graph):
    return Scenario(
        graph=graph, n_days=4, seed=3, initial_infections=5,
        transmission=TransmissionModel(2e-4),
    )


def _curve_tuple(curve):
    return (tuple(curve.new_infections), tuple(np.round(curve.prevalence, 12)))


class TestSequential:
    def test_traced_equals_untraced(self, tiny_graph):
        plain = SequentialSimulator(_scenario(tiny_graph)).run()
        with observe.observing() as obs:
            traced = SequentialSimulator(_scenario(tiny_graph)).run()
        assert len(obs.closed_spans()) > 0  # tracing actually happened
        assert _curve_tuple(traced.curve) == _curve_tuple(plain.curve)
        assert traced.final_histogram == plain.final_histogram

    def test_exception_inside_span_leaves_rng_untouched(self, tiny_graph):
        # A traced run after a failed traced region must still match.
        with observe.observing():
            try:
                with observe.span("doomed"):
                    raise RuntimeError
            except RuntimeError:
                pass
            traced = SequentialSimulator(_scenario(tiny_graph)).run()
        plain = SequentialSimulator(_scenario(tiny_graph)).run()
        assert _curve_tuple(traced.curve) == _curve_tuple(plain.curve)


class TestParallel:
    def _run(self, graph):
        mc = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)
        m = Machine(mc)
        dist = Distribution.from_partition(round_robin_partition(graph, m.n_pes), m)
        return ParallelEpiSimdemics(_scenario(graph), mc, dist).run()

    def test_traced_equals_untraced(self, tiny_graph):
        plain = self._run(tiny_graph)
        with observe.observing() as obs:
            traced = self._run(tiny_graph)
        # the parallel run auto-attached a tracer and ingested it
        assert len(obs.virtual_spans) > 0
        assert _curve_tuple(traced.result.curve) == _curve_tuple(plain.result.curve)

    def test_traced_parallel_equals_sequential(self, tiny_graph):
        seq = SequentialSimulator(_scenario(tiny_graph)).run()
        with observe.observing():
            par = self._run(tiny_graph)
        assert par.result.curve == seq.curve
