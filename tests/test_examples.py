"""Example scripts stay importable and their fast paths run.

Full example runs take minutes (they are demos, not tests); here we
compile every script (catches syntax/import rot) and exercise the two
cheapest end-to-end.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


class TestExamplesCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_expected_examples_present(self):
        names = {p.name for p in EXAMPLES}
        assert {
            "quickstart.py",
            "course_of_action.py",
            "partitioning_study.py",
            "parallel_runtime_demo.py",
            "scaling_projection.py",
            "contact_network_analysis.py",
            "replicated_policy_study.py",
        } <= names


class TestExamplesRun:
    @pytest.mark.parametrize(
        "script, needle",
        [
            ("contact_network_analysis.py", "giant component"),
            ("parallel_runtime_demo.py", "identical to sequential reference: True"),
        ],
    )
    def test_runs_and_prints(self, script, needle):
        path = Path(__file__).parent.parent / "examples" / script
        proc = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert needle in proc.stdout
