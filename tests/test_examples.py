"""Example scripts stay importable and actually run.

Every script compiles (catches syntax/import rot) and every script
runs end to end under the smoke test below, asserting on a
load-bearing line of its output.  The heavier demos carry the ``slow``
marker — deselect with ``-m "not slow"`` for a fast loop; CI runs them
all.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: script -> a line its output must contain (None = just exit 0).
#: Keep in sync with the examples/ directory; the presence test below
#: fails when a script is added without a smoke entry.
NEEDLES = {
    "quickstart.py": "where the wall-clock time went (repro.observe):",
    "contact_network_analysis.py": "giant component",
    "parallel_runtime_demo.py": "identical to sequential reference: True",
    "partitioning_study.py": None,
    "scaling_projection.py": None,
    "course_of_action.py": None,
    "replicated_policy_study.py": None,
}

#: Demos whose full run takes multiple seconds.
SLOW = {"course_of_action.py", "replicated_policy_study.py"}


def _run_case(script: str):
    marks = [pytest.mark.slow] if script in SLOW else []
    return pytest.param(script, NEEDLES[script], id=script, marks=marks)


class TestExamplesCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_expected_examples_present(self):
        names = {p.name for p in EXAMPLES}
        assert names == set(NEEDLES), (
            "examples/ and the NEEDLES smoke map disagree — "
            "add a needle (or None) for every new script"
        )


class TestExamplesRun:
    @pytest.mark.parametrize("script, needle", [_run_case(s) for s in sorted(NEEDLES)])
    def test_runs_and_prints(self, script, needle):
        path = EXAMPLES_DIR / script
        proc = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        if needle is not None:
            assert needle in proc.stdout

    def test_tracing_examples_show_observability(self):
        """quickstart + parallel demo double as repro.observe demos."""
        for script in ("quickstart.py", "parallel_runtime_demo.py"):
            source = (EXAMPLES_DIR / script).read_text()
            assert "observe.observing()" in source, script
