"""Synthetic population generator.

Produces :class:`~repro.synthpop.graph.PersonLocationGraph` instances
whose degree statistics match what the paper reports for the
census-derived populations (person degree ≈ 5.5 ± 2.6, location degree
≈ 21.5, heavy-tailed location in-degree).  See DESIGN.md §2 for the
substitution argument.

Structure of a generated day:

* every person makes a **morning home visit** and an **evening home
  visit** to their home *building* (buildings aggregate ~2 households;
  households are the building's sublocations — this reproduces Table I's
  locations-per-person ratio of ≈ 0.256 while keeping household mixing);
* remaining visits are **activity visits** during 08:00–18:00, routed to
  activity locations with probability proportional to a Pareto-drawn
  attractiveness (this produces the power-law visit-count tail);
* children's primary activity is a SCHOOL location, working-age adults'
  a WORK location; both get long anchor visits, secondary visits are
  short SHOP/OTHER errands;
* activity locations are carved into sublocations of roughly
  ``subloc_capacity`` expected visits each — the splittable units that
  ``splitLoc`` (paper §III-C) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observe
from repro.synthpop.graph import LocationType, PersonLocationGraph, MINUTES_PER_DAY
from repro.synthpop.powerlaw import pareto_attractiveness
from repro.util.rng import RngFactory

__all__ = ["PopulationConfig", "generate_population"]

_DAY_START_ACTIVITY = 8 * 60  # 08:00
_DAY_END_ACTIVITY = 18 * 60  # 18:00


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for :func:`generate_population`.

    Defaults reproduce the paper's reported statistics; tests pin the
    resulting moments (see ``tests/synthpop/test_generator.py``).

    >>> PopulationConfig(n_persons=100).mean_visits
    5.5
    """

    n_persons: int
    #: Mean / std of visits per person per day (paper: 5.5, σ=2.6).
    mean_visits: float = 5.5
    std_visits: float = 2.6
    #: Target mean visits per location (paper: 21.5).
    location_degree_mean: float = 21.5
    #: Tail exponent of activity-location attractiveness.
    attractiveness_beta: float = 2.0
    #: Cap on attractiveness ratio between largest and smallest location.
    attractiveness_max_ratio: float = 50_000.0
    #: Mean persons per home *building* (≈ two households).
    building_size_mean: float = 5.0
    #: Mean persons per household (sublocation of a home building).
    household_size_mean: float = 2.5
    #: Expected visits handled per activity sublocation.
    subloc_capacity: float = 25.0
    #: Fractions of activity locations by type (WORK, SCHOOL, SHOP, OTHER).
    type_fractions: tuple[float, float, float, float] = (0.40, 0.05, 0.30, 0.25)
    #: Geographic regions (counties).  1 disables regional structure;
    #: with more, ``region_locality`` of each person's activity visits
    #: stay inside their home region — the community structure that
    #: gives graph partitioning its locality (paper §III-B) and makes
    #: the epidemic spread as a spatial wave.
    n_regions: int = 1
    region_locality: float = 0.9

    def __post_init__(self) -> None:
        if self.n_persons < 1:
            raise ValueError("need at least one person")
        if not (self.mean_visits > 2.0):
            raise ValueError("mean_visits must exceed 2 (two home visits are fixed)")
        if abs(sum(self.type_fractions) - 1.0) > 1e-9:
            raise ValueError("type_fractions must sum to 1")
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if not (0.0 <= self.region_locality <= 1.0):
            raise ValueError("region_locality must be in [0, 1]")


@observe.traced("synthpop.sample_degrees")
def _sample_person_degrees(
    rng: np.random.Generator, cfg: PopulationConfig, n: int | None = None
) -> np.ndarray:
    """Visits per person: 2 home visits + negative-binomial activity visits.

    NB parameters chosen so the *total* degree matches (mean, std); the
    NB requires var > mean which holds for the paper's (5.5, 2.6).
    ``n`` overrides the draw count (the streaming generator samples one
    fixed-size person block at a time).
    """
    n = cfg.n_persons if n is None else n
    m = cfg.mean_visits - 2.0
    var = cfg.std_visits**2
    if var <= m:
        # Fall back to Poisson when the requested dispersion is too tight.
        k = rng.poisson(m, size=n)
    else:
        r = m * m / (var - m)
        p = r / (r + m)
        k = rng.negative_binomial(r, p, size=n)
    return (k + 2).astype(np.int64)


@observe.traced("synthpop.sample_ages")
def _sample_ages(rng: np.random.Generator, n: int) -> np.ndarray:
    """Rough US age pyramid: 0–4 (7%), 5–17 (17%), 18–64 (63%), 65+ (13%)."""
    u = rng.random(n)
    age = np.empty(n, dtype=np.int16)
    band0 = u < 0.07
    band1 = (u >= 0.07) & (u < 0.24)
    band2 = (u >= 0.24) & (u < 0.87)
    band3 = u >= 0.87
    age[band0] = rng.integers(0, 5, size=int(band0.sum()))
    age[band1] = rng.integers(5, 18, size=int(band1.sum()))
    age[band2] = rng.integers(18, 65, size=int(band2.sum()))
    age[band3] = rng.integers(65, 95, size=int(band3.sum()))
    return age


@observe.traced("synthpop.assign_households")
def _assign_households(
    rng: np.random.Generator, cfg: PopulationConfig
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group persons into households and households into home buildings.

    Returns ``(person_home_building, person_household_in_building,
    building_n_households)``.
    """
    n = cfg.n_persons
    # Draw household sizes until they cover the population, then trim.
    mean_hh = cfg.household_size_mean
    est = int(n / max(mean_hh - 0.5, 1.0)) + 8
    sizes = 1 + rng.poisson(mean_hh - 1.0, size=est)
    while sizes.sum() < n:
        sizes = np.concatenate([sizes, 1 + rng.poisson(mean_hh - 1.0, size=est)])
    cum = np.cumsum(sizes)
    n_households = int(np.searchsorted(cum, n) + 1)
    sizes = sizes[:n_households]
    sizes[-1] -= cum[n_households - 1] - n
    if sizes[-1] <= 0:  # pragma: no cover - defensive; searchsorted precludes it
        sizes[-1] = 1
    person_household = np.repeat(np.arange(n_households), sizes)[:n]

    hh_per_building = max(1, int(round(cfg.building_size_mean / mean_hh)))
    building_of_household = np.arange(n_households) // hh_per_building
    n_buildings = int(building_of_household.max()) + 1
    household_slot = np.arange(n_households) % hh_per_building
    building_n_households = np.bincount(building_of_household, minlength=n_buildings)

    person_building = building_of_household[person_household]
    person_slot = household_slot[person_household]
    return person_building, person_slot, building_n_households


def generate_population(
    cfg: PopulationConfig,
    rng_factory: RngFactory | int = 0,
    name: str = "synthetic",
) -> PersonLocationGraph:
    """Generate one normative day of visits for a synthetic population.

    Parameters
    ----------
    cfg:
        Population parameters.
    rng_factory:
        An :class:`~repro.util.rng.RngFactory` or a bare integer seed.
    name:
        Dataset label carried on the resulting graph.

    >>> g = generate_population(PopulationConfig(n_persons=60), 0)
    >>> g.n_persons, g.n_visits >= 3 * 60
    (60, True)
    """
    obs_span = observe.span("synthpop.generate", persons=cfg.n_persons)
    with obs_span:
        graph = _generate_population(cfg, rng_factory, name)
        obs_span.set(visits=int(graph.n_visits), locations=int(graph.n_locations))
        return graph


def _generate_population(
    cfg: PopulationConfig,
    rng_factory: RngFactory | int,
    name: str,
) -> PersonLocationGraph:
    if isinstance(rng_factory, (int, np.integer)):
        rng_factory = RngFactory(int(rng_factory))
    rng = rng_factory.stream(RngFactory.SYNTHPOP)

    n = cfg.n_persons
    ages = _sample_ages(rng, n)
    degrees = _sample_person_degrees(rng, cfg)
    person_building, person_slot, building_n_households = _assign_households(rng, cfg)
    n_buildings = building_n_households.shape[0]

    # --- activity locations -------------------------------------------------
    total_visits = int(degrees.sum())
    target_locations = max(n_buildings + 1, int(round(total_visits / cfg.location_degree_mean)))
    n_activity = max(1, target_locations - n_buildings)
    attract = pareto_attractiveness(
        rng,
        n_activity,
        beta=cfg.attractiveness_beta,
        x_min=1.0,
        x_max=cfg.attractiveness_max_ratio,
    )
    # Location ids: buildings first [0, n_buildings), then activity locations.
    n_locations = n_buildings + n_activity
    loc_type = np.full(n_locations, LocationType.HOME, dtype=np.int8)
    frac_work, frac_school, frac_shop, frac_other = cfg.type_fractions
    act_type = rng.choice(
        np.array(
            [LocationType.WORK, LocationType.SCHOOL, LocationType.SHOP, LocationType.OTHER],
            dtype=np.int8,
        ),
        size=n_activity,
        p=[frac_work, frac_school, frac_shop, frac_other],
    )
    loc_type[n_buildings:] = act_type

    # --- route activity visits ---------------------------------------------
    k_act = degrees - 2  # activity visits per person
    n_act_visits = int(k_act.sum())
    visit_person_act = np.repeat(np.arange(n, dtype=np.int64), k_act)

    # Visit ordinal within the person (0 = anchor visit).
    starts_of_person = np.concatenate([[0], np.cumsum(k_act)])[:-1]
    ordinal = np.arange(n_act_visits) - np.repeat(starts_of_person, k_act)

    is_child = (ages[visit_person_act] >= 5) & (ages[visit_person_act] < 18)
    is_worker = (ages[visit_person_act] >= 18) & (ages[visit_person_act] < 65)
    anchor = ordinal == 0

    # Regional structure: buildings in contiguous blocks, activity
    # locations spread round-robin so each region gets its share of the
    # attractiveness distribution.
    n_regions = cfg.n_regions
    building_region = (np.arange(n_buildings, dtype=np.int64) * n_regions) // max(
        n_buildings, 1
    )
    act_region = (np.arange(n_activity, dtype=np.int64) * n_regions) // n_activity
    person_region = building_region[person_building]

    probs = attract / attract.sum()
    dest = rng.choice(n_activity, size=n_act_visits, p=probs)
    if n_regions > 1 and n_act_visits:
        # Local visits redraw inside the person's home region.
        is_local = rng.random(n_act_visits) < cfg.region_locality
        visit_region = person_region[visit_person_act]
        for r in range(n_regions):
            mask = is_local & (visit_region == r)
            cnt = int(mask.sum())
            if cnt == 0:
                continue
            pool = np.flatnonzero(act_region == r)
            if pool.size == 0:
                continue
            pool_p = attract[pool] / attract[pool].sum()
            dest[mask] = rng.choice(pool, size=cnt, p=pool_p)

    # Redirect anchor visits of children to schools and workers to
    # workplaces (weighted within their type pool, preferring the home
    # region) so SCHOOL/WORK carry the anchor load.
    for mask, lt in ((anchor & is_child, LocationType.SCHOOL), (anchor & is_worker, LocationType.WORK)):
        type_pool = np.flatnonzero(act_type == lt)
        if type_pool.size == 0:
            continue
        if n_regions > 1:
            visit_region = person_region[visit_person_act]
            for r in range(n_regions):
                sub = mask & (visit_region == r)
                cnt = int(sub.sum())
                if cnt == 0:
                    continue
                pool = type_pool[act_region[type_pool] == r]
                if pool.size == 0:
                    pool = type_pool
                pool_p = attract[pool] / attract[pool].sum()
                dest[sub] = rng.choice(pool, size=cnt, p=pool_p)
        else:
            cnt = int(mask.sum())
            if cnt == 0:
                continue
            pool_p = attract[type_pool] / attract[type_pool].sum()
            dest[mask] = rng.choice(type_pool, size=cnt, p=pool_p)
    visit_location_act = (dest + n_buildings).astype(np.int64)

    # --- activity visit times -----------------------------------------------
    # Partition [08:00, 18:00] per person into k consecutive slots using
    # Dirichlet-like gamma weights; the anchor slot gets a 6x weight so
    # school/work dominate the day.
    span = _DAY_END_ACTIVITY - _DAY_START_ACTIVITY
    w = rng.gamma(2.0, 1.0, size=n_act_visits)
    w[anchor] *= 6.0
    sums = np.bincount(visit_person_act, weights=w, minlength=n)
    # Exclusive prefix sum within each person's segment.
    cum = np.cumsum(w)
    seg_offset = np.concatenate([[0.0], cum])[starts_of_person[k_act > 0]] if n_act_visits else None
    start_frac = np.empty(n_act_visits)
    end_frac = np.empty(n_act_visits)
    if n_act_visits:
        cum_excl = cum - w
        base = np.repeat(cum_excl[starts_of_person[k_act > 0]], k_act[k_act > 0])
        denom = np.repeat(sums[k_act > 0], k_act[k_act > 0])
        start_frac = (cum_excl - base) / denom
        end_frac = (cum - base) / denom
    visit_start_act = (_DAY_START_ACTIVITY + start_frac * span).astype(np.int32)
    visit_end_act = (_DAY_START_ACTIVITY + end_frac * span).astype(np.int32)
    visit_end_act = np.maximum(visit_end_act, visit_start_act + 1)
    visit_end_act = np.minimum(visit_end_act, _DAY_END_ACTIVITY)
    visit_start_act = np.minimum(visit_start_act, visit_end_act - 1)

    # --- home visits ---------------------------------------------------------
    morning_start = np.zeros(n, dtype=np.int32)
    morning_end = np.full(n, _DAY_START_ACTIVITY - 10, dtype=np.int32) + rng.integers(
        -60, 10, size=n, dtype=np.int32
    )
    morning_end = np.clip(morning_end, 60, _DAY_START_ACTIVITY)
    evening_start = np.full(n, _DAY_END_ACTIVITY + 10, dtype=np.int32) + rng.integers(
        -10, 120, size=n, dtype=np.int32
    )
    evening_start = np.clip(evening_start, _DAY_END_ACTIVITY, MINUTES_PER_DAY - 60)
    evening_end = np.full(n, MINUTES_PER_DAY, dtype=np.int32)

    # --- sublocations ---------------------------------------------------------
    act_counts = np.bincount(visit_location_act - n_buildings, minlength=n_activity)
    act_n_sublocs = np.maximum(1, np.ceil(act_counts / cfg.subloc_capacity)).astype(np.int32)
    loc_n_sublocs = np.concatenate(
        [np.maximum(building_n_households, 1).astype(np.int32), act_n_sublocs]
    )
    subloc_act = (
        rng.random(n_act_visits) * act_n_sublocs[visit_location_act - n_buildings]
    ).astype(np.int32)

    # --- assemble -------------------------------------------------------------
    persons = np.arange(n, dtype=np.int64)
    visit_person = np.concatenate([persons, persons, visit_person_act])
    visit_location = np.concatenate(
        [person_building, person_building, visit_location_act]
    ).astype(np.int64)
    visit_subloc = np.concatenate(
        [person_slot.astype(np.int32), person_slot.astype(np.int32), subloc_act]
    )
    visit_start = np.concatenate([morning_start, evening_start, visit_start_act])
    visit_end = np.concatenate([morning_end, evening_end, visit_end_act])

    order = np.lexsort((visit_start, visit_person))
    regions = None, None
    if cfg.n_regions > 1:
        regions = (
            person_region.astype(np.int32),
            np.concatenate([building_region, act_region]).astype(np.int32),
        )
    graph = PersonLocationGraph(
        name=name,
        n_persons=n,
        n_locations=n_locations,
        visit_person=visit_person[order],
        visit_location=visit_location[order],
        visit_subloc=visit_subloc[order],
        visit_start=visit_start[order].astype(np.int32),
        visit_end=visit_end[order].astype(np.int32),
        location_n_sublocs=loc_n_sublocs,
        location_type=loc_type,
        person_age=ages,
        person_home=person_building.astype(np.int64),
        person_region=regions[0],
        location_region=regions[1],
    )
    graph.validate()
    return graph
