"""Streaming, memory-bounded population generation.

The dense generator (:func:`~repro.synthpop.generator.
generate_population`) draws every per-visit array for the whole
population at once — O(n_visits) RAM several times over, which caps it
around a few million persons.  This module generates the *same family*
of populations block-by-block, writing straight into a
:class:`~repro.synthpop.store.PopulationBacking` (RAM for small runs,
``np.memmap`` files for large ones), so peak RAM is

    O(n_locations)  location-side tables (attractiveness CDFs, pools)
  + O(block)        one person block's working set
  + O(chunk)        the flush buffer

independent of ``n_persons`` — the NiemaGraphGen playbook applied to
the paper's Table-I scales (the US row is 280M persons; a laptop-class
box streams ≥10M, see ``benchmarks/bench_synthpop_scale.py``).

Determinism contract (pinned by ``tests/synthpop/test_stream.py``):

* every person block ``b`` draws from its own keyed stream
  ``RngFactory(seed).stream(SYNTHPOP, _K_PERSON_BLOCK, b)`` and the
  location side from ``(SYNTHPOP, _K_LOCATION)``, so content depends
  only on ``(seed, config, block_persons)``;
* ``chunk_persons`` (the flush-buffer size) and ``backing`` (RAM vs
  memmap) are pure *execution* knobs — any value yields bit-identical
  populations, which is why :class:`~repro.spec.PopulationSpec`
  excludes them from its content hash.

Generation is two-phase: pass 1 replays only each block's skeleton
draws (ages, degrees, households) to learn exact visit/building counts
and lay out global offsets; pass 2 re-derives each block stream,
replays the skeleton, draws the visit bodies, and writes each sorted
block into its slot.  Locations are sized from pass-1 totals exactly
like the dense generator; activity sublocation counts use *expected*
per-location visit loads (deterministic given the attractiveness CDF),
which is what removes the dense path's global realised-count pass.
"""

from __future__ import annotations

import numpy as np

from repro import observe
from repro.synthpop.generator import (
    PopulationConfig,
    _DAY_END_ACTIVITY,
    _DAY_START_ACTIVITY,
    _sample_ages,
    _sample_person_degrees,
)
from repro.synthpop.graph import LocationType, MINUTES_PER_DAY, PersonLocationGraph
from repro.synthpop.powerlaw import pareto_attractiveness
from repro.synthpop.store import PopulationBacking
from repro.util.rng import RngFactory

__all__ = ["generate_population_streamed", "DEFAULT_BLOCK_PERSONS"]

#: Default person-block granularity.  Content-affecting (each block has
#: its own keyed RNG stream), so it is part of the population spec.
DEFAULT_BLOCK_PERSONS = 8192

#: Populations at or above this size default to memmap backing.
AUTO_MEMMAP_PERSONS = 1_000_000

# RNG sub-keys under the SYNTHPOP prefix.  The dense generator uses the
# bare single-key stream (SYNTHPOP,), so these never collide with it.
_K_PERSON_BLOCK = 1
_K_LOCATION = 2

_ACT_SPAN = _DAY_END_ACTIVITY - _DAY_START_ACTIVITY


def _block_skeleton(rng: np.random.Generator, cfg: PopulationConfig, nb: int):
    """Draws shared by both passes, in fixed order: ages, degrees and
    the block-local household/building structure.

    Returns ``(ages, degrees, person_building_local, person_slot,
    building_hh_counts)``.  Must consume the stream identically in both
    passes — pass 2 continues drawing from the same generator.
    """
    ages = _sample_ages(rng, nb)
    degrees = _sample_person_degrees(rng, cfg, nb)

    mean_hh = cfg.household_size_mean
    est = int(nb / max(mean_hh - 0.5, 1.0)) + 8
    sizes = 1 + rng.poisson(mean_hh - 1.0, size=est)
    while sizes.sum() < nb:
        sizes = np.concatenate([sizes, 1 + rng.poisson(mean_hh - 1.0, size=est)])
    cum = np.cumsum(sizes)
    n_households = int(np.searchsorted(cum, nb) + 1)
    sizes = sizes[:n_households]
    sizes[-1] -= cum[n_households - 1] - nb
    if sizes[-1] <= 0:  # pragma: no cover - defensive; searchsorted precludes it
        sizes[-1] = 1
    person_household = np.repeat(np.arange(n_households), sizes)[:nb]

    hh_per_building = max(1, int(round(cfg.building_size_mean / mean_hh)))
    building_of_household = np.arange(n_households) // hh_per_building
    household_slot = np.arange(n_households) % hh_per_building
    n_buildings = int(building_of_household.max()) + 1
    building_hh_counts = np.bincount(building_of_household, minlength=n_buildings)

    return (
        ages,
        degrees,
        building_of_household[person_household],
        household_slot[person_household].astype(np.int32),
        building_hh_counts.astype(np.int32),
    )


class _WeightedPool:
    """A location subset with its attractiveness CDF: one uniform per
    draw via ``searchsorted`` (no per-draw O(n_locations) work)."""

    __slots__ = ("ids", "cdf")

    def __init__(self, ids: np.ndarray, attract: np.ndarray):
        self.ids = ids
        w = attract[ids].astype(np.float64)
        cdf = np.cumsum(w)
        cdf /= cdf[-1]
        cdf[-1] = 1.0
        self.cdf = cdf

    def draw(self, u: np.ndarray) -> np.ndarray:
        return self.ids[np.searchsorted(self.cdf, u, side="right")]


def generate_population_streamed(
    cfg: PopulationConfig,
    rng_factory: RngFactory | int = 0,
    *,
    backing: str = "auto",
    chunk_persons: int | None = None,
    block_persons: int = DEFAULT_BLOCK_PERSONS,
    dir=None,
    name: str = "streamed",
) -> PersonLocationGraph:
    """Generate a population block-by-block into a bounded-memory backing.

    Parameters
    ----------
    cfg:
        Population parameters (same knobs as the dense generator).
    rng_factory:
        Root seed or :class:`~repro.util.rng.RngFactory`.
    backing:
        ``"ram"``, ``"memmap"``, or ``"auto"`` (memmap at ≥ 1M
        persons).  Content is bit-identical across backings.
    chunk_persons:
        Flush-buffer size in persons (content-neutral; default
        ``max(block_persons, 262144)``).
    block_persons:
        Persons per generation block — the RNG keying granularity.
        Content-*affecting*: part of the population's identity.
    dir:
        Parent directory for memmap files (default ``$REPRO_POP_DIR``
        or the system temp dir).
    name:
        Dataset label.

    >>> g = generate_population_streamed(
    ...     PopulationConfig(n_persons=100), 3, block_persons=32)
    >>> g.n_persons, bool((g.person_degrees >= 2).all())
    (100, True)
    >>> g2 = generate_population_streamed(
    ...     PopulationConfig(n_persons=100), 3, block_persons=32,
    ...     chunk_persons=17)
    >>> g2.content_hash() == g.content_hash()
    True
    """
    if isinstance(rng_factory, (int, np.integer)):
        rng_factory = RngFactory(int(rng_factory))
    if backing not in ("ram", "memmap", "auto"):
        raise ValueError(f"backing must be ram/memmap/auto, got {backing!r}")
    if block_persons < 1:
        raise ValueError("block_persons must be >= 1")
    n = cfg.n_persons
    if backing == "auto":
        backing = "memmap" if n >= AUTO_MEMMAP_PERSONS else "ram"
    if chunk_persons is None:
        chunk_persons = max(block_persons, 262_144)
    chunk_persons = max(1, int(chunk_persons))

    obs = observe.span(
        "synthpop.generate_streamed", persons=n, backing=backing,
        block=block_persons,
    )
    with obs:
        graph = _generate(
            cfg, rng_factory, backing, chunk_persons, block_persons, dir, name
        )
        obs.set(visits=int(graph.n_visits), locations=int(graph.n_locations))
        return graph


def _generate(cfg, factory, backing_kind, chunk_persons, block_persons, dir, name):
    n = cfg.n_persons
    n_blocks = (n + block_persons - 1) // block_persons
    blocks = [
        (b, b * block_persons, min(n, (b + 1) * block_persons))
        for b in range(n_blocks)
    ]

    # --- pass 1: per-block skeletons -> exact global layout ---------------
    block_visits = np.zeros(n_blocks, dtype=np.int64)
    block_buildings = np.zeros(n_blocks, dtype=np.int64)
    hh_counts_parts: list[np.ndarray] = []
    with observe.span("synthpop.stream_pass1", blocks=n_blocks):
        for b, lo, hi in blocks:
            rng = factory.stream(RngFactory.SYNTHPOP, _K_PERSON_BLOCK, b)
            _ages, degrees, _pb, _ps, hh_counts = _block_skeleton(rng, cfg, hi - lo)
            block_visits[b] = degrees.sum()
            block_buildings[b] = hh_counts.shape[0]
            hh_counts_parts.append(hh_counts)

    total_visits = int(block_visits.sum())
    n_buildings = int(block_buildings.sum())
    building_offset = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(block_buildings, out=building_offset[1:])
    visit_offset = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(block_visits, out=visit_offset[1:])

    # --- location side (O(n_locations), independent of person count) ------
    target_locations = max(
        n_buildings + 1, int(round(total_visits / cfg.location_degree_mean))
    )
    n_activity = max(1, target_locations - n_buildings)
    n_locations = n_buildings + n_activity
    rng_loc = factory.stream(RngFactory.SYNTHPOP, _K_LOCATION)
    attract = pareto_attractiveness(
        rng_loc, n_activity, beta=cfg.attractiveness_beta,
        x_min=1.0, x_max=cfg.attractiveness_max_ratio,
    )
    frac_work, frac_school, frac_shop, frac_other = cfg.type_fractions
    act_type = rng_loc.choice(
        np.array(
            [LocationType.WORK, LocationType.SCHOOL, LocationType.SHOP,
             LocationType.OTHER],
            dtype=np.int8,
        ),
        size=n_activity,
        p=[frac_work, frac_school, frac_shop, frac_other],
    )
    R = cfg.n_regions
    act_region = (np.arange(n_activity, dtype=np.int64) * R) // n_activity

    global_pool = _WeightedPool(np.arange(n_activity, dtype=np.int64), attract)
    region_pools: list[_WeightedPool | None] = [None] * R
    if R > 1:
        for r in range(R):
            ids = np.flatnonzero(act_region == r)
            region_pools[r] = _WeightedPool(ids, attract) if ids.size else None
    # Anchor pools: children -> SCHOOL, working-age adults -> WORK,
    # preferring the person's home region (dense-generator semantics).
    anchor_pools: dict[int, tuple] = {}
    for lt in (int(LocationType.SCHOOL), int(LocationType.WORK)):
        type_ids = np.flatnonzero(act_type == lt)
        if type_ids.size == 0:
            anchor_pools[lt] = (None, [None] * R)
            continue
        whole = _WeightedPool(type_ids, attract)
        per_region: list[_WeightedPool | None] = [None] * R
        if R > 1:
            for r in range(R):
                sub = type_ids[act_region[type_ids] == r]
                per_region[r] = _WeightedPool(sub, attract) if sub.size else whole
        anchor_pools[lt] = (whole, per_region)

    # Expected activity load per location -> sublocation counts (the
    # deterministic stand-in for the dense path's realised bincount).
    total_act_visits = max(0, total_visits - 2 * n)
    probs = attract / attract.sum()
    act_n_sublocs = np.maximum(
        1, np.ceil(total_act_visits * probs / cfg.subloc_capacity)
    ).astype(np.int32)

    # --- allocate the backing ---------------------------------------------
    store = PopulationBacking.create(backing_kind, dir=dir)
    try:
        v_person = store.allocate("visit_person", (total_visits,), np.int64)
        v_location = store.allocate("visit_location", (total_visits,), np.int64)
        v_subloc = store.allocate("visit_subloc", (total_visits,), np.int32)
        v_start = store.allocate("visit_start", (total_visits,), np.int32)
        v_end = store.allocate("visit_end", (total_visits,), np.int32)
        p_age = store.allocate("person_age", (n,), np.int16)
        p_home = store.allocate("person_home", (n,), np.int64)
        l_sublocs = store.allocate("location_n_sublocs", (n_locations,), np.int32)
        l_type = store.allocate("location_type", (n_locations,), np.int8)
        p_region = l_region = None
        if R > 1:
            p_region = store.allocate("person_region", (n,), np.int32)
            l_region = store.allocate("location_region", (n_locations,), np.int32)

        hh_all = np.concatenate(hh_counts_parts) if hh_counts_parts else np.empty(0, np.int32)
        l_sublocs[:n_buildings] = np.maximum(hh_all, 1)
        l_sublocs[n_buildings:] = act_n_sublocs
        l_type[:n_buildings] = LocationType.HOME
        l_type[n_buildings:] = act_type
        building_region = (np.arange(n_buildings, dtype=np.int64) * R) // max(
            n_buildings, 1
        )
        if R > 1:
            l_region[:n_buildings] = building_region
            l_region[n_buildings:] = act_region

        # --- pass 2: generate blocks, buffer, flush -----------------------
        buf: list[tuple[int, dict]] = []
        buffered_persons = 0

        def flush():
            nonlocal buf, buffered_persons
            if not buf:
                return
            first = buf[0][0]
            at = int(visit_offset[first])
            for _b, cols in buf:
                m = cols["person"].shape[0]
                v_person[at : at + m] = cols["person"]
                v_location[at : at + m] = cols["location"]
                v_subloc[at : at + m] = cols["subloc"]
                v_start[at : at + m] = cols["start"]
                v_end[at : at + m] = cols["end"]
                at += m
            buf = []
            buffered_persons = 0

        with observe.span("synthpop.stream_pass2", blocks=n_blocks):
            for b, lo, hi in blocks:
                cols = _generate_block(
                    factory, cfg, b, lo, hi,
                    n_buildings=n_buildings,
                    building_base=int(building_offset[b]),
                    building_region=building_region,
                    global_pool=global_pool,
                    region_pools=region_pools,
                    anchor_pools=anchor_pools,
                    act_region=act_region,
                    act_n_sublocs=act_n_sublocs,
                    p_age=p_age, p_home=p_home, p_region=p_region,
                )
                buf.append((b, cols))
                buffered_persons += hi - lo
                if buffered_persons >= chunk_persons:
                    flush()
            flush()
        store.flush()

        graph = PersonLocationGraph(
            name=name,
            n_persons=n,
            n_locations=n_locations,
            visit_person=v_person,
            visit_location=v_location,
            visit_subloc=v_subloc,
            visit_start=v_start,
            visit_end=v_end,
            location_n_sublocs=l_sublocs,
            location_type=l_type,
            person_age=p_age,
            person_home=p_home,
            person_region=p_region,
            location_region=l_region,
            backing=store,
        )
        graph.validate()
        return graph
    except Exception:
        store.close()
        raise


def _generate_block(
    factory, cfg, b, lo, hi, *,
    n_buildings, building_base, building_region,
    global_pool, region_pools, anchor_pools,
    act_region, act_n_sublocs,
    p_age, p_home, p_region,
) -> dict:
    """One block's visits (sorted by person, start) + person-side fills.

    Draw order after the skeleton is fixed and documented here; both
    the chunk-invariance property and RAM/memmap bit-exactness rest on
    every draw being keyed to the block, not to global position.
    """
    nb = hi - lo
    R = cfg.n_regions
    rng = factory.stream(RngFactory.SYNTHPOP, _K_PERSON_BLOCK, b)
    ages, degrees, pb_local, person_slot, _hh = _block_skeleton(rng, cfg, nb)

    person_building = building_base + pb_local  # global building ids
    p_age[lo:hi] = ages
    p_home[lo:hi] = person_building
    person_region = building_region[person_building].astype(np.int64)
    if p_region is not None:
        p_region[lo:hi] = person_region

    # --- activity visits ---------------------------------------------------
    k_act = degrees - 2
    n_act = int(k_act.sum())
    persons_local = np.arange(nb, dtype=np.int64)
    visit_person_act = np.repeat(persons_local, k_act)
    starts_of_person = np.concatenate([[0], np.cumsum(k_act)])[:-1]
    ordinal = np.arange(n_act) - np.repeat(starts_of_person, k_act)
    anchor = ordinal == 0
    v_ages = ages[visit_person_act]
    is_child = (v_ages >= 5) & (v_ages < 18)
    is_worker = (v_ages >= 18) & (v_ages < 65)

    # Draw order: dest, [locality, redraw], anchor, gamma weights,
    # morning jitter, evening jitter, subloc.
    u_dest = rng.random(n_act)
    dest = global_pool.draw(u_dest) if n_act else np.empty(0, dtype=np.int64)
    if R > 1 and n_act:
        is_local = rng.random(n_act) < cfg.region_locality
        u_redraw = rng.random(n_act)
        visit_region = person_region[visit_person_act]
        for r in range(R):
            pool = region_pools[r]
            if pool is None:
                continue
            mask = is_local & (visit_region == r)
            if mask.any():
                dest[mask] = pool.draw(u_redraw[mask])
    u_anchor = rng.random(n_act)
    for lt, cond in (
        (int(LocationType.SCHOOL), anchor & is_child),
        (int(LocationType.WORK), anchor & is_worker),
    ):
        whole, per_region = anchor_pools[lt]
        if whole is None or not n_act:
            continue
        if R > 1:
            visit_region = person_region[visit_person_act]
            for r in range(R):
                pool = per_region[r] or whole
                mask = cond & (visit_region == r)
                if mask.any():
                    dest[mask] = pool.draw(u_anchor[mask])
        elif cond.any():
            dest[cond] = whole.draw(u_anchor[cond])
    visit_location_act = dest + n_buildings

    # Activity times: Dirichlet-like slot partition of [08:00, 18:00).
    w = rng.gamma(2.0, 1.0, size=n_act)
    w[anchor] *= 6.0
    start_frac = np.empty(n_act)
    end_frac = np.empty(n_act)
    if n_act:
        sums = np.bincount(visit_person_act, weights=w, minlength=nb)
        cum = np.cumsum(w)
        cum_excl = cum - w
        covered = k_act > 0
        base = np.repeat(cum_excl[starts_of_person[covered]], k_act[covered])
        denom = np.repeat(sums[covered], k_act[covered])
        start_frac = (cum_excl - base) / denom
        end_frac = (cum - base) / denom
    start_act = (_DAY_START_ACTIVITY + start_frac * _ACT_SPAN).astype(np.int32)
    end_act = (_DAY_START_ACTIVITY + end_frac * _ACT_SPAN).astype(np.int32)
    end_act = np.maximum(end_act, start_act + 1)
    end_act = np.minimum(end_act, _DAY_END_ACTIVITY)
    start_act = np.minimum(start_act, end_act - 1)

    # --- home visits -------------------------------------------------------
    morning_start = np.zeros(nb, dtype=np.int32)
    morning_end = np.full(nb, _DAY_START_ACTIVITY - 10, dtype=np.int32) + rng.integers(
        -60, 10, size=nb, dtype=np.int32
    )
    morning_end = np.clip(morning_end, 60, _DAY_START_ACTIVITY)
    evening_start = np.full(nb, _DAY_END_ACTIVITY + 10, dtype=np.int32) + rng.integers(
        -10, 120, size=nb, dtype=np.int32
    )
    evening_start = np.clip(evening_start, _DAY_END_ACTIVITY, MINUTES_PER_DAY - 60)
    evening_end = np.full(nb, MINUTES_PER_DAY, dtype=np.int32)

    u_sub = rng.random(n_act)
    subloc_act = (u_sub * act_n_sublocs[dest]).astype(np.int32)

    # --- assemble, block-local sort ---------------------------------------
    person = np.concatenate([persons_local, persons_local, visit_person_act])
    location = np.concatenate(
        [person_building, person_building, visit_location_act]
    ).astype(np.int64)
    subloc = np.concatenate([person_slot, person_slot, subloc_act])
    start = np.concatenate([morning_start, evening_start, start_act])
    end = np.concatenate([morning_end, evening_end, end_act])
    order = np.lexsort((start, person))
    return {
        "person": (person[order] + lo).astype(np.int64),
        "location": location[order],
        "subloc": subloc[order],
        "start": start[order].astype(np.int32),
        "end": end[order].astype(np.int32),
    }
