"""Population graph persistence (compressed ``.npz``).

Population synthesis for the larger experiment scales takes seconds to
minutes, so the benchmark harness caches generated graphs on disk.  The
format is a single ``numpy.savez_compressed`` archive holding every
array plus a small JSON header for scalars — readable without this
package if needed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.synthpop.graph import PersonLocationGraph

__all__ = ["save_population", "load_population"]

_FORMAT_VERSION = 1


def save_population(graph: PersonLocationGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing).

    >>> import tempfile, os
    >>> from repro.synthpop import PopulationConfig, generate_population
    >>> g = generate_population(PopulationConfig(n_persons=40), 0)
    >>> p = os.path.join(tempfile.mkdtemp(), "pop.npz")
    >>> save_population(g, p)
    >>> load_population(p).n_persons
    40
    """
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "n_persons": graph.n_persons,
        "n_locations": graph.n_locations,
    }
    arrays = dict(
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        visit_person=graph.visit_person,
        visit_location=graph.visit_location,
        visit_subloc=graph.visit_subloc,
        visit_start=graph.visit_start,
        visit_end=graph.visit_end,
        location_n_sublocs=graph.location_n_sublocs,
        location_type=graph.location_type,
        person_age=graph.person_age,
        person_home=graph.person_home,
    )
    if graph.person_region is not None:
        arrays["person_region"] = graph.person_region
        arrays["location_region"] = graph.location_region
    np.savez_compressed(path, **arrays)


def load_population(path: str | Path) -> PersonLocationGraph:
    """Read a graph previously written by :func:`save_population`.

    >>> import tempfile, os
    >>> from repro.synthpop import PopulationConfig, generate_population
    >>> g = generate_population(PopulationConfig(n_persons=30), 1)
    >>> p = os.path.join(tempfile.mkdtemp(), "x")
    >>> save_population(g, p)   # '.npz' appended on save and load
    >>> load_population(p).n_visits == g.n_visits
    True
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported population format version {header.get('format_version')!r}"
            )
        graph = PersonLocationGraph(
            name=header["name"],
            n_persons=int(header["n_persons"]),
            n_locations=int(header["n_locations"]),
            visit_person=data["visit_person"],
            visit_location=data["visit_location"],
            visit_subloc=data["visit_subloc"],
            visit_start=data["visit_start"],
            visit_end=data["visit_end"],
            location_n_sublocs=data["location_n_sublocs"],
            location_type=data["location_type"],
            person_age=data["person_age"],
            person_home=data["person_home"],
            person_region=data["person_region"] if "person_region" in data else None,
            location_region=(
                data["location_region"] if "location_region" in data else None
            ),
        )
    graph.validate()
    return graph
