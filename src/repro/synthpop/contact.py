"""The implicit person–person contact network (paper §II-A).

"The person-location graph is used to implicitly construct a
person-person graph, whose edges represent the colocation of two people
in time and space and which is ultimately used to determine any disease
transmission between colocated people."

EpiSimdemics never materialises this graph — that's the point of the
location-centric DES — but it is the object whose heavy-tailed
structure drives everything in §III, so the analysis layer needs it:
:func:`contact_network` extracts the co-presence edges (pairs sharing a
sublocation with positive time overlap) with contact-minute weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synthpop.graph import PersonLocationGraph

__all__ = ["ContactNetwork", "contact_network"]


@dataclass(frozen=True)
class ContactNetwork:
    """Weighted person–person edge list.

    One row per unordered pair with at least one co-presence; weights
    are total contact minutes summed over all shared visits.
    """

    person_a: np.ndarray
    person_b: np.ndarray
    minutes: np.ndarray
    n_persons: int

    @property
    def n_edges(self) -> int:
        return int(self.person_a.shape[0])

    def degrees(self) -> np.ndarray:
        """Contact-partner count per person."""
        deg = np.zeros(self.n_persons, dtype=np.int64)
        np.add.at(deg, self.person_a, 1)
        np.add.at(deg, self.person_b, 1)
        return deg

    def contact_minutes_per_person(self) -> np.ndarray:
        out = np.zeros(self.n_persons, dtype=np.float64)
        np.add.at(out, self.person_a, self.minutes)
        np.add.at(out, self.person_b, self.minutes)
        return out

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (weights = contact minutes)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_persons))
        g.add_weighted_edges_from(
            zip(self.person_a.tolist(), self.person_b.tolist(), self.minutes.tolist())
        )
        return g


def contact_network(
    graph: PersonLocationGraph,
    max_pairs_per_sublocation: int | None = None,
) -> ContactNetwork:
    """Materialise the person–person co-presence network.

    Complexity is quadratic in sublocation occupancy — which is exactly
    why EpiSimdemics keeps the graph implicit.  For analysis on large
    populations, ``max_pairs_per_sublocation`` caps the work per
    sublocation (largest-overlap pairs kept), trading completeness for
    memory; ``None`` means exact.
    """
    loc_order, loc_ptr = graph.location_visit_index()
    vis_person = graph.visit_person
    vis_sub = graph.visit_subloc
    vis_start = graph.visit_start
    vis_end = graph.visit_end

    pair_minutes: dict[int, float] = {}
    n = graph.n_persons
    for loc in range(graph.n_locations):
        rows = loc_order[loc_ptr[loc] : loc_ptr[loc + 1]]
        if rows.size < 2:
            continue
        subs = vis_sub[rows]
        for sub in np.unique(subs):
            sub_rows = rows[subs == sub]
            if sub_rows.size < 2:
                continue
            a_idx = np.repeat(np.arange(sub_rows.size), sub_rows.size)
            b_idx = np.tile(np.arange(sub_rows.size), sub_rows.size)
            upper = a_idx < b_idx
            a_rows = sub_rows[a_idx[upper]]
            b_rows = sub_rows[b_idx[upper]]
            o_start = np.maximum(vis_start[a_rows], vis_start[b_rows])
            o_end = np.minimum(vis_end[a_rows], vis_end[b_rows])
            overlap = (o_end - o_start).astype(np.float64)
            mask = (overlap > 0) & (vis_person[a_rows] != vis_person[b_rows])
            if not mask.any():
                continue
            pa = vis_person[a_rows[mask]]
            pb = vis_person[b_rows[mask]]
            ov = overlap[mask]
            if max_pairs_per_sublocation is not None and ov.size > max_pairs_per_sublocation:
                keep = np.argsort(-ov)[:max_pairs_per_sublocation]
                pa, pb, ov = pa[keep], pb[keep], ov[keep]
            lo = np.minimum(pa, pb).astype(np.int64)
            hi = np.maximum(pa, pb).astype(np.int64)
            for key, w in zip((lo * n + hi).tolist(), ov.tolist()):
                pair_minutes[key] = pair_minutes.get(key, 0.0) + w

    if not pair_minutes:
        empty = np.empty(0, dtype=np.int64)
        return ContactNetwork(empty, empty, np.empty(0), n)
    keys = np.fromiter(pair_minutes.keys(), dtype=np.int64, count=len(pair_minutes))
    weights = np.fromiter(pair_minutes.values(), dtype=np.float64, count=len(pair_minutes))
    order = np.argsort(keys)
    keys, weights = keys[order], weights[order]
    return ContactNetwork(
        person_a=keys // n,
        person_b=keys % n,
        minutes=weights,
        n_persons=n,
    )
