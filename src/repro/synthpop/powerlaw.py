"""Heavy-tailed samplers for location attractiveness.

Section III-B of the paper models the location degree distribution as a
power law ``f = D·c·d^(−β)`` with β > 1.  We generate that shape by
assigning each activity location an *attractiveness* drawn from a
bounded Pareto distribution and routing visits to locations with
probability proportional to attractiveness — multinomial thinning of a
power law is again (asymptotically) a power law with the same tail
index, so the visit-count distribution inherits the heavy tail.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pareto_attractiveness", "bounded_zipf_sample", "powerlaw_normalisation"]


def pareto_attractiveness(
    rng: np.random.Generator,
    n: int,
    beta: float = 2.0,
    x_min: float = 1.0,
    x_max: float | None = None,
) -> np.ndarray:
    """Draw ``n`` attractiveness values from a (bounded) Pareto law.

    The density is ``p(x) ∝ x^(−β)`` on ``[x_min, x_max]``; sampling uses
    inverse-CDF transform.  ``β`` here is the *density* exponent, matching
    the paper's notation (β > 1 required for normalisability).

    Parameters
    ----------
    rng:
        Source of randomness.
    n:
        Number of samples.
    beta:
        Tail exponent; the paper's social graphs sit around β ≈ 2.
    x_min, x_max:
        Support bounds; ``x_max=None`` means unbounded.  Bounding the
        tail models the physical cap on location capacity (a stadium is
        large but finite) and keeps tiny test populations well-behaved.

    >>> import numpy as np
    >>> x = pareto_attractiveness(np.random.default_rng(0), 1000, beta=2.0,
    ...                           x_min=1.0, x_max=100.0)
    >>> bool((x >= 1.0).all() and (x <= 100.0).all())
    True
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if beta <= 1.0:
        raise ValueError(f"power-law exponent must exceed 1, got {beta}")
    if x_min <= 0:
        raise ValueError("x_min must be positive")
    if x_max is not None and x_max <= x_min:
        raise ValueError("x_max must exceed x_min")
    u = rng.random(n)
    a = beta - 1.0  # CDF exponent
    if x_max is None:
        return x_min * (1.0 - u) ** (-1.0 / a)
    # Inverse CDF of the truncated Pareto.
    lo = x_min ** (-a)
    hi = x_max ** (-a)
    return (lo - u * (lo - hi)) ** (-1.0 / a)


def bounded_zipf_sample(
    rng: np.random.Generator,
    n: int,
    beta: float,
    d_min: int = 1,
    d_max: int = 10_000,
) -> np.ndarray:
    """Draw ``n`` integer degrees from a bounded Zipf law ``P(d) ∝ d^(−β)``.

    Used directly by tests and by the analytic speedup-bound experiments
    (Figure 5) where we need degree samples without building a full
    population.

    >>> import numpy as np
    >>> d = bounded_zipf_sample(np.random.default_rng(0), 500, beta=2.0,
    ...                         d_min=1, d_max=50)
    >>> int(d.min()) >= 1 and int(d.max()) <= 50
    True
    """
    if d_min < 1 or d_max < d_min:
        raise ValueError("need 1 <= d_min <= d_max")
    support = np.arange(d_min, d_max + 1, dtype=np.float64)
    weights = support ** (-beta)
    weights /= weights.sum()
    return rng.choice(np.arange(d_min, d_max + 1), size=n, p=weights)


def powerlaw_normalisation(beta: float, d_max: int = 10_000_000) -> float:
    """The constant ``c`` with ``c · Σ_{d=1}^{∞} d^(−β) = 1`` (paper §III-B).

    Computed by direct summation to ``d_max`` plus an integral tail
    correction; accurate to ~1e-9 for β ≥ 1.5.
    """
    if beta <= 1.0:
        raise ValueError("series diverges for beta <= 1")
    d = np.arange(1, min(d_max, 1_000_000) + 1, dtype=np.float64)
    head = np.sum(d ** (-beta))
    tail = (d[-1] + 0.5) ** (1.0 - beta) / (beta - 1.0)
    return 1.0 / (head + tail)
