"""Population backing stores: RAM arrays or ``np.memmap`` files.

The dense generator materialises every per-visit array in RAM, which
caps population size at available memory.  A :class:`PopulationBacking`
abstracts *where* a population's arrays live:

* ``kind="ram"`` — plain ``np.empty`` arrays (small runs, tests);
* ``kind="memmap"`` — one ``.npy`` file per array under a directory,
  created with :func:`np.lib.format.open_memmap` so each file is a
  standalone, standard NPY readable by ``np.load(..., mmap_mode="r")``.

Because ``np.memmap`` is an ``ndarray`` subclass, a
:class:`~repro.synthpop.graph.PersonLocationGraph` built over either
backing is indistinguishable to every downstream consumer (kernels,
partitioners, baselines, the lab cache) — only the residency differs.

Temp-file lifecycle: a backing that *owns* its directory removes it
when the backing (and therefore the graph holding it) is garbage
collected, via ``weakref.finalize`` — no leaked ``/tmp`` trees even on
interpreter exit.  :meth:`PopulationBacking.persist` hands the
directory over to a permanent location (the lab artifact cache uses
this) and disarms the finalizer.

The default directory for new memmap backings is
``$REPRO_POP_DIR`` when set, else the system temp dir.

>>> b = PopulationBacking.create("ram")
>>> arr = b.allocate("visit_start", (4,), np.int32)
>>> arr[:] = 7
>>> b.kind, int(b.nbytes)
('ram', 16)
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import weakref
from pathlib import Path

import numpy as np

__all__ = ["PopulationBacking", "save_population_dir", "load_population_dir"]

#: Environment variable naming the default parent directory for new
#: memmap backings (falls back to the system temp dir).
POP_DIR_ENV = "REPRO_POP_DIR"

_HEADER_NAME = "header.json"


def _default_parent() -> Path:
    root = os.environ.get(POP_DIR_ENV)
    return Path(root) if root else Path(tempfile.gettempdir())


def _remove_dir(path: Path) -> None:
    shutil.rmtree(path, ignore_errors=True)


class PopulationBacking:
    """Allocator + lifecycle for one population's arrays.

    Create with :meth:`create`, then :meth:`allocate` named arrays; the
    registry keeps ``{name: array}`` so IO and hashing can enumerate
    the columns.  Memmap backings own their directory by default and
    delete it on garbage collection unless :meth:`persist`-ed.

    >>> b = PopulationBacking.create("memmap")
    >>> a = b.allocate("x", (8,), np.int64)
    >>> a[:] = np.arange(8)
    >>> sorted(p.name for p in Path(b.dir).iterdir())
    ['x.npy']
    >>> d = Path(b.dir); b.close(); d.exists()
    False
    """

    def __init__(self, kind: str, dir: Path | None = None, owned: bool = False):
        if kind not in ("ram", "memmap"):
            raise ValueError(f"backing kind must be 'ram' or 'memmap', got {kind!r}")
        if kind == "memmap" and dir is None:
            raise ValueError("memmap backing needs a directory")
        self.kind = kind
        self.dir = Path(dir) if dir is not None else None
        self.owned = owned
        self.arrays: dict[str, np.ndarray] = {}
        self._finalizer = (
            weakref.finalize(self, _remove_dir, self.dir)
            if owned and self.dir is not None
            else None
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, kind: str, dir: str | Path | None = None) -> "PopulationBacking":
        """New backing; for ``memmap`` a fresh owned temp directory is
        made under ``dir`` (default: ``$REPRO_POP_DIR`` or the system
        temp dir)."""
        if kind == "ram":
            return cls("ram")
        parent = Path(dir) if dir is not None else _default_parent()
        parent.mkdir(parents=True, exist_ok=True)
        work = Path(tempfile.mkdtemp(prefix="repro-pop-", dir=parent))
        return cls("memmap", work, owned=True)

    # -- allocation -----------------------------------------------------
    def allocate(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """A zero-initialised array of ``shape``/``dtype`` registered
        under ``name`` (a ``<name>.npy`` memmap file, or RAM)."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already allocated")
        if self.kind == "ram":
            arr = np.zeros(shape, dtype=dtype)
        else:
            arr = np.lib.format.open_memmap(
                self.dir / f"{name}.npy", mode="w+", dtype=np.dtype(dtype),
                shape=tuple(int(s) for s in shape),
            )
        self.arrays[name] = arr
        return arr

    def adopt(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Register an externally produced array (RAM backing only for
        new columns; used when loading an existing directory)."""
        self.arrays[name] = arr
        return arr

    @property
    def nbytes(self) -> int:
        """Total payload bytes across registered arrays."""
        return int(sum(a.nbytes for a in self.arrays.values()))

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Flush memmap pages to disk (no-op for RAM)."""
        for arr in self.arrays.values():
            if isinstance(arr, np.memmap):
                arr.flush()

    def persist(self, target: str | Path) -> Path:
        """Move an owned memmap directory to ``target`` and keep it.

        The open memmaps stay valid (file descriptors survive the
        rename).  Falls back to a copy when ``target`` is on another
        filesystem.  Returns the final path.
        """
        if self.kind != "memmap":
            raise ValueError("only memmap backings can be persisted")
        target = Path(target)
        target.parent.mkdir(parents=True, exist_ok=True)
        self.flush()
        if not self.owned:
            raise ValueError("backing does not own its directory")
        try:
            os.replace(self.dir, target)
        except OSError:
            # Cross-device move: copy then drop the original.
            shutil.copytree(self.dir, target, dirs_exist_ok=True)
            shutil.rmtree(self.dir, ignore_errors=True)
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self.dir = target
        self.owned = False
        return target

    def close(self) -> None:
        """Drop array references; delete the directory if owned."""
        self.arrays.clear()
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.dir) if self.dir else "ram"
        return f"PopulationBacking(kind={self.kind!r}, dir={where!r})"


# ----------------------------------------------------------------------
def write_population_header(graph, dir: str | Path) -> None:
    """Write the ``header.json`` that makes a directory of column
    ``.npy`` files loadable — used when persisting a generation
    backing in place (rename, no copy)."""
    header = {
        "format_version": 1,
        "name": graph.name,
        "n_persons": graph.n_persons,
        "n_locations": graph.n_locations,
    }
    (Path(dir) / _HEADER_NAME).write_text(json.dumps(header, sort_keys=True))


def save_population_dir(graph, target: str | Path) -> Path:
    """Write ``graph`` as a directory of ``.npy`` files + JSON header.

    The column-per-file layout is what makes populations *streamable*:
    each array loads back as a read-only memmap, so opening a saved
    10M-person population costs a few pages, not gigabytes.  Writing
    goes through a temp directory + ``os.replace`` so concurrent
    writers race benignly.

    >>> import tempfile
    >>> from repro.synthpop import PopulationConfig
    >>> from repro.synthpop.stream import generate_population_streamed
    >>> g = generate_population_streamed(PopulationConfig(n_persons=40), 0)
    >>> d = save_population_dir(g, Path(tempfile.mkdtemp()) / "pop.d")
    >>> load_population_dir(d).n_persons
    40
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(prefix=f".{target.name}.", dir=target.parent))
    try:
        write_population_header(graph, tmp)
        for name, arr in _graph_columns(graph).items():
            out = np.lib.format.open_memmap(
                tmp / f"{name}.npy", mode="w+", dtype=arr.dtype, shape=arr.shape
            )
            # Chunked copy keeps the resident set bounded for huge columns.
            step = max(1, (1 << 25) // max(1, arr.itemsize))
            for lo in range(0, arr.shape[0], step):
                out[lo : lo + step] = arr[lo : lo + step]
            out.flush()
            del out
        try:
            os.replace(tmp, target)
        except OSError:
            if target.exists():  # concurrent writer won the race
                shutil.rmtree(tmp, ignore_errors=True)
            else:
                raise
    except Exception:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return target


def load_population_dir(path: str | Path, mmap: bool = True):
    """Load a population saved by :func:`save_population_dir`.

    With ``mmap=True`` (default) every column is a read-only
    ``np.memmap`` view — constant RAM regardless of population size.
    The returned graph carries a non-owned backing (deleting the graph
    never deletes a persisted artifact).

    >>> import tempfile
    >>> from repro.synthpop import PopulationConfig
    >>> from repro.synthpop.stream import generate_population_streamed
    >>> g = generate_population_streamed(PopulationConfig(n_persons=30), 1)
    >>> d = save_population_dir(g, Path(tempfile.mkdtemp()) / "p.d")
    >>> g2 = load_population_dir(d)
    >>> g2.content_hash() == g.content_hash()
    True
    """
    from repro.synthpop.graph import PersonLocationGraph

    path = Path(path)
    header = json.loads((path / _HEADER_NAME).read_text())
    if header.get("format_version") != 1:
        raise ValueError(
            f"unsupported population-dir format {header.get('format_version')!r}"
        )
    backing = PopulationBacking("memmap" if mmap else "ram", path, owned=False)
    mode = "r" if mmap else None

    def col(name, required=True):
        f = path / f"{name}.npy"
        if not f.exists():
            if required:
                raise ValueError(f"population dir {path} is missing {name}.npy")
            return None
        arr = np.load(f, mmap_mode=mode)
        return backing.adopt(name, arr)

    graph = PersonLocationGraph(
        name=header["name"],
        n_persons=int(header["n_persons"]),
        n_locations=int(header["n_locations"]),
        visit_person=col("visit_person"),
        visit_location=col("visit_location"),
        visit_subloc=col("visit_subloc"),
        visit_start=col("visit_start"),
        visit_end=col("visit_end"),
        location_n_sublocs=col("location_n_sublocs"),
        location_type=col("location_type"),
        person_age=col("person_age"),
        person_home=col("person_home"),
        person_region=col("person_region", required=False),
        location_region=col("location_region", required=False),
        backing=backing,
    )
    graph.validate()
    return graph


def _graph_columns(graph) -> dict[str, np.ndarray]:
    cols = {
        "visit_person": graph.visit_person,
        "visit_location": graph.visit_location,
        "visit_subloc": graph.visit_subloc,
        "visit_start": graph.visit_start,
        "visit_end": graph.visit_end,
        "location_n_sublocs": graph.location_n_sublocs,
        "location_type": graph.location_type,
        "person_age": graph.person_age,
        "person_home": graph.person_home,
    }
    if graph.person_region is not None:
        cols["person_region"] = graph.person_region
        cols["location_region"] = graph.location_region
    return cols
