"""The bipartite person–location visit graph.

This is the central data structure of the reproduction.  A
:class:`PersonLocationGraph` stores one *normative day* of visits as flat
NumPy arrays (structure-of-arrays, per the HPC guide's vectorisation
idiom), plus CSR-style indexes for iterating by person and by location.

Degrees and loads used throughout the paper:

* **person degree** — number of visits a person makes (avg 5.5); equals
  the number of "visit" messages the person generates, which is the
  person-phase load model (Section III-A).
* **location in-degree** — number of *unique visitors*; the paper's
  Figure 3(c) statistic, strongly correlated with the number of
  arrive/depart events.
* **location visit count** — number of visit edges incident to a
  location (2 events each), the input to the static load model.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

__all__ = ["LocationType", "PersonLocationGraph", "MINUTES_PER_DAY"]

#: Simulated minutes in one time step (one simulation day).
MINUTES_PER_DAY = 1440

#: Rows per chunk when streaming over the visit table (≈ 32 MB of
#: int64 column per chunk) — bounds temporaries on memmap-backed graphs.
VISIT_CHUNK_ROWS = 1 << 22


class LocationType(enum.IntEnum):
    """Coarse activity types; interventions act on these.

    >>> int(LocationType.HOME), LocationType.SCHOOL.name
    (0, 'SCHOOL')
    """

    HOME = 0
    WORK = 1
    SCHOOL = 2
    SHOP = 3
    OTHER = 4


@dataclass
class PersonLocationGraph:
    """One day of visits in structure-of-arrays form.

    All visit arrays have equal length ``n_visits`` and are sorted by
    ``(visit_person, visit_start)``.  Invariants are checked by
    :meth:`validate`; generators and the splitLoc preprocessor must
    leave the structure valid.

    Parameters
    ----------
    name:
        Human-readable dataset label (e.g. ``"CA@0.001"``).
    n_persons, n_locations:
        Node counts of the two bipartite sides.
    visit_person, visit_location:
        Endpoint ids per visit edge.
    visit_subloc:
        Sublocation index *within* the visited location,
        ``0 <= visit_subloc[i] < location_n_sublocs[visit_location[i]]``.
    visit_start, visit_end:
        Visit interval in minutes, ``0 <= start < end <= 1440``.
    location_n_sublocs:
        Number of sublocations per location (≥ 1).
    location_type:
        :class:`LocationType` value per location.
    person_age:
        Age in years per person (drives school/work assignment and can
        modulate susceptibility).
    person_home:
        Home location id per person.

    >>> from repro.synthpop import PopulationConfig, generate_population
    >>> g = generate_population(PopulationConfig(n_persons=50), 0)
    >>> g.validate()
    >>> int(g.person_degrees.sum()) == g.n_visits
    True
    """

    name: str
    n_persons: int
    n_locations: int
    visit_person: np.ndarray
    visit_location: np.ndarray
    visit_subloc: np.ndarray
    visit_start: np.ndarray
    visit_end: np.ndarray
    location_n_sublocs: np.ndarray
    location_type: np.ndarray
    person_age: np.ndarray
    person_home: np.ndarray
    #: Optional geographic region per person / location (None = no
    #: regional structure).  Regions give the graph the spatial
    #: community structure of real populations: most visits stay local,
    #: which is what gives graph partitioning its locality to exploit.
    person_region: np.ndarray | None = None
    location_region: np.ndarray | None = None
    #: Where the arrays live (``repro.synthpop.store.PopulationBacking``
    #: or None for plain RAM arrays).  Carried so the backing's temp
    #: files share the graph's lifetime; content is identical either way.
    backing: object | None = field(default=None, repr=False, compare=False)
    # Lazily built CSR indexes (by-person and by-location views).
    _person_ptr: np.ndarray | None = field(default=None, repr=False)
    _loc_order: np.ndarray | None = field(default=None, repr=False)
    _loc_ptr: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_visits(self) -> int:
        """Number of visit edges."""
        return int(self.visit_person.shape[0])

    def iter_visit_chunks(
        self, chunk_rows: int = VISIT_CHUNK_ROWS, align_persons: bool = False
    ) -> Iterator[slice]:
        """Row slices covering the visit table in bounded pieces.

        The streaming access path for memmap-backed graphs: consumers
        accumulate per-chunk partial results (bincounts, load sums)
        instead of materialising O(n_visits) temporaries.  With
        ``align_persons=True`` chunk boundaries are snapped so no
        person's visits straddle two chunks (the visit arrays are
        person-sorted), which makes per-chunk pair deduplication exact.
        """
        n = self.n_visits
        chunk_rows = max(1, int(chunk_rows))
        lo = 0
        while lo < n:
            hi = min(n, lo + chunk_rows)
            if align_persons and hi < n:
                boundary_person = int(self.visit_person[hi - 1])
                # Extend until the person at the boundary is complete.
                while hi < n and int(self.visit_person[hi]) == boundary_person:
                    hi += 1
            yield slice(lo, hi)
            lo = hi

    @property
    def person_degrees(self) -> np.ndarray:
        """Visits per person (the person-phase message count).

        Accumulated chunk-by-chunk so partitioner inputs never hold the
        whole visit table in RAM on memmap-backed graphs.
        """
        out = np.zeros(self.n_persons, dtype=np.int64)
        for sl in self.iter_visit_chunks():
            out += np.bincount(self.visit_person[sl], minlength=self.n_persons)
        return out

    @property
    def location_visit_counts(self) -> np.ndarray:
        """Visit edges per location (2 DES events each); chunk-accumulated."""
        out = np.zeros(self.n_locations, dtype=np.int64)
        for sl in self.iter_visit_chunks():
            out += np.bincount(self.visit_location[sl], minlength=self.n_locations)
        return out

    def location_in_degrees(self) -> np.ndarray:
        """Unique visitors per location — the paper's Figure 3(c) metric.

        Chunked with person-aligned boundaries: a (location, person)
        pair can repeat only within one person's visit block, so
        per-chunk ``np.unique`` over pair keys is globally exact.
        """
        out = np.zeros(self.n_locations, dtype=np.int64)
        for sl in self.iter_visit_chunks(align_persons=True):
            pairs = np.unique(
                self.visit_location[sl].astype(np.int64) * self.n_persons
                + self.visit_person[sl].astype(np.int64)
            )
            out += np.bincount(pairs // self.n_persons, minlength=self.n_locations)
        return out

    def content_hash(self) -> str:
        """BLAKE2b digest of the graph's full content.

        Streamed over visit chunks, so hashing a memmap-backed graph
        never materialises it; bit-identical RAM and memmap populations
        hash identically (the property the streaming tests pin).
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(f"{self.n_persons},{self.n_locations};".encode())
        cols = [
            ("visit_person", self.visit_person),
            ("visit_location", self.visit_location),
            ("visit_subloc", self.visit_subloc),
            ("visit_start", self.visit_start),
            ("visit_end", self.visit_end),
            ("location_n_sublocs", self.location_n_sublocs),
            ("location_type", self.location_type),
            ("person_age", self.person_age),
            ("person_home", self.person_home),
        ]
        if self.person_region is not None:
            cols.append(("person_region", self.person_region))
            cols.append(("location_region", self.location_region))
        for name, arr in cols:
            h.update(f"{name}:{arr.dtype.str};".encode())
            step = max(1, (1 << 25) // max(1, arr.itemsize))
            for lo in range(0, arr.shape[0], step):
                h.update(np.ascontiguousarray(arr[lo : lo + step]).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # CSR indexes
    # ------------------------------------------------------------------
    def person_visit_slices(self) -> np.ndarray:
        """CSR pointer over visits grouped by person.

        ``visits of person p`` are rows ``ptr[p]:ptr[p+1]`` (the visit
        arrays are already person-sorted).
        """
        if self._person_ptr is None:
            counts = self.person_degrees
            ptr = np.zeros(self.n_persons + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            self._person_ptr = ptr
        return self._person_ptr

    def location_visit_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(order, ptr)`` grouping visit rows by location.

        ``order[ptr[l]:ptr[l+1]]`` are the visit row indices incident to
        location ``l``, sorted by location then by start time — exactly
        the order in which a LocationManager receives and enqueues them.
        """
        if self._loc_order is None:
            key = self.visit_location.astype(np.int64) * (MINUTES_PER_DAY + 1) + self.visit_start
            order = np.argsort(key, kind="stable")
            counts = self.location_visit_counts
            ptr = np.zeros(self.n_locations + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            self._loc_order = order
            self._loc_ptr = ptr
        return self._loc_order, self._loc_ptr

    def invalidate_indexes(self) -> None:
        """Drop cached CSR indexes after in-place mutation."""
        self._person_ptr = None
        self._loc_order = None
        self._loc_ptr = None

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise ``ValueError`` on breakage."""
        nv = self.n_visits
        for arr_name in ("visit_location", "visit_subloc", "visit_start", "visit_end"):
            arr = getattr(self, arr_name)
            if arr.shape[0] != nv:
                raise ValueError(f"{arr_name} has length {arr.shape[0]}, expected {nv}")
        if self.location_n_sublocs.shape[0] != self.n_locations:
            raise ValueError("location_n_sublocs length mismatch")
        if self.location_type.shape[0] != self.n_locations:
            raise ValueError("location_type length mismatch")
        if self.person_age.shape[0] != self.n_persons:
            raise ValueError("person_age length mismatch")
        if self.person_home.shape[0] != self.n_persons:
            raise ValueError("person_home length mismatch")
        if nv:
            if self.visit_person.min() < 0 or self.visit_person.max() >= self.n_persons:
                raise ValueError("visit_person out of range")
            if self.visit_location.min() < 0 or self.visit_location.max() >= self.n_locations:
                raise ValueError("visit_location out of range")
            if np.any(self.visit_start < 0) or np.any(self.visit_end > MINUTES_PER_DAY):
                raise ValueError("visit interval outside [0, 1440]")
            if np.any(self.visit_end <= self.visit_start):
                raise ValueError("visit with non-positive duration")
            if np.any(self.visit_subloc < 0) or np.any(
                self.visit_subloc >= self.location_n_sublocs[self.visit_location]
            ):
                raise ValueError("visit_subloc out of range for its location")
            if np.any(np.diff(self.visit_person) < 0):
                raise ValueError("visit arrays are not sorted by person")
        if np.any(self.location_n_sublocs < 1):
            raise ValueError("every location needs at least one sublocation")
        if self.n_persons and (
            self.person_home.min() < 0 or self.person_home.max() >= self.n_locations
        ):
            raise ValueError("person_home out of range")
        if (self.person_region is None) != (self.location_region is None):
            raise ValueError("person_region and location_region must both be set or unset")
        if self.person_region is not None:
            if self.person_region.shape[0] != self.n_persons:
                raise ValueError("person_region length mismatch")
            if self.location_region.shape[0] != self.n_locations:
                raise ValueError("location_region length mismatch")

    # ------------------------------------------------------------------
    # summaries & transforms
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Table-I style summary row."""
        deg = self.person_degrees
        return {
            "name": self.name,
            "visits": self.n_visits,
            "people": self.n_persons,
            "locations": self.n_locations,
            "person_degree_mean": float(deg.mean()) if self.n_persons else 0.0,
            "person_degree_std": float(deg.std()) if self.n_persons else 0.0,
            "location_degree_mean": (
                float(self.n_visits / self.n_locations) if self.n_locations else 0.0
            ),
        }

    def with_visits(
        self,
        visit_person: np.ndarray,
        visit_location: np.ndarray,
        visit_subloc: np.ndarray,
        visit_start: np.ndarray,
        visit_end: np.ndarray,
        *,
        n_locations: int | None = None,
        location_n_sublocs: np.ndarray | None = None,
        location_type: np.ndarray | None = None,
        location_region: np.ndarray | None = None,
        name: str | None = None,
    ) -> "PersonLocationGraph":
        """Functional update returning a new graph with replaced visit/location arrays.

        Re-sorts visits by (person, start) so the CSR invariant holds.
        Used by splitLoc and by interventions that rewrite schedules.
        Callers that change ``n_locations`` on a regional graph must
        supply the new ``location_region``.
        """
        order = np.lexsort((visit_start, visit_person))
        new_n_locations = self.n_locations if n_locations is None else int(n_locations)
        new_loc_region = self.location_region if location_region is None else location_region
        if (
            new_loc_region is not None
            and new_loc_region.shape[0] != new_n_locations
        ):
            raise ValueError(
                "location count changed on a regional graph: pass location_region"
            )
        g = replace(
            self,
            name=self.name if name is None else name,
            n_locations=new_n_locations,
            location_region=new_loc_region,
            visit_person=np.ascontiguousarray(visit_person[order]),
            visit_location=np.ascontiguousarray(visit_location[order]),
            visit_subloc=np.ascontiguousarray(visit_subloc[order]),
            visit_start=np.ascontiguousarray(visit_start[order]),
            visit_end=np.ascontiguousarray(visit_end[order]),
            location_n_sublocs=(
                self.location_n_sublocs if location_n_sublocs is None else location_n_sublocs
            ),
            location_type=self.location_type if location_type is None else location_type,
            _person_ptr=None,
            _loc_order=None,
            _loc_ptr=None,
        )
        return g

    def bipartite_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Collapse visits to a weighted bipartite edge list.

        Returns ``(person_ids, location_ids, weights)`` where weight is
        the number of visits on that (person, location) pair — the edge
        weight handed to the graph partitioner.  Deduplication runs per
        person-aligned chunk (pairs never straddle chunks, and persons
        ascend across chunks, so concatenated per-chunk uniques are the
        exact global edge list) — the O(n_visits) temporaries of the
        one-shot ``np.unique`` never exist; only the O(n_edges) output
        does.
        """
        ids: list[np.ndarray] = []
        cnts: list[np.ndarray] = []
        for sl in self.iter_visit_chunks(align_persons=True):
            key = (
                self.visit_person[sl].astype(np.int64) * self.n_locations
                + self.visit_location[sl]
            )
            u, c = np.unique(key, return_counts=True)
            ids.append(u)
            cnts.append(c)
        uniq = np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)
        counts = np.concatenate(cnts) if cnts else np.empty(0, dtype=np.int64)
        return (
            (uniq // self.n_locations).astype(np.int64),
            (uniq % self.n_locations).astype(np.int64),
            counts.astype(np.int64),
        )
