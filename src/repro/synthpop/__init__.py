"""Synthetic person–location populations.

EpiSimdemics consumes bipartite *person–location* graphs whose edges are
timed visits (Section II-A of the paper).  The originals are proprietary
census-derived populations; this package generates synthetic equivalents
that match the statistics the paper reports:

* mean person degree ≈ 5.5 visits/day with σ ≈ 2.6,
* mean location degree ≈ 21.5 visits/day,
* heavy-tailed (power-law) location in-degree distribution,
* locations composed of sublocations (rooms/classrooms/floors) that
  carry the splittable parallelism exploited by ``splitLoc``.

Two generation paths share one graph type:

* :func:`generate_population` — the dense in-RAM generator (reference
  semantics; golden traces depend on it);
* :func:`generate_population_streamed` — block-streamed generation into
  a :class:`PopulationBacking` (RAM or ``np.memmap``), bounded memory
  at any population size.  See ``docs/scaling.md``.

See DESIGN.md §2 for why matching these distributions preserves the
paper's scaling phenomena.
"""

from repro.synthpop.graph import PersonLocationGraph, LocationType
from repro.synthpop.powerlaw import bounded_zipf_sample, pareto_attractiveness
from repro.synthpop.generator import PopulationConfig, generate_population
from repro.synthpop.states import (
    STATE_PRESETS,
    StatePreset,
    state_population,
    synthetic_state_sweep,
)
from repro.synthpop.io import save_population, load_population
from repro.synthpop.store import (
    PopulationBacking,
    load_population_dir,
    save_population_dir,
)
from repro.synthpop.stream import generate_population_streamed

__all__ = [
    "PersonLocationGraph",
    "LocationType",
    "PopulationConfig",
    "generate_population",
    "generate_population_streamed",
    "PopulationBacking",
    "save_population_dir",
    "load_population_dir",
    "STATE_PRESETS",
    "StatePreset",
    "state_population",
    "synthetic_state_sweep",
    "bounded_zipf_sample",
    "pareto_attractiveness",
    "save_population",
    "load_population",
]
