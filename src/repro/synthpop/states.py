"""State presets matching the paper's Table I, plus a 49-state sweep.

Table I of the paper lists visits / people / locations for the US and
seven states derived from a 2009 American Community Survey.  We embed
those counts verbatim and expose them at a configurable ``scale`` so a
laptop-sized reproduction keeps the *ratios* (visits/person ≈ 5.5,
visits/location ≈ 21.5) while shrinking absolute size.

Figure 5 plots one dot per contiguous state + DC (49 in total); only
seven appear in Table I, so :func:`synthetic_state_sweep` fills in the
remaining sizes from the real 2009 ACS state populations (public data,
embedded below) to reproduce the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synthpop.generator import PopulationConfig, generate_population
from repro.synthpop.graph import PersonLocationGraph
from repro.util.rng import RngFactory

__all__ = ["StatePreset", "STATE_PRESETS", "state_population", "synthetic_state_sweep",
           "STATE_POPULATIONS_2009"]


@dataclass(frozen=True)
class StatePreset:
    """A Table-I row: full-scale counts for one region.

    >>> round(STATE_PRESETS["IA"].visits_per_person, 1)
    5.5
    """

    name: str
    visits: int
    people: int
    locations: int

    @property
    def visits_per_person(self) -> float:
        return self.visits / self.people

    @property
    def visits_per_location(self) -> float:
        return self.visits / self.locations


#: Table I of the paper, verbatim.
STATE_PRESETS: dict[str, StatePreset] = {
    "US": StatePreset("US", 1_541_367_574, 280_397_680, 71_705_723),
    "CA": StatePreset("CA", 183_858_275, 33_588_339, 7_178_611),
    "NY": StatePreset("NY", 98_350_857, 17_910_467, 4_719_921),
    "MI": StatePreset("MI", 52_534_554, 9_541_140, 2_490_068),
    "NC": StatePreset("NC", 47_130_620, 8_541_564, 2_289_167),
    "IA": StatePreset("IA", 15_280_731, 2_766_716, 748_239),
    "AR": StatePreset("AR", 14_803_256, 2_685_280, 739_507),
    "WY": StatePreset("WY", 2_756_411, 499_514, 144_369),
}

#: 2009 population estimates for the 48 contiguous states + DC (thousands),
#: used to size the Figure-5 sweep.  Source: US Census Bureau 2009 estimates.
STATE_POPULATIONS_2009: dict[str, int] = {
    "AL": 4_709, "AZ": 6_596, "AR": 2_889, "CA": 36_962, "CO": 5_025,
    "CT": 3_518, "DE": 885, "DC": 600, "FL": 18_538, "GA": 9_829,
    "ID": 1_546, "IL": 12_910, "IN": 6_423, "IA": 3_008, "KS": 2_819,
    "KY": 4_314, "LA": 4_492, "ME": 1_318, "MD": 5_699, "MA": 6_594,
    "MI": 9_970, "MN": 5_266, "MS": 2_952, "MO": 5_988, "MT": 975,
    "NE": 1_797, "NV": 2_643, "NH": 1_325, "NJ": 8_708, "NM": 2_010,
    "NY": 19_541, "NC": 9_381, "ND": 647, "OH": 11_543, "OK": 3_687,
    "OR": 3_826, "PA": 12_605, "RI": 1_053, "SC": 4_561, "SD": 812,
    "TN": 6_296, "TX": 24_782, "UT": 2_785, "VT": 622, "VA": 7_883,
    "WA": 6_664, "WV": 1_820, "WI": 5_655, "WY": 544,
}


def state_population(
    state: str,
    scale: float = 1e-3,
    seed: int | RngFactory = 0,
    **config_overrides,
) -> PersonLocationGraph:
    """Generate a scaled synthetic population for a Table-I state.

    Parameters
    ----------
    state:
        One of the Table-I keys (``"US"``, ``"CA"``, ... ``"WY"``).
    scale:
        Fraction of the real population to synthesise.  The default
        1/1000 turns California into ~33.6K persons — large enough to
        exhibit the heavy tail, small enough for CI.
    seed:
        Root seed or factory; the state index is mixed in so different
        states get independent streams under the same root seed.
    config_overrides:
        Extra :class:`PopulationConfig` fields (e.g. a different
        ``attractiveness_beta``).

    >>> g = state_population("WY", scale=2e-4, seed=1)
    >>> g.name, g.n_persons
    ('WY@0.0002', 100)
    """
    if state not in STATE_PRESETS:
        raise KeyError(f"unknown state {state!r}; choose from {sorted(STATE_PRESETS)}")
    preset = STATE_PRESETS[state]
    n = max(50, int(round(preset.people * scale)))
    factory = seed if isinstance(seed, RngFactory) else RngFactory(seed)
    # Derive a state-specific sub-factory so CA@seed0 != NY@seed0.
    sub = RngFactory(factory.seed(RngFactory.SYNTHPOP, _state_key(state)))
    cfg = PopulationConfig(
        n_persons=n,
        mean_visits=preset.visits_per_person,
        location_degree_mean=preset.visits_per_location,
        **config_overrides,
    )
    return generate_population(cfg, sub, name=f"{state}@{scale:g}")


def synthetic_state_sweep(
    scale: float = 1e-4,
    seed: int = 0,
    **config_overrides,
) -> dict[str, PersonLocationGraph]:
    """Generate all 48 contiguous states + DC at the given scale.

    Used by the Figure-5 reproduction (one dot per state).  States in
    Table I use their exact Table-I ratios; the rest use the US-wide
    ratios with their 2009 census population.

    >>> sweep = synthetic_state_sweep(scale=2e-5, seed=0)
    >>> len(sweep), sweep["WY"].n_persons >= 50
    (49, True)
    """
    out: dict[str, PersonLocationGraph] = {}
    us = STATE_PRESETS["US"]
    factory = RngFactory(seed)
    for state, pop_thousands in STATE_POPULATIONS_2009.items():
        if state in STATE_PRESETS:
            out[state] = state_population(state, scale=scale, seed=factory, **config_overrides)
            continue
        n = max(50, int(round(pop_thousands * 1000 * scale)))
        sub = RngFactory(factory.seed(RngFactory.SYNTHPOP, _state_key(state)))
        cfg = PopulationConfig(
            n_persons=n,
            mean_visits=us.visits_per_person,
            location_degree_mean=us.visits_per_location,
            **config_overrides,
        )
        out[state] = generate_population(cfg, sub, name=f"{state}@{scale:g}")
    return out


def _state_key(state: str) -> int:
    """Stable small integer key for a state code."""
    return int.from_bytes(state.encode("ascii"), "little")
