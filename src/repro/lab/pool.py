"""Persistent warm worker pool executing RunSpecs (the lab's engine).

Reuses the :mod:`repro.smp` infrastructure pattern — forked worker
processes, one duplex pipe per worker, struct-packed frames
(:mod:`repro.lab.protocol`), a single
:func:`multiprocessing.connection.wait` park on the driver side with
liveness re-checks — but where an SMP worker owns a *slice of one run*,
a lab worker owns *whole runs*: it receives a serialised
:class:`~repro.spec.RunSpec`, builds its artifacts through a
process-local :class:`~repro.lab.cache.ArtifactCache` (backed by the
shared on-disk cache directory, so one worker's build is every
worker's hit), executes the run, and streams the result frame back.

Workers stay **warm** across submissions and across whole sweeps: the
fork happens once per pool, the in-memory artifact memos survive from
task to task, and consecutive :meth:`WorkerPool.map` calls reuse the
same processes — exactly the epyc/"run at scale" execution model the
paper's figure families need.

Determinism: results are keyed by task id and re-ordered to submission
order on collection, and the runs themselves are bit-exact regardless
of which worker executes them (keyed RNG), so the pool size can never
leak into sweep output — ``tests/lab/test_sweep_determinism.py`` pins
store bytes across pool sizes 1, 2 and 4.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path

from repro import observe
from repro.lab import protocol
from repro.lab.cache import ArtifactCache
from repro.spec import RunSpec, execute

__all__ = ["WorkerPool", "LabWorkerError", "run_specs"]


class LabWorkerError(RuntimeError):
    """A pool worker died or a task raised; the sweep aborted."""


@dataclass
class _Worker:
    rank: int
    process: object
    conn: object  # driver's end of the pipe
    busy_task: int | None = None


def _worker_main(rank: int, conn, cache_dir) -> None:
    """Worker body: loop over task frames until the stop frame.

    A task failure is *reported* (error frame), not fatal — the worker
    stays alive for the next task; only a driver disconnect ends it.
    """
    cache = ArtifactCache(root=cache_dir)
    while True:
        try:
            buf = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if protocol.opcode(buf) == protocol.OP_STOP:
            break
        task_id, spec_json = protocol.decode_task(buf)
        try:
            spec = RunSpec.from_json(spec_json)
            result = execute(spec, cache=cache)
            frame = protocol.encode_result(
                protocol.TaskResult(
                    task_id=task_id,
                    new_infections=result.new_infections,
                    prevalence=result.prevalence,
                    total_infections=result.total_infections,
                    final_histogram=result.final_histogram,
                    wall_seconds=result.wall_seconds,
                    builds=result.builds,
                    backpressure=result.backpressure_events,
                )
            )
        except Exception as exc:
            frame = protocol.encode_error(
                task_id, repr(exc), traceback.format_exc()
            )
        try:
            conn.send_bytes(frame)
        except (BrokenPipeError, OSError):
            break


class WorkerPool:
    """``n_workers`` warm processes executing RunSpecs.

    ``n_workers=0`` is the inline mode: tasks execute in the calling
    process against a driver-local cache — no forks, and every cache
    event lands in the *caller's* observe spans (the mode the cache
    tests assert through).

    Use as a context manager, or call :meth:`close` explicitly::

        with WorkerPool(2, cache_dir=".repro-cache") as pool:
            results = pool.map(specs)      # submission order preserved
            more    = pool.map(more_specs) # same warm processes
    """

    def __init__(self, n_workers: int, cache_dir: str | Path | None = None):
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.n_workers = n_workers
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        #: driver-side cache; in inline mode the only cache there is
        self.cache = ArtifactCache(root=self.cache_dir)
        self._workers: list[_Worker] = []
        self._next_task = 0
        self._closed = False
        if n_workers:
            mp = multiprocessing.get_context("fork")
            for rank in range(n_workers):
                parent, child = mp.Pipe()
                p = mp.Process(
                    target=_worker_main, args=(rank, child, self.cache_dir),
                    daemon=True,
                )
                p.start()
                child.close()
                self._workers.append(_Worker(rank=rank, process=p, conn=parent))

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def worker_pids(self) -> list[int]:
        """Live worker process ids (tests pin warmness across batches)."""
        return [w.process.pid for w in self._workers]

    # ------------------------------------------------------------------
    def map(self, specs, progress=None) -> list[protocol.TaskResult]:
        """Execute every spec; results return in submission order.

        Tasks are dispatched one per idle worker and backfilled as
        results arrive (no static chunking — a slow grid point cannot
        starve the pool).  ``progress`` receives ``(done, total)``
        after each completion.
        """
        specs = list(specs)
        if self._closed:
            raise RuntimeError("pool is closed")
        with observe.span(
            "lab.pool.map", tasks=len(specs), workers=self.n_workers
        ):
            if self.n_workers == 0:
                return self._map_inline(specs, progress)
            return self._map_pool(specs, progress)

    def _map_inline(self, specs, progress) -> list[protocol.TaskResult]:
        out = []
        for i, spec in enumerate(specs):
            result = execute(spec, cache=self.cache)
            out.append(
                protocol.TaskResult(
                    task_id=self._next_task + i,
                    new_infections=result.new_infections,
                    prevalence=result.prevalence,
                    total_infections=result.total_infections,
                    final_histogram=result.final_histogram,
                    wall_seconds=result.wall_seconds,
                    builds=result.builds,
                    backpressure=result.backpressure_events,
                )
            )
            if progress is not None:
                progress(i + 1, len(specs))
        self._next_task += len(specs)
        return out

    def _map_pool(self, specs, progress) -> list[protocol.TaskResult]:
        base = self._next_task
        self._next_task += len(specs)
        payloads = {
            base + i: spec.to_json() for i, spec in enumerate(specs)
        }
        queue = list(payloads)  # submission order
        results: dict[int, protocol.TaskResult] = {}
        idle = list(self._workers)
        busy: dict[int, _Worker] = {}

        def dispatch() -> None:
            while queue and idle:
                task_id = queue.pop(0)
                worker = idle.pop(0)
                with observe.span("lab.pool.submit", task=task_id, worker=worker.rank):
                    worker.conn.send_bytes(
                        protocol.encode_task(task_id, payloads[task_id])
                    )
                worker.busy_task = task_id
                busy[task_id] = worker

        dispatch()
        while len(results) < len(specs):
            ready = _conn_wait([w.conn for w in busy.values()], timeout=0.1)
            if not ready:
                self._check_liveness(busy)
                continue
            for conn in ready:
                worker = next(w for w in busy.values() if w.conn is conn)
                try:
                    buf = conn.recv_bytes()
                except EOFError:
                    self._abort(worker, "died mid-task (EOF on pipe)")
                with observe.span("lab.pool.collect", worker=worker.rank):
                    if protocol.opcode(buf) == protocol.OP_ERROR:
                        task_id, exc, tb = protocol.decode_error(buf)
                        self.close()
                        raise LabWorkerError(
                            f"task {task_id} failed on worker "
                            f"{worker.rank}: {exc}\n{tb}"
                        )
                    r = protocol.decode_result(buf)
                results[r.task_id] = r
                del busy[r.task_id]
                worker.busy_task = None
                idle.append(worker)
                if progress is not None:
                    progress(len(results), len(specs))
            dispatch()
        return [results[base + i] for i in range(len(specs))]

    def _check_liveness(self, busy) -> None:
        for worker in list(busy.values()):
            if not worker.process.is_alive():
                self._abort(worker, f"died (exit code {worker.process.exitcode})")

    def _abort(self, worker: _Worker, why: str):
        task = worker.busy_task
        self.close()
        raise LabWorkerError(f"worker {worker.rank} {why} on task {task}")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        stop = protocol.encode_stop()
        for w in self._workers:
            try:
                w.conn.send_bytes(stop)
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            try:
                w.conn.close()
            except OSError:
                pass
            w.process.join(timeout=5.0)
            if w.process.is_alive():  # pragma: no cover - last resort
                w.process.terminate()
                w.process.join(timeout=5.0)


def run_specs(
    specs,
    workers: int = 0,
    cache_dir: str | Path | None = None,
    progress=None,
) -> tuple[list[protocol.TaskResult], "ArtifactCache", float]:
    """One-shot convenience: pool up, map, tear down.

    Returns ``(results, driver_cache, wall_seconds)``; per-worker cache
    activity is visible through each result's ``builds`` count.
    """
    t0 = time.perf_counter()
    with WorkerPool(workers, cache_dir=cache_dir) as pool:
        results = pool.map(specs, progress=progress)
        return results, pool.cache, time.perf_counter() - t0
