"""repro.lab — sweep/replication orchestration over the RunSpec layer.

The "experiment lab" ROADMAP item 3 asked for: an epyc-style engine
that expands parameter grids × N seeded replications into
:class:`~repro.spec.RunSpec` tasks, executes them asynchronously over a
persistent warm worker pool (forked processes + struct-packed pipe
frames, reusing the :mod:`repro.smp` worker/pipe/protocol
infrastructure patterns), with

* a **content-addressed artifact cache**
  (:class:`~repro.lab.cache.ArtifactCache`): populations and
  partitions keyed by the BLAKE2b hash of their generating sub-spec —
  the same graph is never built twice, within or across sweeps;
* a **structured append-only result store**
  (:class:`~repro.lab.store.ResultStore`): canonical-JSONL records in
  task order plus a manifest, byte-identical at any pool size;
* full :mod:`repro.observe` coverage — ``lab.sweep`` / ``lab.expand``
  / ``lab.pool.submit`` / ``lab.pop_build`` / ``lab.collect`` spans
  make a sweep profileable end to end.

Driven from the shell by ``repro sweep`` / ``repro results``; measured
by ``benchmarks/bench_sweep.py`` (``BENCH_sweep.json``).

Usage::

    from repro.lab import SweepConfig, run_sweep
    from repro.spec import PopulationSpec, RunSpec

    cfg = SweepConfig(
        base=RunSpec(population=PopulationSpec(n_persons=2000), n_days=30),
        grid={"transmissibility": [1e-4, 2e-4, 4e-4]},
        replications=10,
    )
    report = run_sweep(cfg, workers=4, store_dir="sweeps/r0",
                       cache_dir=".repro-cache")
    print(report.format())
"""

from repro.lab.cache import ArtifactCache, CacheStats
from repro.lab.pool import LabWorkerError, WorkerPool, run_specs
from repro.lab.store import ResultStore
from repro.lab.sweep import (
    ReplayResult,
    SweepConfig,
    SweepReport,
    SweepTask,
    expand,
    replay,
    run_sweep,
    spec_with,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "WorkerPool",
    "LabWorkerError",
    "run_specs",
    "ResultStore",
    "SweepConfig",
    "SweepTask",
    "SweepReport",
    "ReplayResult",
    "expand",
    "spec_with",
    "run_sweep",
    "replay",
]
