"""Fixed-layout wire protocol for the lab worker pool (no pickle).

Same conventions as :mod:`repro.smp.protocol`: every frame is a
struct-packed header followed by raw array bytes or UTF-8 payloads,
crossing the pipes via ``Connection.send_bytes``/``recv_bytes`` — never
a pickled object — and every frame size is an explicit function of its
counts (:func:`result_nbytes`), so tests can hold the pool's barrier
traffic to a byte budget.

* **downlink** (driver → worker): a task frame — 24-byte header
  ``(opcode, task_id, spec_nbytes)`` plus the canonical-JSON bytes of
  the :class:`~repro.spec.RunSpec` (text, not pickle: the worker
  rebuilds the spec through the same :meth:`RunSpec.from_json` any
  user would, so a sweep task is exactly a CLI run); and a fixed
  24-byte stop frame.
* **uplink** (worker → driver): a result frame — 64-byte header
  ``(opcode, task_id, n_days, total_infections, builds, hist_nbytes,
  wall_seconds, backpressure)`` followed by the raw ``int64`` bytes of
  the per-day new-infection counts, the raw ``float64`` bytes of the
  per-day prevalence series, and the sorted-key JSON of the final
  state histogram; or an error frame (opcode + task id + two length-
  prefixed UTF-8 strings).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "OP_TASK",
    "OP_STOP",
    "OP_RESULT",
    "OP_ERROR",
    "TASK_HEADER_NBYTES",
    "RESULT_HEADER_NBYTES",
    "TaskResult",
    "encode_task",
    "decode_task",
    "encode_stop",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "opcode",
    "result_nbytes",
]

# Disjoint from the smp.protocol opcode space so a crossed wire fails
# loudly instead of decoding garbage.
OP_TASK = 16
OP_STOP = 17
OP_RESULT = 18
OP_ERROR = 19

_TASK = struct.Struct("<qqq")  # opcode, task_id, spec_nbytes
TASK_HEADER_NBYTES = _TASK.size  # 24

#: opcode, task_id, n_days, total_infections, builds, hist_nbytes,
#: wall_seconds, backpressure
_RESULT = struct.Struct("<qqqqqqdq")
RESULT_HEADER_NBYTES = _RESULT.size  # 64

_ERROR = struct.Struct("<qqqq")  # opcode, task_id, len_a, len_b

_WORD = 8

_STOP_BYTES = _TASK.pack(OP_STOP, 0, 0)


@dataclass
class TaskResult:
    """One worker's decoded result frame."""

    task_id: int
    new_infections: np.ndarray
    prevalence: np.ndarray
    total_infections: int
    final_histogram: dict
    wall_seconds: float
    builds: int
    backpressure: int


def encode_task(task_id: int, spec_json: str) -> bytes:
    """Pack one task frame (header + canonical-JSON spec bytes).

    >>> tid, spec = decode_task(encode_task(3, '{"n_days":4}'))
    >>> (tid, spec)
    (3, '{"n_days":4}')
    """
    payload = spec_json.encode("utf-8")
    return _TASK.pack(OP_TASK, task_id, len(payload)) + payload


def decode_task(buf: bytes) -> tuple[int, str]:
    """Decode a task frame into ``(task_id, spec_json)``."""
    op, task_id, n = _TASK.unpack_from(buf)
    if op != OP_TASK:
        raise ValueError(f"expected task opcode {OP_TASK}, got {op}")
    payload = buf[TASK_HEADER_NBYTES : TASK_HEADER_NBYTES + n]
    return task_id, payload.decode("utf-8")


def encode_stop() -> bytes:
    """The pool's shutdown frame (fixed task-header layout).

    >>> opcode(encode_stop()) == OP_STOP
    True
    """
    return _STOP_BYTES


def result_nbytes(n_days: int, hist_nbytes: int) -> int:
    """Exact uplink size for the given counts — the wire-budget formula.

    >>> result_nbytes(0, 0)
    64
    >>> result_nbytes(4, 10)
    138
    """
    return RESULT_HEADER_NBYTES + 2 * _WORD * n_days + hist_nbytes


def encode_result(result: TaskResult) -> bytes:
    """Pack one result frame (header + raw array bytes + histogram JSON)."""
    new = np.ascontiguousarray(result.new_infections, dtype=np.int64)
    prev = np.ascontiguousarray(result.prevalence, dtype=np.float64)
    if new.size != prev.size:
        raise ValueError("new_infections and prevalence must align per day")
    hist = json.dumps(
        result.final_histogram, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    head = _RESULT.pack(
        OP_RESULT, result.task_id, new.size, result.total_infections,
        result.builds, len(hist), result.wall_seconds, result.backpressure,
    )
    return b"".join((head, new.tobytes(), prev.tobytes(), hist))


def decode_result(buf: bytes) -> TaskResult:
    """Decode one result frame; arrays are zero-copy views of ``buf``."""
    (op, task_id, n_days, total, builds, hist_n, wall, backpressure
     ) = _RESULT.unpack_from(buf)
    if op != OP_RESULT:
        raise ValueError(f"expected result opcode {OP_RESULT}, got {op}")
    offset = RESULT_HEADER_NBYTES
    new = np.frombuffer(buf, dtype=np.int64, count=n_days, offset=offset)
    offset += n_days * _WORD
    prev = np.frombuffer(buf, dtype=np.float64, count=n_days, offset=offset)
    offset += n_days * _WORD
    hist = json.loads(buf[offset : offset + hist_n].decode("utf-8"))
    return TaskResult(
        task_id=task_id, new_infections=new, prevalence=prev,
        total_infections=total, final_histogram=hist,
        wall_seconds=wall, builds=builds, backpressure=backpressure,
    )


def encode_error(task_id: int, exc_repr: str, traceback_text: str) -> bytes:
    """Pack a task failure (opcode + task id + two UTF-8 strings)."""
    a = exc_repr.encode("utf-8", errors="replace")
    b = traceback_text.encode("utf-8", errors="replace")
    return _ERROR.pack(OP_ERROR, task_id, len(a), len(b)) + a + b


def decode_error(buf: bytes) -> tuple[int, str, str]:
    """Decode a task failure into ``(task_id, exc_repr, traceback)``."""
    op, task_id, na, nb = _ERROR.unpack_from(buf)
    if op != OP_ERROR:
        raise ValueError(f"expected error opcode {OP_ERROR}, got {op}")
    start = _ERROR.size
    a = buf[start : start + na].decode("utf-8", errors="replace")
    b = buf[start + na : start + na + nb].decode("utf-8", errors="replace")
    return task_id, a, b


def opcode(buf: bytes) -> int:
    """Peek a frame's opcode without decoding the rest."""
    return struct.unpack_from("<q", buf)[0]
