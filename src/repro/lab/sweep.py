"""Sweep engine: parameter grids × seeded replications → RunSpecs.

The paper's results are families of runs (strong-scaling series,
ablations, population sizes), and epidemic science needs many
stochastic replications per parameter point.  This module turns a
declarative :class:`SweepConfig` — a template :class:`~repro.spec.RunSpec`,
a parameter grid, a replication count and one master seed — into the
explicit task list, executes it over the warm
:class:`~repro.lab.pool.WorkerPool`, and persists a
:class:`~repro.lab.store.ResultStore`.

Determinism contract (pinned by ``tests/lab/test_sweep_determinism.py``):

* grid expansion is a pure function of the config — grid keys are
  processed in sorted order, values in listed order, so the task list
  and every derived seed are reproducible;
* replicate seeds come from
  :func:`repro.util.rng.derive_seed(master_seed, point_index, replicate)`
  — independent of pool size, worker assignment and completion order;
* the store writes records in task order with no wall-clock fields, so
  ``results.jsonl`` is byte-identical at any pool size.

Grid keys are dotted paths into the spec (``"transmissibility"``,
``"population.n_persons"``, ``"runtime.workers"``, …); replicates vary
only the *run* seed, never the population seed, so all replicates of a
grid point share one cached population.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import observe
from repro.lab.pool import WorkerPool
from repro.lab.store import ResultStore
from repro.spec import RunSpec, execute
from repro.util.rng import derive_seed

__all__ = [
    "SweepConfig",
    "SweepTask",
    "SweepReport",
    "ReplayResult",
    "spec_with",
    "expand",
    "run_sweep",
    "replay",
]


def spec_with(spec: RunSpec, path: str, value) -> RunSpec:
    """A copy of ``spec`` with the dotted-path field replaced.

    >>> base = RunSpec.from_dict({"population": {"n_persons": 100}})
    >>> spec_with(base, "transmissibility", 1e-3).transmissibility
    0.001
    >>> spec_with(base, "population.n_persons", 50).population.n_persons
    50
    """
    head, _, rest = path.partition(".")
    if not hasattr(spec, head):
        raise ValueError(f"RunSpec has no field {head!r} (path {path!r})")
    if not rest:
        return dataclasses.replace(spec, **{head: value})
    sub = getattr(spec, head)
    if sub is None:
        raise ValueError(f"cannot set {path!r}: {head} is unset on the template")
    return dataclasses.replace(
        spec, **{head: dataclasses.replace(sub, **{rest: value})}
    )


@dataclass(frozen=True)
class SweepConfig:
    """A declarative sweep: template × grid × replications × master seed."""

    base: RunSpec
    #: dotted spec path -> list of values to sweep
    grid: dict = field(default_factory=dict)
    replications: int = 1
    master_seed: int = 0
    name: str = "sweep"

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        for path, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not len(values):
                raise ValueError(f"grid[{path!r}] must be a non-empty list")

    @property
    def n_points(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    @property
    def n_runs(self) -> int:
        return self.n_points * self.replications

    def canonical(self) -> dict:
        return {
            "base": self.base.canonical(),
            "grid": {k: list(v) for k, v in sorted(self.grid.items())},
            "replications": self.replications,
            "master_seed": self.master_seed,
            "name": self.name,
        }


@dataclass(frozen=True)
class SweepTask:
    """One expanded run: its position, grid point, replicate and spec."""

    index: int
    point: dict
    replicate: int
    spec: RunSpec


def expand(config: SweepConfig) -> list[SweepTask]:
    """The explicit task list: grid points (sorted-key order) ×
    replications, each with its derived seed already applied.

    >>> cfg = SweepConfig(
    ...     base=RunSpec.from_dict({"population": {"n_persons": 100}}),
    ...     grid={"transmissibility": [1e-4, 2e-4]}, replications=2)
    >>> tasks = expand(cfg)
    >>> [(t.index, t.point["transmissibility"], t.replicate) for t in tasks]
    [(0, 0.0001, 0), (1, 0.0001, 1), (2, 0.0002, 0), (3, 0.0002, 1)]
    >>> len({t.spec.seed for t in tasks})
    4
    """
    with observe.span(
        "lab.expand", points=config.n_points, replications=config.replications
    ):
        paths = sorted(config.grid)
        tasks: list[SweepTask] = []
        for point_index, combo in enumerate(
            itertools.product(*(config.grid[p] for p in paths))
        ):
            point = dict(zip(paths, combo))
            spec = config.base
            for path, value in point.items():
                spec = spec_with(spec, path, value)
            for replicate in range(config.replications):
                seeded = spec_with(
                    spec, "seed",
                    derive_seed(config.master_seed, point_index, replicate),
                )
                tasks.append(
                    SweepTask(
                        index=len(tasks), point=point,
                        replicate=replicate, spec=seeded,
                    )
                )
        return tasks


@dataclass
class SweepReport:
    """What one sweep did: scale, throughput and cache behaviour."""

    name: str
    n_points: int
    replications: int
    n_runs: int
    workers: int
    wall_seconds: float
    #: artifact builds that actually ran (driver + workers)
    builds: int
    #: artifact requests that were served from cache
    cache_hit_rate: float
    store_path: str | None = None
    task_wall_seconds: float = 0.0

    @property
    def runs_per_min(self) -> float:
        return self.n_runs / self.wall_seconds * 60.0 if self.wall_seconds else 0.0

    def format(self) -> str:
        lines = [
            f"sweep {self.name!r}: {self.n_runs} runs "
            f"({self.n_points} grid points x {self.replications} replications) "
            f"on {self.workers} worker(s)",
            f"  wall time      {self.wall_seconds:.3f}s "
            f"({self.runs_per_min:.1f} runs/min)",
            f"  artifact cache {self.builds} build(s), "
            f"hit rate {self.cache_hit_rate:.0%}",
        ]
        if self.store_path:
            lines.append(f"  result store   {self.store_path}")
        return "\n".join(lines)


def _make_record(task: SweepTask, result) -> dict:
    """The deterministic per-run store line (no wall-clock fields).

    Embeds the full generating spec so :func:`replay` can re-execute
    the run without the original config.
    """
    return {
        "index": task.index,
        "point": task.point,
        "replicate": task.replicate,
        "seed": task.spec.seed,
        "spec": task.spec.canonical(),
        "spec_hash": task.spec.content_hash(),
        "new_infections": [int(x) for x in result.new_infections],
        "prevalence": [float(p) for p in result.prevalence],
        "total_infections": int(result.total_infections),
        "final_histogram": dict(sorted(result.final_histogram.items())),
    }


def run_sweep(
    config: SweepConfig,
    workers: int = 2,
    store_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    pool: WorkerPool | None = None,
    progress=None,
) -> SweepReport:
    """Expand, execute and persist one sweep.

    ``pool`` reuses an existing warm :class:`WorkerPool` (its workers
    and caches survive across sweeps); otherwise a pool of ``workers``
    is created for this sweep.  ``store_dir=None`` skips persistence
    (the report still carries throughput and cache stats).
    """
    t0 = time.perf_counter()
    with observe.span("lab.sweep", sweep=config.name, runs=config.n_runs):
        tasks = expand(config)
        own_pool = pool is None
        if own_pool:
            pool = WorkerPool(workers, cache_dir=cache_dir)
        try:
            results = pool.map(
                [t.spec for t in tasks],
                progress=(lambda done, total: progress(f"{done}/{total} runs"))
                if progress else None,
            )
        finally:
            if own_pool:
                pool.close()
        with observe.span("lab.collect", runs=len(results)):
            records = [_make_record(t, r) for t, r in zip(tasks, results)]
            builds = sum(r.builds for r in results)
            # Every task demands one population artifact, plus one
            # partition artifact on the distributed backends.
            demand = sum(
                1 + (1 if t.spec.runtime.backend != "seq" else 0) for t in tasks
            )
            wall = time.perf_counter() - t0
            report = SweepReport(
                name=config.name,
                n_points=config.n_points,
                replications=config.replications,
                n_runs=config.n_runs,
                workers=pool.n_workers,
                wall_seconds=wall,
                builds=builds,
                cache_hit_rate=1.0 - builds / demand if demand else 0.0,
                task_wall_seconds=sum(r.wall_seconds for r in results),
            )
            if store_dir is not None:
                store = ResultStore(store_dir)
                store.append_records(records)
                store.write_manifest(
                    {
                        "name": config.name,
                        "grid": {k: list(v) for k, v in sorted(config.grid.items())},
                        "replications": config.replications,
                        "master_seed": config.master_seed,
                        "n_points": config.n_points,
                        "n_runs": config.n_runs,
                        "template_spec": config.base.canonical(),
                        "template_hash": config.base.content_hash(),
                        "workers": pool.n_workers,
                        "wall_seconds": round(wall, 6),
                        "runs_per_min": round(report.runs_per_min, 3),
                        "cache": {
                            "builds": builds,
                            "hit_rate": round(report.cache_hit_rate, 4),
                        },
                    }
                )
                report.store_path = str(store.root)
    return report


@dataclass
class ReplayResult:
    """Outcome of re-executing one stored run."""

    index: int
    match: bool
    diffs: list[str] = field(default_factory=list)

    def format(self) -> str:
        if self.match:
            return f"replay of record {self.index}: trajectory reproduced exactly"
        return f"replay of record {self.index}: DIVERGED\n  " + "\n  ".join(self.diffs)


def replay(store: ResultStore | str | Path, index: int) -> ReplayResult:
    """Re-execute a stored run from its embedded spec and diff the
    trajectory against the stored record — the reproducibility check
    ``repro results --replay`` exposes.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    record = store.record(index)
    spec = RunSpec.from_dict(record["spec"])
    result = execute(spec)
    diffs: list[str] = []
    fresh = _make_record(
        SweepTask(
            index=record["index"], point=record.get("point", {}),
            replicate=record.get("replicate", 0), spec=spec,
        ),
        result,
    )
    for key in ("new_infections", "prevalence", "total_infections",
                "final_histogram", "spec_hash"):
        if fresh[key] != record[key]:
            diffs.append(f"{key}: stored {record[key]!r} != replayed {fresh[key]!r}")
    return ReplayResult(index=index, match=not diffs, diffs=diffs)
