"""Structured, append-only result store: JSONL records + a manifest.

A sweep writes one directory::

    <store>/results.jsonl    one canonical-JSON line per run, in task
                             order — the *deterministic* artifact (no
                             timings, sorted keys), byte-identical for
                             the same grid + master seed at any pool
                             size (pinned by the determinism tests)
    <store>/manifest.json    sweep metadata: name, grid, replications,
                             master seed, template spec + hash, counts,
                             pool size, wall time, cache stats — the
                             *descriptive* artifact (may carry timings)

``results.jsonl`` is append-only by construction: records are only
ever added (:meth:`ResultStore.append_records` re-opens in ``"a"``
mode), each line is self-contained, and a reader can stream the file
without the manifest.  Each record carries the full generating
:class:`~repro.spec.RunSpec` hash plus the grid-point parameters and
replicate index, so any stored trajectory can be replayed exactly
(:func:`repro.lab.sweep.replay`).

>>> import tempfile
>>> store = ResultStore(tempfile.mkdtemp())
>>> store.append_records([{"index": 0, "point": {"x": 1}, "total_infections": 3}])
>>> store.records()[0]["point"]
{'x': 1}
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["ResultStore"]

_RESULTS = "results.jsonl"
_MANIFEST = "manifest.json"


def _canonical_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """One sweep's result directory (created on first write)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def results_path(self) -> Path:
        return self.root / _RESULTS

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST

    # -- writing --------------------------------------------------------
    def append_records(self, records) -> int:
        """Append records (dicts) as canonical JSON lines; returns the
        number written.  Callers pass records in task order — the store
        never reorders."""
        self.root.mkdir(parents=True, exist_ok=True)
        n = 0
        with open(self.results_path, "a") as fh:
            for record in records:
                fh.write(_canonical_line(record) + "\n")
                n += 1
        return n

    def write_manifest(self, manifest: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n"
        )

    # -- reading --------------------------------------------------------
    def exists(self) -> bool:
        return self.results_path.exists()

    def manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {}
        return json.loads(self.manifest_path.read_text())

    def records(self) -> list[dict]:
        """Every stored record, in file (= task) order."""
        if not self.exists():
            return []
        with open(self.results_path) as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def record(self, index: int) -> dict:
        """The record with ``index`` (its task position in the sweep)."""
        for r in self.records():
            if r.get("index") == index:
                return r
        raise KeyError(f"no record with index {index} in {self.root}")

    def filter(self, **point_params) -> list[dict]:
        """Records whose grid point matches every given parameter.

        >>> import tempfile
        >>> s = ResultStore(tempfile.mkdtemp())
        >>> s.append_records([
        ...     {"index": 0, "point": {"x": 1}}, {"index": 1, "point": {"x": 2}},
        ... ])
        2
        >>> [r["index"] for r in s.filter(x=2)]
        [1]
        """
        out = []
        for r in self.records():
            point = r.get("point", {})
            if all(point.get(k) == v for k, v in point_params.items()):
                out.append(r)
        return out

    # -- aggregation ----------------------------------------------------
    def summary(self) -> list[dict]:
        """Per-grid-point aggregate over replicates: run counts and
        attack/total-infection statistics (pure python, no numpy — the
        store must be queryable anywhere)."""
        groups: dict[str, dict] = {}
        for r in self.records():
            key = _canonical_line(r.get("point", {}))
            g = groups.setdefault(
                key, {"point": r.get("point", {}), "n": 0, "totals": []}
            )
            g["n"] += 1
            if "total_infections" in r:
                g["totals"].append(r["total_infections"])
        out = []
        for g in groups.values():
            totals = g.pop("totals")
            if totals:
                mean = sum(totals) / len(totals)
                g["total_infections"] = {
                    "mean": round(mean, 3),
                    "min": min(totals),
                    "max": max(totals),
                }
            out.append(g)
        return out

    def format_summary(self) -> str:
        """Human-readable per-point table for ``repro results``."""
        m = self.manifest()
        lines = []
        if m:
            lines.append(
                f"sweep {m.get('name', '?')!r}: {m.get('n_runs', '?')} runs = "
                f"{m.get('n_points', '?')} grid points x "
                f"{m.get('replications', '?')} replications "
                f"(master seed {m.get('master_seed', '?')})"
            )
        for g in self.summary():
            point = ", ".join(f"{k}={v}" for k, v in g["point"].items()) or "-"
            stats = g.get("total_infections")
            detail = (
                f"total infections mean {stats['mean']} "
                f"[{stats['min']}, {stats['max']}]" if stats else ""
            )
            lines.append(f"  {point:<44} n={g['n']:<3} {detail}")
        return "\n".join(lines) if lines else f"(empty store at {self.root})"
