"""Content-addressed artifact cache: the same graph is never built twice.

Population and partition construction dominate small-run sweeps (a
2 000-person population takes ~10× longer to synthesise than to
simulate for a few days), and a sweep re-uses the same population for
every grid point that doesn't vary it — and for every one of its N
stochastic replications.  The cache keys each artifact by the BLAKE2b
:meth:`~repro.spec.PopulationSpec.content_hash` of the *generating
sub-spec*, so:

* identical sub-specs hit (within a sweep, across sweeps, across
  processes — artifacts persist on disk);
* any mutation of the sub-spec (a different seed, Zipf exponent,
  splitLoc threshold …) changes the key — false hits are impossible
  short of a BLAKE2b collision.

Layout under the cache root::

    pop/<pop-hash>.npz           saved population (synthpop .npz format)
    pop/<pop-hash>.d/            memmap population (directory of .npy
                                 columns; loads back as read-only
                                 memmaps — constant RAM at any size)
    part/<part-hash>.npz         person/location part arrays + metadata
    part/<part-hash>.graph       pop-hash of the post-splitLoc graph
                                 (only when the partition spec splits)

Streamed populations built on a memmap backing are stored in the
directory format — an owned temp backing is *renamed* into the cache
(zero-copy persist), and later loads memmap the columns instead of
inflating gigabytes into RAM.

Writes are build-to-temp + :func:`os.replace`, so concurrent builders
(the lab worker pool makes this routine) race benignly: both build,
both succeed, one rename wins, the artifact is never observed
half-written.

Every hit and build is visible to :mod:`repro.observe` — spans named
``lab.pop_build`` / ``lab.part_build`` wrap real construction and
``lab.pop_hit`` / ``lab.part_hit`` counters mark hits, which is exactly
what the cache tests assert on (a second identical sweep records zero
build spans).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import observe
from repro.spec import PartitionSpec, PopulationSpec

__all__ = ["ArtifactCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/build counters, split by artifact family."""

    pop_hits: int = 0
    pop_builds: int = 0
    part_hits: int = 0
    part_builds: int = 0

    @property
    def hits(self) -> int:
        return self.pop_hits + self.part_hits

    @property
    def builds(self) -> int:
        return self.pop_builds + self.part_builds

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.builds
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.pop_hits += other.pop_hits
        self.pop_builds += other.pop_builds
        self.part_hits += other.part_hits
        self.part_builds += other.part_builds


@dataclass
class ArtifactCache:
    """Memoises population and partition builds by sub-spec hash.

    ``root=None`` keeps everything in memory (single-process sweeps,
    tests); with a directory, artifacts persist and are shared across
    worker processes and across sweeps.

    >>> cache = ArtifactCache()
    >>> pspec = PopulationSpec(n_persons=80)
    >>> g1 = cache.population(pspec)
    >>> g2 = cache.population(pspec)   # memo hit: same object
    >>> g1 is g2, cache.stats.pop_builds, cache.stats.pop_hits
    (True, 1, 1)
    """

    root: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _pops: dict = field(default_factory=dict, repr=False)
    _parts: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.root is not None:
            self.root = Path(self.root)

    # -- populations ----------------------------------------------------
    def population(self, spec: PopulationSpec):
        """The graph for ``spec``, built at most once per key."""
        if not spec.cacheable:
            # File-backed graphs are already artifacts; pass through.
            return spec.build()
        key = spec.content_hash()
        graph = self._pops.get(key)
        if graph is not None:
            self.stats.pop_hits += 1
            observe.counter("lab.pop_hit")
            return graph
        graph = self._load_pop(key)
        if graph is not None:
            self.stats.pop_hits += 1
            observe.counter("lab.pop_hit")
        else:
            with observe.span("lab.pop_build", key=key, kind=spec.kind):
                graph = spec.build()
            self.stats.pop_builds += 1
            self._store_pop(key, graph)
        self._pops[key] = graph
        return graph

    def _pop_path(self, key: str) -> Path | None:
        return None if self.root is None else self.root / "pop" / f"{key}.npz"

    def _pop_dir_path(self, key: str) -> Path | None:
        return None if self.root is None else self.root / "pop" / f"{key}.d"

    def _load_pop(self, key: str):
        dpath = self._pop_dir_path(key)
        if dpath is not None and dpath.is_dir():
            from repro.synthpop import load_population_dir

            return load_population_dir(dpath, mmap=True)
        path = self._pop_path(key)
        if path is None or not path.exists():
            return None
        from repro.synthpop import load_population

        return load_population(path)

    def _store_pop(self, key: str, graph) -> None:
        path = self._pop_path(key)
        if path is None:
            return
        backing = getattr(graph, "backing", None)
        if backing is not None and backing.kind == "memmap":
            dpath = self._pop_dir_path(key)
            if dpath.is_dir():
                return
            if backing.owned:
                # Freshly streamed into a temp dir: rename it into the
                # cache — no byte is copied, and the open memmaps stay
                # valid through the move.
                from repro.synthpop.store import write_population_header

                write_population_header(graph, backing.dir)
                backing.persist(dpath)
            else:
                from repro.synthpop import save_population_dir

                save_population_dir(graph, dpath)
            return
        from repro.synthpop import save_population

        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".{os.getpid()}.tmp.npz")
        save_population(graph, tmp)
        os.replace(tmp, path)  # atomic: concurrent builders all win

    # -- partitions -----------------------------------------------------
    def partition(self, pop_spec: PopulationSpec, part_spec: PartitionSpec, graph):
        """``(graph, partition)`` for ``part_spec`` over ``pop_spec``'s
        graph — the returned graph differs from the input when the
        partition spec applies splitLoc."""
        key = part_spec.content_hash(pop_spec.content_hash())
        hit = self._parts.get(key)
        if hit is not None:
            self.stats.part_hits += 1
            observe.counter("lab.part_hit")
            return hit
        hit = self._load_part(key, graph)
        if hit is not None:
            self.stats.part_hits += 1
            observe.counter("lab.part_hit")
        else:
            with observe.span(
                "lab.part_build", key=key, method=part_spec.method, k=part_spec.k
            ):
                out_graph, part = part_spec.build(graph)
            self.stats.part_builds += 1
            self._store_part(key, out_graph, part, split=part_spec.split)
            hit = (out_graph, part)
        self._parts[key] = hit
        return hit

    def _part_path(self, key: str) -> Path | None:
        return None if self.root is None else self.root / "part" / f"{key}.npz"

    def _load_part(self, key: str, graph):
        path = self._part_path(key)
        if path is None or not path.exists():
            return None
        from repro.partition.quality import BipartitePartition

        with np.load(path, allow_pickle=False) as z:
            part = BipartitePartition(
                person_part=z["person_part"],
                location_part=z["location_part"],
                k=int(z["k"]),
                method=str(z["method"]),
            )
        graph_ref = path.with_suffix(".graph")
        if graph_ref.exists():
            # splitLoc transformed the graph: it lives in pop/ under
            # the derived key recorded next to the partition.
            graph = self._load_pop(graph_ref.read_text().strip())
            if graph is None:
                return None  # split graph evicted; rebuild the pair
        return graph, part

    def _store_part(self, key: str, graph, part, split: bool) -> None:
        path = self._part_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".{os.getpid()}.tmp.npz")
        np.savez_compressed(
            tmp,
            person_part=part.person_part,
            location_part=part.location_part,
            k=np.int64(part.k),
            method=np.str_(part.method),
        )
        os.replace(tmp, path)
        if split:
            split_key = f"split-{key}"
            self._store_pop(split_key, graph)
            ref_tmp = path.with_suffix(f".{os.getpid()}.tmp.graph")
            ref_tmp.write_text(split_key)
            os.replace(ref_tmp, path.with_suffix(".graph"))
