"""Analysis layer: the quantities the paper's figures plot.

* :mod:`repro.analysis.speedup` — S_ub upper-bound speedups and the
  §III-B analytic scalability bound (Figures 4, 5, 8);
* :mod:`repro.analysis.distributions` — log-binned degree and load
  distributions (Figures 3c/d, 7a/b);
* :mod:`repro.analysis.edgecut` — per-partition edge-cut sweeps
  (Figure 14);
* :mod:`repro.analysis.scaling` — the phase-cost analytic execution
  model and strong-scaling harness (Figures 12, 13, headline
  speedups), validated against the runtime simulator.
"""

from repro.analysis.speedup import (
    upper_bound_speedup,
    speedup_bound_curve,
    sub_over_d,
    analytic_sub_over_d_bound,
    lpt_location_partition,
)
from repro.analysis.distributions import degree_distribution, load_distribution
from repro.analysis.edgecut import edge_cut_sweep, EdgeCutPoint
from repro.analysis.scaling import (
    PhaseCostModel,
    DayTimeBreakdown,
    ScalingPoint,
    strong_scaling_curve,
    speedup_table,
)
from repro.analysis.experiments import ReplicateSummary, run_replicates, compare_policies
from repro.analysis.theory import (
    PowerLawTheory,
    characteristic_dmax,
    expected_max_degree,
    empirical_tail,
)

__all__ = [
    "upper_bound_speedup",
    "speedup_bound_curve",
    "sub_over_d",
    "analytic_sub_over_d_bound",
    "lpt_location_partition",
    "degree_distribution",
    "load_distribution",
    "edge_cut_sweep",
    "EdgeCutPoint",
    "PhaseCostModel",
    "DayTimeBreakdown",
    "ScalingPoint",
    "strong_scaling_curve",
    "speedup_table",
    "ReplicateSummary",
    "run_replicates",
    "compare_policies",
    "PowerLawTheory",
    "characteristic_dmax",
    "expected_max_degree",
    "empirical_tail",
]
