"""Per-partition edge-cut analysis (Figure 14).

The paper's Figure 14 plots the *maximum per-partition edge cut* of
GP-splitLoc partitions against partition count and compares it to the
"all-remote-communication" baseline — the total edge count divided by
the number of partitions, i.e. the per-partition communication volume
if every edge were cut (which is what RR effectively produces).  The
ratio max-cut / baseline quantifies how much *worse than average* the
worst partition's communication is (WY: 19×, NY: 2.7×, mean 7.83×
across the seven states at the largest counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.loadmodel.workload import WorkloadModel
from repro.partition.metis import MultilevelPartitioner, PartitionerOptions
from repro.partition.quality import per_partition_edge_cut
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["EdgeCutPoint", "edge_cut_sweep"]


@dataclass(frozen=True)
class EdgeCutPoint:
    """One (k, cut) sample of the sweep."""

    k: int
    max_partition_cut: int
    all_remote_baseline: float

    @property
    def ratio(self) -> float:
        """max cut / all-remote baseline (Figure 14's comparison)."""
        return self.max_partition_cut / self.all_remote_baseline if self.all_remote_baseline else 0.0


def edge_cut_sweep(
    graph: PersonLocationGraph,
    ks: list[int],
    workload: WorkloadModel | None = None,
    options: PartitionerOptions | None = None,
) -> list[EdgeCutPoint]:
    """Max per-partition cut of GP partitions at each k."""
    total_edges = float(graph.n_visits)
    partitioner = MultilevelPartitioner(options)
    out: list[EdgeCutPoint] = []
    for k in ks:
        if k < 2:
            out.append(EdgeCutPoint(k=k, max_partition_cut=0, all_remote_baseline=total_edges))
            continue
        bp = partitioner.partition_bipartite(graph, k, workload)
        cuts = per_partition_edge_cut(graph, bp)
        out.append(
            EdgeCutPoint(
                k=k,
                max_partition_cut=int(cuts.max()),
                all_remote_baseline=total_edges / k,
            )
        )
    return out
