"""Terminal rendering of the paper's figures.

The benches write numeric series; this module renders them as ASCII
log-log charts so `benchmarks/results/*.txt` and the examples can show
the *shape* of a figure (the reproduction target) without a plotting
stack.  One glyph per series; series overlap shows the later glyph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AsciiChart", "render_series"]

_GLYPHS = "ox+*#@%&"


@dataclass
class AsciiChart:
    """A character-grid chart with log or linear axes."""

    width: int = 64
    height: int = 16
    logx: bool = True
    logy: bool = True

    def render(self, series: dict[str, list[tuple[float, float]]]) -> str:
        points = [(x, y) for pts in series.values() for x, y in pts]
        if not points:
            return "(no data)"
        xs = [p[0] for p in points if not self.logx or p[0] > 0]
        ys = [p[1] for p in points if not self.logy or p[1] > 0]
        if not xs or not ys:
            return "(no positive data for log axes)"
        fx = math.log10 if self.logx else float
        fy = math.log10 if self.logy else float
        x0, x1 = fx(min(xs)), fx(max(xs))
        y0, y1 = fy(min(ys)), fy(max(ys))
        x1 = x1 if x1 > x0 else x0 + 1.0
        y1 = y1 if y1 > y0 else y0 + 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for (name, pts), glyph in zip(series.items(), _GLYPHS):
            for x, y in pts:
                if (self.logx and x <= 0) or (self.logy and y <= 0):
                    continue
                col = round((fx(x) - x0) / (x1 - x0) * (self.width - 1))
                row = round((fy(y) - y0) / (y1 - y0) * (self.height - 1))
                grid[self.height - 1 - row][col] = glyph
        ylab_hi = f"{10**y1:.3g}" if self.logy else f"{y1:.3g}"
        ylab_lo = f"{10**y0:.3g}" if self.logy else f"{y0:.3g}"
        xlab_lo = f"{10**x0:.3g}" if self.logx else f"{x0:.3g}"
        xlab_hi = f"{10**x1:.3g}" if self.logx else f"{x1:.3g}"
        lines = [f"{ylab_hi:>10} +" + "".join(grid[0])]
        for row in grid[1:-1]:
            lines.append(" " * 10 + " |" + "".join(row))
        lines.append(f"{ylab_lo:>10} +" + "".join(grid[-1]))
        lines.append(" " * 12 + xlab_lo + " " * max(1, self.width - len(xlab_lo) - len(xlab_hi)) + xlab_hi)
        legend = "   ".join(
            f"{glyph}={name}" for (name, _), glyph in zip(series.items(), _GLYPHS)
        )
        lines.append(" " * 12 + legend)
        return "\n".join(lines)


def render_series(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = True,
    logy: bool = True,
) -> str:
    """One-shot convenience wrapper around :class:`AsciiChart`."""
    return AsciiChart(width=width, height=height, logx=logx, logy=logy).render(series)
