"""Upper-bound speedup analysis (paper §III-B, Figures 4/5/8).

The paper bounds the speedup of the location phase by load sums alone:
for a K-way partition P with partition loads L_p, the *estimated upper
bound* is ``S_ub = L_tot / L_max`` — communication and the person phase
ignored.  ``S_ub`` is itself bounded by ``L_tot / l_max`` where l_max
is the heaviest single location: one vertex cannot be split by a
partitioner, which is the whole motivation for splitLoc.

The §III-B analytic form: with a power-law degree distribution of
exponent β over D locations, ``log(S_ub/D) ≲ log(d_avg) − (1/β)·log D −
(1/β)·log c`` — scalability *per location* degrades as data grows
(Figure 5a), and splitLoc restores it (Figure 5b).
"""

from __future__ import annotations

import numpy as np

from repro.loadmodel.workload import WorkloadModel
from repro.partition.metis import MultilevelPartitioner, PartitionerOptions
from repro.synthpop.graph import PersonLocationGraph
from repro.synthpop.powerlaw import powerlaw_normalisation

__all__ = [
    "upper_bound_speedup",
    "lpt_location_partition",
    "speedup_bound_curve",
    "sub_over_d",
    "analytic_sub_over_d_bound",
]


def upper_bound_speedup(partition_loads: np.ndarray) -> float:
    """``S_ub = L_tot / L_max`` over per-partition load sums."""
    loads = np.asarray(partition_loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("no partitions")
    lmax = loads.max()
    if lmax <= 0:
        return float(loads.size)
    return float(loads.sum() / lmax)


def lpt_location_partition(location_loads: np.ndarray, k: int) -> np.ndarray:
    """Longest-processing-time greedy K-way load balancing.

    Ignores edges entirely; used for the very large partition counts of
    the Figure-4/8 sweeps where running the full multilevel partitioner
    at every K is wasteful.  LPT is a 4/3-approximation to optimal
    makespan, so it tracks what a balance-focused partitioner achieves,
    and it exposes the same ``l_max`` ceiling.
    """
    loads = np.asarray(location_loads, dtype=np.float64)
    if k < 1:
        raise ValueError("k must be >= 1")
    order = np.argsort(-loads, kind="stable")
    part = np.empty(loads.size, dtype=np.int64)
    # Binary heap of (partition load, partition id).
    import heapq

    heap = [(0.0, p) for p in range(k)]
    for v in order:
        load, p = heapq.heappop(heap)
        part[v] = p
        heapq.heappush(heap, (load + loads[v], p))
    return part


def speedup_bound_curve(
    graph: PersonLocationGraph,
    ks: list[int],
    method: str = "lpt",
    workload: WorkloadModel | None = None,
    partitioner_options: PartitionerOptions | None = None,
) -> dict[int, float]:
    """``S_ub`` at each partition count (Figure 4 / Figure 8 series).

    ``method="gp"`` runs the multilevel partitioner at every k (slow but
    faithful); ``"lpt"`` balances location loads greedily (fast, used
    for wide sweeps).  Both are capped by ``L_tot / l_max``.
    """
    workload = workload or WorkloadModel()
    loc_loads = workload.location_weights(graph).astype(np.float64)
    out: dict[int, float] = {}
    partitioner = MultilevelPartitioner(partitioner_options) if method == "gp" else None
    for k in ks:
        if k <= 1:
            out[k] = 1.0
            continue
        if method == "gp":
            bp = partitioner.partition_bipartite(graph, k, workload)
            loads = np.bincount(bp.location_part, weights=loc_loads, minlength=k)
        elif method == "lpt":
            part = lpt_location_partition(loc_loads, k)
            loads = np.bincount(part, weights=loc_loads, minlength=k)
        else:
            raise ValueError(f"unknown method {method!r}")
        out[k] = upper_bound_speedup(loads)
    return out


def sub_over_d(
    graph: PersonLocationGraph,
    ks: list[int] | None = None,
    method: str = "lpt",
    workload: WorkloadModel | None = None,
) -> float:
    """``max_K S_ub / D`` — the per-location scalability of Figure 5.

    The maximum over K of S_ub equals ``L_tot / l_max`` (achieved once
    K is large enough that the heaviest location sits alone), so when
    ``ks`` is None we evaluate that closed form directly.
    """
    workload = workload or WorkloadModel()
    loc_loads = workload.location_weights(graph).astype(np.float64)
    d = graph.n_locations
    if ks is None:
        return float(loc_loads.sum() / loc_loads.max()) / d
    best = max(speedup_bound_curve(graph, ks, method, workload).values())
    return best / d


def analytic_sub_over_d_bound(beta: float, d_avg: float, n_locations: int) -> float:
    """The paper's closed-form bound on ``S_ub / D``.

    ``log(S_ub/D) ≲ log(d_avg) − (1/β)(log D + log c)`` with c the
    power-law normalisation constant.  Returned in linear scale.
    """
    if n_locations < 1:
        raise ValueError("need at least one location")
    c = powerlaw_normalisation(beta)
    log10 = (
        np.log10(d_avg)
        - (1.0 / beta) * np.log10(n_locations)
        - (1.0 / beta) * np.log10(c)
    )
    return float(10.0**log10)
