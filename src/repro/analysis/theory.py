"""The §III-B analytic machinery, as runnable mathematics.

The paper's scalability argument rests on a few closed forms for a
power-law degree distribution ``f = D·c·d^(−β)``:

* the normalisation constant ``c`` with ``c·Σ d^(−β) = 1``;
* the *characteristic maximum degree*: solving ``D·c·(d_max)^(−β) = 1``
  gives ``d_max ≈ (cD)^(1/β)`` — the degree at which about one vertex
  is expected;
* therefore ``log(S_ub/D) ≲ log(d_avg) − (1/β)·(log D + log c)``.

This module packages those forms plus empirical cross-checks used by
the tests: the generator's realised maximum degree should track the
``(cD)^(1/β)`` prediction as populations grow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synthpop.graph import PersonLocationGraph
from repro.synthpop.powerlaw import powerlaw_normalisation
from repro.util.histogram import fit_powerlaw_exponent

__all__ = ["PowerLawTheory", "characteristic_dmax", "expected_max_degree", "empirical_tail"]


def characteristic_dmax(beta: float, n_vertices: int) -> float:
    """The paper's §III-B approximation: solve ``D·c·d^(−β) = 1``.

    Gives ``d_max = (c·D)^(1/β)`` — the degree whose expected *count*
    is one.  Note this is the paper's (deliberately conservative)
    density form; the order-statistics expectation of the realised
    maximum is :func:`expected_max_degree`, which is much larger for
    β ≤ 2.5 because the tail above d contains many degrees.
    """
    if n_vertices < 1:
        raise ValueError("need at least one vertex")
    c = powerlaw_normalisation(beta)
    return float((c * n_vertices) ** (1.0 / beta))


def expected_max_degree(beta: float, n_vertices: int) -> float:
    """Order-statistics scale of the realised maximum degree.

    The expected number of vertices with degree ≥ x is
    ``D·c·x^(1−β)/(β−1)``; setting it to 1 gives
    ``d_max ≈ (c·D/(β−1))^(1/(β−1))`` — the quantity sample maxima
    actually track (heavy-tailed, so fluctuations span a small
    multiplicative factor).
    """
    if n_vertices < 1:
        raise ValueError("need at least one vertex")
    if beta <= 1.0:
        raise ValueError("beta must exceed 1")
    c = powerlaw_normalisation(beta)
    return float((c * n_vertices / (beta - 1.0)) ** (1.0 / (beta - 1.0)))


@dataclass(frozen=True)
class PowerLawTheory:
    """The paper's power-law scalability model for one graph family."""

    beta: float
    d_avg: float

    def __post_init__(self) -> None:
        if self.beta <= 1.0:
            raise ValueError("beta must exceed 1")
        if self.d_avg <= 0:
            raise ValueError("d_avg must be positive")

    def dmax(self, n_vertices: int) -> float:
        return characteristic_dmax(self.beta, n_vertices)

    def sub_bound(self, n_vertices: int) -> float:
        """``S_ub ≲ d_avg · D / d_max`` — absolute speedup ceiling."""
        return self.d_avg * n_vertices / self.dmax(n_vertices)

    def sub_over_d_bound(self, n_vertices: int) -> float:
        """``S_ub/D`` ceiling; decreasing in D — the Figure-5a law."""
        return self.sub_bound(n_vertices) / n_vertices

    def doubling_loss(self, n_vertices: int) -> float:
        """Fractional S_ub/D lost when the data doubles.

        From the closed form this is ``1 − 2^(−1/β)`` independent of D —
        a clean testable invariant of the model.
        """
        big = self.sub_over_d_bound(2 * n_vertices)
        small = self.sub_over_d_bound(n_vertices)
        return 1.0 - big / small


def empirical_tail(graph: PersonLocationGraph, d_min: int = 3) -> PowerLawTheory:
    """Fit the theory's parameters from a graph's location in-degrees."""
    deg = graph.location_in_degrees().astype(np.float64)
    beta = fit_powerlaw_exponent(deg[deg >= d_min], xmin=float(d_min))
    return PowerLawTheory(beta=beta, d_avg=float(deg.mean()))
