"""Degree and load distributions (Figures 3c/d and 7a/b).

Thin wrappers combining the graph's degree accessors, the static load
model, and the log-binned histogram utility.  The benches print these
as the paper plots them: log-log, one series per state, before and
after splitLoc.
"""

from __future__ import annotations

import numpy as np

from repro.loadmodel.static import PAPER_STATIC_MODEL, PiecewiseLoadModel
from repro.synthpop.graph import PersonLocationGraph
from repro.util.histogram import LogHistogram, log_binned_histogram

__all__ = ["degree_distribution", "load_distribution", "final_size_distribution"]


def degree_distribution(
    graph: PersonLocationGraph, bins_per_decade: int = 10
) -> LogHistogram:
    """Location in-degree (unique visitors) histogram — Figure 3(c)/7(a)."""
    deg = graph.location_in_degrees()
    return log_binned_histogram(np.maximum(deg, 1), bins_per_decade)


def load_distribution(
    graph: PersonLocationGraph,
    model: PiecewiseLoadModel = PAPER_STATIC_MODEL,
    bins_per_decade: int = 10,
) -> LogHistogram:
    """Static location load histogram — Figure 3(d)/7(b).

    Loads are in the model's seconds; values are scaled by 1e6 (µs) so
    bins land in a readable range, matching the paper's relative-load
    presentation.
    """
    events = 2.0 * graph.location_visit_counts.astype(np.float64)
    loads = np.asarray(model.evaluate(events), dtype=np.float64) * 1e6
    return log_binned_histogram(loads, bins_per_decade)


def final_size_distribution(
    final_sizes: np.ndarray, bins_per_decade: int = 10
) -> LogHistogram:
    """Outbreak final-size histogram across replications, log-binned.

    Used to visualise the critical heavy-tail fingerprint
    (:mod:`repro.baselines.critical`): near the epidemic threshold the
    log-log histogram is a straight line of slope ≈ −3/2, while off
    criticality it collapses to an exponential bump.  Sizes of zero are
    clamped to 1 so extinct outbreaks stay visible in the first bin.
    """
    sizes = np.maximum(np.asarray(final_sizes, dtype=np.float64), 1.0)
    return log_binned_histogram(sizes, bins_per_decade)
