"""Phase-cost analytic execution model and strong-scaling harness.

The runtime simulator (``repro.charm``) executes every message and is
exact but costs real Python time per event — fine up to a few thousand
PEs, hopeless at the paper's 360K cores.  This module provides the
complementary *analytic* mode: per-day time assembled from per-partition
load sums, communication volumes, and protocol costs — the same style
of reasoning the paper itself uses for Figures 4/5/8, extended with the
communication terms so it can reproduce Figure 13's crossovers.

Per-day model (one bulk-synchronous iteration, §II-B)::

    T_day = max_p [ C_person(p) + C_send(p) ]        # person phase
          + T_sync                                    # visit completion
          + max_p [ C_recv(p) + C_loc(p) + C_inf(p) ] # location phase
          + T_sync                                    # infect completion
          + T_collect                                 # stats reduction

with communication charged to the comm thread shared by a process'
worker PEs (SMP mode) or inline with a penalty (non-SMP), matching
:class:`repro.charm.network.NetworkModel`.

Validation: ``tests/integration/test_model_vs_runtime.py`` checks the
analytic prediction against the runtime simulator's virtual time on
small configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.charm.machine import Machine, MachineConfig
from repro.charm.messages import ENVELOPE_BYTES, VISIT_BYTES
from repro.charm.network import NetworkModel
from repro.core.parallel import ComputeCostModel
from repro.loadmodel.workload import person_loads
from repro.partition.quality import BipartitePartition
from repro.synthpop.graph import PersonLocationGraph

__all__ = [
    "PhaseCostModel",
    "DayTimeBreakdown",
    "ScalingPoint",
    "machine_for_core_modules",
    "strong_scaling_curve",
    "speedup_table",
]


@dataclass(frozen=True)
class DayTimeBreakdown:
    """Components of one modelled simulation day (seconds)."""

    person_phase: float
    location_phase: float
    comm: float
    sync: float
    collect: float

    @property
    def total(self) -> float:
        return self.person_phase + self.location_phase + self.comm + self.sync + self.collect


@dataclass(frozen=True)
class ScalingPoint:
    """One sample of a strong-scaling curve."""

    core_modules: int
    n_pes: int
    time_per_day: float
    breakdown: DayTimeBreakdown
    speedup: float = float("nan")
    efficiency: float = float("nan")


@dataclass
class PhaseCostModel:
    """Analytic per-day time estimator.

    Parameters
    ----------
    network, costs:
        The same cost constants the runtime simulator uses.
    infected_fraction:
        Assumed average fraction of currently-infectious persons; sets
        the dynamic location cost and infect-message volume.  The
        paper's epidemics average a few percent over the run.
    aggregation_bytes:
        Visit-channel buffer size (0 = no aggregation).
    sync_waves:
        Detection waves per synchronisation (1 for CD, 2–3 for QD).
    """

    network: NetworkModel = field(default_factory=NetworkModel)
    costs: ComputeCostModel = field(default_factory=ComputeCostModel)
    infected_fraction: float = 0.03
    aggregation_bytes: int = 64 * 1024
    sync_waves: int = 1

    # ------------------------------------------------------------------
    def day_time(
        self,
        graph: PersonLocationGraph,
        partition: BipartitePartition,
        machine: MachineConfig | Machine,
    ) -> DayTimeBreakdown:
        """Modelled time of one simulation day under the given mapping.

        ``partition.k`` must equal the machine's compute-PE count; part
        ids are PE ids.
        """
        m = machine if isinstance(machine, Machine) else Machine(machine)
        k = partition.k
        if k != m.n_pes:
            raise ValueError(f"partition k={k} does not match machine PEs={m.n_pes}")
        net, cc = self.network, self.costs

        # --- compute terms -------------------------------------------------
        p_loads = person_loads(graph)  # = visit counts per person
        person_cost = cc.person_health_cost + cc.visit_compute_cost * p_loads
        person_per_pe = np.bincount(partition.person_part, weights=person_cost, minlength=k)

        events = 2.0 * graph.location_visit_counts.astype(np.float64)
        loc_static = np.asarray(cc.location_static.evaluate(events), dtype=np.float64)
        # Dynamic share: expected S×I pairs per location, thinned by the
        # infected fraction; pairs concentrate in large sublocations.
        nsub = np.maximum(graph.location_n_sublocs.astype(np.float64), 1.0)
        visits = graph.location_visit_counts.astype(np.float64)
        iota = self.infected_fraction
        est_interactions = iota * (1.0 - iota) * (visits**2) / nsub * 0.5
        loc_dynamic = np.asarray(
            cc.location_dynamic.evaluate(events, est_interactions), dtype=np.float64
        )
        loc_per_pe = np.bincount(
            partition.location_part, weights=loc_static + loc_dynamic, minlength=k
        )

        # --- communication -------------------------------------------------
        p, l, w = graph.bipartite_adjacency()
        pp = partition.person_part[p]
        lp = partition.location_part[l]
        crossing = pp != lp
        wx = w[crossing].astype(np.float64)
        send_bytes = np.bincount(pp[crossing], weights=wx * VISIT_BYTES, minlength=k)
        recv_bytes = np.bincount(lp[crossing], weights=wx * VISIT_BYTES, minlength=k)
        # Wire messages after aggregation: one buffer per destination
        # partition plus overflow flushes.
        pair_key = pp[crossing].astype(np.int64) * k + lp[crossing]
        uniq, inv = np.unique(pair_key, return_counts=False, return_inverse=True)
        pair_bytes = np.bincount(inv, weights=wx * VISIT_BYTES)
        if self.aggregation_bytes > 0:
            pair_msgs = np.ceil(pair_bytes / self.aggregation_bytes)
        else:
            pair_msgs = np.bincount(inv, weights=wx)  # one message per visit
        msgs_out = np.bincount((uniq // k).astype(np.int64), weights=pair_msgs, minlength=k)
        msgs_in = np.bincount((uniq % k).astype(np.int64), weights=pair_msgs, minlength=k)
        envelope_bytes = (msgs_out + msgs_in) * ENVELOPE_BYTES

        # Infect traffic: crossing infections are a thin stream.
        n_cross_inf = iota * wx.sum() / max(p_loads.mean(), 1.0)
        inf_msgs = n_cross_inf / max(k, 1)

        o = net.send_overhead + net.recv_overhead
        interference = 1.0
        if m.config.smp:
            # The comm thread serves all worker PEs of its process.
            workers = m.pes_per_process
            per_msg = o * net.comm_thread_efficiency * workers
            beta = net.beta_inter_node
        else:
            per_msg = o * net.no_comm_thread_penalty
            beta = net.beta_inter_node
            if m.n_pes > 1:
                interference = net.non_smp_compute_interference
        comm_per_pe = (
            (msgs_out + msgs_in + inf_msgs) * per_msg
            + (send_bytes + recv_bytes + envelope_bytes) * beta
        )
        comm = float(comm_per_pe.max()) + net.alpha_inter_node if k > 1 else 0.0

        # --- protocol terms --------------------------------------------------
        depth = _tree_depth(m.n_pes) if m.n_pes > 1 else 0
        hop = net.tree_hop_cost()
        sync_once = self.sync_waves * 2.0 * depth * hop  # ask-broadcast + reduce
        sync = 2.0 * sync_once  # two sync points per day
        collect = 2.0 * depth * hop  # stats reduction + next-day broadcast

        return DayTimeBreakdown(
            person_phase=float(person_per_pe.max()) * interference,
            location_phase=float(loc_per_pe.max()) * interference,
            comm=comm,
            sync=float(sync),
            collect=float(collect),
        )

    # ------------------------------------------------------------------
    def serial_day_time(self, graph: PersonLocationGraph) -> float:
        """Single-PE reference time: the same model on a 1-core machine."""
        bp = BipartitePartition(
            person_part=np.zeros(graph.n_persons, dtype=np.int64),
            location_part=np.zeros(graph.n_locations, dtype=np.int64),
            k=1,
            method="serial",
        )
        return self.day_time(graph, bp, MachineConfig(1, 1, smp=False)).total


def _tree_depth(n_pes: int, arity: int = 4) -> int:
    d, pe = 0, n_pes - 1
    while pe > 0:
        pe = (pe - 1) // arity
        d += 1
    return d


def machine_for_core_modules(
    core_modules: int,
    cores_per_node: int = 16,
    smp_processes: int = 2,
) -> MachineConfig:
    """Blue-Waters-style machine for a given core-module count.

    Below one node, a single non-SMP node with that many cores; from
    one node upward, SMP nodes of ``cores_per_node`` with
    ``smp_processes`` comm threads each (the paper's configuration).
    """
    if core_modules < 1:
        raise ValueError("need at least one core module")
    if core_modules < cores_per_node:
        return MachineConfig(1, core_modules, smp=False)
    n_nodes = core_modules // cores_per_node
    return MachineConfig(n_nodes, cores_per_node, smp=True, processes_per_node=smp_processes)


def strong_scaling_curve(
    graph: PersonLocationGraph,
    partition_provider: Callable[[int], BipartitePartition],
    core_counts: list[int],
    model: PhaseCostModel | None = None,
) -> list[ScalingPoint]:
    """Evaluate the model over a sweep of core-module counts.

    ``partition_provider(n_pes)`` returns the data distribution for a
    given compute-PE count (RR, GP, …).  Speedup/efficiency are
    relative to the serial reference time.
    """
    model = model or PhaseCostModel()
    base = model.serial_day_time(graph)
    points: list[ScalingPoint] = []
    for c in core_counts:
        mc = machine_for_core_modules(c)
        m = Machine(mc)
        bp = partition_provider(m.n_pes)
        bd = model.day_time(graph, bp, m)
        t = bd.total
        points.append(
            ScalingPoint(
                core_modules=c,
                n_pes=m.n_pes,
                time_per_day=t,
                breakdown=bd,
                speedup=base / t if t > 0 else float("inf"),
                efficiency=(base / t) / c if t > 0 else float("inf"),
            )
        )
    return points


def speedup_table(points: list[ScalingPoint]) -> str:
    """Pretty table of a scaling sweep (benches print this)."""
    lines = [
        f"{'cores':>9} {'PEs':>9} {'t/day (s)':>12} {'speedup':>10} {'eff':>7}"
    ]
    for pt in points:
        lines.append(
            f"{pt.core_modules:>9} {pt.n_pes:>9} {pt.time_per_day:>12.5f} "
            f"{pt.speedup:>10.1f} {pt.efficiency:>6.1%}"
        )
    return "\n".join(lines)
