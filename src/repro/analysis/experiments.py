"""Replicated-run experiment harness.

EpiSimdemics studies (the paper's §I H1N1 course-of-action analyses)
never rely on a single stochastic run: policies are compared on
replicate ensembles.  This module runs a scenario factory across seeds
and summarises the resulting epidemic curves — mean/CI trajectories,
attack-rate statistics, and pairwise policy comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.metrics import EpiCurve
from repro.core.scenario import Scenario
from repro.core.simulator import SequentialSimulator

__all__ = ["ReplicateSummary", "run_replicates", "compare_policies"]


@dataclass
class ReplicateSummary:
    """Ensemble statistics over replicate runs of one scenario."""

    n_replicates: int
    n_days: int
    n_persons: int
    #: (replicates, days) matrices
    new_infections: np.ndarray
    prevalence: np.ndarray
    attack_rates: np.ndarray
    peak_days: np.ndarray

    @property
    def mean_curve(self) -> np.ndarray:
        return self.new_infections.mean(axis=0)

    @property
    def mean_attack_rate(self) -> float:
        return float(self.attack_rates.mean())

    def attack_rate_ci(self, level: float = 0.95) -> tuple[float, float]:
        """Normal-approximation confidence interval on the attack rate."""
        from scipy import stats

        if self.n_replicates < 2:
            a = float(self.attack_rates[0])
            return (a, a)
        sem = self.attack_rates.std(ddof=1) / np.sqrt(self.n_replicates)
        z = stats.norm.ppf(0.5 + level / 2)
        m = self.mean_attack_rate
        return (m - z * sem, m + z * sem)

    def curve_band(self, level: float = 0.9) -> tuple[np.ndarray, np.ndarray]:
        """Pointwise quantile band of daily new infections."""
        lo = np.quantile(self.new_infections, (1 - level) / 2, axis=0)
        hi = np.quantile(self.new_infections, 1 - (1 - level) / 2, axis=0)
        return lo, hi


def run_replicates(
    scenario_factory: Callable[[int], Scenario],
    seeds: list[int] | range,
) -> ReplicateSummary:
    """Run the factory's scenario once per seed (sequential simulator).

    The factory must build a *fresh* scenario per call — intervention
    objects hold trigger state and cannot be reused across runs.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    curves: list[EpiCurve] = []
    n_persons = None
    for seed in seeds:
        scenario = scenario_factory(seed)
        if n_persons is None:
            n_persons = scenario.graph.n_persons
        result = SequentialSimulator(scenario).run()
        curves.append(result.curve)
    n_days = curves[0].n_days
    if any(c.n_days != n_days for c in curves):
        raise ValueError("replicates must share a horizon")
    new = np.array([c.new_infections for c in curves], dtype=np.float64)
    prev = np.array([c.prevalence for c in curves], dtype=np.float64)
    return ReplicateSummary(
        n_replicates=len(seeds),
        n_days=n_days,
        n_persons=n_persons,
        new_infections=new,
        prevalence=prev,
        attack_rates=np.array([c.attack_rate(n_persons) for c in curves]),
        peak_days=np.array([c.peak_day for c in curves]),
    )


@dataclass(frozen=True)
class PolicyComparison:
    """Attack-rate contrast between two policies on shared seeds."""

    name_a: str
    name_b: str
    mean_difference: float  # attack(a) − attack(b)
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def compare_policies(
    policies: dict[str, Callable[[int], Scenario]],
    seeds: list[int] | range,
) -> tuple[dict[str, ReplicateSummary], list[PolicyComparison]]:
    """Replicate every policy on the same seeds; paired-test contrasts.

    Using common random numbers (same seeds ⇒ same index cases and, up
    to behaviour changes, the same exposure draws) sharpens the policy
    contrast — the standard variance-reduction trick in simulation
    studies.
    """
    from scipy import stats

    seeds = list(seeds)
    summaries = {name: run_replicates(f, seeds) for name, f in policies.items()}
    names = list(policies)
    contrasts = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            diff = summaries[a].attack_rates - summaries[b].attack_rates
            if len(seeds) >= 2 and np.ptp(diff) > 0:
                _t, p = stats.ttest_rel(
                    summaries[a].attack_rates, summaries[b].attack_rates
                )
            else:
                p = 1.0 if np.allclose(diff, 0) else 0.0
            contrasts.append(
                PolicyComparison(a, b, float(diff.mean()), float(p))
            )
    return summaries, contrasts
