"""``repro.smp`` — the real shared-memory multi-process backend.

The paper's Section IV-A SMP mode made executable: where
:mod:`repro.core.parallel` *models* the chare runtime (virtual time,
cost models), this package *runs* it — worker OS processes as PEs over
``multiprocessing.shared_memory`` state, ring-buffer mailboxes with
TRAM-style aggregation, and an atomic-counter completion detector
mirroring :mod:`repro.charm.completion`.  The keyed RNG makes the
result bit-identical to the sequential reference, so the two runtimes
(simulated and real) validate each other through the differential
oracle.

Entry points:

* :class:`~repro.smp.backend.SmpSimulator` — run a scenario on N
  worker processes (``SmpSimulator(sc, n_workers=4).run()``);
* ``ParallelEpiSimdemics(..., backend="smp")`` / ``repro run
  --backend smp --workers N`` — the integrated surfaces;
* :func:`~repro.validate.oracle.run_smp_matrix` — certify
  bit-exactness against :class:`~repro.core.simulator.
  SequentialSimulator`;
* ``benchmarks/bench_smp_scaling.py`` — strong-scaling measurements
  (writes ``BENCH_smp.json``).
"""

from repro.smp.backend import SmpPhaseTimes, SmpResult, SmpSimulator, SmpWorkerError
from repro.smp.completion import PhaseTimeout, ShmPhaseDetector
from repro.smp.layout import SmpPlan, block_partition, build_shared_state
from repro.smp.presets import heavy_tailed_graph
from repro.smp.ring import Mailbox, RingFull, RingGrid
from repro.smp.shm import SharedArena

__all__ = [
    "SmpSimulator",
    "SmpResult",
    "SmpPhaseTimes",
    "SmpWorkerError",
    "ShmPhaseDetector",
    "PhaseTimeout",
    "SmpPlan",
    "block_partition",
    "build_shared_state",
    "heavy_tailed_graph",
    "Mailbox",
    "RingGrid",
    "RingFull",
    "SharedArena",
]
