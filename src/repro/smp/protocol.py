"""Fixed-layout wire protocol for the SMP day barrier (no pickle).

The per-day driver↔worker pipe traffic used to be pickled tuples whose
``day_done`` payload embedded a Python list of per-event tuples —
O(events) tuple boxing, pickling and unpickling on *every* day of
*every* worker, a measurable share of the SMP slowdown
(``BENCH_smp.json`` before the fix).  This module replaces it with
struct-packed bytes over ``Connection.send_bytes``/``recv_bytes``:

* **downlink** (driver → worker): one fixed 32-byte command —
  ``(opcode, day, prevalence, cumulative_attack)`` — for both the
  day kick-off and the stop signal;
* **uplink** (worker → driver): a fixed 120-byte ``day_done`` header
  (counts + the four phase-boundary clocks) followed by the raw int64
  bytes of the applied infect-event records and, when location stats
  are collected, their ``(key, count)`` pair arrays.  Arrays cross the
  pipe as ``ndarray.tobytes()`` / ``np.frombuffer`` — a length-prefixed
  memcpy, never a pickle;
* **errors**: opcode + two UTF-8 length-prefixed strings.

Every message size is an explicit function of its counts
(:func:`report_nbytes`), which is what lets the regression tests put a
hard bytes-on-the-wire budget on the day barrier.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "OP_DAY",
    "OP_STOP",
    "OP_DAY_DONE",
    "OP_ERROR",
    "COMMAND_NBYTES",
    "REPORT_HEADER_NBYTES",
    "DayReport",
    "encode_day",
    "encode_stop",
    "decode_command",
    "encode_report",
    "decode_report",
    "encode_error",
    "decode_error",
    "opcode",
    "report_nbytes",
]

OP_DAY = 0
OP_STOP = 1
OP_DAY_DONE = 2
OP_ERROR = 3

#: driver → worker: opcode, day, prevalence, cumulative_attack
_COMMAND = struct.Struct("<qqdd")
COMMAND_NBYTES = _COMMAND.size  # 32

#: worker → driver header: opcode, day, transitions, visits_made,
#: infected, backpressure, n_events, n_stats_events, n_stats_inter,
#: then the four phase-boundary perf_counter clocks t0..t3
_REPORT = struct.Struct("<qqqqqqqqqdddd")
REPORT_HEADER_NBYTES = _REPORT.size  # 104

_EVENT_WORDS = 3  # (person, location, minute)
_WORD = 8

_STOP_BYTES = _COMMAND.pack(OP_STOP, 0, 0.0, 0.0)


@dataclass
class DayReport:
    """One worker's decoded ``day_done`` message."""

    day: int
    transitions: int
    visits_made: int
    infected: int
    backpressure: int
    #: phase-boundary clocks (perf_counter): start, visits done,
    #: locations done, day done
    clocks: tuple[float, float, float, float]
    #: applied infect events, one ``(person, location, minute)`` row each
    events: np.ndarray
    #: ``(location_key, count)`` arrays when stats were collected
    stats_events: tuple[np.ndarray, np.ndarray] | None = None
    stats_interactions: tuple[np.ndarray, np.ndarray] | None = None


def encode_day(
    day: int, prevalence: float, cumulative_attack: float, extra: bytes = b""
) -> bytes:
    """The driver's day kick-off (fixed :data:`COMMAND_NBYTES` bytes).

    ``extra`` appends an opaque scenario wire-state blob (see
    :meth:`repro.core.interventions.InterventionSchedule.wire_state`);
    workers detect it by message length, so the common empty case keeps
    the exact 32-byte budget.

    >>> decode_command(encode_day(3, 0.25, 0.5))
    (0, 3, 0.25, 0.5)
    >>> decode_command(encode_day(3, 0.25, 0.5, b"state"))
    (0, 3, 0.25, 0.5)
    """
    return _COMMAND.pack(OP_DAY, day, prevalence, cumulative_attack) + extra


def encode_stop() -> bytes:
    """The driver's shutdown signal (same fixed layout).

    >>> decode_command(encode_stop())[0] == OP_STOP
    True
    """
    return _STOP_BYTES


def decode_command(buf: bytes) -> tuple[int, int, float, float]:
    """Decode a downlink command into ``(opcode, day, prevalence, attack)``.

    Ignores any trailing wire-state blob (``buf[COMMAND_NBYTES:]``);
    the worker slices that off separately.
    """
    return _COMMAND.unpack_from(buf)


def report_nbytes(
    n_events: int, n_stats_events: int = 0, n_stats_inter: int = 0
) -> int:
    """Exact uplink size for the given counts — the wire-budget formula.

    >>> report_nbytes(0)
    104
    >>> report_nbytes(10)
    344
    """
    return REPORT_HEADER_NBYTES + _WORD * (
        _EVENT_WORDS * n_events + 2 * (n_stats_events + n_stats_inter)
    )


def _pairs_bytes(stats: tuple[np.ndarray, np.ndarray] | None) -> bytes:
    if stats is None:
        return b""
    keys, counts = stats
    return (
        np.ascontiguousarray(keys, dtype=np.int64).tobytes()
        + np.ascontiguousarray(counts, dtype=np.int64).tobytes()
    )


def encode_report(report: DayReport) -> bytes:
    """Pack one ``day_done`` message (header + raw int64 array bytes)."""
    events = np.ascontiguousarray(report.events, dtype=np.int64)
    n_ev = events.size // _EVENT_WORDS
    n_se = 0 if report.stats_events is None else int(report.stats_events[0].size)
    n_si = (
        0
        if report.stats_interactions is None
        else int(report.stats_interactions[0].size)
    )
    head = _REPORT.pack(
        OP_DAY_DONE, report.day, report.transitions, report.visits_made,
        report.infected, report.backpressure, n_ev, n_se, n_si,
        *report.clocks,
    )
    return b"".join(
        (
            head,
            events.tobytes(),
            _pairs_bytes(report.stats_events),
            _pairs_bytes(report.stats_interactions),
        )
    )


def _read_pairs(buf: bytes, offset: int, n: int):
    if n == 0:
        return None, offset
    keys = np.frombuffer(buf, dtype=np.int64, count=n, offset=offset)
    offset += n * _WORD
    counts = np.frombuffer(buf, dtype=np.int64, count=n, offset=offset)
    return (keys, counts), offset + n * _WORD


def decode_report(buf: bytes) -> DayReport:
    """Decode one ``day_done`` message; arrays are zero-copy views of
    ``buf``."""
    (op, day, transitions, visits_made, infected, backpressure,
     n_ev, n_se, n_si, t0, t1, t2, t3) = _REPORT.unpack_from(buf)
    if op != OP_DAY_DONE:
        raise ValueError(f"expected day_done opcode {OP_DAY_DONE}, got {op}")
    offset = REPORT_HEADER_NBYTES
    events = np.frombuffer(
        buf, dtype=np.int64, count=n_ev * _EVENT_WORDS, offset=offset
    ).reshape(n_ev, _EVENT_WORDS)
    offset += n_ev * _EVENT_WORDS * _WORD
    stats_events, offset = _read_pairs(buf, offset, n_se)
    stats_interactions, offset = _read_pairs(buf, offset, n_si)
    return DayReport(
        day=day, transitions=transitions, visits_made=visits_made,
        infected=infected, backpressure=backpressure,
        clocks=(t0, t1, t2, t3), events=events,
        stats_events=stats_events, stats_interactions=stats_interactions,
    )


def encode_error(exc_repr: str, traceback_text: str) -> bytes:
    """Pack a worker failure (opcode + two UTF-8 strings)."""
    a = exc_repr.encode("utf-8", errors="replace")
    b = traceback_text.encode("utf-8", errors="replace")
    return struct.pack("<qqq", OP_ERROR, len(a), len(b)) + a + b


def decode_error(buf: bytes) -> tuple[str, str]:
    """Decode a worker failure into ``(exc_repr, traceback_text)``."""
    op, na, nb = struct.unpack_from("<qqq", buf)
    if op != OP_ERROR:
        raise ValueError(f"expected error opcode {OP_ERROR}, got {op}")
    start = struct.calcsize("<qqq")
    a = buf[start : start + na].decode("utf-8", errors="replace")
    b = buf[start + na : start + na + nb].decode("utf-8", errors="replace")
    return a, b


def opcode(buf: bytes) -> int:
    """Peek a message's opcode without decoding the rest."""
    return struct.unpack_from("<q", buf)[0]
