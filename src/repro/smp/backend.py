"""Driver for the shared-memory multi-process backend (paper §IV-A).

:class:`SmpSimulator` runs the six-step day loop on real OS processes:
it lays the population state out in shared memory
(:mod:`repro.smp.layout`), forks ``n_workers`` PEs running
:func:`~repro.smp.worker.worker_main`, and then orchestrates days —
everything the sequential simulator does *centrally* (index-case
seeding, intervention treatment updates, prevalence bookkeeping) stays
on the driver, in exactly the sequential order, while the person /
location / apply phases execute in parallel on the workers with visit
and infect traffic crossing PE boundaries through shared ring buffers.

The result is **bit-identical** to
:class:`~repro.core.simulator.SequentialSimulator` (same infection
events, same epi-curve, same final arrays): every stochastic draw is
keyed by (phase, day, person/location ids), so neither the partition
nor message delivery order can influence the epidemic.  The
differential oracle certifies this per run
(:func:`repro.validate.oracle.run_smp_matrix`).

Observability: workers stamp each phase with ``time.perf_counter()``
(CLOCK_MONOTONIC — one system-wide epoch on Linux, comparable across
processes); the driver normalises them to the run origin and feeds
them to an active :mod:`repro.observe` observer as per-PE tracks, so
the existing Chrome-trace / utilization exporters render *measured*
timelines of real PEs.

The day barrier itself is cheap by construction: commands and reports
cross the pipes as fixed-layout struct-packed bytes
(:mod:`repro.smp.protocol` — no pickling, no per-event tuples), and
the driver parks in one :func:`multiprocessing.connection.wait` over
*all* worker pipes instead of polling each one on a fixed tick, so
barrier cost no longer scales with the worker count.

Failure handling: a worker death is detected by the driver's wait
loop (a dead worker's pipe reads as EOF, and liveness is re-checked on
every wait timeout), which raises the shared abort flag (peers
spinning in a completion wait exit cleanly instead of hanging) and
raises :class:`SmpWorkerError`; the shared-memory arena is unlinked on
every exit path.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from repro import observe
from repro.core.exposure import InfectionEvent
from repro.core.interventions import DayContext
from repro.core.metrics import EpiCurve, state_histogram
from repro.core.scenario import Scenario
from repro.core.simulator import DayResult, SimulationResult
from repro.partition.quality import BipartitePartition
from repro.smp import protocol
from repro.smp.layout import SmpPlan, block_partition, build_shared_state
from repro.smp.worker import WorkerContext, worker_main

__all__ = ["SmpSimulator", "SmpResult", "SmpPhaseTimes", "SmpWorkerError"]


class SmpWorkerError(RuntimeError):
    """A worker process died or reported an exception; the run aborted."""


@dataclass
class SmpPhaseTimes:
    """Measured wall-clock phase boundaries of one day (seconds from
    the run origin; each boundary is the *last* worker's crossing)."""

    day: int
    start: float
    visits_done: float
    locations_done: float
    day_done: float

    @property
    def person_phase(self) -> float:
        return self.visits_done - self.start

    @property
    def location_phase(self) -> float:
        return self.locations_done - self.visits_done

    @property
    def total(self) -> float:
        return self.day_done - self.start


@dataclass
class SmpResult:
    """Full output of one SMP run."""

    result: SimulationResult
    n_workers: int
    wall_seconds: float
    phase_times: list[SmpPhaseTimes] = field(default_factory=list)
    #: per-day infection events, as the oracle diffs them
    infection_log: dict[int, list[InfectionEvent]] = field(default_factory=dict)
    final_health_state: np.ndarray | None = None
    final_days_remaining: np.ndarray | None = None
    #: total ring-full stalls across workers and days
    backpressure_events: int = 0
    #: total bytes crossing the day-barrier pipes (both directions) —
    #: the regression tests hold this to the struct-layout budget
    wire_bytes: int = 0


class SmpSimulator:
    """Shared-memory parallel run of one scenario.

    Parameters
    ----------
    scenario:
        The simulation specification (same object the sequential
        simulator consumes).
    n_workers:
        PE processes to fork.  ``1`` is valid (useful as a
        protocol-overhead baseline).
    partition:
        Person/location ownership; any
        :class:`~repro.partition.BipartitePartition` with
        ``k == n_workers``.  Defaults to the contiguous
        :func:`~repro.smp.layout.block_partition`.
    kernel:
        Exposure kernel forwarded to
        :func:`~repro.core.exposure.compute_infections`.  The
        ``"compiled"`` kernel is pre-built in the driver so the forked
        workers inherit the loaded library.
    ring_capacity / batch / burst_bytes:
        Mailbox geometry: words per SPSC ring and TRAM aggregation
        burst budget.  ``burst_bytes`` sizes bursts uniformly across
        record widths; ``batch`` (words) is the legacy spelling
        (``batch * 8`` bytes).
    timeout:
        Per-phase completion deadline inside workers (a hang breaker;
        generous because CI machines can be one-core).
    """

    def __init__(
        self,
        scenario: Scenario,
        n_workers: int,
        partition: BipartitePartition | None = None,
        kernel: str | None = None,
        ring_capacity: int = 8192,
        batch: int | None = None,
        burst_bytes: int | None = None,
        collect_location_stats: bool = False,
        timeout: float | None = 120.0,
        _fault: dict | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        g = scenario.graph
        if partition is None:
            partition = block_partition(g.n_persons, g.n_locations, n_workers)
        if partition.k != n_workers:
            raise ValueError(
                f"partition has k={partition.k} but n_workers={n_workers}"
            )
        if batch is not None and burst_bytes is not None:
            raise ValueError("give batch (words) or burst_bytes, not both")
        if burst_bytes is None:
            burst_bytes = 2048 if batch is None else batch * 8
        if ring_capacity * 8 < burst_bytes:
            raise ValueError("ring_capacity must hold at least one burst")
        if kernel == "compiled":
            # Build/load before forking so every worker inherits the
            # mapping instead of racing the first compile.
            from repro.core import ckernel

            if not ckernel.available():
                raise RuntimeError(
                    f"compiled kernel unavailable: {ckernel.build_error()}"
                )
        self.scenario = scenario
        self.n_workers = n_workers
        self.plan = SmpPlan.from_partition(g, partition)
        self.kernel = kernel
        self.ring_capacity = ring_capacity
        self.burst_bytes = burst_bytes
        self.collect_location_stats = collect_location_stats
        self.timeout = timeout
        self._fault = _fault
        self.rng_factory = scenario.rng_factory
        # Clear component trigger/array state before the workers fork a
        # snapshot of the scenario, so one Scenario is reusable.
        scenario.interventions.reset()
        d = scenario.disease
        self._terminal_states = np.array(
            [
                s.dwell.kind.name == "FOREVER" and not s.is_infectious
                for s in d.states
            ]
        )

    @classmethod
    def from_spec(cls, spec, graph=None, partition=None) -> "SmpSimulator":
        """Build from a :class:`repro.spec.RunSpec`.

        ``graph``/``partition`` short-circuit the population and
        partition builds (pass cached artifacts); otherwise both are
        constructed from the spec's population/partition sub-specs.
        """
        if graph is None:
            graph = spec.population.build()
        if partition is None:
            graph, partition = spec.resolved_partition().build(graph)
        rt = spec.runtime
        return cls(
            spec.build_scenario(graph),
            n_workers=rt.workers,
            partition=partition,
            kernel=rt.kernel,
            ring_capacity=rt.ring_capacity,
            burst_bytes=rt.burst_bytes,
        )

    # ------------------------------------------------------------------
    def _prevalence(self, health_state, ever_infected) -> float:
        d = self.scenario.disease
        infected_now = ever_infected & (health_state != d.susceptible_index)
        infected_now &= ~self._terminal_states[health_state]
        return float(infected_now.sum()) / max(1, self.scenario.graph.n_persons)

    # ------------------------------------------------------------------
    def run(self) -> SmpResult:
        with observe.span(
            "smp.run", workers=self.n_workers, days=self.scenario.n_days
        ):
            return self._run()

    def _run(self) -> SmpResult:
        sc = self.scenario
        d = sc.disease
        n = self.n_workers
        mp = multiprocessing.get_context("fork")
        shared = build_shared_state(sc, n, self.ring_capacity)
        procs: list = []
        parent_conns: list = []
        t_origin = time.perf_counter()
        try:
            for rank in range(n):
                parent, child = mp.Pipe()
                ctx = WorkerContext(
                    rank=rank, scenario=sc, shared=shared, plan=self.plan,
                    conn=child, kernel=self.kernel,
                    burst_bytes=self.burst_bytes,
                    collect_stats=self.collect_location_stats,
                    timeout=self.timeout, fault=self._fault,
                )
                # Fork inherits the shared mappings and the context
                # directly — nothing is pickled, nothing re-attached.
                p = mp.Process(target=worker_main, args=(ctx,), daemon=True)
                p.start()
                child.close()  # the worker keeps its inherited copy
                procs.append(p)
                parent_conns.append(parent)

            curve = EpiCurve()
            result = SimulationResult(curve=curve, final_histogram={})
            out = SmpResult(result=result, n_workers=n, wall_seconds=0.0)
            seeded = self._seed(shared)

            for day in range(sc.n_days):
                day_start = time.perf_counter() - t_origin
                prevalence = self._prevalence(
                    shared.health_state, shared.ever_infected
                )
                ctx = DayContext(
                    day=day, graph=sc.graph, disease=d,
                    health_state=shared.health_state,
                    treatment=shared.treatment,
                    prevalence=prevalence,
                    cumulative_attack=float(shared.ever_infected.mean()),
                    rng_factory=self.rng_factory,
                    days_remaining=shared.days_remaining,
                )
                sc.interventions.update_treatments(ctx)
                # Workers are parked on their pipes; counters are quiet.
                shared.visit_counters[:] = 0
                shared.infect_counters[:] = 0
                # Components whose visit filters depend on central
                # state broadcast it with the kick; forked workers hold
                # stale pre-run snapshots otherwise.  Empty for the
                # built-in interventions (exact 32-byte budget).
                kick = protocol.encode_day(
                    day, prevalence, ctx.cumulative_attack,
                    sc.interventions.wire_state(),
                )
                for conn in parent_conns:
                    conn.send_bytes(kick)
                out.wire_bytes += len(kick) * len(parent_conns)

                reports = self._collect_reports(
                    procs, parent_conns, shared, day, out
                )
                self._ingest_day(
                    out, day, day_start, t_origin, reports,
                    seeded if day == 0 else 0, shared, ctx,
                )

            out.result.final_histogram = state_histogram(
                shared.health_state.copy(), d
            )
            out.final_health_state = shared.health_state.copy()
            out.final_days_remaining = shared.days_remaining.copy()
            out.wall_seconds = time.perf_counter() - t_origin
            stop = protocol.encode_stop()
            for conn in parent_conns:
                conn.send_bytes(stop)
            return out
        finally:
            shared.abort[0] = 1
            for conn in parent_conns:
                try:
                    conn.close()
                except Exception:
                    pass
            for p in procs:
                p.join(timeout=5.0)
                if p.is_alive():  # pragma: no cover - last resort
                    p.terminate()
                    p.join(timeout=5.0)
            shared.arena.close()

    # ------------------------------------------------------------------
    def _seed(self, shared) -> int:
        cases = self.scenario.index_cases()
        infected = self.scenario.disease.infect(
            cases, shared.health_state, shared.days_remaining,
            shared.treatment, day=-1, rng_factory=self.rng_factory,
        )
        shared.ever_infected[infected] = True
        return int(infected.size)

    def _collect_reports(
        self, procs, conns, shared, day, out: SmpResult
    ) -> list[protocol.DayReport]:
        """The day barrier: one ``day_done`` from every worker.

        Parks in a single :func:`multiprocessing.connection.wait` over
        every still-pending pipe (no per-worker polling tick) and
        re-checks liveness on each wait timeout, so a dead worker
        aborts the run — and unsticks its spinning peers via the
        shared abort flag — instead of hanging it.
        """
        rank_of = {id(conn): rank for rank, conn in enumerate(conns)}
        pending = list(conns)
        reports: list[protocol.DayReport | None] = [None] * len(procs)
        while pending:
            ready = _conn_wait(pending, timeout=0.05)
            for conn in ready:
                rank = rank_of[id(conn)]
                try:
                    buf = conn.recv_bytes()
                except EOFError:
                    # A dead worker's pipe reads as EOF: same abort
                    # path as seeing the process gone below.
                    shared.abort[0] = 1
                    procs[rank].join(timeout=5.0)
                    raise SmpWorkerError(
                        f"worker {rank} died on day {day} "
                        f"(exit code {procs[rank].exitcode}) before reporting"
                    ) from None
                if protocol.opcode(buf) == protocol.OP_ERROR:
                    shared.abort[0] = 1
                    exc, tb = protocol.decode_error(buf)
                    raise SmpWorkerError(
                        f"worker {rank} failed on day {day}: {exc}\n{tb}"
                    )
                r = protocol.decode_report(buf)
                assert r.day == day
                out.wire_bytes += len(buf)
                reports[rank] = r
                pending.remove(conn)
            if ready:
                continue
            for rank, p in enumerate(procs):
                if reports[rank] is None and not p.is_alive():
                    shared.abort[0] = 1
                    raise SmpWorkerError(
                        f"worker {rank} died on day {day} "
                        f"(exit code {p.exitcode}) before reporting"
                    )
        return reports

    def _ingest_day(
        self, out: SmpResult, day, day_start, t_origin, reports, seeded, shared, ctx
    ) -> None:
        new_infections = sum(r.infected for r in reports) + seeded
        # Post-apply hook on the shared arrays: the workers have all
        # reported and are parked on their pipes, so this central edit
        # is race-free and lands at the same algorithmic point as the
        # sequential simulator (after apply, before prevalence).
        self.scenario.interventions.post_apply(ctx)
        prevalence = self._prevalence(shared.health_state, shared.ever_infected)
        day_result = DayResult(
            day=day,
            visits_made=sum(r.visits_made for r in reports),
            new_infections=new_infections,
            transitions=sum(r.transitions for r in reports),
            prevalence=prevalence,
        )
        out.result.days.append(day_result)
        out.result.curve.record_day(new_infections, prevalence)
        out.infection_log[day] = [
            InfectionEvent(person=int(p), location=int(loc), minute=int(m))
            for r in reports
            for (p, loc, m) in r.events.tolist()
        ]
        out.backpressure_events += sum(r.backpressure for r in reports)
        if self.collect_location_stats:
            for r in reports:
                for pairs, counter in (
                    (r.stats_events, out.result.location_events),
                    (r.stats_interactions, out.result.location_interactions),
                ):
                    if pairs is not None:
                        keys, counts = pairs
                        counter.update(dict(zip(keys.tolist(), counts.tolist())))

        obs = observe.active()
        boundaries = {"person_phase": [], "location_phase": [], "apply_phase": []}
        for rank, r in enumerate(reports):
            t0, t1, t2, t3 = r.clocks
            for a, b, name in (
                (t0, t1, "person_phase"),
                (t1, t2, "location_phase"),
                (t2, t3, "apply_phase"),
            ):
                start, end = a - t_origin, b - t_origin
                boundaries[name].append(end)
                if obs is not None:
                    obs.add_virtual_span(rank, start, end, f"pe.{name}")
        out.phase_times.append(
            SmpPhaseTimes(
                day=day,
                start=day_start,
                visits_done=max(boundaries["person_phase"]),
                locations_done=max(boundaries["location_phase"]),
                day_done=max(boundaries["apply_phase"]),
            )
        )
