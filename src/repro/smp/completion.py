"""Atomic-counter completion detection over shared memory.

Mirrors the semantics of the simulated runtime's
:class:`~repro.charm.completion.CompletionDetector` (paper §IV-B): a
phase is complete exactly when every producer has declared itself done
*and* every produced message has been consumed.  Instead of wave
broadcasts over a scheduler, each worker owns one column of a shared
``(3, n_workers)`` int64 counter block::

    row 0: produced[w]  — messages worker w has pushed into rings
    row 1: consumed[w]  — messages worker w has drained and processed
    row 2: done[w]      — 1 once worker w finished producing this phase

Each slot has a single writer (its worker), so plain int64 stores are
race-free; the only subtlety is the *order* a reader snapshots them
in.  :meth:`ShmPhaseDetector.closed` reads ``done`` first, then
``produced``, then ``consumed``:

* ``done[w] == 1`` is written *after* worker ``w``'s final
  ``produced`` bump, so (store order being preserved on x86 TSO — and
  by the GIL's barriers in CPython) seeing ``done`` implies the final
  ``produced[w]`` is visible.  Reading the counters the other way
  round could observe a stale, too-small ``produced`` next to
  ``done=1`` and close the phase with messages still in flight — the
  premature-closure bug the adversarial tests in
  ``tests/charm/test_completion_adversarial.py`` hunt for in the
  simulated detectors.
* ``consumed`` only grows toward ``produced`` (a message is consumed
  after it was produced), so a stale ``consumed`` read can only delay
  closure, never cause it early.

Hence ``all(done) and sum(produced) == sum(consumed)`` is a *stable*
predicate: once true it stays true, exactly like a clean completion
wave.
"""

from __future__ import annotations

import time

import numpy as np

from repro.smp.backoff import Backoff

__all__ = ["ShmPhaseDetector", "PhaseTimeout"]


class PhaseTimeout(RuntimeError):
    """A phase failed to close within the deadline (likely a dead peer)."""


class ShmPhaseDetector:
    """One phase's completion state, shared by ``n_workers`` processes.

    Works on any int64 array of shape ``(3, n_workers)`` — shared
    memory in production, a plain array in tests:

    >>> det = ShmPhaseDetector(np.zeros((3, 2), dtype=np.int64), rank=0)
    >>> other = ShmPhaseDetector(det.counters, rank=1)
    >>> det.produce(3); det.producer_done()
    >>> other.producer_done()
    >>> det.closed()          # 3 produced, none consumed yet
    False
    >>> other.consume(3)
    >>> det.closed()
    True
    """

    def __init__(self, counters: np.ndarray, rank: int):
        if counters.shape[0] != 3:
            raise ValueError(f"expected (3, n) counters, got {counters.shape}")
        self.counters = counters
        self.rank = rank

    # -- writer side (each worker touches only its own column) -----------
    def produce(self, k: int = 1) -> None:
        self.counters[0, self.rank] += k

    def consume(self, k: int = 1) -> None:
        self.counters[1, self.rank] += k

    def producer_done(self) -> None:
        self.counters[2, self.rank] = 1

    # -- reader side ------------------------------------------------------
    def closed(self) -> bool:
        """True iff the phase can never see another message (stable)."""
        # Snapshot order matters: done before produced before consumed —
        # see the module docstring for why the reverse order is unsound.
        done = self.counters[2].copy()
        if not done.all():
            return False
        produced = int(self.counters[0].sum())
        consumed = int(self.counters[1].sum())
        return consumed == produced

    def wait_closed(
        self,
        drain,
        timeout: float | None = None,
        should_abort=None,
    ) -> None:
        """Spin until :meth:`closed`, calling ``drain()`` each lap.

        ``drain`` must make progress on this worker's inbox (bumping
        :meth:`consume`) and return a truthy value when it consumed
        anything — unproductive laps back off *exponentially*
        (:class:`~repro.smp.backoff.Backoff`: a few ``sched_yield``
        laps, then sleeps doubling to 1 ms) so waiters hand the core to
        the workers still producing instead of starving them on
        oversubscribed machines.  ``should_abort`` may raise to break
        out when the run is being torn down (e.g. a peer died).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        backoff = Backoff()
        while not self.closed():
            if should_abort is not None:
                should_abort()
            if drain():
                backoff.reset()
            else:
                backoff.pause()
            if deadline is not None and time.monotonic() > deadline:
                raise PhaseTimeout(
                    f"worker {self.rank}: phase did not close within "
                    f"{timeout:.1f}s (produced={int(self.counters[0].sum())}, "
                    f"consumed={int(self.counters[1].sum())}, "
                    f"done={self.counters[2].tolist()})"
                )

    def reset(self) -> None:
        """Zero all counters — driver-only, between phases/days."""
        self.counters[:] = 0
