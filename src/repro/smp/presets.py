"""Shared synthetic-population presets for SMP validation and benches.

The heavy-tailed builder previously lived in
``benchmarks/bench_exposure_kernel.py``; it moved here so the
differential oracle (:func:`repro.validate.oracle.run_smp_matrix`),
the scaling benchmark (``benchmarks/bench_smp_scaling.py``) and the
bit-exactness tests all stress the same splitLoc-motivating regime —
one location absorbing a large share of all visits is exactly where a
partitioned run is most likely to betray an order dependence, and
where the location phase is heavy enough for real scaling.
"""

from __future__ import annotations

import numpy as np

from repro.synthpop.graph import MINUTES_PER_DAY, PersonLocationGraph

__all__ = ["heavy_tailed_graph"]


def heavy_tailed_graph(
    n_persons: int = 8_000,
    n_locations: int = 1_200,
    visits_per_person: int = 3,
    seed: int = 7,
    zipf_exponent: float = 1.4,
) -> PersonLocationGraph:
    """Synthetic population with Zipf location popularity.

    Sublocation counts grow with popularity (big venues have many
    rooms, paper §III-C), so pair enumeration stays blocked while the
    visit distribution is extremely skewed.

    >>> g = heavy_tailed_graph(n_persons=100, n_locations=10)
    >>> g.n_visits
    300
    """
    rng = np.random.default_rng(seed)
    n_visits = n_persons * visits_per_person
    ranks = np.arange(1, n_locations + 1, dtype=np.float64)
    popularity = ranks ** -zipf_exponent
    popularity /= popularity.sum()
    person = np.repeat(np.arange(n_persons, dtype=np.int64), visits_per_person)
    location = rng.choice(n_locations, size=n_visits, p=popularity).astype(np.int64)
    n_sublocs = np.clip(popularity * n_visits / 40.0, 1, 64).astype(np.int64)
    subloc = (rng.integers(0, 1 << 30, n_visits) % n_sublocs[location]).astype(np.int64)
    start = rng.integers(0, MINUTES_PER_DAY - 60, n_visits).astype(np.int64)
    end = start + rng.integers(30, MINUTES_PER_DAY // 3, n_visits)
    end = np.minimum(end, MINUTES_PER_DAY).astype(np.int64)
    order = np.lexsort((start, person))
    g = PersonLocationGraph(
        name=f"heavy-tailed-{n_persons}",
        n_persons=n_persons,
        n_locations=n_locations,
        visit_person=person[order],
        visit_location=location[order],
        visit_subloc=subloc[order],
        visit_start=start[order],
        visit_end=end[order],
        location_n_sublocs=n_sublocs,
        location_type=np.zeros(n_locations, dtype=np.int64),
        person_age=rng.integers(1, 90, n_persons).astype(np.int64),
        person_home=rng.integers(0, n_locations, n_persons).astype(np.int64),
    )
    g.validate()
    return g
