"""The worker-process body: one PE running a PM and an LM.

Each worker executes the paper's six-step day loop over real shared
memory (see :mod:`repro.smp.backend` for the driver side):

1. **person phase** — advance the PTTS of owned persons in the shared
   health arrays (disjoint index sets, so no synchronisation needed),
   filter owned visit rows through the intervention schedule, and
   stream surviving row indices to the worker owning each visit's
   location through the visit ring grid;
2. the visit phase closes via the shared completion detector (workers
   drain their inboxes while waiting);
3. **location phase** — sort the received rows ascending and run
   :func:`~repro.core.exposure.compute_infections` over them.  Because
   the kernels reduce hazards per (location, person) with stable
   sorts, an ascending row subset covering whole locations produces
   the *same bits* as the sequential whole-population pass restricted
   to those locations — delivery order never leaks into the epidemic;
4. infect events (3 words each) stream to the owner of each infected
   person; the infect detector closes the phase, which by the latent
   -period argument also means every reader of ``health_state`` is
   done;
5. **apply phase** — :meth:`DiseaseModel.infect` on the received
   persons (owned, so writes stay disjoint);
6. the day report (counts, events, wall-clock phase spans) goes back
   to the driver over the worker's pipe, which doubles as the day
   barrier — struct-packed bytes (:mod:`repro.smp.protocol`), never a
   pickle, so the barrier cost stays flat in the event count.

Routing is zero-copy on the send side: surviving visit rows (and
infect-event records) are destination-sorted once and streamed to the
mailboxes as contiguous slices of that one array
(:func:`~repro.smp.ring.route_records`).

Keyed RNG makes all of this order-independent: every draw a worker
takes is keyed by (phase, day, person/location), so the epidemic is
bit-identical to :class:`~repro.core.simulator.SequentialSimulator`
no matter how messages interleave.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.exposure import compute_infections
from repro.core.interventions import DayContext
from repro.smp import protocol
from repro.smp.layout import INFECT_RECORD, SharedState, SmpPlan
from repro.smp.ring import Mailbox, route_records

__all__ = ["WorkerContext", "worker_main", "WorkerAbort", "FAULT_EXIT_CODE"]

#: Exit code of a fault-injected crash (tests assert on it).
FAULT_EXIT_CODE = 17


class WorkerAbort(Exception):
    """Raised inside a worker when the driver set the abort flag."""


@dataclass
class WorkerContext:
    """Everything one worker needs; built pre-fork and inherited."""

    rank: int
    scenario: Any
    shared: SharedState
    plan: SmpPlan
    conn: Any  # this worker's end of the driver pipe
    kernel: str | None = None
    burst_bytes: int = 2048
    collect_stats: bool = False
    timeout: float | None = 120.0
    #: test-only fault injection: {"rank": r, "day": d, "phase": p} makes
    #: worker r die with FAULT_EXIT_CODE at the start of phase p of day d
    fault: dict | None = field(default=None, repr=False)


def _counter_pairs(counter) -> tuple[np.ndarray, np.ndarray]:
    """A Counter as parallel ``(keys, counts)`` int64 arrays for the wire."""
    keys = np.fromiter(counter.keys(), dtype=np.int64, count=len(counter))
    counts = np.fromiter(counter.values(), dtype=np.int64, count=len(counter))
    return keys, counts


def _maybe_fault(ctx: WorkerContext, day: int, phase: str) -> None:
    f = ctx.fault
    if f and f["rank"] == ctx.rank and f["day"] == day and f["phase"] == phase:
        os._exit(FAULT_EXIT_CODE)


def worker_main(ctx: WorkerContext) -> None:
    """Process entry point; never raises into multiprocessing internals."""
    try:
        _run(ctx)
    except (WorkerAbort, EOFError, KeyboardInterrupt):
        pass  # driver tore the run down; exit quietly
    except Exception as exc:  # pragma: no cover - defensive
        import traceback

        try:
            ctx.conn.send_bytes(
                protocol.encode_error(repr(exc), traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        try:
            ctx.conn.close()
        except Exception:
            pass


def _run(ctx: WorkerContext) -> None:
    sc = ctx.scenario
    g = sc.graph
    d = sc.disease
    shared = ctx.shared
    rank = ctx.rank
    # A fresh factory from the scenario seed: keyed streams are pure
    # functions of (seed, key), so every process derives the same draws.
    rngf = sc.rng_factory
    det_v = shared.visit_detector(rank)
    det_i = shared.infect_detector(rank)
    owned_persons = ctx.plan.persons[rank]
    owned_rows = ctx.plan.visit_rows[rank]
    loc_owner = ctx.plan.location_owner
    person_owner = ctx.plan.person_owner
    n_workers = ctx.plan.n_workers

    recv_rows: list[np.ndarray] = []
    recv_events: list[np.ndarray] = []

    def drain_visits() -> int:
        got = 0
        for _src, words in visit_mb.receive():
            det_v.consume(int(words.size))
            recv_rows.append(words)
            got += int(words.size)
        return got

    def drain_infects() -> int:
        got = 0
        for _src, words in infect_mb.receive():
            det_i.consume(int(words.size))
            recv_events.append(words)
            got += int(words.size)
        return got

    visit_mb = Mailbox(
        shared.visit_rings, rank, burst_bytes=ctx.burst_bytes,
        on_backpressure=drain_visits, on_sent=det_v.produce,
    )
    infect_mb = Mailbox(
        shared.infect_rings, rank, burst_bytes=ctx.burst_bytes,
        record=INFECT_RECORD,
        on_backpressure=drain_infects, on_sent=det_i.produce,
    )

    def check_abort() -> None:
        if shared.abort[0]:
            raise WorkerAbort

    while True:
        buf = ctx.conn.recv_bytes()  # the day barrier: blocks until the driver
        op, day, prevalence, cumulative_attack = protocol.decode_command(buf)
        if op == protocol.OP_STOP:
            break
        if len(buf) > protocol.COMMAND_NBYTES:
            # The driver appended central component state (quarantine
            # rosters etc.) that our forked snapshot doesn't have.
            sc.interventions.load_wire_state(buf[protocol.COMMAND_NBYTES:])
        day_ctx = DayContext(
            day=day, graph=g, disease=d,
            health_state=shared.health_state, treatment=shared.treatment,
            prevalence=prevalence, cumulative_attack=cumulative_attack,
            rng_factory=rngf, days_remaining=shared.days_remaining,
        )

        # -- step 1: person phase (PTTS + visit filtering + send) --------
        t0 = time.perf_counter()
        _maybe_fault(ctx, day, "person")
        transitions = d.advance_day(
            shared.health_state, shared.days_remaining, shared.treatment,
            day, rngf, subset=owned_persons,
        )
        keep = sc.interventions.visit_mask(day_ctx, rows=owned_rows)
        kept = owned_rows[keep]
        dests = loc_owner[g.visit_location[kept]]
        _routed, parts = route_records(kept, dests, n_workers)
        for dst, part in enumerate(parts):
            visit_mb.send(dst, part)
        visit_mb.flush()
        det_v.producer_done()
        # -- step 2: visit-phase completion -------------------------------
        det_v.wait_closed(drain_visits, timeout=ctx.timeout, should_abort=check_abort)
        t1 = time.perf_counter()

        # -- step 3: location phase over owned locations' rows ------------
        _maybe_fault(ctx, day, "location")
        if recv_rows:
            rows = np.sort(np.concatenate(recv_rows))
            recv_rows.clear()
        else:
            rows = np.empty(0, dtype=np.int64)
        phase = compute_infections(
            rows, g, shared.health_state, d, sc.transmission, day, rngf,
            collect_stats=ctx.collect_stats, kernel=ctx.kernel,
        )
        if phase.infections:
            ev = np.array(
                [(e.person, e.location, e.minute) for e in phase.infections],
                dtype=np.int64,
            )
            _ev_routed, ev_parts = route_records(
                ev, person_owner[ev[:, 0]], n_workers
            )
            for dst, part in enumerate(ev_parts):
                infect_mb.send(dst, part)
        infect_mb.flush()
        det_i.producer_done()
        # -- step 4: infect-phase completion ------------------------------
        det_i.wait_closed(drain_infects, timeout=ctx.timeout, should_abort=check_abort)
        t2 = time.perf_counter()

        # -- step 5: apply infect messages to owned persons ----------------
        _maybe_fault(ctx, day, "apply")
        if recv_events:
            events = np.concatenate(recv_events).reshape(-1, INFECT_RECORD)
            recv_events.clear()
        else:
            events = np.empty((0, INFECT_RECORD), dtype=np.int64)
        infected = d.infect(
            events[:, 0], shared.health_state, shared.days_remaining,
            shared.treatment, day=day, rng_factory=rngf,
        )
        shared.ever_infected[infected] = True
        t3 = time.perf_counter()

        # -- step 6: report (the driver's reduction) -----------------------
        # Struct-packed bytes + raw int64 event records: the barrier
        # payload never pickles a tuple list or a numpy array.
        stats_events = stats_inter = None
        if ctx.collect_stats:
            stats_events = _counter_pairs(phase.events)
            stats_inter = _counter_pairs(phase.interactions)
        ctx.conn.send_bytes(
            protocol.encode_report(
                protocol.DayReport(
                    day=day,
                    transitions=int(transitions.size),
                    visits_made=int(kept.size),
                    infected=int(infected.size),
                    backpressure=int(
                        visit_mb.backpressure_events
                        + infect_mb.backpressure_events
                    ),
                    clocks=(t0, t1, t2, t3),
                    events=events,
                    stats_events=stats_events,
                    stats_interactions=stats_inter,
                )
            )
        )
