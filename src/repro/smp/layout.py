"""Per-partition shared-memory layout of the simulation state.

The SMP backend lays the population state out once, before forking:

* **person state** — ``health_state`` / ``days_remaining`` /
  ``treatment`` / ``ever_infected``, one shared array each, indexed by
  global person id.  Worker ``w`` writes only the entries of persons
  it owns (a disjoint block under the default contiguous layout), so
  concurrent updates never touch the same element;
* **traffic** — two ring-buffer grids (:class:`~repro.smp.ring.
  RingGrid`), one for visit rows (1 word each), one for infect events
  (3 words: person, location, minute);
* **control** — two ``(3, n)`` completion-counter blocks (visit and
  infect phases, :class:`~repro.smp.completion.ShmPhaseDetector`) and
  a one-word abort flag the driver raises on teardown.

Ownership mirrors the simulated runtime's
:class:`~repro.core.parallel.Distribution`: persons → PersonManager
ranks, locations → LocationManager ranks, except here both managers of
rank ``w`` live in the same OS process (worker ``w`` *is* a PE running
one PM and one LM — the paper's SMP mode with one chare of each array
per PE).  Any :class:`~repro.partition.BipartitePartition` with
``k == n_workers`` can be used; :func:`block_partition` is the default
contiguous layout (persons and locations in equal slabs), which keeps
most visit traffic local for synthetic populations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.disease import UNTREATED
from repro.partition.quality import BipartitePartition
from repro.smp.completion import ShmPhaseDetector
from repro.smp.ring import RingGrid
from repro.smp.shm import SharedArena

__all__ = [
    "INFECT_RECORD",
    "block_partition",
    "SmpPlan",
    "SharedState",
    "build_shared_state",
]

#: Words per infect-event record: (person, location, minute).
INFECT_RECORD = 3


def block_partition(n_persons: int, n_locations: int, k: int) -> BipartitePartition:
    """Contiguous equal slabs of persons and locations over ``k`` workers.

    >>> p = block_partition(10, 4, 2)
    >>> p.person_part.tolist()
    [0, 0, 0, 0, 0, 1, 1, 1, 1, 1]
    >>> p.location_part.tolist()
    [0, 0, 1, 1]
    """
    return BipartitePartition(
        person_part=(np.arange(n_persons, dtype=np.int64) * k) // max(1, n_persons),
        location_part=(np.arange(n_locations, dtype=np.int64) * k) // max(1, n_locations),
        k=k,
        method="block",
    )


@dataclass
class SmpPlan:
    """Who owns what: the per-worker decomposition of one run."""

    n_workers: int
    #: person id -> owning worker
    person_owner: np.ndarray
    #: location id -> owning worker
    location_owner: np.ndarray
    #: per worker: owned person ids (ascending)
    persons: list[np.ndarray]
    #: per worker: owned visit-row indices (ascending; rows of owned persons)
    visit_rows: list[np.ndarray]
    #: per worker: owned location ids (ascending)
    locations: list[np.ndarray]

    @classmethod
    def from_partition(cls, graph, partition: BipartitePartition) -> "SmpPlan":
        partition.validate_against(graph)
        k = partition.k
        person_owner = partition.person_part.astype(np.int64)
        location_owner = partition.location_part.astype(np.int64)
        row_owner = person_owner[graph.visit_person]
        return cls(
            n_workers=k,
            person_owner=person_owner,
            location_owner=location_owner,
            persons=[np.flatnonzero(person_owner == w) for w in range(k)],
            visit_rows=[np.flatnonzero(row_owner == w) for w in range(k)],
            locations=[np.flatnonzero(location_owner == w) for w in range(k)],
        )


@dataclass
class SharedState:
    """All shared-memory arrays of one run (created pre-fork, inherited)."""

    arena: SharedArena
    health_state: np.ndarray
    days_remaining: np.ndarray
    treatment: np.ndarray
    ever_infected: np.ndarray
    visit_rings: RingGrid
    infect_rings: RingGrid
    visit_counters: np.ndarray
    infect_counters: np.ndarray
    #: one word; nonzero once the driver aborts the run
    abort: np.ndarray

    def visit_detector(self, rank: int) -> ShmPhaseDetector:
        return ShmPhaseDetector(self.visit_counters, rank)

    def infect_detector(self, rank: int) -> ShmPhaseDetector:
        return ShmPhaseDetector(self.infect_counters, rank)


def build_shared_state(
    scenario, n_workers: int, ring_capacity: int = 8192
) -> SharedState:
    """Allocate the run's shared arrays inside one :class:`SharedArena`.

    ``health_state`` / ``days_remaining`` start from the disease
    model's initial population state, exactly as
    :class:`~repro.core.simulator.SequentialSimulator` initialises them.
    """
    g = scenario.graph
    arena = SharedArena()
    try:
        state0, remaining0 = scenario.disease.initial_health(g.n_persons)
        health_state = arena.share("health", state0)
        days_remaining = arena.share("remaining", remaining0)
        treatment = arena.share(
            "treatment", np.full(g.n_persons, UNTREATED, dtype=np.int32)
        )
        ever_infected = arena.alloc("ever", (g.n_persons,), np.bool_)
        visit_rings = RingGrid(
            arena.alloc("vrings", RingGrid.shape(n_workers, ring_capacity)),
            ring_capacity,
        )
        infect_rings = RingGrid(
            arena.alloc("irings", RingGrid.shape(n_workers, ring_capacity)),
            ring_capacity,
        )
        visit_counters = arena.alloc("vcount", (3, n_workers))
        infect_counters = arena.alloc("icount", (3, n_workers))
        abort = arena.alloc("abort", (1,))
    except Exception:
        arena.close()
        raise
    return SharedState(
        arena=arena,
        health_state=health_state,
        days_remaining=days_remaining,
        treatment=treatment,
        ever_infected=ever_infected,
        visit_rings=visit_rings,
        infect_rings=infect_rings,
        visit_counters=visit_counters,
        infect_counters=infect_counters,
        abort=abort,
    )
