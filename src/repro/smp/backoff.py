"""Exponential spin-wait backoff shared by the SMP busy loops.

Every SMP wait — completion detection in
:class:`~repro.smp.completion.ShmPhaseDetector`, ring backpressure in
:class:`~repro.smp.ring.Mailbox` — used to pause a fixed tiny amount
per unproductive lap.  On an oversubscribed (or plain small) machine
that is exactly wrong: the waiter keeps getting scheduled and steals
the cycles the worker it is waiting *for* needs, which is a large part
of why the backend measured slower than sequential (``BENCH_smp.json``
before this fix).  :class:`Backoff` makes unproductive laps cheap
first and polite after: a few ``sched_yield`` laps (stay hot when the
peer is about to publish), then sleeps that double up to a cap (get
off the core when it is not).

>>> b = Backoff()
>>> delays = []
>>> for _ in range(8):
...     delays.append(b.next_delay())
...     b.pause()
>>> delays
[0.0, 0.0, 0.0, 0.0, 2e-05, 4e-05, 8e-05, 0.00016]
>>> b.reset(); b.next_delay()
0.0
"""

from __future__ import annotations

import os
import time

__all__ = ["Backoff"]

#: unproductive laps that only yield the core before sleeping starts
YIELD_LAPS = 4
#: first sleep after the yield laps (seconds)
BASE_SLEEP = 2e-5
#: longest single pause — bounds added latency once traffic resumes
MAX_SLEEP = 1e-3

_yield = getattr(os, "sched_yield", lambda: time.sleep(0))


class Backoff:
    """Per-wait escalation state; ``reset()`` on every productive lap."""

    __slots__ = ("_lap",)

    def __init__(self) -> None:
        self._lap = 0

    def reset(self) -> None:
        self._lap = 0

    def next_delay(self) -> float:
        """The delay :meth:`pause` would sleep this lap (0 = yield only)."""
        if self._lap < YIELD_LAPS:
            return 0.0
        return min(MAX_SLEEP, BASE_SLEEP * 2 ** (self._lap - YIELD_LAPS))

    def pause(self) -> None:
        """Yield or sleep, escalating each consecutive unproductive lap."""
        delay = self.next_delay()
        self._lap += 1
        if delay == 0.0:
            _yield()
        else:
            time.sleep(delay)
