"""Named shared-memory segments with guaranteed cleanup.

The SMP backend keeps all cross-process state — person health arrays,
ring-buffer mailboxes, completion counters — in POSIX shared memory
(:class:`multiprocessing.shared_memory.SharedMemory`) so worker
processes operate on the *same* physical pages, not copies.  A
:class:`SharedArena` owns every segment of one run: it hands out numpy
views backed by named segments and unlinks all of them on
:meth:`close`, including on failure paths (``tests/smp/conftest.py``
scans ``/dev/shm`` for leaks after every test).

Workers are forked (see :mod:`repro.smp.backend`), so they inherit the
parent's mappings directly — no re-attach, no per-child
resource-tracker registration, and exactly one process (the driver)
responsible for unlinking.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SEGMENT_PREFIX", "SharedArena"]

#: Every segment name starts with this — the leak-check fixture and
#: operators cleaning ``/dev/shm`` by hand both key off it.
SEGMENT_PREFIX = "repro-smp"


class SharedArena:
    """Allocator/owner of one run's shared-memory segments.

    >>> arena = SharedArena()
    >>> a = arena.alloc("counters", (4,), np.int64)
    >>> a[:] = 7
    >>> int(a.sum())
    28
    >>> arena.close()
    >>> arena.closed
    True
    """

    def __init__(self, tag: str = ""):
        token = secrets.token_hex(4)
        self._prefix = f"{SEGMENT_PREFIX}-{os.getpid()}-{token}" + (
            f"-{tag}" if tag else ""
        )
        self._segments: list[shared_memory.SharedMemory] = []
        self._arrays: list[np.ndarray] = []
        self.closed = False

    @property
    def segment_names(self) -> list[str]:
        """Names of all live segments (as they appear under ``/dev/shm``)."""
        return [seg.name for seg in self._segments]

    def alloc(self, name: str, shape: tuple, dtype=np.int64) -> np.ndarray:
        """Create a zero-filled shared segment; return a numpy view of it."""
        if self.closed:
            raise RuntimeError("arena is closed")
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize)
        seg = shared_memory.SharedMemory(
            create=True, name=f"{self._prefix}-{name}", size=nbytes
        )
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        arr.fill(0)
        self._segments.append(seg)
        self._arrays.append(arr)
        return arr

    def share(self, name: str, source: np.ndarray) -> np.ndarray:
        """Shared copy of ``source`` (same shape/dtype, contents copied)."""
        arr = self.alloc(name, source.shape, source.dtype)
        arr[:] = source
        return arr

    def close(self) -> None:
        """Unlink (and best-effort unmap) every segment.  Idempotent.

        Unlink runs first: it always succeeds and removes the
        ``/dev/shm`` entry even while other processes still hold
        mappings (they keep working on the anonymous pages until they
        exit — standard POSIX semantics).  Unmapping can legitimately
        fail with :class:`BufferError` if a caller still holds a numpy
        view; the memory is then reclaimed at process exit instead.
        """
        if self.closed:
            return
        self.closed = True
        self._arrays.clear()
        for seg in self._segments:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a view outlived us
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
