"""Fixed-size SPSC ring buffers and TRAM-style aggregating mailboxes.

Cross-PE traffic in the SMP backend (visit rows during the person
phase, infect events during the location phase) flows through a dense
``n_workers x n_workers`` grid of single-producer/single-consumer ring
buffers living in one shared-memory block — ring ``(src, dst)`` is
written only by worker ``src`` and drained only by worker ``dst``, so
no locks are needed:

* each cell is ``[head, tail, slot0, slot1, ...]`` of int64;
* ``tail`` (producer-owned) and ``head`` (consumer-owned) are
  monotonically increasing message counts, reduced mod capacity to
  index slots — the classic Lamport queue, full when
  ``tail - head == capacity``;
* the producer writes the payload slots *before* publishing the new
  ``tail`` and the consumer snapshots ``tail`` before reading slots.
  On the total-store-order memory model of x86 (and for CPython, whose
  eval loop inserts the GIL's barriers around every bytecode) a
  published message's payload is therefore visible to the consumer.

:class:`Mailbox` adds the TRAM idiom from the simulated runtime
(:mod:`repro.charm.tram`): messages are staged in per-destination
batches and flushed into the rings in bursts, and when a destination
ring is full the sender *drains its own inbox* while waiting — the
same deadlock-avoidance rule as Charm++'s yield-on-full-buffer.  A
full grid of senders can therefore never cycle-block: every blocked
sender keeps freeing room in its own inbound rings.

Messages are int64 words; multi-word records (e.g. the 3-word infect
events) set ``record=k`` on the mailbox so bursts never split a record.
Burst size is specified in **bytes** (``burst_bytes``) and rounded down
to a whole number of records, so a visit mailbox (8-byte records) and
an infect mailbox (24-byte records) sharing one budget aggregate the
same wire volume per flush instead of the wide records flushing ~3×
as often.  The classes work on any int64 numpy array, so the unit
tests in ``tests/smp/test_ring.py`` exercise wraparound and
backpressure on plain in-process arrays with no shared memory at all.

The hot paths are copy-frugal: ring slots are written/read as one or
two contiguous slice assignments (no modular fancy indexing), a flush
of a single staged array pushes it directly without concatenation, and
:func:`route_records` hands callers per-destination *views* of one
destination-sorted array so routing costs exactly one gather.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.smp.backoff import Backoff

__all__ = ["RingGrid", "Mailbox", "RingFull", "route_records"]

_HEADER = 2  # head, tail

#: Default mailbox aggregation budget: 2 KiB per burst (256 visit rows
#: or 85 infect records), the TRAM-style sweet spot measured by
#: ``benchmarks/bench_smp_scaling.py``.
DEFAULT_BURST_BYTES = 2048

_WORD = 8  # int64 bytes


def route_records(values: np.ndarray, dests: np.ndarray, n: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Group ``values`` by destination with one gather, zero per-dst copies.

    ``values`` holds one record per row (1-D words or an ``(n, k)``
    record array), ``dests[i]`` the destination of row ``i``.  Returns
    ``(routed, parts)`` where ``routed`` is the destination-sorted copy
    and ``parts[d]`` is a contiguous **view** of it
    (``np.shares_memory(parts[d], routed)``) — the slices feed
    :meth:`Mailbox.send` without further copying.

    >>> routed, parts = route_records(np.array([10, 11, 12, 13]),
    ...                               np.array([1, 0, 1, 0]), 2)
    >>> [p.tolist() for p in parts]
    [[11, 13], [10, 12]]
    >>> all(np.shares_memory(p, routed) for p in parts)
    True
    """
    order = np.argsort(dests, kind="stable")
    routed = values[order]
    counts = np.bincount(dests, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return routed, [routed[offsets[d]:offsets[d + 1]] for d in range(n)]


class RingFull(RuntimeError):
    """A push found the destination ring at capacity and no handler set."""


class RingGrid:
    """``n x n`` grid of SPSC rings packed into one int64 block.

    Parameters
    ----------
    block:
        int64 array of shape ``(n, n, 2 + capacity)``; zero-filled
        means "all rings empty".  Use :meth:`shape` to size it.
    capacity:
        Words per ring.

    >>> grid = RingGrid(np.zeros(RingGrid.shape(2, 4), dtype=np.int64), 4)
    >>> grid.try_push(0, 1, [10, 11, 12])
    True
    >>> grid.pop_all(1, 0).tolist()
    [10, 11, 12]
    """

    def __init__(self, block: np.ndarray, capacity: int):
        n = block.shape[0]
        if block.shape != (n, n, _HEADER + capacity):
            raise ValueError(
                f"block shape {block.shape} does not match "
                f"{(n, n, _HEADER + capacity)}"
            )
        self.n = n
        self.capacity = capacity
        self._block = block

    @staticmethod
    def shape(n: int, capacity: int) -> tuple[int, int, int]:
        """Block shape for an ``n x n`` grid with ``capacity`` words/ring."""
        return (n, n, _HEADER + capacity)

    # -- producer side ---------------------------------------------------
    def free(self, src: int, dst: int) -> int:
        """Free words in ring ``(src, dst)`` as seen by the producer."""
        cell = self._block[src, dst]
        return self.capacity - int(cell[1] - cell[0])

    def try_push(self, src: int, dst: int, words) -> bool:
        """Push ``words`` atomically (all or none).  False when full.

        Only worker ``src`` may call this for a given ``(src, dst)``.
        """
        words = np.asarray(words, dtype=np.int64)
        if words.ndim != 1:
            words = words.ravel()
        k = int(words.size)
        if k > self.capacity:
            raise ValueError(
                f"burst of {k} words exceeds ring capacity {self.capacity}"
            )
        cell = self._block[src, dst]
        head = int(cell[0])  # consumer's cursor: may lag, never overshoots
        tail = int(cell[1])  # ours: nobody else writes it
        if tail - head + k > self.capacity:
            return False
        # At most two contiguous slice writes (wraparound splits once);
        # far cheaper than modular fancy indexing.
        pos = tail % self.capacity
        end = pos + k
        if end <= self.capacity:
            cell[_HEADER + pos : _HEADER + end] = words
        else:
            split = self.capacity - pos
            cell[_HEADER + pos : _HEADER + self.capacity] = words[:split]
            cell[_HEADER : _HEADER + end - self.capacity] = words[split:]
        # Publish after the payload: consumers read tail first, slots second.
        cell[1] = tail + k
        return True

    # -- consumer side ---------------------------------------------------
    def pending(self, dst: int, src: int) -> int:
        """Words waiting in ring ``(src, dst)``, seen by the consumer."""
        cell = self._block[src, dst]
        return int(cell[1] - cell[0])

    def pop_all(self, dst: int, src: int) -> np.ndarray:
        """Drain ring ``(src, dst)``.  Only worker ``dst`` may call this."""
        cell = self._block[src, dst]
        tail = int(cell[1])  # snapshot before touching slots
        head = int(cell[0])
        if tail == head:
            return np.empty(0, dtype=np.int64)
        k = tail - head
        pos = head % self.capacity
        end = pos + k
        out = np.empty(k, dtype=np.int64)
        if end <= self.capacity:
            out[:] = cell[_HEADER + pos : _HEADER + end]
        else:
            split = self.capacity - pos
            out[:split] = cell[_HEADER + pos : _HEADER + self.capacity]
            out[split:] = cell[_HEADER : _HEADER + end - self.capacity]
        cell[0] = tail  # release the slots back to the producer
        return out

    def drain_into(self, dst: int) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(src, words)`` for every non-empty inbound ring of ``dst``."""
        for src in range(self.n):
            words = self.pop_all(dst, src)
            if words.size:
                yield src, words


class Mailbox:
    """Per-worker send/receive endpoint with TRAM-style aggregation.

    Wraps one :class:`RingGrid` for a fixed worker ``rank``.  Sends are
    staged per destination and flushed as bursts once ``burst_bytes``
    bytes accumulate (or on :meth:`flush`); ``batch`` (words) is the
    legacy spelling of the same budget.  Bursts are always a multiple
    of ``record`` words, so consumers never see a torn record, and the
    byte budget makes wide records aggregate as much wire volume per
    flush as narrow ones.  When a destination ring is full the mailbox
    invokes ``on_backpressure`` — normally the worker's own drain loop
    — until space frees up, which is what makes the all-to-all pattern
    deadlock-free; unproductive backpressure laps back off
    exponentially (:class:`~repro.smp.backoff.Backoff`) so a blocked
    sender stops stealing its consumer's cycles.  ``on_sent`` is
    called with the word count of every successful push; the SMP
    workers wire it to their completion detector's ``produce``, so
    "produced" is counted at publication exactly like TRAM's
    count-on-send.

    >>> grid = RingGrid(np.zeros(RingGrid.shape(2, 8), dtype=np.int64), 8)
    >>> a = Mailbox(grid, rank=0, batch=4)
    >>> b = Mailbox(grid, rank=1, batch=4)
    >>> a.send(1, [1, 2]); a.send(1, [3, 4])   # second send trips the batch
    >>> [(src, w.tolist()) for src, w in b.receive()]
    [(0, [1, 2, 3, 4])]
    >>> a.send(1, [5]); a.flush()
    >>> [(src, w.tolist()) for src, w in b.receive()]
    [(0, [5])]

    The byte budget equalises flush cadence across record widths —
    2048 bytes stages 256 one-word visit rows or 85 three-word infect
    records per burst:

    >>> wide = RingGrid(np.zeros(RingGrid.shape(2, 512), dtype=np.int64), 512)
    >>> Mailbox(wide, 0, burst_bytes=2048).batch
    256
    >>> Mailbox(wide, 0, burst_bytes=2048, record=3).batch
    255
    """

    def __init__(
        self,
        grid: RingGrid,
        rank: int,
        batch: int | None = None,
        record: int = 1,
        burst_bytes: int | None = None,
        on_backpressure: Callable[[], int | None] | None = None,
        on_sent: Callable[[int], None] | None = None,
    ):
        if record < 1 or record > grid.capacity:
            raise ValueError(f"record {record} must be in [1, {grid.capacity}]")
        if batch is not None and burst_bytes is not None:
            raise ValueError("give batch (words) or burst_bytes, not both")
        if burst_bytes is None:
            burst_bytes = DEFAULT_BURST_BYTES if batch is None else batch * _WORD
        batch = max(record, (burst_bytes // (_WORD * record)) * record)
        if batch > grid.capacity:
            raise ValueError(
                f"burst of {batch} words exceeds ring capacity {grid.capacity}"
            )
        self.grid = grid
        self.rank = rank
        #: burst size in words (a whole number of records)
        self.batch = batch
        #: burst size in bytes, as resolved from the budget
        self.burst_bytes = batch * _WORD
        self.record = record
        self.on_backpressure = on_backpressure
        self.on_sent = on_sent
        self._staged: list[list[np.ndarray]] = [[] for _ in range(grid.n)]
        self._staged_words = [0] * grid.n
        self._backoff = Backoff()
        #: words pushed into rings (counted at publication)
        self.words_sent = 0
        self.backpressure_events = 0

    def send(self, dst: int, words) -> None:
        """Stage ``words`` for ``dst``; flush once ``batch`` words pile up.

        ``words`` must be a whole number of records.
        """
        words = np.asarray(words, dtype=np.int64)
        if words.ndim != 1:
            words = words.ravel()  # view for C-contiguous record slices
        if words.size % self.record:
            raise ValueError(
                f"{words.size} words is not a multiple of record={self.record}"
            )
        if not words.size:
            return
        self._staged[dst].append(words)
        self._staged_words[dst] += int(words.size)
        if self._staged_words[dst] >= self.batch:
            self._flush_dst(dst)

    def flush(self) -> None:
        """Push every staged batch out, blocking (politely) on full rings."""
        for dst in range(self.grid.n):
            if self._staged_words[dst]:
                self._flush_dst(dst)

    def _flush_dst(self, dst: int) -> None:
        staged = self._staged[dst]
        # A single staged array (the zero-copy routed-slice fast path)
        # is pushed as-is; only multi-part stages pay a concatenate.
        stage = staged[0] if len(staged) == 1 else np.concatenate(staged)
        self._staged[dst] = []
        self._staged_words[dst] = 0
        offset = 0
        backoff = self._backoff
        while offset < stage.size:
            burst = stage[offset : offset + self.batch]
            if self.grid.try_push(self.rank, dst, burst):
                offset += int(burst.size)
                self.words_sent += int(burst.size)
                backoff.reset()
                if self.on_sent is not None:
                    self.on_sent(int(burst.size))
            else:
                self.backpressure_events += 1
                if self.on_backpressure is None:
                    raise RingFull(
                        f"ring {self.rank}->{dst} full and no backpressure "
                        f"handler installed"
                    )
                # Only back off when draining our own inbox freed
                # nothing — the consumer owns the next move then.
                if not self.on_backpressure():
                    backoff.pause()
                else:
                    backoff.reset()

    def receive(self) -> list[tuple[int, np.ndarray]]:
        """Drain all inbound rings; list of ``(src, words)``."""
        return list(self.grid.drain_into(self.rank))

    @property
    def staged_words(self) -> int:
        return sum(self._staged_words)
