"""End-to-end profiling driver behind ``repro profile``.

Runs one scenario through the whole pipeline — synthesis → splitLoc →
graph partitioning → sequential reference → chare-parallel runtime —
under an :class:`~repro.observe.Observer`, then packages the reports:
a Chrome trace (wall phases + per-PE virtual timelines), the text
timeline/utilisation views equivalent to the paper's Figures 9–11, and
the wall-clock phase breakdown.

The parallel run uses the same graph and seed as the sequential
reference, so the driver also certifies on every invocation that
tracing did not perturb the epidemic (``curves_identical``) — tracing
draws no random numbers, and the regression test
``tests/observe/test_rng_unperturbed.py`` pins this bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.observe.export import (
    method_profile_table,
    pe_timeline,
    phase_breakdown,
    phase_table,
    utilization_table,
    write_chrome_trace,
)
from repro.observe.recorder import Observer, observing

__all__ = ["ProfilePreset", "PRESETS", "ProfileReport", "run_profile"]


@dataclass(frozen=True)
class ProfilePreset:
    """Shape of one profiling scenario.

    >>> PRESETS["tiny"].n_days
    2
    """

    n_persons: int
    n_days: int
    n_nodes: int
    cores_per_node: int
    processes_per_node: int
    initial_infections: int = 5

    def machine(self):
        """The simulated SMP machine for this preset."""
        from repro.charm.machine import MachineConfig

        return MachineConfig(
            n_nodes=self.n_nodes,
            cores_per_node=self.cores_per_node,
            smp=True,
            processes_per_node=self.processes_per_node,
        )


#: Built-in scenario sizes for ``repro profile --preset``.
#:
#: >>> sorted(PRESETS)
#: ['medium', 'small', 'tiny']
PRESETS: dict[str, ProfilePreset] = {
    "tiny": ProfilePreset(n_persons=120, n_days=2, n_nodes=1,
                          cores_per_node=4, processes_per_node=1),
    "small": ProfilePreset(n_persons=2000, n_days=8, n_nodes=2,
                           cores_per_node=4, processes_per_node=1),
    "medium": ProfilePreset(n_persons=20000, n_days=15, n_nodes=4,
                            cores_per_node=8, processes_per_node=2),
}


@dataclass
class ProfileReport:
    """Everything one profiled run produced.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> _ = obs.record_span("synthpop.generate", 0.0, 0.2)
    >>> rep = ProfileReport(observer=obs, preset="manual", curves_identical=True)
    >>> rep.phase_totals["synthpop.generate"]
    0.2
    """

    observer: Observer
    preset: str
    curves_identical: bool
    n_persons: int = 0
    n_days: int = 0
    n_pes: int = 0
    #: file paths written by :meth:`write` (name -> path)
    paths: dict = field(default_factory=dict)

    @property
    def phase_totals(self) -> dict[str, float]:
        """Inclusive wall seconds per span name."""
        return {name: rec["incl"] for name, rec in phase_breakdown(self.observer).items()}

    def summary(self) -> str:
        """The full text report (phase table, utilisation, timeline)."""
        obs = self.observer
        lines = [
            f"== repro profile: preset {self.preset!r} — {self.n_persons} persons, "
            f"{self.n_days} days, {self.n_pes} PEs ==",
            f"epi curve identical to untraced semantics: {self.curves_identical}",
            "",
            "-- wall-clock phase breakdown --",
            phase_table(obs),
        ]
        if obs.virtual_spans:
            lines += [
                "",
                "-- per-PE utilisation (virtual time) --",
                utilization_table(obs),
                "",
                "-- per-PE timeline (virtual time) --",
                pe_timeline(obs),
                "",
                "-- entry-method profile (virtual time) --",
                method_profile_table(obs),
            ]
        if obs.counters:
            lines += ["", "-- counters --"]
            for name in sorted(obs.counters):
                lines.append(f"{name:<34} {obs.counters[name]:>14.0f}")
        return "\n".join(lines)

    def write(self, out_dir) -> dict:
        """Write ``trace.json``, ``timeline.txt`` and ``report.txt``.

        Returns the ``{name: path}`` mapping (also kept in
        :attr:`paths`).  The trace JSON loads in ``chrome://tracing``
        and Perfetto.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        trace = out / "trace.json"
        write_chrome_trace(self.observer, trace)
        timeline = out / "timeline.txt"
        timeline.write_text(pe_timeline(self.observer) + "\n")
        report = out / "report.txt"
        report.write_text(self.summary() + "\n")
        self.paths = {"trace": str(trace), "timeline": str(timeline), "report": str(report)}
        return self.paths


def run_profile(
    preset: str = "small",
    seed: int = 0,
    days: int | None = None,
    out_dir=None,
    observer: Observer | None = None,
    backend: str = "charm",
    workers: int | None = None,
) -> ProfileReport:
    """Profile the full pipeline at the given preset size.

    Synthesises a population, splits heavy locations, partitions with
    the multilevel partitioner, then runs the scenario through both the
    sequential reference and the parallel backend (with per-PE
    tracing), all under one observer.  Returns the
    :class:`ProfileReport`; pass ``out_dir`` to also write the Chrome
    trace and text reports there.

    ``backend`` selects the parallel side: ``"charm"`` (default)
    traces the simulated runtime in virtual time, ``"smp"`` forks
    ``workers`` real processes (default: the preset's PE count) whose
    *measured* per-phase wall spans become the per-PE tracks — the
    real-hardware analogue of the paper's Figures 9/10.

    >>> rep = run_profile("tiny", out_dir=None)
    >>> rep.curves_identical
    True
    >>> "synthpop.generate" in rep.phase_totals
    True
    >>> rep.observer.n_pes > 0
    True
    """
    from repro.charm.machine import Machine
    from repro.core.parallel import Distribution, ParallelEpiSimdemics
    from repro.core.scenario import Scenario
    from repro.core.simulator import SequentialSimulator
    from repro.partition.metis import partition_bipartite
    from repro.partition.splitloc import split_heavy_locations
    from repro.synthpop.generator import PopulationConfig, generate_population

    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}")
    if backend not in ("charm", "smp"):
        raise ValueError("backend must be 'charm' or 'smp'")
    cfg = PRESETS[preset]
    n_days = cfg.n_days if days is None else days
    machine = cfg.machine()
    n_pes = Machine(machine).n_pes if backend == "charm" else (workers or 2)

    with observing(observer) as obs:
        graph = generate_population(
            PopulationConfig(n_persons=cfg.n_persons), seed, name=f"profile-{preset}"
        )
        split = split_heavy_locations(graph, max_partitions=n_pes)
        g = split.graph

        def scenario() -> Scenario:
            return Scenario(
                graph=g, n_days=n_days, seed=seed,
                initial_infections=cfg.initial_infections,
            )

        seq = SequentialSimulator(scenario()).run()
        if backend == "smp":
            from repro.smp import SmpSimulator

            par = SmpSimulator(scenario(), n_workers=n_pes).run()
        else:
            bp = partition_bipartite(g, n_pes)
            dist = Distribution.from_partition(bp, Machine(machine))
            par = ParallelEpiSimdemics(scenario(), machine, dist).run()

    report = ProfileReport(
        observer=obs,
        preset=preset,
        curves_identical=par.result.curve == seq.curve,
        n_persons=g.n_persons,
        n_days=n_days,
        n_pes=n_pes,
    )
    if out_dir is not None:
        report.write(out_dir)
    return report
