"""Report generation from an :class:`~repro.observe.Observer`.

Three families of views, mirroring what the paper's team got out of
Charm++ *Projections* (Figures 9–11):

* **Chrome trace-event JSON** — load the emitted file in
  ``chrome://tracing`` or https://ui.perfetto.dev to scrub through the
  wall-clock phases and the per-PE virtual timelines interactively;
* **per-PE text timeline + utilisation** — the Figure-9/10 view:
  which PEs were busy when, who is the straggler, where the sync gaps
  are;
* **phase breakdown** — inclusive/exclusive wall time per span name:
  how the run divides between synthesis, partitioning and simulation.

All functions are pure views over a finished observer; none mutate it.
"""

from __future__ import annotations

import json
from collections import defaultdict

import numpy as np

from repro.observe.recorder import Observer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "ascii_timeline",
    "pe_timeline",
    "utilization",
    "utilization_table",
    "method_profile",
    "method_profile_table",
    "phase_breakdown",
    "phase_table",
]

#: Chrome-trace process ids for the two time domains.
WALL_PID = 1
VIRTUAL_PID = 2


def _us(seconds: float) -> float:
    """Seconds → microseconds, rounded for stable JSON output."""
    return round(seconds * 1e6, 3)


def chrome_trace_events(obs: Observer) -> list[dict]:
    """Flatten an observer into Chrome trace-event dicts.

    Wall spans land in process 1, one track per Python thread; virtual
    (simulated-PE) spans land in process 2, one track per PE; counters
    become ``"C"`` (counter) events.  The list loads directly in
    Perfetto once wrapped by :func:`write_chrome_trace`.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> _ = obs.record_span("synthpop.generate", 0.0, 0.5)
    >>> events = chrome_trace_events(obs)
    >>> [e["ph"] for e in events if e["name"] == "synthpop.generate"]
    ['X']
    """
    events: list[dict] = [
        {"ph": "M", "pid": WALL_PID, "tid": 0, "name": "process_name",
         "args": {"name": "wall clock (python)"}},
    ]
    if obs.virtual_spans:
        events.append(
            {"ph": "M", "pid": VIRTUAL_PID, "tid": 0, "name": "process_name",
             "args": {"name": "virtual PEs (modelled time)"}}
        )
        for pe in range(obs.n_pes):
            events.append(
                {"ph": "M", "pid": VIRTUAL_PID, "tid": pe, "name": "thread_name",
                 "args": {"name": f"PE {pe}"}}
            )
    for s in obs.closed_spans():
        events.append(
            {"ph": "X", "pid": WALL_PID, "tid": s.tid, "name": s.name,
             "cat": "wall", "ts": _us(s.start), "dur": _us(s.duration),
             "args": dict(s.attrs)}
        )
    for v in obs.virtual_spans:
        events.append(
            {"ph": "X", "pid": VIRTUAL_PID, "tid": v.pe, "name": v.name,
             "cat": "virtual", "ts": _us(v.start), "dur": _us(v.duration),
             "args": {}}
        )
    for c in obs.counter_samples:
        events.append(
            {"ph": "C", "pid": WALL_PID, "tid": 0, "name": c.name,
             "ts": _us(c.t), "args": {c.name: c.total}}
        )
    return events


def write_chrome_trace(obs: Observer, path) -> None:
    """Write the observer as a Chrome/Perfetto-loadable JSON file.

    >>> import json, tempfile, os
    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> _ = obs.record_span("sim.day", 0.0, 0.1)
    >>> fd, path = tempfile.mkstemp(suffix=".json"); os.close(fd)
    >>> write_chrome_trace(obs, path)
    >>> sorted(json.load(open(path)))
    ['displayTimeUnit', 'traceEvents']
    >>> os.unlink(path)
    """
    doc = {"traceEvents": chrome_trace_events(obs), "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)


# ----------------------------------------------------------------------
# text timeline (the Figure-9/10 view)
# ----------------------------------------------------------------------
def ascii_timeline(
    intervals,
    n_rows: int,
    width: int = 72,
    rows: list[int] | None = None,
    row_label: str = "pe",
) -> str:
    """Render busy intervals as an ASCII utilisation timeline.

    ``intervals`` is an iterable of ``(row, start, end)``.  Each output
    column is a time bucket; the glyph encodes the busy fraction
    (`` `` <25%, ``-`` <50%, ``+`` <75%, ``#`` ≥75%).  Shared by
    :meth:`repro.charm.trace.Tracer.timeline` and :func:`pe_timeline`.

    >>> print(ascii_timeline([(0, 0.0, 1.0), (1, 0.5, 1.0)], 2, width=8))
    pe   0 |########|
    pe   1 |    ####|
    """
    intervals = list(intervals)
    if not intervals:
        return "(empty trace)"
    t0 = min(i[1] for i in intervals)
    t1 = max(i[2] for i in intervals)
    if t1 <= t0:
        return "(zero-length trace)"
    rows = rows if rows is not None else list(range(n_rows))
    bucket = (t1 - t0) / width
    busy = np.zeros((n_rows, width))
    for row, start, end in intervals:
        b0 = int((start - t0) / bucket)
        b1 = min(int((end - t0) / bucket), width - 1)
        for b in range(b0, b1 + 1):
            lo = t0 + b * bucket
            hi = lo + bucket
            busy[row, b] += max(0.0, min(end, hi) - max(start, lo))
    lines = []
    for row in rows:
        frac = busy[row] / bucket
        glyphs = "".join(
            "#" if f >= 0.75 else "+" if f >= 0.5 else "-" if f >= 0.25 else " "
            for f in frac
        )
        lines.append(f"{row_label}{row:>4} |{glyphs}|")
    return "\n".join(lines)


def pe_timeline(obs: Observer, width: int = 72, pes: list[int] | None = None) -> str:
    """Per-PE busy timeline over the observer's virtual spans.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> obs.add_virtual_span(0, 0.0, 1.0, "pm.person_phase")
    >>> obs.add_virtual_span(1, 0.5, 1.0, "lm.location_phase")
    >>> print(pe_timeline(obs, width=8))
    pe   0 |########|
    pe   1 |    ####|
    """
    return ascii_timeline(
        [(v.pe, v.start, v.end) for v in obs.virtual_spans],
        obs.n_pes, width=width, rows=pes,
    )


def utilization(obs: Observer) -> np.ndarray:
    """Busy fraction per PE over the traced virtual-time span.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> obs.add_virtual_span(0, 0.0, 1.0, "a.m")
    >>> obs.add_virtual_span(1, 0.0, 0.5, "a.m")
    >>> utilization(obs).tolist()
    [1.0, 0.5]
    """
    if not obs.virtual_spans:
        return np.zeros(obs.n_pes)
    busy = np.zeros(obs.n_pes)
    for v in obs.virtual_spans:
        busy[v.pe] += v.duration
    t0 = min(v.start for v in obs.virtual_spans)
    t1 = max(v.end for v in obs.virtual_spans)
    span = t1 - t0
    return busy / span if span > 0 else busy


def utilization_table(obs: Observer) -> str:
    """Formatted per-PE utilisation — the Figure-11 summary view.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> obs.add_virtual_span(0, 0.0, 1.0, "a.m")
    >>> print(utilization_table(obs))
    pe   busy (ms)   util%
    pe0      1000.0  100.0%
    mean util 100.0%, min pe0 (100.0%), max pe0 (100.0%)
    """
    util = utilization(obs)
    if util.size == 0:
        return "(no virtual spans)"
    busy = np.zeros(obs.n_pes)
    for v in obs.virtual_spans:
        busy[v.pe] += v.duration
    lines = [f"{'pe':<4} {'busy (ms)':>9}   {'util%':>5}"]
    for pe in range(obs.n_pes):
        lines.append(f"pe{pe:<2} {busy[pe] * 1e3:>10.1f}  {util[pe] * 100:>5.1f}%")
    lo, hi = int(np.argmin(util)), int(np.argmax(util))
    lines.append(
        f"mean util {util.mean() * 100:.1f}%, min pe{lo} ({util[lo] * 100:.1f}%), "
        f"max pe{hi} ({util[hi] * 100:.1f}%)"
    )
    return "\n".join(lines)


def method_profile(obs: Observer) -> dict[str, tuple[int, float]]:
    """``entry-method name -> (call count, total virtual time)``.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> obs.add_virtual_span(0, 0.0, 0.5, "lm.location_phase")
    >>> obs.add_virtual_span(1, 0.0, 0.25, "lm.location_phase")
    >>> method_profile(obs)
    {'lm.location_phase': (2, 0.75)}
    """
    out: dict[str, list] = defaultdict(lambda: [0, 0.0])
    for v in obs.virtual_spans:
        rec = out[v.name]
        rec[0] += 1
        rec[1] += v.duration
    return {k: (v[0], v[1]) for k, v in out.items()}


def method_profile_table(obs: Observer, top: int = 12) -> str:
    """Formatted entry-method profile, heaviest first.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> obs.add_virtual_span(0, 0.0, 0.5, "lm.location_phase")
    >>> print(method_profile_table(obs))
    entry method                            calls  time (ms)
    lm.location_phase                           1    500.000
    """
    prof = sorted(method_profile(obs).items(), key=lambda kv: (-kv[1][1], kv[0]))[:top]
    lines = [f"{'entry method':<36} {'calls':>8} {'time (ms)':>10}"]
    for name, (calls, total) in prof:
        lines.append(f"{name:<36} {calls:>8} {total * 1e3:>10.3f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# wall-clock phase breakdown
# ----------------------------------------------------------------------
def phase_breakdown(obs: Observer) -> dict[str, dict]:
    """Aggregate wall spans by name.

    Returns ``name -> {"calls", "incl", "self"}`` where ``incl`` is the
    summed inclusive duration and ``self`` excludes time spent in child
    spans — the number that tells you *which layer* actually burns the
    time.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> outer = obs.record_span("partition.kway", 0.0, 1.0)
    >>> _ = obs.record_span("partition.bisect", 0.1, 0.7, parent=outer)
    >>> phase_breakdown(obs)["partition.kway"]
    {'calls': 1, 'incl': 1.0, 'self': 0.4}
    """
    spans = obs.spans
    child_time = defaultdict(float)
    for s in spans:
        if s is not None and s.parent >= 0:
            child_time[s.parent] += s.duration
    out: dict[str, dict] = {}
    for idx, s in enumerate(spans):
        if s is None:
            continue
        rec = out.setdefault(s.name, {"calls": 0, "incl": 0.0, "self": 0.0})
        rec["calls"] += 1
        rec["incl"] += s.duration
        rec["self"] += max(0.0, s.duration - child_time.get(idx, 0.0))
    for rec in out.values():
        rec["incl"] = round(rec["incl"], 9)
        rec["self"] = round(rec["self"], 9)
    return out


def phase_table(obs: Observer) -> str:
    """Formatted phase breakdown, heaviest inclusive time first.

    >>> from repro.observe import Observer
    >>> obs = Observer(epoch=0.0)
    >>> _ = obs.record_span("synthpop.generate", 0.0, 0.25)
    >>> print(phase_table(obs))
    phase                               calls   incl (s)   self (s)
    synthpop.generate                       1      0.250      0.250
    """
    rows = sorted(phase_breakdown(obs).items(), key=lambda kv: (-kv[1]["incl"], kv[0]))
    lines = [f"{'phase':<34} {'calls':>6} {'incl (s)':>10} {'self (s)':>10}"]
    for name, rec in rows:
        lines.append(
            f"{name:<34} {rec['calls']:>6} {rec['incl']:>10.3f} {rec['self']:>10.3f}"
        )
    return "\n".join(lines)
