"""Structured tracing primitives: spans, counters and the Observer.

This is the Projections-equivalent data-collection layer (the paper's
§IV optimisation story was driven entirely by Charm++ *Projections*
timelines, Figures 9–11).  Two event families are recorded:

* **wall spans** — nested, thread-safe ``with observe.span(...)``
  regions measuring how long our Python code actually takes
  (synthesis, partitioning, the simulators);
* **virtual spans** — per-PE entry-method executions in *modelled*
  time, ingested from the runtime's
  :class:`~repro.charm.trace.Tracer` — the view equivalent to a
  Projections per-PE timeline.

Everything funnels into one :class:`Observer`.  When no observer is
installed (the default), every instrumentation site costs a single
global read plus a no-op context manager — the property the
``benchmarks/bench_observe_overhead.py`` guard pins below 3% end to
end.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "VirtualSpan",
    "CounterSample",
    "Observer",
    "start",
    "stop",
    "active",
    "enabled",
    "observing",
    "span",
    "counter",
    "traced",
]


@dataclass(frozen=True)
class Span:
    """One completed wall-clock region.

    ``start``/``end`` are seconds relative to the owning observer's
    epoch; ``parent`` is the index of the enclosing span in
    :attr:`Observer.spans` (``-1`` for a root span).

    >>> s = Span(name="partition.kway", start=0.0, end=0.25, tid=0, parent=-1)
    >>> s.duration
    0.25
    """

    name: str
    start: float
    end: float
    tid: int = 0
    parent: int = -1
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class VirtualSpan:
    """One entry-method execution on a simulated PE (modelled time).

    >>> v = VirtualSpan(pe=3, start=0.001, end=0.004, name="lm.location_phase")
    >>> round(v.duration, 3)
    0.003
    """

    pe: int
    start: float
    end: float
    name: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One timestamped counter increment (``total`` is the running sum).

    >>> CounterSample(t=0.5, tid=0, name="exposure.infections", total=12.0).total
    12.0
    """

    t: float
    tid: int
    name: str
    total: float


class _NullSpan:
    """Shared no-op span handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Live span: context manager that records on exit (exception-safe)."""

    __slots__ = ("_obs", "_name", "_attrs", "_index", "_start")

    def __init__(self, obs: "Observer", name: str, attrs: dict):
        self._obs = obs
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        self._index, self._start = self._obs._open_span()
        return self

    def set(self, **attrs) -> "_SpanHandle":
        """Attach attributes to the span while it is running."""
        self._attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._obs._close_span(self._index, self._name, self._start, self._attrs)
        return False


class Observer:
    """Collects spans, virtual spans and counters for one traced run.

    Thread safe: concurrent threads record into one instance; span
    nesting is tracked per thread.  Construct with ``epoch=0.0`` when
    recording manual (deterministic) times, e.g. in tests:

    >>> obs = Observer(epoch=0.0)
    >>> i = obs.record_span("synthpop.generate", 0.0, 0.5, attrs={"persons": 100})
    >>> obs.spans[i].duration
    0.5
    >>> obs.add_virtual_span(0, 0.0, 0.2, "pm.person_phase")
    >>> obs.n_pes
    1
    """

    def __init__(self, epoch: float | None = None):
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.spans: list[Span | None] = []
        self.virtual_spans: list[VirtualSpan] = []
        self.counters: dict[str, float] = {}
        self.counter_samples: list[CounterSample] = []
        #: number of PE rows covered by the virtual spans
        self.n_pes = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: dict[int, int] = {}

    # -- identity ------------------------------------------------------
    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _stack(self) -> list[int]:
        try:
            return self._local.stack
        except AttributeError:
            self._local.stack = []
            return self._local.stack

    # -- live recording (used by the span() fast path) -----------------
    def _open_span(self) -> tuple[int, float]:
        with self._lock:
            index = len(self.spans)
            self.spans.append(None)  # placeholder, filled on close
        self._stack().append(index)
        return index, time.perf_counter() - self.epoch

    def _close_span(self, index: int, name: str, start: float, attrs: dict) -> None:
        stack = self._stack()
        stack.pop()
        parent = stack[-1] if stack else -1
        tid = self._tid()  # resolve before locking (_tid takes the lock)
        end = time.perf_counter() - self.epoch
        with self._lock:
            self.spans[index] = Span(
                name=name, start=start, end=end, tid=tid,
                parent=parent, attrs=attrs,
            )

    # -- manual recording (deterministic tests, ingest) ----------------
    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        tid: int = 0,
        parent: int = -1,
        attrs: dict | None = None,
    ) -> int:
        """Append a completed span with explicit times; return its index."""
        with self._lock:
            index = len(self.spans)
            self.spans.append(
                Span(name=name, start=start, end=end, tid=tid, parent=parent,
                     attrs=attrs or {})
            )
        return index

    def add_virtual_span(self, pe: int, start: float, end: float, name: str) -> None:
        """Append one simulated-PE execution interval (modelled time)."""
        with self._lock:
            self.virtual_spans.append(VirtualSpan(pe=pe, start=start, end=end, name=name))
            if pe + 1 > self.n_pes:
                self.n_pes = pe + 1

    def record_counter(self, name: str, value: float, t: float, tid: int = 0) -> None:
        """Add ``value`` to counter ``name`` with an explicit timestamp."""
        with self._lock:
            total = self.counters.get(name, 0.0) + value
            self.counters[name] = total
            self.counter_samples.append(CounterSample(t=t, tid=tid, name=name, total=total))

    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` at the current wall time."""
        self.record_counter(name, value, time.perf_counter() - self.epoch, self._tid())

    # -- runtime bridge ------------------------------------------------
    def ingest_tracer(self, tracer) -> int:
        """Absorb a :class:`repro.charm.trace.Tracer`'s events.

        Every traced entry-method execution becomes a
        :class:`VirtualSpan` named ``"<array>.<method>"``; returns the
        number of events ingested.
        """
        for e in tracer.events:
            self.add_virtual_span(e.pe, e.start, e.end, f"{e.array}.{e.method}")
        with self._lock:
            if tracer._n_pes > self.n_pes:
                self.n_pes = tracer._n_pes
        return len(tracer.events)

    # -- views ---------------------------------------------------------
    def closed_spans(self) -> list[Span]:
        """All completed spans (open placeholders filtered out)."""
        with self._lock:
            return [s for s in self.spans if s is not None]


# ----------------------------------------------------------------------
# module-level switchboard
# ----------------------------------------------------------------------
_ACTIVE: Observer | None = None


def start(observer: Observer | None = None) -> Observer:
    """Install ``observer`` (or a fresh one) as the active collector.

    >>> from repro import observe
    >>> obs = observe.start()
    >>> observe.enabled()
    True
    >>> _ = observe.stop()
    """
    global _ACTIVE
    _ACTIVE = observer if observer is not None else Observer()
    return _ACTIVE


def stop() -> Observer | None:
    """Uninstall and return the active observer (None if not tracing).

    >>> from repro import observe
    >>> _ = observe.start()
    >>> observe.stop() is not None
    True
    >>> observe.enabled()
    False
    """
    global _ACTIVE
    obs, _ACTIVE = _ACTIVE, None
    return obs


def active() -> Observer | None:
    """The currently installed observer, or None when tracing is off.

    >>> from repro import observe
    >>> observe.active() is None
    True
    """
    return _ACTIVE


def enabled() -> bool:
    """True while an observer is installed.

    >>> from repro import observe
    >>> observe.enabled()
    False
    """
    return _ACTIVE is not None


@contextmanager
def observing(observer: Observer | None = None):
    """Enable tracing for a ``with`` block; restores the previous state.

    >>> from repro import observe
    >>> with observe.observing() as obs:
    ...     with observe.span("demo.step"):
    ...         pass
    >>> len(obs.closed_spans())
    1
    >>> observe.enabled()
    False
    """
    global _ACTIVE
    prev = _ACTIVE
    obs = observer if observer is not None else Observer()
    _ACTIVE = obs
    try:
        yield obs
    finally:
        _ACTIVE = prev


def span(name: str, **attrs):
    """Open a named span; returns a context manager handle.

    When tracing is disabled this returns a shared no-op handle — the
    call costs one global read (see the overhead-guard benchmark).
    The handle's ``set(**attrs)`` attaches attributes discovered while
    the span runs; on an exception the span still closes, tagged with
    ``error=<exception type>``.

    >>> from repro import observe
    >>> with observe.observing() as obs:
    ...     with observe.span("exposure.compute", day=3) as s:
    ...         _ = s.set(infections=2)
    >>> obs.closed_spans()[0].attrs == {"day": 3, "infections": 2}
    True
    """
    obs = _ACTIVE
    if obs is None:
        return _NULL_SPAN
    return _SpanHandle(obs, name, attrs)


def counter(name: str, value: float = 1.0) -> None:
    """Add ``value`` to the named counter (no-op while disabled).

    >>> from repro import observe
    >>> with observe.observing() as obs:
    ...     observe.counter("visits.sent", 10)
    ...     observe.counter("visits.sent", 5)
    >>> obs.counters["visits.sent"]
    15.0
    """
    obs = _ACTIVE
    if obs is None:
        return
    obs.counter(name, value)


def traced(name: str | None = None, **static_attrs):
    """Decorator: wrap every call of a function in a span.

    The span is only materialised while tracing is enabled; the
    disabled path adds one global read per call.

    >>> from repro import observe
    >>> @observe.traced("demo.work")
    ... def work(x):
    ...     return x * 2
    >>> with observe.observing() as obs:
    ...     _ = work(21)
    >>> obs.closed_spans()[0].name
    'demo.work'
    """

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            obs = _ACTIVE
            if obs is None:
                return fn(*args, **kwargs)
            with _SpanHandle(obs, label, dict(static_attrs)):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
