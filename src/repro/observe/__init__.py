"""Projections-grade observability for the whole pipeline.

The paper's §IV optimisations (SMP comm-thread tuning, completion
detection, message aggregation) were found by *looking at per-PE
timelines* in Charm++ Projections (Figures 9–11).  This package is the
reproduction's equivalent: a structured tracing/metrics layer threaded
through synthesis (:mod:`repro.synthpop.generator`), partitioning
(:mod:`repro.partition`), both simulators (:mod:`repro.core`) and the
runtime scheduler (:mod:`repro.charm.scheduler`, via
:class:`repro.charm.trace.Tracer`).

Usage::

    from repro import observe

    with observe.observing() as obs:
        ...run anything...
    print(observe.phase_table(obs))          # wall-clock breakdown
    print(observe.pe_timeline(obs))          # Figure-9 style PE rows
    observe.write_chrome_trace(obs, "trace.json")  # open in Perfetto

When no observer is installed every instrumentation site costs one
global read — the ``benchmarks/bench_observe_overhead.py`` guard keeps
the disabled-mode tax under 3%.  ``python -m repro profile`` drives
:func:`run_profile` from the shell; see ``docs/profiling.md``.

Tracing draws no random numbers: traced and untraced runs produce
bit-identical epidemics (``tests/observe/test_rng_unperturbed.py``).
"""

from repro.observe.export import (
    ascii_timeline,
    chrome_trace_events,
    method_profile,
    method_profile_table,
    pe_timeline,
    phase_breakdown,
    phase_table,
    utilization,
    utilization_table,
    write_chrome_trace,
)
from repro.observe.recorder import (
    CounterSample,
    Observer,
    Span,
    VirtualSpan,
    active,
    counter,
    enabled,
    observing,
    span,
    start,
    stop,
    traced,
)

__all__ = [
    # recorder
    "Span",
    "VirtualSpan",
    "CounterSample",
    "Observer",
    "start",
    "stop",
    "active",
    "enabled",
    "observing",
    "span",
    "counter",
    "traced",
    # exporters
    "chrome_trace_events",
    "write_chrome_trace",
    "ascii_timeline",
    "pe_timeline",
    "utilization",
    "utilization_table",
    "method_profile",
    "method_profile_table",
    "phase_breakdown",
    "phase_table",
    # profile driver (lazy: pulls in the full pipeline)
    "ProfilePreset",
    "PRESETS",
    "ProfileReport",
    "run_profile",
]


def __getattr__(name):
    # The profile driver imports synthpop/partition/core, which in turn
    # import this package for instrumentation — load it lazily so the
    # recorder stays import-cycle-free and cheap to pull in.
    if name in ("ProfilePreset", "PRESETS", "ProfileReport", "run_profile"):
        from repro.observe import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
