"""The RunSpec layer: one canonical, hashable definition of "a run".

Before this module existed, "a run" was assembled by hand at every call
site — CLI flags here, :class:`~repro.core.scenario.Scenario` kwargs
there, backend constructor arguments somewhere else — which made the
paper's run *families* (strong-scaling series, ablations, replication
ensembles) unscriptable.  A :class:`RunSpec` captures the full cross
product in one serialisable value:

    population spec × partition spec × disease/intervention params ×
    runtime config (backend / kernel / delivery / detector / seed)

and is consumed by every executor: ``repro run`` / ``repro simulate`` /
``repro validate`` on the CLI,
:meth:`~repro.core.simulator.SequentialSimulator.from_spec`,
:meth:`~repro.core.parallel.ParallelEpiSimdemics.from_spec`,
:meth:`~repro.smp.backend.SmpSimulator.from_spec`, the benchmarks, and
the sweep engine in :mod:`repro.lab`.

Specs round-trip through JSON and TOML and have a stable
:meth:`~RunSpec.content_hash` (BLAKE2b over the canonical JSON form),
which is what the :mod:`repro.lab` artifact cache keys populations and
partitions by — the same sub-spec can never be built twice without the
cache noticing.

>>> spec = RunSpec(population=PopulationSpec(n_persons=200), n_days=4)
>>> RunSpec.from_json(spec.to_json()) == spec
True
>>> spec.content_hash() == RunSpec.from_toml(spec.to_toml()).content_hash()
True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "PopulationSpec",
    "PartitionSpec",
    "RuntimeSpec",
    "RunSpec",
    "RunResult",
    "execute",
    "canonical_json",
    "content_hash",
]

_DIGEST_SIZE = 16  # 128-bit BLAKE2b, hex length 32


def canonical_json(value: Any) -> str:
    """The canonical serialised form hashes are computed over.

    Sorted keys, no whitespace, shortest-repr floats — two specs with
    the same canonical dict always produce the same bytes.

    >>> canonical_json({"b": 1, "a": [1.5, 2]})
    '{"a":[1.5,2],"b":1}'
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_hash(value: Any) -> str:
    """BLAKE2b hex digest of :func:`canonical_json` of ``value``.

    >>> len(content_hash({"n": 1}))
    32
    """
    return hashlib.blake2b(
        canonical_json(value).encode(), digest_size=_DIGEST_SIZE
    ).hexdigest()


def _prune(d: dict) -> dict:
    """Drop ``None`` values and empty dicts so canonical forms stay
    minimal (an unset knob and an absent knob hash identically)."""
    return {k: v for k, v in d.items() if v is not None and v != {}}


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PopulationSpec:
    """How to obtain the person–location graph.

    Five kinds, mirroring every construction path in the repo:

    ``generated``
        :func:`repro.synthpop.generate_population` with ``n_persons``
        plus optional :class:`~repro.synthpop.PopulationConfig`
        overrides in ``params``.
    ``streamed``
        :func:`repro.synthpop.generate_population_streamed` — the
        memory-bounded block-streamed generator.  ``params`` may carry
        ``block_persons`` (content-affecting RNG granularity, hashed);
        ``backing`` and ``chunk_persons`` are pure execution knobs and
        are **excluded** from the content hash — a RAM and a memmap
        build of the same spec are one artifact.
    ``state``
        :func:`repro.synthpop.state_population` for a Table-I state
        code at ``scale``.
    ``preset``
        a named shared preset — currently ``"heavy-tailed"``, the
        Zipf-skewed graph of :func:`repro.smp.presets.heavy_tailed_graph`
        that the SMP oracle, the kernel/scaling benchmarks and the lab
        all share (one builder, one cache key).
    ``file``
        a saved ``.npz`` population (not content-addressable, so the
        lab cache passes it through).

    >>> PopulationSpec(n_persons=100).build().n_persons
    100
    >>> PopulationSpec(kind="preset", preset="heavy-tailed",
    ...                n_persons=100, params={"n_locations": 10}).build().n_visits
    300
    >>> a = PopulationSpec(kind="streamed", n_persons=100, backing="ram")
    >>> b = PopulationSpec(kind="streamed", n_persons=100, backing="memmap")
    >>> a.content_hash() == b.content_hash()  # backing is execution-only
    True
    """

    kind: str = "generated"
    n_persons: int | None = None
    seed: int = 0
    name: str | None = None
    #: Table-I state code (kind="state").
    state: str | None = None
    scale: float | None = None
    #: preset name (kind="preset").
    preset: str | None = None
    #: saved-population path (kind="file").
    path: str | None = None
    #: extra builder kwargs (PopulationConfig overrides / preset knobs).
    params: dict = field(default_factory=dict)
    #: kind="streamed" residency: ram / memmap / auto (execution-only,
    #: never hashed).
    backing: str | None = None
    #: kind="streamed" flush-buffer size (execution-only, never hashed).
    chunk_persons: int | None = None

    _KINDS = ("generated", "streamed", "state", "preset", "file")
    _PRESETS = ("heavy-tailed",)
    _BACKINGS = ("ram", "memmap", "auto")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown population kind {self.kind!r}")
        if self.kind in ("generated", "streamed") and self.n_persons is None:
            raise ValueError(f"kind={self.kind!r} needs n_persons")
        if self.kind == "state" and self.state is None:
            raise ValueError("kind='state' needs a state code")
        if self.kind == "preset" and self.preset not in self._PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r} (expected one of {self._PRESETS})"
            )
        if self.kind == "file" and not self.path:
            raise ValueError("kind='file' needs a path")
        if self.backing is not None and self.backing not in self._BACKINGS:
            raise ValueError(
                f"backing must be one of {self._BACKINGS}, got {self.backing!r}"
            )
        if self.kind != "streamed" and (
            self.backing is not None or self.chunk_persons is not None
        ):
            raise ValueError("backing/chunk_persons only apply to kind='streamed'")

    @property
    def cacheable(self) -> bool:
        """File-backed populations are already artifacts; everything
        else is reproducible from the spec and therefore cacheable."""
        return self.kind != "file"

    def canonical(self) -> dict:
        """Content-defining fields only: ``backing`` and
        ``chunk_persons`` change *where* the arrays live and how they
        are flushed, never a single byte of content, so they are
        dropped before hashing."""
        d = _prune(dataclasses.asdict(self))
        d.pop("backing", None)
        d.pop("chunk_persons", None)
        return d

    def content_hash(self) -> str:
        return content_hash(self.canonical())

    def build(self):
        """Construct the graph (uncached — the lab cache wraps this)."""
        from repro import observe

        with observe.span("spec.pop_build", kind=self.kind):
            return self._build()

    def _build(self):
        if self.kind == "generated":
            from repro.synthpop import PopulationConfig, generate_population

            name = self.name or f"generated-{self.n_persons}"
            return generate_population(
                PopulationConfig(n_persons=self.n_persons, **self.params),
                self.seed, name=name,
            )
        if self.kind == "streamed":
            from repro.synthpop import PopulationConfig
            from repro.synthpop.stream import (
                DEFAULT_BLOCK_PERSONS,
                generate_population_streamed,
            )

            params = dict(self.params)
            block = params.pop("block_persons", DEFAULT_BLOCK_PERSONS)
            return generate_population_streamed(
                PopulationConfig(n_persons=self.n_persons, **params),
                self.seed,
                backing=self.backing or "auto",
                chunk_persons=self.chunk_persons,
                block_persons=block,
                name=self.name or f"streamed-{self.n_persons}",
            )
        if self.kind == "state":
            from repro.synthpop import state_population

            scale = 1e-3 if self.scale is None else self.scale
            return state_population(
                self.state, scale=scale, seed=self.seed, **self.params
            )
        if self.kind == "preset":
            from repro.smp.presets import heavy_tailed_graph

            kwargs = dict(self.params)
            if self.n_persons is not None:
                kwargs["n_persons"] = self.n_persons
            if "seed" not in kwargs:
                kwargs["seed"] = self.seed if self.seed else 7
            return heavy_tailed_graph(**kwargs)
        from repro.synthpop import load_population

        return load_population(self.path)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionSpec:
    """How to split the graph across PEs / worker processes.

    ``method`` is one of ``block`` (contiguous SMP ownership, the
    :func:`repro.smp.layout.block_partition` default), ``rr``
    (round-robin) or ``gp`` (the multilevel partitioner).  ``split``
    applies :func:`~repro.partition.split_heavy_locations` first —
    note the split transforms the *graph*, so :meth:`build` returns
    the (possibly new) graph alongside the partition.

    >>> PartitionSpec(method="rr", k=4).canonical()["method"]
    'rr'
    """

    method: str = "block"
    k: int = 1
    split: bool = False
    max_partitions: int = 4096

    _METHODS = ("block", "rr", "gp")

    def __post_init__(self) -> None:
        if self.method not in self._METHODS:
            raise ValueError(f"unknown partition method {self.method!r}")
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def canonical(self) -> dict:
        return _prune(dataclasses.asdict(self))

    def content_hash(self, population_hash: str = "") -> str:
        """Key for the partition artifact; includes the population's
        hash because a partition is meaningless without its graph."""
        return content_hash({"pop": population_hash, **self.canonical()})

    def build(self, graph):
        """Partition ``graph``; returns ``(graph, partition)`` because
        ``split=True`` replaces the graph."""
        from repro import observe

        with observe.span("spec.part_build", method=self.method, k=self.k):
            if self.split:
                from repro.partition import split_heavy_locations

                graph = split_heavy_locations(
                    graph, max_partitions=self.max_partitions
                ).graph
            if self.method == "block":
                from repro.smp.layout import block_partition

                part = block_partition(graph.n_persons, graph.n_locations, self.k)
            elif self.method == "rr":
                from repro.partition import round_robin_partition

                part = round_robin_partition(graph, self.k)
            else:
                from repro.partition import partition_bipartite

                part = partition_bipartite(graph, self.k)
            return graph, part


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeSpec:
    """Execution backend and its knobs.

    >>> RuntimeSpec(backend="smp", workers=2).canonical()["workers"]
    2
    """

    backend: str = "seq"
    workers: int = 1
    #: exposure kernel: flat / grouped / compiled (None = module default)
    kernel: str | None = None
    #: charm message delivery: direct / aggregated / tram
    delivery: str = "aggregated"
    #: charm phase detector: cd (completion) / qd (quiescence)
    sync: str = "cd"
    #: smp mailbox geometry
    ring_capacity: int = 8192
    burst_bytes: int | None = None

    _BACKENDS = ("seq", "charm", "smp")

    def __post_init__(self) -> None:
        if self.backend not in self._BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def canonical(self) -> dict:
        return _prune(dataclasses.asdict(self))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation run.

    The disease model is named (``"influenza"`` / ``"sir"``, with
    template kwargs in ``disease_params``) or inlined as PTTSL source
    prefixed ``"ptts:"``; interventions are the
    :func:`~repro.core.interventions.parse_intervention_script` DSL
    text (intervention objects hold trigger state, so the spec stores
    the *script* and builds a fresh schedule per run).

    ``scenario`` names a registered :mod:`repro.scenarios` entry (with
    overrides in ``scenario_params``); it supplies both the disease
    model and the model components, so ``disease`` / ``disease_params``
    must stay at their defaults when it is set.  DSL interventions
    still compose on top (components run first in the schedule).

    >>> s = RunSpec(population=PopulationSpec(n_persons=150), n_days=3)
    >>> s2 = dataclasses.replace(s, seed=1)
    >>> s.content_hash() != s2.content_hash()
    True
    >>> t = dataclasses.replace(s, scenario="turnover")
    >>> t.canonical()["scenario"]
    'turnover'
    """

    population: PopulationSpec
    partition: PartitionSpec | None = None
    n_days: int = 16
    seed: int = 0
    initial_infections: int = 10
    transmissibility: float = 2.0e-4
    disease: str = "influenza"
    disease_params: dict = field(default_factory=dict)
    interventions: str = ""
    scenario: str = ""
    scenario_params: dict = field(default_factory=dict)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be positive")
        if self.initial_infections < 0:
            raise ValueError("initial_infections must be non-negative")
        if not (
            self.disease in ("influenza", "sir") or self.disease.startswith("ptts:")
        ):
            raise ValueError(
                "disease must be 'influenza', 'sir' or 'ptts:<source>'"
            )
        if self.disease.startswith("ptts:") and self.disease_params:
            raise ValueError("disease_params only apply to named templates")
        if self.scenario_params and not self.scenario:
            raise ValueError("scenario_params need a scenario name")
        if self.scenario:
            if self.disease != "influenza" or self.disease_params:
                raise ValueError(
                    "a scenario supplies its own disease model; leave "
                    "disease/disease_params at their defaults"
                )
            from repro.scenarios import ScenarioSpec

            ScenarioSpec(self.scenario, self.scenario_params)

    # -- serialisation --------------------------------------------------
    def canonical(self) -> dict:
        d = {
            "population": self.population.canonical(),
            "partition": self.partition.canonical() if self.partition else None,
            "n_days": self.n_days,
            "seed": self.seed,
            "initial_infections": self.initial_infections,
            "transmissibility": self.transmissibility,
            "disease": self.disease,
            "disease_params": self.disease_params or None,
            "interventions": self.interventions or None,
            "scenario": self.scenario or None,
            "scenario_params": self.scenario_params or None,
            "runtime": self.runtime.canonical(),
        }
        return _prune(d)

    def content_hash(self) -> str:
        return content_hash(self.canonical())

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.canonical(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        d = dict(d)
        pop = PopulationSpec(**d.pop("population"))
        part = d.pop("partition", None)
        runtime = d.pop("runtime", None)
        return cls(
            population=pop,
            partition=PartitionSpec(**part) if part else None,
            runtime=RuntimeSpec(**runtime) if runtime else RuntimeSpec(),
            **d,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        return _toml_dumps(self.canonical())

    @classmethod
    def from_toml(cls, text: str) -> "RunSpec":
        import tomllib

        return cls.from_dict(tomllib.loads(text))

    @classmethod
    def load(cls, path) -> "RunSpec":
        """Read a spec file; ``.toml`` by suffix, JSON otherwise."""
        from pathlib import Path

        p = Path(path)
        text = p.read_text()
        return cls.from_toml(text) if p.suffix == ".toml" else cls.from_json(text)

    # -- construction ---------------------------------------------------
    def build_disease(self):
        from repro.core.disease import influenza_model, sir_model

        if self.scenario:
            from repro.scenarios import build_components

            return build_components(self.scenario, **self.scenario_params)[0]
        if self.disease == "influenza":
            return influenza_model(**self.disease_params)
        if self.disease == "sir":
            return sir_model(**self.disease_params)
        from repro.core.pttsl import parse_ptts

        return parse_ptts(self.disease[len("ptts:"):])

    def build_interventions(self):
        from repro.core.interventions import (
            InterventionSchedule,
            parse_intervention_script,
        )

        if not self.interventions:
            return InterventionSchedule()
        return parse_intervention_script(self.interventions)

    def build_scenario(self, graph=None):
        """The :class:`~repro.core.scenario.Scenario` this spec names.

        ``graph`` short-circuits the population build (pass a cached or
        pre-split graph).
        """
        from repro.core.interventions import InterventionSchedule
        from repro.core.scenario import Scenario
        from repro.core.transmission import TransmissionModel

        if graph is None:
            graph = self.population.build()
        if self.scenario:
            from repro.scenarios import build_components

            disease, components = build_components(
                self.scenario, **self.scenario_params
            )
            interventions = InterventionSchedule(
                components + list(self.build_interventions())
            )
        else:
            disease = self.build_disease()
            interventions = self.build_interventions()
        return Scenario(
            graph=graph,
            disease=disease,
            transmission=TransmissionModel(self.transmissibility),
            interventions=interventions,
            n_days=self.n_days,
            initial_infections=self.initial_infections,
            seed=self.seed,
        )

    def resolved_partition(self) -> PartitionSpec | None:
        """The partition actually used: the explicit one, or the
        backend default (block for smp, rr for charm, none for seq)
        sized to the worker count."""
        if self.partition is not None:
            return self.partition
        if self.runtime.backend == "smp":
            return PartitionSpec(method="block", k=self.runtime.workers)
        if self.runtime.backend == "charm":
            return PartitionSpec(method="rr", k=self.runtime.workers)
        return None

    def run(self, graph=None) -> "RunResult":
        """Execute this spec on its configured backend."""
        return execute(self, graph=graph)


# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Uniform executor output, independent of backend.

    :meth:`record` is the *deterministic* projection (no wall-clock
    fields) — the value the lab's result store persists and the
    replication-determinism tests compare byte for byte.
    """

    spec_hash: str
    backend: str
    n_persons: int
    new_infections: list[int]
    prevalence: list[float]
    total_infections: int
    peak_day: int
    final_histogram: dict[str, int]
    wall_seconds: float = 0.0
    n_workers: int = 1
    backpressure_events: int = 0
    #: population/partition artifact builds this run triggered (0 on a
    #: warm cache) — the lab aggregates these into its hit-rate stats
    builds: int = 0

    @property
    def attack_rate(self) -> float:
        return self.total_infections / max(1, self.n_persons)

    def record(self) -> dict:
        """Deterministic result payload (sorted keys, no timings)."""
        return {
            "spec_hash": self.spec_hash,
            "backend": self.backend,
            "n_persons": self.n_persons,
            "new_infections": list(self.new_infections),
            "prevalence": [float(p) for p in self.prevalence],
            "total_infections": self.total_infections,
            "peak_day": self.peak_day,
            "final_histogram": dict(sorted(self.final_histogram.items())),
        }


def _result_from(spec: RunSpec, sim_result, n_persons: int, wall: float,
                 **extra) -> RunResult:
    curve = sim_result.curve
    return RunResult(
        spec_hash=spec.content_hash(),
        backend=spec.runtime.backend,
        n_persons=n_persons,
        new_infections=list(curve.new_infections),
        prevalence=list(curve.prevalence),
        total_infections=sim_result.total_infections,
        peak_day=curve.peak_day if curve.n_days else -1,
        final_histogram=dict(sim_result.final_histogram),
        wall_seconds=wall,
        **extra,
    )


def execute(spec: RunSpec, graph=None, cache=None) -> RunResult:
    """Run ``spec`` end to end; the single dispatch point every
    frontend (CLI, lab pool, benchmarks) goes through.

    ``cache`` is an optional :class:`repro.lab.cache.ArtifactCache`;
    when given, population and partition builds are content-addressed
    through it (and ``RunResult.builds`` reports how many actually
    happened).
    """
    import time

    from repro import observe

    t0 = time.perf_counter()
    builds = 0
    with observe.span(
        "spec.execute", backend=spec.runtime.backend, hash=spec.content_hash()
    ):
        if graph is None:
            if cache is not None:
                before = cache.stats.builds
                graph = cache.population(spec.population)
                builds += cache.stats.builds - before
            else:
                graph = spec.population.build()

        rt = spec.runtime
        if rt.backend == "seq":
            from repro.core.simulator import SequentialSimulator

            result = SequentialSimulator.from_spec(spec, graph=graph).run()
            return _result_from(
                spec, result, graph.n_persons,
                time.perf_counter() - t0, builds=builds,
            )

        pspec = spec.resolved_partition()
        if cache is not None and spec.population.cacheable:
            before = cache.stats.builds
            graph, part = cache.partition(spec.population, pspec, graph)
            builds += cache.stats.builds - before
        else:
            graph, part = pspec.build(graph)

        if rt.backend == "smp":
            from repro.smp.backend import SmpSimulator

            sim = SmpSimulator.from_spec(spec, graph=graph, partition=part)
            out = sim.run()
            return _result_from(
                spec, out.result, graph.n_persons,
                time.perf_counter() - t0,
                n_workers=out.n_workers,
                backpressure_events=out.backpressure_events,
                builds=builds,
            )

        from repro.core.parallel import ParallelEpiSimdemics

        sim = ParallelEpiSimdemics.from_spec(spec, graph=graph, partition=part)
        out = sim.run()
        return _result_from(
            spec, out.result, graph.n_persons,
            time.perf_counter() - t0,
            n_workers=rt.workers, builds=builds,
        )


# ----------------------------------------------------------------------
def _toml_value(v) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, (int, float)):
        return json.dumps(v)
    if isinstance(v, str):
        return json.dumps(v)
    if isinstance(v, (list, tuple)):
        return "[" + ", ".join(_toml_value(x) for x in v) + "]"
    raise TypeError(f"unsupported TOML value {v!r}")


def _toml_dumps(d: dict, prefix: str = "") -> str:
    """Minimal TOML emitter for nested dicts of scalars/lists — all a
    canonical spec ever contains (round-trips through ``tomllib``)."""
    scalars = {k: v for k, v in sorted(d.items()) if not isinstance(v, dict)}
    tables = {k: v for k, v in sorted(d.items()) if isinstance(v, dict)}
    lines = [f"{k} = {_toml_value(v)}" for k, v in scalars.items()]
    out = "\n".join(lines)
    for k, v in tables.items():
        name = f"{prefix}{k}"
        body = _toml_dumps(v, prefix=name + ".")
        out += f"\n\n[{name}]\n{body}" if out else f"[{name}]\n{body}"
    return out
