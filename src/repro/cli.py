"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   synthesise a population and save it (``.npz``)
``info``       summarise a saved population
``simulate``   run the sequential simulator, print the epidemic curve
``run``        run a scenario on a chosen backend (seq / charm / smp)
``scenarios``  list/show the registered model-component scenarios
``partition``  partition a population and report quality metrics
``scale``      analytic strong-scaling sweep (Figure-13 style)
``validate``   differential sequential↔parallel oracle + golden traces
``profile``    trace the full pipeline, emit Chrome trace + timelines
``sweep``      parameter grid × replications over the lab worker pool
``results``    query (or replay from) a sweep's result store

Every command is a thin shell over the library API so scripted studies
can start from the shell and graduate to Python.  ``run``, ``simulate``,
``validate`` and ``sweep`` all assemble a :class:`repro.spec.RunSpec`
first — one canonical, hashable definition of "a run", serialisable to
JSON/TOML (``repro run --save-spec run.json`` / ``--spec run.json``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="EpiSimdemics scalability-study reproduction (Yeom et al., IPDPS 2014)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesise a population")
    g.add_argument("output", help="output .npz path")
    g.add_argument("--state", default="IA", help="Table-I state code or US")
    g.add_argument("--scale", type=float, default=1e-3, help="population scale factor")
    g.add_argument("--persons", type=int, default=None,
                   help="explicit person count (overrides --state/--scale)")
    g.add_argument("--seed", type=int, default=0)

    i = sub.add_parser("info", help="summarise a saved population")
    i.add_argument("population", help=".npz path")

    s = sub.add_parser("simulate", help="run the sequential simulator")
    s.add_argument("population", help=".npz path")
    s.add_argument("--days", type=int, default=120)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--index-cases", type=int, default=10)
    s.add_argument("--transmissibility", type=float, default=1e-4)
    s.add_argument("--interventions", default=None,
                   help="path to an intervention script")
    s.add_argument("--disease", default=None, help="path to a PTTSL disease model")

    r = sub.add_parser(
        "run", help="run a scenario on a chosen execution backend",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "large populations:\n"
            "  --backing memmap streams generation through disk-backed\n"
            "  arrays (bounded RAM at any --persons; see docs/scaling.md).\n"
            "  Content is bit-identical to --backing ram at equal seeds.\n"
            "    repro run --persons 10000000 --backing memmap --days 8\n"
        ),
    )
    r.add_argument("population", nargs="?", default=None,
                   help=".npz path (omit with --persons to synthesise one)")
    r.add_argument("--persons", type=int, default=None,
                   help="synthesise a population of this size instead of loading one")
    r.add_argument("--backing", choices=["ram", "memmap", "auto"], default=None,
                   help="use the streaming generator with this residency "
                        "(memmap = disk-backed arrays, bounded RAM; "
                        "auto = memmap at >=1M persons)")
    r.add_argument("--chunk-persons", type=int, default=None,
                   help="streaming flush-buffer size in persons "
                        "(execution knob; never changes content)")
    r.add_argument("--backend", choices=["seq", "charm", "smp"], default="smp",
                   help="seq = sequential reference; charm = simulated chare "
                        "runtime (virtual time); smp = real shared-memory "
                        "worker processes (measured wall time)")
    r.add_argument("--workers", type=int, default=2,
                   help="worker processes (smp) / PEs (charm)")
    r.add_argument("--days", type=int, default=16)
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--index-cases", type=int, default=10)
    r.add_argument("--transmissibility", type=float, default=2e-4)
    r.add_argument(
        "--kernel", choices=["flat", "grouped", "compiled"], default=None
    )
    r.add_argument("--scenario", default=None, metavar="NAME",
                   help="run a registered scenario (disease model + model "
                        "components); see 'repro scenarios list'")
    r.add_argument("--scenario-param", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="override one scenario parameter (repeatable, "
                        "values parsed as JSON)")
    r.add_argument("--spec", default=None, metavar="PATH",
                   help="load the full RunSpec from a .json/.toml file "
                        "(replaces the population/parameter flags)")
    r.add_argument("--save-spec", default=None, metavar="PATH",
                   help="also write the assembled RunSpec (.toml by suffix, "
                        "JSON otherwise)")

    n = sub.add_parser(
        "scenarios", help="list the registered model-component scenarios"
    )
    n.add_argument("action", nargs="?", default="list", choices=["list", "show"],
                   help="list = one line per scenario; show = full parameter "
                        "table for --name")
    n.add_argument("--name", default=None,
                   help="scenario to show (with action 'show')")

    q = sub.add_parser("partition", help="partition a population, report quality")
    q.add_argument("population", help=".npz path")
    q.add_argument("-k", type=int, default=32, help="number of partitions")
    q.add_argument("--method", choices=["rr", "gp"], default="gp")
    q.add_argument("--split", action="store_true", help="apply splitLoc first")
    q.add_argument("--max-partitions", type=int, default=4096,
                   help="splitLoc threshold parameter")

    c = sub.add_parser("scale", help="analytic strong-scaling sweep")
    c.add_argument("population", help=".npz path")
    c.add_argument("--cores", type=int, nargs="+",
                   default=[1, 16, 64, 256, 1024, 4096])
    c.add_argument("--strategy", choices=["rr", "gp-lpt"], default="gp-lpt")
    c.add_argument("--split", action="store_true")

    v = sub.add_parser(
        "validate",
        help="run the differential oracle matrix (and optionally golden traces)",
    )
    v.add_argument("--quick", action="store_true",
                   help="shorter run: 4 days instead of --days")
    v.add_argument("--persons", type=int, default=2000,
                   help="synthetic population size for the matrix")
    v.add_argument("--days", type=int, default=8)
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--golden", action="store_true",
                   help="also replay the recorded golden traces")
    v.add_argument("--refresh-golden", action="store_true",
                   help="re-record the golden traces instead of running the matrix")
    v.add_argument("--kernel", choices=["flat", "grouped", "compiled"],
                   default="flat",
                   help="exposure kernel for the parallel cells (the sequential "
                        "reference always runs 'grouped')")
    v.add_argument("--diff-kernels", action="store_true",
                   help="also run the kernel differentials — grouped-vs-flat, "
                        "plus flat-vs-compiled when a C toolchain is present "
                        "(ordered events, minutes, curve, final state)")
    v.add_argument("--smp", action="store_true",
                   help="also certify the shared-memory backend (real worker "
                        "processes) against the sequential reference")
    v.add_argument("--scenarios", action="store_true",
                   help="also run the scenario differential matrix: every "
                        "registered scenario across seq kernels, the charm "
                        "backend and smp worker counts")
    v.add_argument("--smp-workers", type=int, nargs="+", default=[1, 2, 4],
                   help="worker counts for the --smp cells")
    v.add_argument("--external", action="store_true",
                   help="also run the distribution-level oracle against the "
                        "independent FastSIR/Dijkstra baselines (with --quick: "
                        "tiny preset only, fewer replications, no heavy-tail check)")
    v.add_argument("--replications", type=int, default=30,
                   help="seeded replications per side for the --external ensembles")
    v.add_argument("--alpha", type=float, default=0.01,
                   help="familywise false-positive level of the --external tests")
    v.add_argument("--external-workers", type=int, default=1,
                   help="fork workers for the --external model replications "
                        "(any count is bit-identical)")

    f = sub.add_parser(
        "profile",
        help="run the full pipeline under the observer; write Projections-style reports",
    )
    f.add_argument("--preset", choices=["tiny", "small", "medium"], default="small",
                   help="scenario size (persons/days/machine; see repro.observe.PRESETS)")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--days", type=int, default=None,
                   help="override the preset's day count")
    f.add_argument("--out", default="profile-out",
                   help="directory for trace.json / timeline.txt / report.txt "
                        "('-' = print the report only, write nothing)")
    f.add_argument("--backend", choices=["charm", "smp"], default="charm",
                   help="charm = simulated runtime traced in virtual time; "
                        "smp = real worker processes, measured per-PE wall spans")
    f.add_argument("--workers", type=int, default=None,
                   help="smp worker count (default 2)")

    w = sub.add_parser(
        "sweep",
        help="run a parameter grid x seeded replications through the lab pool",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "inspecting before running:\n"
            "  --dry-run prints the fully expanded task list (grid point,\n"
            "  replicate, derived seed, spec hash) without executing, so a\n"
            "  sweep can be reviewed and its hashes pinned ahead of time:\n"
            "    repro sweep --grid transmissibility=1e-4,2e-4 --dry-run\n"
            "  After a sweep, query its store with 'repro results' (see\n"
            "  'repro results --help' and EXPERIMENTS.md).\n"
            "large populations:\n"
            "  --backing memmap makes every template population stream\n"
            "  through disk-backed arrays (docs/scaling.md).\n"
        ),
    )
    w.add_argument("--spec", default=None, metavar="PATH",
                   help="base RunSpec template (.json/.toml) the grid is "
                        "applied to (replaces the template flags below)")
    w.add_argument("--persons", type=int, default=2000,
                   help="template population size")
    w.add_argument("--days", type=int, default=16)
    w.add_argument("--pop-seed", type=int, default=0,
                   help="population-synthesis seed (shared by every run; "
                        "replicates vary only the run seed)")
    w.add_argument("--index-cases", type=int, default=10)
    w.add_argument("--transmissibility", type=float, default=2e-4)
    w.add_argument("--backend", choices=["seq", "charm", "smp"], default="seq",
                   help="backend each individual run executes on")
    w.add_argument("--run-workers", type=int, default=2,
                   help="in-run worker count for --backend smp/charm")
    w.add_argument("--grid", action="append", default=None,
                   metavar="PATH=V1,V2,...",
                   help="sweep a dotted spec path over comma-listed values "
                        "(repeatable, e.g. --grid transmissibility=1e-4,2e-4)")
    w.add_argument("--replications", type=int, default=None,
                   help="seeded replications per grid point "
                        "(default 3; 2 with --quick)")
    w.add_argument("--master-seed", type=int, default=0,
                   help="root of every derived run seed")
    w.add_argument("--workers", type=int, default=2,
                   help="lab pool size (0 = inline in this process, no forks)")
    w.add_argument("--out", default="sweep-out",
                   help="result-store directory (results.jsonl + manifest.json)")
    w.add_argument("--cache", default=None,
                   help="on-disk artifact-cache directory (persists "
                        "populations/partitions across sweeps)")
    w.add_argument("--name", default="sweep")
    w.add_argument("--quick", action="store_true",
                   help="tiny smoke sweep: 150 persons, 4 days, "
                        "2 transmissibilities x 2 replications")
    w.add_argument("--dry-run", action="store_true",
                   help="print the expanded task list without executing")
    w.add_argument("--backing", choices=["ram", "memmap", "auto"], default=None,
                   help="stream template populations with this residency "
                        "(memmap = disk-backed, bounded RAM)")

    t = sub.add_parser(
        "results", help="summarise, filter or replay a sweep's result store",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "filtering:\n"
            "  --point KEY=VALUE restricts output to records whose grid\n"
            "  point matches; repeat the flag to intersect filters:\n"
            "    repro results sweep-out --point transmissibility=2e-4\n"
            "  --replay INDEX re-executes a stored run from its embedded\n"
            "  spec and diffs the trajectory (exit 1 on divergence).\n"
            "  Worked examples live in EXPERIMENTS.md.\n"
        ),
    )
    t.add_argument("store", help="result-store directory (repro sweep --out)")
    t.add_argument("--replay", type=int, default=None, metavar="INDEX",
                   help="re-execute the stored run from its embedded spec and "
                        "diff the trajectory (exit 1 on divergence)")
    t.add_argument("--point", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="print records whose grid point matches (repeatable)")
    return p


def _cmd_generate(args) -> int:
    from repro.synthpop import (
        PopulationConfig,
        generate_population,
        save_population,
        state_population,
    )

    if args.persons is not None:
        graph = generate_population(
            PopulationConfig(n_persons=args.persons), args.seed,
            name=f"custom-{args.persons}",
        )
    else:
        graph = state_population(args.state, scale=args.scale, seed=args.seed)
    save_population(graph, args.output)
    s = graph.summary()
    print(f"wrote {args.output}: {s['people']:,} people, {s['visits']:,} visits, "
          f"{s['locations']:,} locations")
    return 0


def _cmd_info(args) -> int:
    from repro.synthpop import load_population

    graph = load_population(args.population)
    for k, v in graph.summary().items():
        print(f"{k:24s} {v}")
    ind = graph.location_in_degrees()
    print(f"{'max location in-degree':24s} {int(ind.max())}")
    print(f"{'max location visits':24s} {int(graph.location_visit_counts.max())}")
    return 0


def _cmd_simulate(args) -> int:
    from pathlib import Path

    from repro.spec import PopulationSpec, RunSpec, execute

    spec = RunSpec(
        population=PopulationSpec(kind="file", path=args.population),
        n_days=args.days,
        seed=args.seed,
        initial_infections=args.index_cases,
        transmissibility=args.transmissibility,
        disease=("ptts:" + Path(args.disease).read_text()) if args.disease
        else "influenza",
        interventions=Path(args.interventions).read_text()
        if args.interventions else "",
    )
    result = execute(spec)
    print(f"attack rate : {result.attack_rate:.1%}")
    print(f"peak day    : {result.peak_day}")
    print(f"total cases : {result.total_infections}")
    print("day,new_infections,prevalence")
    for d, (n, prev) in enumerate(zip(result.new_infections, result.prevalence)):
        print(f"{d},{n},{prev:.6f}")
    return 0


def _run_spec_from_args(args):
    """Assemble (or load) the RunSpec behind ``repro run``."""
    import json

    from repro.spec import PopulationSpec, RunSpec, RuntimeSpec

    if args.spec is not None:
        return RunSpec.load(args.spec)
    if (args.population is None) == (args.persons is None):
        return None
    if args.persons is not None:
        if args.backing is not None or args.chunk_persons is not None:
            population = PopulationSpec(
                kind="streamed", n_persons=args.persons, seed=args.seed,
                name=f"run-{args.persons}", backing=args.backing,
                chunk_persons=args.chunk_persons,
            )
        else:
            population = PopulationSpec(
                n_persons=args.persons, seed=args.seed, name=f"run-{args.persons}"
            )
    else:
        population = PopulationSpec(kind="file", path=args.population)
    scenario_params = {}
    for token in args.scenario_param or []:
        key, eq, value = token.partition("=")
        if not eq:
            raise ValueError(
                f"--scenario-param expects KEY=VALUE (got {token!r})"
            )
        try:
            scenario_params[key.strip()] = json.loads(value)
        except ValueError:
            scenario_params[key.strip()] = value
    return RunSpec(
        population=population,
        n_days=args.days,
        seed=args.seed,
        initial_infections=args.index_cases,
        transmissibility=args.transmissibility,
        scenario=args.scenario or "",
        scenario_params=scenario_params,
        runtime=RuntimeSpec(
            backend=args.backend, workers=args.workers, kernel=args.kernel
        ),
    )


def _cmd_run(args) -> int:
    import time
    from pathlib import Path

    spec = _run_spec_from_args(args)
    if spec is None:
        print("error: give a population path or --persons (exactly one)",
              file=sys.stderr)
        return 2
    if args.save_spec:
        text = (
            spec.to_toml() if args.save_spec.endswith(".toml")
            else spec.to_json(indent=2)
        )
        Path(args.save_spec).write_text(text + "\n")
        print(f"wrote spec   : {args.save_spec} (hash {spec.content_hash()})")

    graph = spec.population.build()
    backend = spec.runtime.backend
    t0 = time.perf_counter()
    if backend == "seq":
        from repro.core import SequentialSimulator

        result = SequentialSimulator.from_spec(spec, graph=graph).run()
        timing = f"wall time    : {time.perf_counter() - t0:.3f}s (1 process)"
    elif backend == "smp":
        from repro.smp import SmpSimulator

        out = SmpSimulator.from_spec(spec, graph=graph).run()
        result = out.result
        per_day = (
            sum(p.total for p in out.phase_times) / max(1, len(out.phase_times))
        )
        timing = (
            f"wall time    : {out.wall_seconds:.3f}s on {out.n_workers} worker "
            f"process(es) ({per_day * 1e3:.1f}ms/day, "
            f"{out.backpressure_events} ring stalls)"
        )
    else:
        from repro.core.parallel import ParallelEpiSimdemics

        graph, part = spec.resolved_partition().build(graph)
        out = ParallelEpiSimdemics.from_spec(spec, graph=graph, partition=part).run()
        result = out.result
        timing = (
            f"virtual time : {out.total_virtual_time:.3f}s modelled on "
            f"{spec.runtime.workers} PE(s) (wall {time.perf_counter() - t0:.3f}s)"
        )

    curve = result.curve
    print(f"backend      : {backend}")
    print(timing)
    print(f"attack rate  : {curve.attack_rate(graph.n_persons):.1%}")
    print(f"peak day     : {curve.peak_day}")
    print(f"total cases  : {result.total_infections}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenarios import get, names

    if args.action == "show":
        if not args.name:
            print("error: 'scenarios show' needs --name", file=sys.stderr)
            return 2
        defn = get(args.name)
        print(f"{defn.name}: {defn.description}")
        for key, value in sorted(defn.defaults.items()):
            print(f"  {key:<22} {value}")
        return 0
    width = max(len(n) for n in names())
    for name in names():
        defn = get(name)
        print(f"{name:<{width}}  {defn.description}")
    return 0


def _cmd_partition(args) -> int:
    from repro.analysis.speedup import upper_bound_speedup
    from repro.partition import (
        edge_cut,
        imbalance,
        partition_bipartite,
        partition_loads,
        per_partition_edge_cut,
        round_robin_partition,
        split_heavy_locations,
    )
    from repro.synthpop import load_population

    graph = load_population(args.population)
    if args.split:
        sr = split_heavy_locations(graph, max_partitions=args.max_partitions)
        print(f"splitLoc: split {sr.n_split} locations "
              f"({graph.n_locations} -> {sr.graph.n_locations})")
        graph = sr.graph
    bp = (
        round_robin_partition(graph, args.k)
        if args.method == "rr"
        else partition_bipartite(graph, args.k)
    )
    loads = partition_loads(graph, bp)
    ratios = imbalance(loads)
    print(f"method                 {bp.method}")
    print(f"partitions             {args.k}")
    print(f"person-phase imbalance {ratios[0]:.3f}")
    print(f"location imbalance     {ratios[1]:.3f}")
    print(f"S_ub (location phase)  {upper_bound_speedup(loads[:, 1]):.1f}")
    print(f"edge cut               {edge_cut(graph, bp)}")
    print(f"max per-partition cut  {int(per_partition_edge_cut(graph, bp).max())}")
    return 0


def _cmd_scale(args) -> int:
    from repro.analysis.scaling import PhaseCostModel, speedup_table, strong_scaling_curve
    from repro.analysis.speedup import lpt_location_partition
    from repro.loadmodel.workload import WorkloadModel
    from repro.partition import round_robin_partition, split_heavy_locations
    from repro.partition.quality import BipartitePartition
    from repro.synthpop import load_population

    graph = load_population(args.population)
    if args.split:
        graph = split_heavy_locations(graph, max_partitions=max(args.cores)).graph
    if args.strategy == "rr":
        provider = lambda n: round_robin_partition(graph, n)  # noqa: E731
    else:
        loads = WorkloadModel().location_weights(graph).astype(float)

        def provider(n_pes):
            return BipartitePartition(
                person_part=np.arange(graph.n_persons, dtype=np.int64) % n_pes,
                location_part=lpt_location_partition(loads, n_pes),
                k=n_pes,
                method="GP~",
            )

    points = strong_scaling_curve(graph, provider, args.cores, PhaseCostModel())
    print(speedup_table(points))
    return 0


def _cmd_validate(args) -> int:
    from repro.spec import PopulationSpec
    from repro.validate.golden import GOLDEN_CASES, refresh_all, verify
    from repro.validate.oracle import run_kernel_differential, run_matrix

    if args.refresh_golden:
        for path in refresh_all():
            print(f"recorded {path}")
        return 0

    graph = PopulationSpec(
        n_persons=args.persons, seed=args.seed, name=f"validate-{args.persons}"
    ).build()
    n_days = 4 if args.quick else args.days
    report = run_matrix(
        graph,
        n_days=n_days,
        seed=args.seed,
        kernel=args.kernel,
        progress=lambda line: print("  " + line),
    )
    print(report.format())
    ok = report.all_equal

    if args.diff_kernels:
        kreport = run_kernel_differential(graph, n_days=n_days, seed=args.seed)
        print(kreport.format())
        ok = ok and kreport.equal
        from repro.core import ckernel

        if ckernel.available():
            creport = run_kernel_differential(
                graph, n_days=n_days, seed=args.seed,
                kernel_a="flat", kernel_b="compiled",
            )
            print(creport.format())
            ok = ok and creport.equal
        else:
            print(
                "kernel differential flat-vs-compiled: SKIPPED "
                f"(no C toolchain: {ckernel.build_error()})"
            )

    if args.smp:
        from repro.validate.oracle import run_smp_matrix

        sreport = run_smp_matrix(
            workers=tuple(args.smp_workers),
            n_days=n_days,
            seed=args.seed,
            kernel=args.kernel,
            progress=lambda line: print("  " + line),
        )
        print(sreport.format())
        ok = ok and sreport.all_equal

    if args.scenarios:
        from repro.validate.oracle import run_scenario_matrix

        screport = run_scenario_matrix(
            workers=(1, 2) if args.quick else (1, 2, 4),
            n_days=n_days,
            seed=args.seed,
            kernel=args.kernel,
            progress=lambda line: print("  " + line),
        )
        print(screport.format())
        ok = ok and screport.all_equal

    if args.external:
        from repro.validate.external import run_external_oracle

        ereport = run_external_oracle(
            presets=("tiny",) if args.quick else ("tiny", "heavy"),
            n_days=n_days,
            replications=max(8, args.replications // 3) if args.quick else args.replications,
            seed=args.seed,
            alpha=args.alpha,
            workers=args.external_workers,
            heavy_tail=not args.quick,
            progress=lambda line: print("  " + line),
        )
        print(ereport.format())
        ok = ok and ereport.all_equal

    if args.golden:
        for case in GOLDEN_CASES:
            diffs = verify(case)
            if diffs:
                ok = False
                print(f"golden {case.name}: {len(diffs)} difference(s)")
                for d in diffs[:5]:
                    print(f"  {d}")
            else:
                print(f"golden {case.name}: trace holds")
    return 0 if ok else 1


def _cmd_profile(args) -> int:
    from repro.observe import run_profile

    out_dir = None if args.out == "-" else args.out
    report = run_profile(
        preset=args.preset, seed=args.seed, days=args.days, out_dir=out_dir,
        backend=args.backend, workers=args.workers,
    )
    print(report.summary())
    if report.paths:
        print()
        for name, path in report.paths.items():
            print(f"wrote {name:<9} {path}")
        print("open trace.json in https://ui.perfetto.dev or chrome://tracing")
    return 0 if report.curves_identical else 1


def _parse_values(text: str) -> list:
    """Comma-separated grid values; each parsed as JSON, else a string."""
    import json

    out = []
    for token in text.split(","):
        token = token.strip()
        try:
            out.append(json.loads(token))
        except ValueError:
            out.append(token)
    return out


def _cmd_sweep(args) -> int:
    from repro.lab import SweepConfig, expand, run_sweep
    from repro.spec import PopulationSpec, RunSpec, RuntimeSpec

    if args.spec is not None:
        base = RunSpec.load(args.spec)
    else:
        persons = 150 if args.quick else args.persons
        if args.backing is not None:
            population = PopulationSpec(
                kind="streamed", n_persons=persons, seed=args.pop_seed,
                name=f"sweep-{persons}", backing=args.backing,
            )
        else:
            population = PopulationSpec(
                n_persons=persons, seed=args.pop_seed, name=f"sweep-{persons}",
            )
        base = RunSpec(
            population=population,
            n_days=4 if args.quick else args.days,
            initial_infections=args.index_cases,
            transmissibility=args.transmissibility,
            runtime=RuntimeSpec(
                backend=args.backend,
                workers=args.run_workers if args.backend != "seq" else 1,
            ),
        )

    grid = {}
    for token in args.grid or []:
        path, eq, values = token.partition("=")
        if not eq or not values:
            print(f"error: --grid expects PATH=V1,V2,... (got {token!r})",
                  file=sys.stderr)
            return 2
        grid[path.strip()] = _parse_values(values)
    if args.quick and not grid:
        grid = {"transmissibility": [2e-4, 4e-4]}

    replications = args.replications
    if replications is None:
        replications = 2 if args.quick else 3
    config = SweepConfig(
        base=base, grid=grid, replications=replications,
        master_seed=args.master_seed, name=args.name,
    )

    if args.dry_run:
        print(f"sweep {config.name!r}: {config.n_runs} runs "
              f"({config.n_points} grid points x {config.replications} "
              f"replications)")
        for task in expand(config):
            point = ", ".join(f"{k}={v}" for k, v in task.point.items()) or "-"
            print(f"  [{task.index:>3}] {point:<40} replicate {task.replicate} "
                  f"seed {task.spec.seed} hash {task.spec.content_hash()}")
        return 0

    report = run_sweep(
        config, workers=args.workers, store_dir=args.out, cache_dir=args.cache,
    )
    print(report.format())
    return 0


def _cmd_results(args) -> int:
    import json

    from repro.lab import ResultStore, replay

    store = ResultStore(args.store)
    if args.replay is not None:
        outcome = replay(store, args.replay)
        print(outcome.format())
        return 0 if outcome.match else 1
    if args.point:
        filters = {}
        for token in args.point:
            key, eq, value = token.partition("=")
            if not eq:
                print(f"error: --point expects KEY=VALUE (got {token!r})",
                      file=sys.stderr)
                return 2
            try:
                filters[key.strip()] = json.loads(value)
            except ValueError:
                filters[key.strip()] = value
        for r in store.filter(**filters):
            print(f"[{r['index']:>3}] replicate {r.get('replicate', '?')} "
                  f"seed {r.get('seed', '?')} "
                  f"total infections {r.get('total_infections', '?')} "
                  f"spec {r.get('spec_hash', '?')}")
        return 0
    print(store.format_summary())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "simulate": _cmd_simulate,
    "run": _cmd_run,
    "scenarios": _cmd_scenarios,
    "partition": _cmd_partition,
    "scale": _cmd_scale,
    "validate": _cmd_validate,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
    "results": _cmd_results,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
