"""Chares, chare arrays, proxies.

Mirrors the Charm++ abstractions of paper §II-C: applications
over-decompose into many more chares than PEs; arrays of chares are
mapped to PEs by a placement vector (round-robin or partitioner-driven,
§III-B); entry methods are invoked by messages.

In this simulator an entry method is a plain Python method.  Inside an
entry method the chare may:

* ``self.charge(seconds)``   — account modelled compute time,
* ``self.send(...)``         — message another chare,
* ``self.send_via(...)``     — message through an aggregation channel,
* ``self.contribute(...)``   — join a reduction,
* ``self.now()``             — read the PE's virtual clock.

State mutation is real (the epidemic actually runs); only time is
modelled.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["Chare", "ChareArray", "ChareProxy"]


class Chare:
    """Base class for simulated chares.

    Instances are created by :class:`ChareArray`; the runtime injects
    ``runtime``, ``array_name``, ``index`` and ``pe`` before any entry
    method runs.
    """

    runtime: "RuntimeSimulator"
    array_name: str
    index: int
    pe: int

    # -- services available inside entry methods -----------------------
    def charge(self, seconds: float) -> None:
        """Charge modelled compute time to the current entry execution."""
        self.runtime._charge(seconds)

    def now(self) -> float:
        """Virtual time at which the current entry execution started."""
        return self.runtime.current_time

    def send(
        self,
        array: str,
        index: int,
        method: str,
        payload: Any = None,
        payload_bytes: int = 8,
    ) -> None:
        """Send a message to another chare (departs when this entry ends)."""
        self.runtime._send_from_entry(self.pe, array, index, method, payload, payload_bytes)

    def send_via(
        self,
        channel: str,
        array: str,
        index: int,
        method: str,
        payload: Any = None,
        payload_bytes: int = 8,
    ) -> None:
        """Send through a named aggregation channel (paper §IV-C)."""
        self.runtime._send_aggregated(self.pe, channel, array, index, method, payload, payload_bytes)

    def contribute(self, reduction: str, value: Any) -> None:
        """Contribute this chare's share to a named reduction."""
        self.runtime._contribute(self.pe, reduction, value)


class ChareProxy:
    """Handle for messaging an array element from outside any chare."""

    def __init__(self, runtime: "RuntimeSimulator", array: str, index: int):
        self._runtime = runtime
        self._array = array
        self._index = index

    def invoke(self, method: str, payload: Any = None, payload_bytes: int = 8) -> None:
        """Inject a message from 'outside' (e.g. program main on PE 0)."""
        self._runtime.inject(self._array, self._index, method, payload, payload_bytes)


class ChareArray:
    """A distributed array of chares with an explicit placement.

    Parameters
    ----------
    name:
        Array identifier used in message addressing.
    factory:
        Callable ``index -> Chare`` constructing each element.
    placement:
        Array of PE ids, one per element — the object-to-PE mapping the
        paper's data-distribution strategies (RR, GP, …) produce.
    """

    def __init__(self, name: str, factory: Callable[[int], Chare], placement: np.ndarray):
        self.name = name
        self.placement = np.asarray(placement, dtype=np.int64)
        if self.placement.ndim != 1 or self.placement.size == 0:
            raise ValueError("placement must be a non-empty 1-D array of PE ids")
        self.elements: dict[int, Chare] = {}
        self._factory = factory

    @property
    def n_elements(self) -> int:
        return int(self.placement.size)

    def pe_of(self, index: int) -> int:
        return int(self.placement[index])

    def element(self, index: int) -> Chare:
        """Element accessor (constructed lazily)."""
        el = self.elements.get(index)
        if el is None:
            if not (0 <= index < self.n_elements):
                raise IndexError(f"{self.name}[{index}] out of range")
            el = self._factory(index)
            el.array_name = self.name
            el.index = index
            el.pe = self.pe_of(index)
            self.elements[index] = el
        return el

    def elements_on_pe(self, pe: int) -> list[int]:
        return np.flatnonzero(self.placement == pe).tolist()
