"""Memory-footprint model (paper §IV-A, benefit iii).

"Sharing of read-only data across all threads reduces memory
consumption": in non-SMP mode every core runs its own OS process and
holds a private copy of the read-only simulation data (the graph,
disease model, intervention tables); in SMP mode one copy per *process*
serves all of its worker threads.  On a 16-core node with 2 processes
that is an 8× reduction of the read-only footprint — the difference
between fitting a state in node memory or not, which the paper calls
out as one of SMP mode's three benefits.

This module estimates per-node memory for a scenario under a machine
configuration; ``bench_sec4_ablations`` reports it next to the SMP
timing ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charm.machine import MachineConfig
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["MemoryModel", "MemoryReport"]

#: Packed bytes per visit record in the in-memory graph (ids, times,
#: sublocation, type), matching the optimised layout of §IV.
VISIT_STATE_BYTES = 20
PERSON_STATE_BYTES = 24  # health state, dwell, treatment, home, age
LOCATION_STATE_BYTES = 16  # sublocation table entry + type + bookkeeping


@dataclass(frozen=True)
class MemoryReport:
    """Estimated per-node memory (bytes)."""

    read_only_per_copy: int
    copies_per_node: int
    mutable_per_node: int

    @property
    def read_only_per_node(self) -> int:
        return self.read_only_per_copy * self.copies_per_node

    @property
    def total_per_node(self) -> int:
        return self.read_only_per_node + self.mutable_per_node

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.total_per_node / 2**20:.1f} MiB/node "
            f"({self.copies_per_node} read-only copies of "
            f"{self.read_only_per_copy / 2**20:.1f} MiB)"
        )


@dataclass(frozen=True)
class MemoryModel:
    """Estimates scenario memory under a machine configuration."""

    visit_bytes: int = VISIT_STATE_BYTES
    person_bytes: int = PERSON_STATE_BYTES
    location_bytes: int = LOCATION_STATE_BYTES
    #: runtime overhead per chare (queues, tables)
    chare_overhead: int = 4096

    def read_only_bytes(self, graph: PersonLocationGraph) -> int:
        """One copy of the immutable simulation data."""
        return (
            graph.n_visits * self.visit_bytes
            + graph.n_persons * 8  # schedule index
            + graph.n_locations * self.location_bytes
        )

    def mutable_bytes(self, graph: PersonLocationGraph, n_chares: int) -> int:
        """Writable per-entity state plus chare bookkeeping."""
        return (
            graph.n_persons * self.person_bytes
            + graph.n_locations * 8
            + n_chares * self.chare_overhead
        )

    def per_node(
        self,
        graph: PersonLocationGraph,
        machine: MachineConfig,
        n_chares: int | None = None,
    ) -> MemoryReport:
        """Per-node footprint; data assumed evenly spread across nodes.

        ``copies_per_node`` is the §IV-A effect: processes per node in
        SMP mode, cores per node otherwise.
        """
        if n_chares is None:
            n_chares = machine.n_pes * 2
        copies = (
            machine.processes_per_node if machine.smp else machine.cores_per_node
        )
        nodes = machine.n_nodes
        # Read-only data is partitioned across nodes but each process on
        # a node maps its node-share privately.
        per_copy = self.read_only_bytes(graph) // nodes
        mutable = self.mutable_bytes(graph, n_chares) // nodes
        return MemoryReport(
            read_only_per_copy=per_copy,
            copies_per_node=copies,
            mutable_per_node=mutable,
        )
