"""Completion detection and quiescence detection (paper §IV-B).

After the person phase, locations must not start computing before every
visit message has arrived — but receivers do not know how many messages
to expect, so a plain barrier is insufficient.  Charm++ offers two
mechanisms:

* **Quiescence detection (QD)** — detects that *no* message is in
  flight anywhere in the application.  Global by construction, and the
  standard algorithm needs two consecutive *clean* waves (counts equal
  and unchanged) to rule out in-flight messages crossing a wave.
* **Completion detection (CD)** — scoped to a known set of producers
  and consumers: completion holds when all producers have announced
  done and globally produced == consumed.  One clean wave suffices,
  because counting produced-at-send / consumed-at-receive means
  "equal ⇒ nothing in flight".

Both are implemented here as *real wave protocols* over the runtime's
PE tree: a wave is a broadcast ("report your counters") followed by a
reduction of ``(produced, consumed, producers_done)`` triples; every
hop is a simulated message paying tree-hop costs.  The QD/CD difference
the paper exploits — fewer waves, module-local scope — shows up
directly in virtual time (see ``benchmarks/bench_sec4_ablations.py``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.charm.chare import Chare
from repro.charm.messages import CONTROL_BYTES
from repro.charm.scheduler import LOCAL_OP_OVERHEAD, RuntimeSimulator

__all__ = ["SyncProtocol", "CompletionDetector", "QuiescenceDetector"]


def _add3(a: tuple, b: tuple) -> tuple:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


class _DetectorHost(Chare):
    """Root-side wave driver for one detector (lives on PE 0)."""

    def __init__(self, detector: "SyncProtocol"):
        self.detector = detector

    def start(self, _payload: Any = None) -> None:
        self.charge(LOCAL_OP_OVERHEAD)
        self.detector._launch_wave(self)

    def on_wave(self, totals: tuple) -> None:
        self.charge(LOCAL_OP_OVERHEAD)
        self.detector._wave_result(self, totals)


class SyncProtocol:
    """Shared machinery of CD/QD wave protocols.

    Parameters
    ----------
    runtime:
        The runtime to attach to (PE agents are created if needed).
    name:
        Unique detector name; also keys the produce/consume counters.
    required_clean_waves:
        Consecutive clean waves needed to declare completion (1 for CD,
        2 for QD).
    """

    def __init__(self, runtime: RuntimeSimulator, name: str, required_clean_waves: int):
        self.runtime = runtime
        self.name = name
        self.required_clean_waves = required_clean_waves
        n = runtime.machine.n_pes
        self.produced = np.zeros(n, dtype=np.int64)
        self.consumed = np.zeros(n, dtype=np.int64)
        self.done_flag = np.zeros(n, dtype=np.int64)
        self.n_producers = 0
        self.target: tuple[str, int, str] | None = None
        self._clean_streak = 0
        self._last_totals: tuple | None = None
        self.waves_run = 0
        self.completions = 0
        runtime.ensure_pe_agents()
        if name in runtime._detectors:
            raise ValueError(f"detector {name!r} already exists")
        runtime._detectors[name] = self
        host_name = f"__sync_host_{name}"
        runtime.create_array(host_name, lambda i: _DetectorHost(self), np.zeros(1, dtype=np.int64))
        self._host_array = host_name
        runtime.register_reduction(
            f"__sync_{name}",
            combine=_add3,
            arrays=["__pe__"],
            target=(host_name, 0, "on_wave"),
        )

    # -- application-facing API -----------------------------------------
    def begin_phase(self, n_producers: int, target: tuple[str, int, str]) -> None:
        """Arm the detector for a phase with a known producer count.

        ``target`` is the chare entry notified on completion.
        """
        self.produced[:] = 0
        self.consumed[:] = 0
        self.done_flag[:] = 0
        self.n_producers = n_producers
        self.target = target
        self._clean_streak = 0
        self._last_totals = None

    def produce(self, n: int = 1) -> None:
        """Count ``n`` messages produced (call inside an entry method)."""
        self.produced[self.runtime._exec_pe] += n

    def consume(self, n: int = 1) -> None:
        """Count ``n`` messages consumed (call inside an entry method)."""
        self.consumed[self.runtime._exec_pe] += n

    def producer_done(self) -> None:
        """A producer chare announces it finished sending; the last one
        triggers the first detection wave."""
        pe = self.runtime._exec_pe
        self.done_flag[pe] += 1
        if self.runtime.validate and int(self.done_flag.sum()) > self.n_producers:
            from repro.validate.invariants import InvariantViolation

            raise InvariantViolation(
                f"detector {self.name!r}: {int(self.done_flag.sum())} producer_done "
                f"announcements but only {self.n_producers} producers registered"
            )
        if int(self.done_flag.sum()) == self.n_producers:
            # Kick the host: a real message to PE 0 starts the waves.
            _current_chare_send(self.runtime, self._host_array, "start")

    # -- wave protocol ----------------------------------------------------
    def local_counts(self, pe: int) -> tuple:
        return (int(self.produced[pe]), int(self.consumed[pe]), int(self.done_flag[pe]))

    def _launch_wave(self, host: _DetectorHost) -> None:
        self.waves_run += 1
        host.runtime.broadcast("__pe__", "sync_ask", self.name, CONTROL_BYTES)

    def _wave_result(self, host: _DetectorHost, totals: tuple) -> None:
        produced, consumed, done = totals
        # CD counts produced-at-send / consumed-at-receive within one
        # module, so consumed can never exceed produced once producers are
        # done; a higher count means corrupted counters.  (QD wave totals
        # fold in other modules' in-flight counters non-atomically, where
        # a transient excess is legitimate — that is why QD needs two
        # clean waves — so the check is scoped to CD.)
        if self.runtime.validate and self.required_clean_waves == 1 and consumed > produced:
            from repro.validate.invariants import InvariantViolation

            raise InvariantViolation(
                f"detector {self.name!r}: {consumed} messages consumed but only "
                f"{produced} produced — a phantom consumption corrupted the counters"
            )
        clean = done >= self.n_producers and produced == consumed
        if clean and (self.required_clean_waves == 1 or totals == self._last_totals):
            self._clean_streak += 1
        elif clean:
            self._clean_streak = 1
        else:
            self._clean_streak = 0
        self._last_totals = totals
        if self._clean_streak >= self.required_clean_waves:
            self.completions += 1
            if self.target is None:
                raise RuntimeError(f"detector {self.name!r} completed without a target")
            array, index, method = self.target
            host.send(array, index, method, None, CONTROL_BYTES)
        else:
            self._launch_wave(host)


def _current_chare_send(runtime: RuntimeSimulator, host_array: str, method: str) -> None:
    """Send to the detector host from within the current entry execution."""
    runtime._send_from_entry(runtime._exec_pe, host_array, 0, method, None, CONTROL_BYTES)


class CompletionDetector(SyncProtocol):
    """Module-scoped completion detection: one clean wave suffices."""

    def __init__(self, runtime: RuntimeSimulator, name: str):
        super().__init__(runtime, name, required_clean_waves=1)


class QuiescenceDetector(SyncProtocol):
    """Application-global quiescence: two consecutive identical clean waves.

    QD cannot be scoped to a module — that is the paper's motivation
    for CD (§IV-B): quiescence means *no message anywhere in the
    application*.  Accordingly this detector's waves observe the
    produced/consumed counters of **every** detector on the runtime,
    not just its own: when several simulations share the machine (the
    paper's planned replicated-ensemble mode, :class:`ParallelEnsemble`),
    one replica's quiescence wave stays dirty while any other replica
    has traffic in flight, coupling their progress.  It also needs two
    consecutive identical clean waves, the standard guard against
    messages crossing a wave.
    """

    def __init__(self, runtime: RuntimeSimulator, name: str = "qd"):
        super().__init__(runtime, name, required_clean_waves=2)

    def local_counts(self, pe: int) -> tuple:
        produced = consumed = 0
        for det in self.runtime._detectors.values():
            produced += int(det.produced[pe])
            consumed += int(det.consumed[pe])
        return (produced, consumed, int(self.done_flag[pe]))
