"""Measurement-based and predictive load balancing (paper §VII).

The paper's future-work section: the Charm++ LB framework rebalances
chares using *measured* costs under the principle of persistence — but
EpiSimdemics' dynamic load (interaction counts follow the epidemic
wave) breaks persistence, so the authors propose driving LB with
*application-specific prediction* instead.  This module implements
both, against the runtime simulator's per-chare cost tracking:

* :func:`greedy_lb` — Charm++ GreedyLB: globally re-place all chares by
  LPT on their (measured or predicted) costs;
* :func:`refine_lb` — Charm++ RefineLB: move chares off overloaded PEs
  only, minimising migration volume;
* :class:`MigrationCostModel` — the virtual-time price of a migration
  step (barrier + state transfer).

`repro.core.parallel.ParallelEpiSimdemics` wires these in via its
``lb_period`` / ``lb_strategy`` options; the ablation bench
``bench_sec7_load_balancing`` measures the payoff.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.charm.machine import Machine
from repro.charm.network import NetworkModel

__all__ = ["greedy_lb", "refine_lb", "MigrationCostModel"]


def greedy_lb(costs: np.ndarray, n_pes: int) -> np.ndarray:
    """GreedyLB: LPT assignment of all chares by descending cost.

    Ignores current placement entirely — best balance, most migration.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if n_pes < 1:
        raise ValueError("need at least one PE")
    placement = np.empty(costs.size, dtype=np.int64)
    heap = [(0.0, pe) for pe in range(n_pes)]
    for c in np.argsort(-costs, kind="stable"):
        load, pe = heapq.heappop(heap)
        placement[c] = pe
        heapq.heappush(heap, (load + costs[c], pe))
    return placement


def refine_lb(
    costs: np.ndarray,
    placement: np.ndarray,
    n_pes: int,
    tolerance: float = 1.05,
) -> np.ndarray:
    """RefineLB: move chares off PEs above ``tolerance``×average only.

    Keeps most chares where they are (cheap migration); each overloaded
    PE sheds its smallest chares to the currently least-loaded PE until
    it fits.
    """
    costs = np.asarray(costs, dtype=np.float64)
    placement = np.asarray(placement, dtype=np.int64).copy()
    if costs.shape != placement.shape:
        raise ValueError("costs and placement must align")
    pe_load = np.bincount(placement, weights=costs, minlength=n_pes)
    target = costs.sum() / n_pes * tolerance
    for pe in np.argsort(-pe_load):
        if pe_load[pe] <= target:
            break
        mine = np.flatnonzero(placement == pe)
        # Shed smallest-first: keeps the big (expensive-to-move, likely
        # persistent) chares in place.
        for c in mine[np.argsort(costs[mine], kind="stable")]:
            if pe_load[pe] <= target:
                break
            dst = int(np.argmin(pe_load))
            if dst == pe or pe_load[dst] + costs[c] > target:
                continue
            placement[c] = dst
            pe_load[pe] -= costs[c]
            pe_load[dst] += costs[c]
    return placement


@dataclass(frozen=True)
class MigrationCostModel:
    """Virtual-time price of one LB step.

    An LB step is bulk-synchronous: measure/decide (small), then
    migrate chare state.  We charge a global delay of the decision cost
    plus the worst per-PE inbound transfer volume over the network.
    """

    #: serialised state per migrated chare (bytes) — person/location
    #: records plus runtime bookkeeping.
    bytes_per_chare: float = 64 * 1024
    #: fixed per-step cost (the LB barrier + strategy execution).
    decision_cost: float = 5.0e-4

    def step_cost(
        self, machine: Machine, network: NetworkModel, old: np.ndarray, new: np.ndarray
    ) -> float:
        moved = np.flatnonzero(np.asarray(old) != np.asarray(new))
        if moved.size == 0:
            return self.decision_cost
        inbound = np.bincount(np.asarray(new)[moved], minlength=machine.n_pes)
        worst = float(inbound.max())
        transfer = worst * (
            network.alpha_inter_node + self.bytes_per_chare * network.beta_inter_node
        )
        return self.decision_cost + transfer
