"""Machine model: nodes, core-modules, SMP process layout.

Blue Waters' Cray XE6 compute nodes carry two AMD Interlagos sockets =
16 *core-modules* per node (each module pairs two integer cores; the
paper counts core-modules, scaling to 360,448 = 22,528 nodes × 16).

Charm++'s SMP mode (paper §IV-A) starts ``k`` OS processes per node
instead of one per core; each process dedicates one core to a
communication thread and runs compute threads on the rest.  The
trade-off the paper describes falls out of this model directly:

* SMP **loses** ``k`` compute cores per node to comm threads, but
* intra-process sends become shared-memory copies,
* per-message network overhead moves off the compute critical path
  onto the comm thread.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig", "Machine", "BLUE_WATERS_NODE"]

#: Core-modules per Blue Waters XE6 node.
BLUE_WATERS_NODE = 16


@dataclass(frozen=True)
class MachineConfig:
    """Shape of the simulated machine.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes.
    cores_per_node:
        Core-modules per node (16 on Blue Waters).
    smp:
        Enable Charm++ SMP mode.
    processes_per_node:
        ``k`` in the paper's description; must divide ``cores_per_node``
        and satisfy ``k < cores_per_node``.  Ignored when ``smp`` is
        False (then every core is its own process).
    """

    n_nodes: int = 1
    cores_per_node: int = BLUE_WATERS_NODE
    smp: bool = True
    processes_per_node: int = 2

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.cores_per_node < 1:
            raise ValueError("machine must have at least one node and core")
        if self.smp:
            k = self.processes_per_node
            if k < 1 or k >= self.cores_per_node:
                raise ValueError("need 1 <= processes_per_node < cores_per_node")
            if self.cores_per_node % k != 0:
                raise ValueError("processes_per_node must divide cores_per_node")

    @property
    def total_cores(self) -> int:
        """Total core-modules — the paper's x-axis unit."""
        return self.n_nodes * self.cores_per_node

    @property
    def compute_pes_per_node(self) -> int:
        """Worker (compute) threads per node."""
        if self.smp:
            return self.cores_per_node - self.processes_per_node
        return self.cores_per_node

    @property
    def n_pes(self) -> int:
        """Total compute PEs (where chares run)."""
        return self.n_nodes * self.compute_pes_per_node

    @property
    def cores_per_process(self) -> int:
        if self.smp:
            return self.cores_per_node // self.processes_per_node
        return 1


class Machine:
    """Resolved PE topology: pe ↔ (node, process) maps.

    PEs are numbered node-major, then process-major, then thread.  Comm
    threads are *not* PEs; they are modelled as one serial resource per
    process (see :class:`repro.charm.scheduler.RuntimeSimulator`).
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        c = config
        self.n_pes = c.n_pes
        self.n_processes = (
            c.n_nodes * c.processes_per_node if c.smp else c.n_nodes * c.cores_per_node
        )
        pes_per_proc = self.pes_per_process
        self._pe_process = [pe // pes_per_proc for pe in range(self.n_pes)]
        procs_per_node = c.processes_per_node if c.smp else c.cores_per_node
        self._process_node = [p // procs_per_node for p in range(self.n_processes)]

    @property
    def pes_per_process(self) -> int:
        """Compute threads per OS process."""
        c = self.config
        if c.smp:
            return c.cores_per_process - 1
        return 1

    def process_of(self, pe: int) -> int:
        return self._pe_process[pe]

    def node_of(self, pe: int) -> int:
        return self._process_node[self._pe_process[pe]]

    def node_of_process(self, proc: int) -> int:
        return self._process_node[proc]

    def same_process(self, pe_a: int, pe_b: int) -> bool:
        return self._pe_process[pe_a] == self._pe_process[pe_b]

    def same_node(self, pe_a: int, pe_b: int) -> bool:
        return self.node_of(pe_a) == self.node_of(pe_b)

    def __repr__(self) -> str:  # pragma: no cover
        c = self.config
        return (
            f"Machine(nodes={c.n_nodes}, cores/node={c.cores_per_node}, "
            f"smp={c.smp}, pes={self.n_pes})"
        )
