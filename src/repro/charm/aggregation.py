"""Application-level message aggregation (paper §IV-C).

PersonManagers send a large volume of small visit messages to
LocationManagers.  Without aggregation every visit pays the full
per-message overhead (envelope bytes + α + CPU overheads).  The paper's
built-in aggregation buffers records per destination and flushes when a
buffer fills or at end of phase — the same idea Charm++ later shipped
as TRAM.

:class:`MessageAggregator` implements per ``(source PE, destination
PE)`` buffers.  Flushed batches travel as one wire message and are
dispatched to their target chares by the destination PE's agent, which
charges a small per-record dispatch cost — so aggregation trades
per-message α for per-record dispatch, exactly the crossover the
buffer-size ablation bench explores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AggregationRecord", "MessageAggregator"]


@dataclass(frozen=True)
class AggregationRecord:
    """One application message riding inside an aggregation buffer."""

    array: str
    index: int
    method: str
    payload: object
    payload_bytes: int


@dataclass
class _Buffer:
    records: list[AggregationRecord] = field(default_factory=list)
    bytes: int = 0


class MessageAggregator:
    """Per-(src PE, dst PE) aggregation buffers for one channel.

    Parameters
    ----------
    name:
        Channel name (e.g. ``"visits"``).
    buffer_bytes:
        Flush threshold.  ``0`` disables aggregation — every record is
        flushed immediately as its own message (the paper's no-opt
        baseline behaviour, still paying full envelopes).
    """

    def __init__(self, name: str, buffer_bytes: int = 64 * 1024):
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be >= 0")
        self.name = name
        self.buffer_bytes = buffer_bytes
        self._buffers: dict[tuple[int, int], _Buffer] = {}
        # Telemetry for the ablation benches.
        self.records_in: int = 0
        self.batches_out: int = 0

    def append(
        self, src_pe: int, dst_pe: int, record: AggregationRecord
    ) -> list[AggregationRecord] | None:
        """Buffer a record; return a batch if the buffer must flush."""
        self.records_in += 1
        if self.buffer_bytes == 0:
            self.batches_out += 1
            return [record]
        buf = self._buffers.setdefault((src_pe, dst_pe), _Buffer())
        buf.records.append(record)
        buf.bytes += record.payload_bytes
        if buf.bytes >= self.buffer_bytes:
            self._buffers.pop((src_pe, dst_pe))
            self.batches_out += 1
            return buf.records
        return None

    def flush_source(self, src_pe: int) -> list[tuple[int, list[AggregationRecord]]]:
        """Drain all buffers of one source PE (end-of-phase flush).

        Returns ``[(dst_pe, records), ...]``.
        """
        out = []
        for key in sorted(k for k in self._buffers if k[0] == src_pe):
            buf = self._buffers.pop(key)
            if buf.records:
                self.batches_out += 1
                out.append((key[1], buf.records))
        return out

    def pending_sources(self) -> set[int]:
        return {k[0] for k in self._buffers}

    @property
    def aggregation_ratio(self) -> float:
        """Mean records per wire message so far (1.0 = no aggregation win)."""
        return self.records_in / self.batches_out if self.batches_out else 0.0
