"""3-D torus topology — the Gemini network of the Cray XE6.

Blue Waters' Gemini interconnect is a 3-D torus; message latency grows
with hop distance, and job placement decides how far communicating
partitions sit from one another.  :class:`TorusTopology` provides node
coordinates and wraparound hop counts; ``NetworkModel`` consumes it via
:func:`torus_network` to charge per-hop latency, and the mapping
helpers let the scaling analysis compare placement strategies (linear
vs blocked) — a secondary effect the paper folds into its machine but
worth exposing for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.charm.network import NetworkModel

__all__ = ["TorusTopology", "torus_network", "linear_placement", "blocked_placement"]


@dataclass(frozen=True)
class TorusTopology:
    """A ``dims = (X, Y, Z)`` torus of nodes.

    Nodes are numbered x-major: ``node = (x * Y + y) * Z + z``.
    """

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError("dims must be three positive extents")

    @property
    def n_nodes(self) -> int:
        x, y, z = self.dims
        return x * y * z

    @classmethod
    def fitting(cls, n_nodes: int) -> "TorusTopology":
        """Smallest near-cubic torus holding ``n_nodes`` nodes."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        side = max(1, round(n_nodes ** (1 / 3)))
        dims = [side, side, side]
        i = 0
        while dims[0] * dims[1] * dims[2] < n_nodes:
            dims[i % 3] += 1
            i += 1
        return cls(tuple(dims))

    def coords(self, node: int) -> tuple[int, int, int]:
        x, y, z = self.dims
        return node // (y * z), (node // z) % y, node % z

    def hops(self, node_a: int, node_b: int) -> int:
        """Wraparound Manhattan distance."""
        total = 0
        for ca, cb, extent in zip(self.coords(node_a), self.coords(node_b), self.dims):
            d = abs(ca - cb)
            total += min(d, extent - d)
        return total

    def mean_hops(self) -> float:
        """Expected hops between uniformly random distinct nodes."""
        # Per-dimension expectation of wraparound distance, summed.
        total = 0.0
        for extent in self.dims:
            d = np.arange(extent)
            ring = np.minimum(d, extent - d)
            total += ring.mean()
        return float(total)


def torus_network(
    base: NetworkModel,
    topology: TorusTopology,
    per_hop_latency: float = 1.0e-7,
) -> NetworkModel:
    """Derive a NetworkModel whose inter-node α reflects mean torus hops.

    The event-driven scheduler prices messages by tier, not by endpoint
    pair (endpoint-exact pricing would need per-message topology lookups
    on the hot path); using the mean hop distance captures the
    first-order effect — bigger machines pay higher α — which is what
    the scaling sweeps need.
    """
    if per_hop_latency < 0:
        raise ValueError("per_hop_latency must be >= 0")
    return replace(
        base,
        alpha_inter_node=base.alpha_inter_node + topology.mean_hops() * per_hop_latency,
    )


def linear_placement(n_items: int, n_nodes: int) -> np.ndarray:
    """Consecutive items → consecutive nodes (block by rank order)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return (np.arange(n_items, dtype=np.int64) * n_nodes) // max(n_items, 1)


def blocked_placement(
    n_items: int, topology: TorusTopology
) -> np.ndarray:
    """Items → nodes in space-filling blocks, keeping neighbours close.

    Walks the torus in 2×2×2 blocks so that consecutive items (which a
    locality-aware partitioner makes heavy communicators) land on
    physically adjacent nodes.
    """
    order = []
    x, y, z = topology.dims
    for bx in range(0, x, 2):
        for by in range(0, y, 2):
            for bz in range(0, z, 2):
                for dx in range(min(2, x - bx)):
                    for dy in range(min(2, y - by)):
                        for dz in range(min(2, z - bz)):
                            order.append(((bx + dx) * y + (by + dy)) * z + (bz + dz))
    order = np.asarray(order, dtype=np.int64)
    idx = (np.arange(n_items, dtype=np.int64) * order.size) // max(n_items, 1)
    return order[idx]
