"""TRAM-like topological routing and aggregation.

The paper's footnote 1: "the CHARM++ team is currently working on TRAM
(Topological Routing and Aggregation Module), which implements an
application agnostic message aggregation in the runtime — however, this
module was not available prior to the generation of most of the results
presented here, and we are not yet able to determine to what degree it
can replace our application-aware strategy."

We implement the TRAM idea so that comparison can be made (see
``bench_sec4_ablations.test_ablation_tram_vs_direct``): PEs are
arranged in a virtual 2-D grid; a record for PE ``(r2, c2)`` from
``(r1, c1)`` routes along the row to ``(r1, c2)`` and then down the
column.  Each PE keeps aggregation buffers only toward its ~2·√P grid
neighbours instead of toward all P peers, so buffers fill — and
amortise per-message overheads — at much smaller per-destination
traffic, at the price of an extra hop and per-record forwarding work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.charm.aggregation import AggregationRecord, _Buffer

__all__ = ["TramRecord", "TramChannel"]


@dataclass(frozen=True)
class TramRecord:
    """An application record in flight, tagged with its final PE."""

    dst_pe: int
    inner: AggregationRecord

    @property
    def payload_bytes(self) -> int:
        # 4 bytes of routing header on top of the application payload.
        return self.inner.payload_bytes + 4


class TramChannel:
    """2-D mesh routing with per-neighbour aggregation buffers.

    Parameters
    ----------
    name:
        Channel name.
    n_pes:
        Grid size; the virtual mesh is ``rows × cols`` with
        ``cols = floor(sqrt(P))`` and ``rows = ceil(P / cols)`` (the
        last row may be ragged).  Row-first routing with the ragged
        fallback in :meth:`next_hop` still delivers every record in at
        most two mesh hops.
    buffer_bytes:
        Flush threshold per (PE, neighbour) buffer; 0 disables
        buffering (records forward immediately, still via the mesh).
    """

    def __init__(self, name: str, n_pes: int, buffer_bytes: int = 16 * 1024):
        if n_pes < 1:
            raise ValueError("need at least one PE")
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be >= 0")
        self.name = name
        self.n_pes = n_pes
        self.buffer_bytes = buffer_bytes
        self.cols = max(1, int(math.isqrt(n_pes)))
        self._buffers: dict[tuple[int, int], _Buffer] = {}
        self.records_in = 0
        self.batches_out = 0
        self.forwards = 0

    # -- mesh geometry ---------------------------------------------------
    def coords(self, pe: int) -> tuple[int, int]:
        return pe // self.cols, pe % self.cols

    def next_hop(self, at_pe: int, dst_pe: int) -> int:
        """Row-first dimension-ordered routing."""
        r1, c1 = self.coords(at_pe)
        r2, c2 = self.coords(dst_pe)
        if c1 != c2:
            candidate = r1 * self.cols + c2
            # Ragged last row: if the row-peer doesn't exist, drop to the
            # column immediately.
            if candidate < self.n_pes:
                return candidate
        return dst_pe

    # -- buffering ---------------------------------------------------------
    def append(
        self, at_pe: int, record: TramRecord, count_in: bool = True
    ) -> tuple[int, list[TramRecord]] | None:
        """Buffer a record at ``at_pe``; return ``(hop, batch)`` on flush."""
        if count_in:
            self.records_in += 1
        else:
            self.forwards += 1
        hop = self.next_hop(at_pe, record.dst_pe)
        if self.buffer_bytes == 0:
            self.batches_out += 1
            return hop, [record]
        buf = self._buffers.setdefault((at_pe, hop), _Buffer())
        buf.records.append(record)
        buf.bytes += record.payload_bytes
        if buf.bytes >= self.buffer_bytes:
            self._buffers.pop((at_pe, hop))
            self.batches_out += 1
            return hop, buf.records
        return None

    def flush_pe(self, pe: int) -> list[tuple[int, list[TramRecord]]]:
        """Drain all of one PE's buffers (phase-end / forwarding flush)."""
        out = []
        for key in sorted(k for k in self._buffers if k[0] == pe):
            buf = self._buffers.pop(key)
            if buf.records:
                self.batches_out += 1
                out.append((key[1], buf.records))
        return out

    def pending_pes(self) -> set[int]:
        return {k[0] for k in self._buffers}

    @property
    def aggregation_ratio(self) -> float:
        return self.records_in / self.batches_out if self.batches_out else 0.0
