"""A discrete-event simulator of a Charm++-like message-driven runtime.

The paper's EpiSimdemics runs on Charm++ on a Cray XE6.  We cannot run
Charm++ on 360K cores here, so this package *simulates* the runtime: it
executes the same chare-structured program (PersonManagers,
LocationManagers, completion detection, aggregation) under a
discrete-event scheduler that advances per-PE virtual clocks using a
calibrated machine/network cost model.  The program's *semantics* are
executed for real — the epidemic output is exact — while its *timing*
is modelled.  See DESIGN.md §2 and §5.

Components:

* :mod:`repro.charm.machine` — nodes × cores, SMP process layout
  (paper §IV-A), PE numbering;
* :mod:`repro.charm.network` — α–β communication costs with
  intra-process / intra-node / inter-node tiers, per-message CPU
  overheads, comm-thread offload;
* :mod:`repro.charm.chare` — chares, chare arrays, proxies;
* :mod:`repro.charm.scheduler` — the PDES engine (`RuntimeSimulator`);
* :mod:`repro.charm.reduction` — spanning-tree reductions/broadcasts;
* :mod:`repro.charm.completion` — completion detection (§IV-B) and
  quiescence detection, as real protocols with modelled wave costs;
* :mod:`repro.charm.aggregation` — TRAM-like message aggregation
  (§IV-C).
"""

from repro.charm.machine import MachineConfig, Machine, BLUE_WATERS_NODE
from repro.charm.network import NetworkModel, MessageCosts
from repro.charm.messages import Message, VISIT_BYTES, INFECT_BYTES, ENVELOPE_BYTES
from repro.charm.chare import Chare, ChareArray, ChareProxy
from repro.charm.scheduler import RuntimeSimulator
from repro.charm.reduction import ReductionTree
from repro.charm.completion import CompletionDetector, QuiescenceDetector, SyncProtocol
from repro.charm.aggregation import MessageAggregator
from repro.charm.tram import TramChannel
from repro.charm.loadbalance import greedy_lb, refine_lb, MigrationCostModel
from repro.charm.topology import TorusTopology, torus_network
from repro.charm.trace import Tracer, attach_tracer
from repro.charm.memory import MemoryModel, MemoryReport

__all__ = [
    "MachineConfig",
    "Machine",
    "BLUE_WATERS_NODE",
    "NetworkModel",
    "MessageCosts",
    "Message",
    "VISIT_BYTES",
    "INFECT_BYTES",
    "ENVELOPE_BYTES",
    "Chare",
    "ChareArray",
    "ChareProxy",
    "RuntimeSimulator",
    "ReductionTree",
    "CompletionDetector",
    "QuiescenceDetector",
    "SyncProtocol",
    "MessageAggregator",
    "TramChannel",
    "greedy_lb",
    "refine_lb",
    "MigrationCostModel",
    "TorusTopology",
    "torus_network",
    "Tracer",
    "attach_tracer",
    "MemoryModel",
    "MemoryReport",
]
