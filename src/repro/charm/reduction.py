"""Spanning-tree reductions and broadcasts over PEs.

Charm++ implements global collectives (reductions, broadcasts, the
waves of completion/quiescence detection) over a spanning tree of PEs.
This module provides the tree topology and the per-round bookkeeping;
the actual tree messages are real simulated messages sent by the
runtime's per-PE agents, so collective costs scale as O(log P) virtual
time and O(P) messages — exactly the behaviour whose constant factors
the paper's §IV-B optimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ReductionTree", "ReductionSpec", "ReductionRound"]


class ReductionTree:
    """A k-ary spanning tree over PEs rooted at PE 0.

    Charm++ uses a branching factor of 4 by default for collectives on
    large machines; depth is ``ceil(log_k P)``.
    """

    def __init__(self, n_pes: int, arity: int = 4):
        if n_pes < 1:
            raise ValueError("need at least one PE")
        if arity < 2:
            raise ValueError("tree arity must be >= 2")
        self.n_pes = n_pes
        self.arity = arity

    def parent(self, pe: int) -> int | None:
        if pe == 0:
            return None
        return (pe - 1) // self.arity

    def children(self, pe: int) -> list[int]:
        lo = pe * self.arity + 1
        return [c for c in range(lo, min(lo + self.arity, self.n_pes))]

    def depth(self) -> int:
        """Longest root-to-leaf path length."""
        d, pe = 0, self.n_pes - 1
        while pe > 0:
            pe = (pe - 1) // self.arity
            d += 1
        return d


@dataclass
class ReductionSpec:
    """A named, reusable reduction.

    Parameters
    ----------
    name:
        Identifier used by :meth:`Chare.contribute`.
    combine:
        Associative binary combiner applied to contributed values.
    expected_local:
        Per-PE count of element contributions expected each round.
    target:
        ``(array, index, method)`` that receives the reduced value.
    n_children:
        Per-PE count of *participating* children in the pruned tree —
        PEs holding no participating elements and no participating
        descendants are excluded, so rounds complete without them.
    """

    name: str
    combine: Callable[[Any, Any], Any]
    expected_local: dict[int, int]
    target: tuple[str, int, str]
    n_children: dict[int, int]

    @classmethod
    def build(
        cls,
        name: str,
        combine: Callable[[Any, Any], Any],
        expected_local: dict[int, int],
        target: tuple[str, int, str],
        tree: ReductionTree,
    ) -> "ReductionSpec":
        """Construct with the tree pruned to participating PEs."""
        n = tree.n_pes
        participates = [expected_local.get(pe, 0) > 0 for pe in range(n)]
        # Children have larger ids than parents, so a reverse sweep
        # propagates participation upward.
        for pe in range(n - 1, 0, -1):
            if participates[pe]:
                participates[tree.parent(pe)] = True
        n_children = {
            pe: sum(1 for c in tree.children(pe) if participates[c])
            for pe in range(n)
            if participates[pe]
        }
        return cls(name, combine, expected_local, target, n_children)


@dataclass
class ReductionRound:
    """Transient per-PE state of one in-flight reduction round."""

    received_elements: int = 0
    received_children: int = 0
    partial: Any = None
    has_partial: bool = False

    def add(self, combine: Callable[[Any, Any], Any], value: Any) -> None:
        if not self.has_partial:
            self.partial = value
            self.has_partial = True
        else:
            self.partial = combine(self.partial, value)
