"""Message envelopes and wire-size accounting.

The paper's §IV optimisations include "reducing buffering overhead and
message size"; our message-size constants below reflect the optimised
layout (packed visit records).  Sizes feed the α–β network model — the
epidemic payloads themselves are carried as live Python objects, only
their *modelled* wire size matters for timing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "VISIT_BYTES", "INFECT_BYTES", "ENVELOPE_BYTES", "CONTROL_BYTES"]

#: Packed visit record: person id (4) + location id (4) + start (2) +
#: end (2) + sublocation (2) + health state (1) + flags (1).
VISIT_BYTES = 16
#: Infect message: person id (4) + minute (2) + location id (4) + meta (2).
INFECT_BYTES = 12
#: Charm++ envelope per network message (headers, routing).
ENVELOPE_BYTES = 56
#: Small protocol/control message payload (reductions, CD waves).
CONTROL_BYTES = 8

_seq = itertools.count()


@dataclass(order=False)
class Message:
    """A runtime message addressed to a chare entry method.

    ``payload_bytes`` is the modelled wire size *excluding* envelope;
    the network model adds :data:`ENVELOPE_BYTES` per physical message.
    ``payload`` is the live data handed to the entry method.
    """

    array: str
    index: int
    method: str
    payload: Any = None
    payload_bytes: int = CONTROL_BYTES
    src_pe: int = -1
    #: Monotone id for deterministic tie-breaking in the event heap.
    seq: int = field(default_factory=lambda: next(_seq))

    def wire_bytes(self) -> int:
        return self.payload_bytes + ENVELOPE_BYTES
