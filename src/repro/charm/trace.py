"""Projections-style execution tracing for the runtime simulator.

Charm++ ships with *Projections*, the tracing/visualisation tool the
EpiSimdemics team used to find the bottlenecks §IV fixes.  This module
provides the equivalent for our simulated runtime: attach a
:class:`Tracer` before ``run()`` and get per-entry events, per-PE
utilisation, a method-level profile and a text timeline — the views a
performance engineer needs to see *why* a configuration is slow
(straggling PE, comm-thread saturation, sync gaps).

This module is the runtime-side feed of the wider :mod:`repro.observe`
subsystem: :meth:`repro.observe.Observer.ingest_tracer` absorbs a
tracer's events as per-PE virtual spans (Chrome-trace exportable), and
:class:`~repro.core.parallel.ParallelEpiSimdemics` attaches a tracer
automatically whenever an observer is installed.  The timeline
rendering is shared with :func:`repro.observe.ascii_timeline`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.charm.scheduler import RuntimeSimulator

__all__ = ["TraceEvent", "Tracer", "attach_tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One entry-method execution.

    >>> TraceEvent(pe=0, start=0.0, end=2.5, array="lm", method="recv_visits").duration
    2.5
    """

    pe: int
    start: float
    end: float
    array: str
    method: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` records from a runtime.

    >>> t = Tracer(_n_pes=2)
    >>> t.record(0, 0.0, 1.0, "lm", "location_phase")
    >>> t.record(1, 0.0, 0.5, "pm", "person_phase")
    >>> t.utilization().tolist()
    [1.0, 0.5]
    >>> t.critical_pe()
    0
    """

    events: list[TraceEvent] = field(default_factory=list)
    _n_pes: int = 0

    # ------------------------------------------------------------------
    def record(self, pe: int, start: float, end: float, array: str, method: str) -> None:
        self.events.append(TraceEvent(pe, start, end, array, method))

    @property
    def span(self) -> float:
        """Traced makespan (first start to last end)."""
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    # ------------------------------------------------------------------
    def utilization(self) -> np.ndarray:
        """Busy fraction per PE over the traced span."""
        if not self.events:
            return np.zeros(self._n_pes)
        busy = np.zeros(self._n_pes)
        for e in self.events:
            busy[e.pe] += e.duration
        span = self.span
        return busy / span if span > 0 else busy

    def method_profile(self) -> dict[tuple[str, str], tuple[int, float]]:
        """``(array, method) -> (call count, total virtual time)``."""
        out: dict[tuple[str, str], list] = defaultdict(lambda: [0, 0.0])
        for e in self.events:
            rec = out[(e.array, e.method)]
            rec[0] += 1
            rec[1] += e.duration
        return {k: (v[0], v[1]) for k, v in out.items()}

    def critical_pe(self) -> int:
        """The PE with the most busy time — the straggler to look at."""
        if not self.events:
            raise ValueError("empty trace")
        busy = np.zeros(self._n_pes)
        for e in self.events:
            busy[e.pe] += e.duration
        return int(np.argmax(busy))

    # ------------------------------------------------------------------
    def timeline(self, width: int = 72, pes: list[int] | None = None) -> str:
        """ASCII utilisation timeline, one row per PE.

        Each column is a time bucket; the glyph encodes busy fraction
        (`` `` <25%, ``-`` <50%, ``+`` <75%, ``#`` ≥75%).  Rendering is
        shared with :func:`repro.observe.ascii_timeline`.

        >>> t = Tracer(_n_pes=1)
        >>> t.record(0, 0.0, 1.0, "lm", "location_phase")
        >>> t.timeline(width=4)
        'pe   0 |####|'
        """
        from repro.observe.export import ascii_timeline

        return ascii_timeline(
            [(e.pe, e.start, e.end) for e in self.events],
            self._n_pes,
            width=width,
            rows=pes,
        )

    def profile_table(self, top: int = 12) -> str:
        """Formatted method profile, heaviest first."""
        prof = sorted(
            self.method_profile().items(), key=lambda kv: -kv[1][1]
        )[:top]
        lines = [f"{'array.method':<36} {'calls':>8} {'time (ms)':>10}"]
        for (array, method), (calls, total) in prof:
            lines.append(f"{array + '.' + method:<36} {calls:>8} {total * 1e3:>10.3f}")
        return "\n".join(lines)


def attach_tracer(runtime: RuntimeSimulator) -> Tracer:
    """Instrument a runtime; returns the tracer (call before ``run``).

    >>> import numpy as np
    >>> from repro.charm import Chare, MachineConfig, RuntimeSimulator
    >>> class Ping(Chare):
    ...     def ping(self, amount):
    ...         self.charge(amount)
    >>> rt = RuntimeSimulator(MachineConfig(n_nodes=1, cores_per_node=2, smp=False))
    >>> _ = rt.create_array("ping", lambda i: Ping(), np.array([0, 1]))
    >>> tracer = attach_tracer(rt)
    >>> for i in range(2):
    ...     rt.inject("ping", i, "ping", 1e-6)
    >>> _ = rt.run()
    >>> sorted((e.pe, e.array, e.method) for e in tracer.events)
    [(0, 'ping', 'ping'), (1, 'ping', 'ping')]
    """
    tracer = Tracer(_n_pes=runtime.machine.n_pes)
    original = runtime._execute

    def traced_execute(t, msg, dst_cpu):
        pe = runtime.arrays[msg.array].pe_of(msg.index)
        start = max(t, float(runtime.pe_clock[pe]))
        original(t, msg, dst_cpu)
        tracer.record(pe, start, float(runtime.pe_clock[pe]), msg.array, msg.method)

    runtime._execute = traced_execute
    return tracer
