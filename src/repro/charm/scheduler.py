"""The discrete-event runtime simulator (PDES engine).

Executes a chare program under virtual time.  Three resource classes
are modelled, each with its own clock:

* **compute PEs** — run entry methods; an execution occupies the PE for
  the time the entry method ``charge()``d plus per-message CPU costs;
* **comm threads** — one per OS process in SMP mode; serialise the
  per-message send/receive progression costs (paper §IV-A);
* **the wire** — pure latency (α + β·bytes per tier), uncontended.

Event processing pops the globally earliest event; every resource
reservation starts at ``max(event time, resource clock)``, which keeps
FIFO service correct because later-popped events carry later
timestamps.

A hidden per-PE *agent* chare array (``__pe__``) implements the
machinery that Charm++ provides natively: spanning-tree broadcasts and
reductions (:mod:`repro.charm.reduction`), dispatch of aggregated
batches (:mod:`repro.charm.aggregation`), and the wave protocols of
completion/quiescence detection (:mod:`repro.charm.completion`).
All of it runs as real simulated messages, so protocol costs appear in
the virtual timeline with the right scaling.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from typing import Any, Callable

import numpy as np

from repro.charm.aggregation import AggregationRecord, MessageAggregator
from repro.charm.tram import TramChannel, TramRecord
from repro.charm.chare import Chare, ChareArray, ChareProxy
from repro.charm.machine import Machine, MachineConfig
from repro.charm.messages import CONTROL_BYTES, Message
from repro.charm.network import NetworkModel
from repro.charm.reduction import ReductionRound, ReductionSpec, ReductionTree
from repro import observe
from repro.util.timing import CostAccumulator

__all__ = ["RuntimeSimulator"]

#: Modelled cost of dispatching one record out of an aggregated batch.
DISPATCH_OVERHEAD = 1.0e-7
#: Modelled cost of one local reduction combine / broadcast delivery.
LOCAL_OP_OVERHEAD = 5.0e-8

_EXEC, _COMM_SEND, _COMM_RECV = 0, 1, 2


class _PEAgent(Chare):
    """Hidden per-PE system chare: collectives, batches, CD waves."""

    # -- aggregated batch dispatch -------------------------------------
    def recv_batch(self, payload) -> None:
        channel, records = payload
        rt = self.runtime
        for rec in records:
            self.charge(DISPATCH_OVERHEAD)
            rt._invoke_inline(rec.array, rec.index, rec.method, rec.payload)

    # -- broadcast fan-out ----------------------------------------------
    def bcast(self, payload) -> None:
        array, method, data, payload_bytes = payload
        rt = self.runtime
        # Forward down the tree *eagerly* — before delivering to local
        # elements — otherwise a parent's local work would serialise the
        # whole subtree behind it (Charm++ forwards immediately).
        for child in rt.tree.children(self.pe):
            rt._send_eager(self.pe, "__pe__", child, "bcast", payload, payload_bytes)
        for idx in rt._local_elements(array, self.pe):
            self.charge(LOCAL_OP_OVERHEAD)
            rt._invoke_inline(array, idx, method, data)

    # -- reduction upward pass -------------------------------------------
    def reduce_partial(self, payload) -> None:
        name, value = payload
        self.charge(LOCAL_OP_OVERHEAD)
        self.runtime._reduction_child_arrived(self.pe, name, value)

    # -- TRAM mesh forwarding -----------------------------------------------
    def tram_batch(self, payload) -> None:
        channel, records = payload
        rt = self.runtime
        chan = rt.aggregators[channel]
        for rec in records:
            self.charge(DISPATCH_OVERHEAD)
            if rec.dst_pe == self.pe:
                rt._invoke_inline(rec.inner.array, rec.inner.index, rec.inner.method,
                                  rec.inner.payload)
            else:
                out = chan.append(self.pe, rec, count_in=False)
                if out is not None:
                    rt._emit_tram_batch(channel, *out)
        # Intermediates forward what they re-aggregated immediately so the
        # phase drains without a distributed termination protocol.
        for hop, batch in chan.flush_pe(self.pe):
            rt._emit_tram_batch(channel, hop, batch)

    # -- completion/quiescence detection wave ------------------------------
    def sync_ask(self, name: str) -> None:
        det = self.runtime._detectors[name]
        self.charge(LOCAL_OP_OVERHEAD)
        self.contribute(f"__sync_{name}", det.local_counts(self.pe))


class RuntimeSimulator:
    """Simulated Charm++-like runtime.

    Typical use::

        rt = RuntimeSimulator(MachineConfig(n_nodes=4))
        rt.create_array("pm", factory, placement)
        rt.register_reduction("stats", combine=operator.add,
                              arrays=["pm"], target=("driver", 0, "on_stats"))
        rt.inject("driver", 0, "start")
        rt.run()
        print(rt.current_time)
    """

    def __init__(
        self,
        machine: MachineConfig | Machine,
        network: NetworkModel | None = None,
        validate: bool = False,
    ):
        self.machine = machine if isinstance(machine, Machine) else Machine(machine)
        self.network = network or NetworkModel()
        #: enable runtime-level invariant checks (drained aggregation
        #: buffers at exit, sane detector counters — see repro.validate)
        self.validate = validate
        n = self.machine.n_pes
        self.tree = ReductionTree(n)
        self.current_time = 0.0
        self.pe_clock = np.zeros(n)
        self.comm_clock = np.zeros(self.machine.n_processes)
        self.pe_costs = [CostAccumulator() for _ in range(n)]
        self.msg_counter: Counter = Counter()
        self.bytes_counter: Counter = Counter()
        self.arrays: dict[str, ChareArray] = {}
        self.aggregators: dict[str, MessageAggregator] = {}
        self._reductions: dict[str, ReductionSpec] = {}
        self._red_rounds: dict[str, dict[int, ReductionRound]] = {}
        self._heap: list = []
        self._tick = itertools.count()
        self._exec_pe: int | None = None
        self._exec_charge: float = 0.0
        self._outbox: list[tuple[str, int, str, Any, int]] = []
        self._local_elem_cache: dict[tuple[str, int], list[int]] = {}
        self._detectors: dict[str, "SyncProtocol"] = {}
        #: accumulated compute per (array, index) for arrays with cost
        #: tracking enabled — the measurement feed of the LB framework.
        self.chare_costs: dict[tuple[str, int], float] = {}
        self._tracked_arrays: set[str] = set()
        self._reduction_arrays: dict[str, list[str]] = {}
        # Hook for completion detectors: called as (event, **info).
        self._sync_listeners: list[Callable[[str, dict], None]] = []
        self._events_processed = 0

    # ------------------------------------------------------------------
    # setup API
    # ------------------------------------------------------------------
    def create_array(
        self, name: str, factory: Callable[[int], Chare], placement: np.ndarray
    ) -> ChareArray:
        """Create a chare array; placement maps element -> PE."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already exists")
        placement = np.asarray(placement, dtype=np.int64)
        if placement.size and (placement.min() < 0 or placement.max() >= self.machine.n_pes):
            raise ValueError("placement references a PE outside the machine")
        arr = ChareArray(name, factory, placement)
        self.arrays[name] = arr
        return arr

    def proxy(self, array: str, index: int) -> ChareProxy:
        return ChareProxy(self, array, index)

    def create_channel(self, name: str, buffer_bytes: int) -> MessageAggregator:
        """Create a named direct (per destination PE) aggregation channel."""
        agg = MessageAggregator(name, buffer_bytes)
        self.aggregators[name] = agg
        return agg

    def create_tram_channel(self, name: str, buffer_bytes: int) -> TramChannel:
        """Create a TRAM-style mesh-routed aggregation channel."""
        chan = TramChannel(name, self.machine.n_pes, buffer_bytes)
        self.aggregators[name] = chan
        self.ensure_pe_agents()
        return chan

    def register_reduction(
        self,
        name: str,
        combine: Callable[[Any, Any], Any],
        arrays: list[str],
        target: tuple[str, int, str],
    ) -> None:
        """Register a reusable reduction over all elements of ``arrays``."""
        expected: dict[int, int] = {pe: 0 for pe in range(self.machine.n_pes)}
        for aname in arrays:
            arr = self.arrays[aname]
            for pe in arr.placement:
                expected[int(pe)] += 1
        self._reductions[name] = ReductionSpec.build(
            name, combine, expected, target, self.tree
        )
        self._red_rounds[name] = {}
        self._reduction_arrays[name] = list(arrays)

    def enable_chare_cost_tracking(self, array: str) -> None:
        """Accumulate per-element compute costs for ``array``."""
        if array not in self.arrays:
            raise ValueError(f"unknown array {array!r}")
        self._tracked_arrays.add(array)

    def migrate_array(self, array: str, new_placement: np.ndarray) -> dict:
        """Move an array's elements to a new placement (LB migration).

        Must be called between phases (no in-flight messages addressed
        to the array).  Recomputes reduction bookkeeping and returns a
        summary ``{"moved": n, "bytes_per_pe": array}`` for the caller's
        migration cost model.
        """
        arr = self.arrays[array]
        new_placement = np.asarray(new_placement, dtype=np.int64)
        if new_placement.shape != arr.placement.shape:
            raise ValueError("placement shape mismatch")
        if new_placement.size and (
            new_placement.min() < 0 or new_placement.max() >= self.machine.n_pes
        ):
            raise ValueError("placement references a PE outside the machine")
        moved = np.flatnonzero(new_placement != arr.placement)
        arr.placement = new_placement
        for idx, chare in arr.elements.items():
            chare.pe = arr.pe_of(idx)
        self._local_elem_cache = {
            k: v for k, v in self._local_elem_cache.items() if k[0] != array
        }
        # Rebuild reduction specs that involve this array.
        for name, arrays in self._reduction_arrays.items():
            if array not in arrays:
                continue
            spec = self._reductions[name]
            expected: dict[int, int] = {pe: 0 for pe in range(self.machine.n_pes)}
            for aname in arrays:
                for pe in self.arrays[aname].placement:
                    expected[int(pe)] += 1
            self._reductions[name] = ReductionSpec.build(
                name, spec.combine, expected, spec.target, self.tree
            )
        return {"moved": int(moved.size), "indices": moved}

    def advance_all_pes(self, seconds: float) -> None:
        """Charge a global synchronous delay (e.g. an LB migration step)."""
        if seconds < 0:
            raise ValueError("cannot advance by negative time")
        horizon = float(self.pe_clock.max()) + seconds
        self.pe_clock[:] = np.maximum(self.pe_clock, horizon)

    def add_sync_listener(self, fn: Callable[[str, dict], None]) -> None:
        self._sync_listeners.append(fn)

    def notify_sync(self, event: str, **info) -> None:
        """Broadcast a protocol event to completion detectors."""
        for fn in self._sync_listeners:
            fn(event, info)

    # ------------------------------------------------------------------
    # program-facing messaging
    # ------------------------------------------------------------------
    def inject(
        self, array: str, index: int, method: str, payload: Any = None, payload_bytes: int = 8
    ) -> None:
        """Inject an external message (program main) at the current time."""
        msg = Message(array, index, method, payload, payload_bytes, src_pe=-1)
        self._push(self.current_time, _EXEC, (msg, 0.0))

    def broadcast(
        self, array: str, method: str, payload: Any = None, payload_bytes: int = CONTROL_BYTES
    ) -> None:
        """Tree broadcast to every element of ``array`` (callable from entries)."""
        wrapped = (array, method, payload, payload_bytes)
        if self._exec_pe is None:
            self.inject("__pe__", 0, "bcast", wrapped, payload_bytes)
        else:
            self._send_from_entry(self._exec_pe, "__pe__", 0, "bcast", wrapped, payload_bytes)

    # -- internals used by Chare ---------------------------------------
    def _charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._exec_charge += seconds

    def _send_from_entry(
        self, src_pe: int, array: str, index: int, method: str, payload: Any, payload_bytes: int
    ) -> None:
        self._outbox.append((array, index, method, payload, payload_bytes))

    def _send_eager(
        self, src_pe: int, array: str, index: int, method: str, payload: Any, payload_bytes: int
    ) -> None:
        """Send departing *now* (at the current point within the running
        entry) instead of after the entry completes.  Used by protocol
        fan-out where forwarding latency must not stack behind local
        work."""
        msg = Message(array, index, method, payload, payload_bytes, src_pe=src_pe)
        t_dep = self.current_time + self._exec_charge
        src_cost = self._route(src_pe, msg, t_dep)
        self._charge(src_cost)
        self.pe_costs[src_pe].add("comm", src_cost)

    def _send_aggregated(
        self, src_pe: int, channel: str, array: str, index: int, method: str,
        payload: Any, payload_bytes: int,
    ) -> None:
        agg = self.aggregators[channel]
        dst_pe = self.arrays[array].pe_of(index)
        rec = AggregationRecord(array, index, method, payload, payload_bytes)
        if isinstance(agg, TramChannel):
            out = agg.append(src_pe, TramRecord(dst_pe, rec))
            if out is not None:
                self._emit_tram_batch(channel, *out)
            return
        batch = agg.append(src_pe, dst_pe, rec)
        if batch is not None:
            self._enqueue_batch(channel, dst_pe, batch)

    def flush_channel(self, channel: str, src_pe: int) -> None:
        """End-of-phase flush of one PE's aggregation buffers."""
        agg = self.aggregators[channel]
        if isinstance(agg, TramChannel):
            for hop, records in agg.flush_pe(src_pe):
                self._emit_tram_batch(channel, hop, records)
            return
        for dst_pe, records in agg.flush_source(src_pe):
            self._enqueue_batch(channel, dst_pe, records)

    def _emit_tram_batch(self, channel: str, hop_pe: int, records: list) -> None:
        nbytes = sum(r.payload_bytes for r in records)
        self._outbox.append(("__pe__", hop_pe, "tram_batch", (channel, records), nbytes))

    def _enqueue_batch(self, channel: str, dst_pe: int, records: list[AggregationRecord]) -> None:
        nbytes = sum(r.payload_bytes for r in records)
        self._outbox.append(("__pe__", dst_pe, "recv_batch", (channel, records), nbytes))

    def _contribute(self, pe: int, name: str, value: Any) -> None:
        spec = self._reductions[name]
        rnd = self._red_rounds[name].setdefault(pe, ReductionRound())
        self._charge(LOCAL_OP_OVERHEAD)
        rnd.add(spec.combine, value)
        rnd.received_elements += 1
        self._maybe_send_partial(pe, name)

    def _reduction_child_arrived(self, pe: int, name: str, value: Any) -> None:
        spec = self._reductions[name]
        rnd = self._red_rounds[name].setdefault(pe, ReductionRound())
        rnd.add(spec.combine, value)
        rnd.received_children += 1
        self._maybe_send_partial(pe, name)

    def _maybe_send_partial(self, pe: int, name: str) -> None:
        spec = self._reductions[name]
        rnd = self._red_rounds[name].get(pe)
        if rnd is None:
            return
        if rnd.received_elements < spec.expected_local.get(pe, 0):
            return
        if rnd.received_children < spec.n_children.get(pe, 0):
            return
        # Round complete at this PE: forward partial (or deliver at root).
        del self._red_rounds[name][pe]
        parent = self.tree.parent(pe)
        if parent is None:
            array, index, method = spec.target
            self._outbox.append((array, index, method, rnd.partial, CONTROL_BYTES))
        else:
            self._outbox.append(
                ("__pe__", parent, "reduce_partial", (name, rnd.partial), CONTROL_BYTES)
            )

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: int, data) -> None:
        heapq.heappush(self._heap, (time, next(self._tick), kind, data))

    def _prepare_chare(self, chare: Chare) -> None:
        chare.runtime = self

    def _invoke_inline(self, array: str, index: int, method: str, payload: Any) -> None:
        """Run an entry method inline within the current execution,
        attributing its charge to the target chare for cost tracking."""
        target = self.arrays[array].element(index)
        target.runtime = self
        before = self._exec_charge
        getattr(target, method)(payload)
        if array in self._tracked_arrays:
            key = (array, index)
            self.chare_costs[key] = (
                self.chare_costs.get(key, 0.0) + self._exec_charge - before
            )

    def _local_elements(self, array: str, pe: int) -> list[int]:
        key = (array, pe)
        cached = self._local_elem_cache.get(key)
        if cached is None:
            cached = self.arrays[array].elements_on_pe(pe)
            self._local_elem_cache[key] = cached
        return cached

    def _route(self, src_pe: int, msg: Message, t_dep: float) -> float:
        """Schedule delivery of ``msg``; return the src CPU cost paid inline."""
        dst_pe = self.arrays[msg.array].pe_of(msg.index)
        costs = self.network.message_costs(self.machine, src_pe, dst_pe, msg.wire_bytes())
        smp = self.machine.config.smp
        tier = (
            "intra_process"
            if self.machine.same_process(src_pe, dst_pe)
            else "intra_node" if self.machine.same_node(src_pe, dst_pe) else "inter_node"
        )
        self.msg_counter[tier] += 1
        self.bytes_counter[tier] += msg.wire_bytes()
        if smp and not self.machine.same_process(src_pe, dst_pe):
            # PE hands off to its comm thread.
            self._push(t_dep + costs.src_cpu, _COMM_SEND, (src_pe, dst_pe, msg, costs))
        else:
            self._push(t_dep + costs.src_cpu + costs.latency, _EXEC, (msg, costs.dst_cpu))
        return costs.src_cpu

    def _execute(self, t: float, msg: Message, dst_cpu: float) -> None:
        array = self.arrays[msg.array]
        pe = array.pe_of(msg.index)
        start = max(t, self.pe_clock[pe])
        self.pe_costs[pe].add("idle", max(0.0, start - self.pe_clock[pe]))
        self.current_time = start
        prev = (self._exec_pe, self._exec_charge, self._outbox)
        self._exec_pe, self._exec_charge, self._outbox = pe, dst_cpu, []
        chare = array.element(msg.index)
        chare.runtime = self
        chare.array_name = msg.array
        chare.index = msg.index
        chare.pe = pe
        getattr(chare, msg.method)(msg.payload)
        charge = self._exec_charge
        # Non-SMP layouts pay compute interference from inline network
        # progression (NetworkModel.non_smp_compute_interference); a
        # single-PE machine has no traffic to interfere with.
        if not self.machine.config.smp and self.machine.n_pes > 1:
            charge *= self.network.non_smp_compute_interference
        end = start + charge
        self.pe_costs[pe].add("compute", charge)
        if msg.array in self._tracked_arrays:
            key = (msg.array, msg.index)
            self.chare_costs[key] = self.chare_costs.get(key, 0.0) + charge
        outbox = self._outbox
        self._exec_pe, self._exec_charge, self._outbox = prev
        # Departures are serialised after the execution.
        for (a, i, m, payload, nbytes) in outbox:
            out = Message(a, i, m, payload, nbytes, src_pe=pe)
            src_cost = self._route(pe, out, end)
            self.pe_costs[pe].add("comm", src_cost)
            end += src_cost
        self.pe_clock[pe] = end
        self._events_processed += 1
        self.notify_sync("executed", pe=pe, method=msg.method, array=msg.array, time=end)

    def _comm_send(self, t: float, src_pe: int, dst_pe: int, msg: Message, costs) -> None:
        proc = self.machine.process_of(src_pe)
        start = max(t, self.comm_clock[proc])
        self.comm_clock[proc] = start + costs.src_comm
        arrive = start + costs.src_comm + costs.latency
        self._push(arrive, _COMM_RECV, (dst_pe, msg, costs))

    def _comm_recv(self, t: float, dst_pe: int, msg: Message, costs) -> None:
        proc = self.machine.process_of(dst_pe)
        start = max(t, self.comm_clock[proc])
        self.comm_clock[proc] = start + costs.dst_comm
        self._push(start + costs.dst_comm, _EXEC, (msg, costs.dst_cpu))

    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> float:
        """Process events until the heap drains; return final virtual time."""
        obs_span = observe.span("charm.runtime.run", pes=self.machine.n_pes)
        with obs_span:
            processed = 0
            while self._heap:
                t, _, kind, data = heapq.heappop(self._heap)
                if kind == _EXEC:
                    msg, dst_cpu = data
                    self._execute(t, msg, dst_cpu)
                elif kind == _COMM_SEND:
                    self._comm_send(t, *data)
                else:
                    self._comm_recv(t, *data)
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise RuntimeError(
                        f"runtime exceeded {max_events} events — likely a protocol livelock"
                    )
            self.current_time = float(self.pe_clock.max()) if self.pe_clock.size else 0.0
            if self.validate:
                self._check_drained()
            obs_span.set(
                events=processed,
                virtual_time=self.current_time,
                messages=dict(self.msg_counter),
            )
            return self.current_time

    def _check_drained(self) -> None:
        """At quiescence no aggregation channel may still buffer records —
        a non-empty buffer after the heap drains is a lost message."""
        from repro.validate.invariants import InvariantViolation

        for name, agg in self.aggregators.items():
            pending = (
                agg.pending_pes() if isinstance(agg, TramChannel) else agg.pending_sources()
            )
            if pending:
                raise InvariantViolation(
                    f"aggregation channel {name!r} still buffers records on "
                    f"PEs {sorted(pending)} after the event heap drained — "
                    f"these messages were lost"
                )

    # ------------------------------------------------------------------
    def ensure_pe_agents(self) -> None:
        """Create the hidden per-PE agent array (idempotent)."""
        if "__pe__" not in self.arrays:
            self.create_array(
                "__pe__", lambda i: _PEAgent(), np.arange(self.machine.n_pes, dtype=np.int64)
            )

    def stats_summary(self) -> dict:
        """Aggregate telemetry for the benches."""
        return {
            "virtual_time": self.current_time,
            "messages": dict(self.msg_counter),
            "bytes": dict(self.bytes_counter),
            "events": self._events_processed,
            "compute_max": max((c.get("compute") for c in self.pe_costs), default=0.0),
            "compute_total": sum(c.get("compute") for c in self.pe_costs),
        }
