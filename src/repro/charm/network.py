"""α–β network cost model with Cray-Gemini-flavoured defaults.

Each message between PEs is charged along the LogGP decomposition:

* ``src_cpu``  — CPU time on the sending PE to hand the message off,
* ``src_comm`` — time on the sending process's *comm thread* (SMP mode),
* ``latency``  — wire time ``α_tier + β_tier · bytes``,
* ``dst_comm`` — comm-thread time on the receiving process,
* ``dst_cpu``  — CPU time on the receiving PE before the handler runs.

Tiers: intra-process (shared-memory memcpy), intra-node (kernel shared
memory between processes), inter-node (Gemini network).  In non-SMP
mode there is no comm thread, so the comm components are folded into
the PE CPU costs with an *interference* penalty — this is precisely the
SMP-mode benefit of paper §IV-A and what `bench_sec4_ablations`
measures.

Default constants are of Gemini magnitude (µs latencies, GB/s
bandwidths).  Absolute values only set the time unit's scale; the
paper-shape results come from their *ratios*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charm.machine import Machine

__all__ = ["NetworkModel", "MessageCosts"]


@dataclass(frozen=True)
class MessageCosts:
    """Per-message cost breakdown (seconds of virtual time)."""

    src_cpu: float
    src_comm: float
    latency: float
    dst_comm: float
    dst_cpu: float

    @property
    def total(self) -> float:
        return self.src_cpu + self.src_comm + self.latency + self.dst_comm + self.dst_cpu


@dataclass(frozen=True)
class NetworkModel:
    """Cost constants; see module docstring.

    All times in seconds, rates in seconds/byte.
    """

    # Wire α/β per tier.
    alpha_inter_node: float = 1.5e-6
    beta_inter_node: float = 1.0 / 6.0e9
    alpha_intra_node: float = 6.0e-7
    beta_intra_node: float = 1.0 / 12.0e9
    alpha_intra_process: float = 1.2e-7
    beta_intra_process: float = 1.0 / 20.0e9
    # Per-message CPU overheads.  Calibrated to the Gemini/uGNI era the
    # paper ran on: posting + progressing one small message through the
    # Charm++ machine layer cost on the order of a microsecond of CPU —
    # which is precisely why aggregation and comm-thread offload were
    # worth building (§IV).
    send_overhead: float = 1.2e-6
    recv_overhead: float = 1.2e-6
    # Extra CPU factor paid per message when no dedicated comm thread
    # exists (message progression interleaves with compute, §IV-A).
    no_comm_thread_penalty: float = 1.6
    # Multiplicative slowdown of *all* compute on non-SMP layouts:
    # network polling and interrupt handling pollute the compute cores'
    # caches and pipeline — "the communication thread minimizes the
    # interference between application compute functions and
    # communication" (paper §IV-A, citing Mei et al. [9]).
    non_smp_compute_interference: float = 1.15
    # Comm threads progress messages cheaper than a compute PE would:
    # dedicated core, hot cache, batched polling.
    comm_thread_efficiency: float = 0.5

    def message_costs(self, machine: Machine, src_pe: int, dst_pe: int, wire_bytes: int) -> MessageCosts:
        """Cost breakdown for one physical message of ``wire_bytes``."""
        if src_pe == dst_pe or (machine.config.smp and machine.same_process(src_pe, dst_pe)):
            # Direct memcpy between threads (or a self-send); no comm
            # thread involvement.
            lat = self.alpha_intra_process + self.beta_intra_process * wire_bytes
            return MessageCosts(self.send_overhead * 0.5, 0.0, lat, 0.0, self.recv_overhead * 0.5)
        if machine.same_node(src_pe, dst_pe):
            alpha, beta = self.alpha_intra_node, self.beta_intra_node
        else:
            alpha, beta = self.alpha_inter_node, self.beta_inter_node
        lat = alpha + beta * wire_bytes
        if machine.config.smp:
            # Hand-off to the comm thread is cheap for the PE; the comm
            # threads pay the per-message progression costs.
            eff = self.comm_thread_efficiency
            return MessageCosts(
                src_cpu=self.send_overhead * 0.25,
                src_comm=self.send_overhead * eff,
                latency=lat,
                dst_comm=self.recv_overhead * eff,
                dst_cpu=self.recv_overhead * 0.25,
            )
        # Non-SMP: the PEs themselves progress the message, with
        # interference inflating the cost.
        p = self.no_comm_thread_penalty
        return MessageCosts(
            src_cpu=self.send_overhead * (1.0 + 0.25) * p,
            src_comm=0.0,
            latency=lat,
            dst_comm=0.0,
            dst_cpu=self.recv_overhead * (1.0 + 0.25) * p,
        )

    def tree_hop_cost(self, small_bytes: int = 64) -> float:
        """Cost of one hop of a control-message spanning tree (inter-node)."""
        return self.alpha_inter_node + self.beta_inter_node * small_bytes + self.send_overhead + self.recv_overhead
