"""Vectorised re-implementation of numpy's seed→first-uniform pipeline.

The keyed-RNG contract (:mod:`repro.util.rng`) is that a stream's draws
depend only on its derived 64-bit seed, never on execution order.  The
hot paths, however, need exactly *one* uniform per key — and paying a
full ``Generator(PCG64(SeedSequence(seed)))`` construction (~µs) for a
single double is what made the per-person loop in the exposure kernel
the profile's top entry.

This module replays, with pure ``uint32``/``uint64`` numpy array
arithmetic, precisely what numpy does between an integer seed and the
first ``.random()`` draw:

1. ``SeedSequence(seed).generate_state(4, uint64)`` — O'Neill-style
   entropy pool mixing (``_seedseq_state``);
2. PCG64 stream initialisation from those four words and one LCG step
   (128-bit multiply-add, carried as hi/lo ``uint64`` pairs);
3. the XSL-RR output permutation and the 53-bit mantissa scaling of
   ``Generator.random()`` (``first_uniforms``).

``tests/util/test_rng_batched.py`` pins bit-for-bit equality against
``np.random.Generator(np.random.PCG64(seed)).random()`` across edge and
random seeds — any numpy behaviour change breaks loudly, not silently.
"""

from __future__ import annotations

import numpy as np

__all__ = ["first_uniforms"]

_U32 = np.uint32
_U64 = np.uint64

# SeedSequence mixing constants (numpy _bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = _U32(0xCA01F9DD)
_MIX_MULT_R = _U32(0x4973F715)
_XSHIFT = _U32(16)
_M32 = (1 << 32) - 1

# PCG64's default 128-bit LCG multiplier, split into 64-bit halves.
_PCG_MULT_HI = _U64(2549297995355413924)
_PCG_MULT_LO = _U64(4865540595714422341)

_LOW32 = _U64(0xFFFFFFFF)
_DOUBLE_SCALE = 1.0 / 9007199254740992.0  # 2**-53


def _hash_const_schedule(init: int, mult: int, n: int) -> list[tuple[np.uint32, np.uint32]]:
    """The (xor, multiply) constant pairs of ``n`` sequential hashmix calls.

    numpy evolves a scalar ``hash_const`` across calls; the schedule is
    input-independent, so it can be precomputed (also sidestepping the
    scalar-overflow warnings numpy emits for ``uint32`` scalar ops).
    """
    out = []
    hc = init
    for _ in range(n):
        xor_const = hc
        hc = (hc * mult) & _M32
        out.append((_U32(xor_const), _U32(hc)))
    return out


# mix_entropy performs 4 pool-fill + 12 cross-mix hashmix calls;
# generate_state(4, uint64) performs 8 more with a fresh constant.
_MIX_SCHEDULE = _hash_const_schedule(_INIT_A, _MULT_A, 16)
_GEN_SCHEDULE = _hash_const_schedule(_INIT_B, _MULT_B, 8)


def _hashmix(value: np.ndarray, schedule_entry) -> np.ndarray:
    xor_const, mul_const = schedule_entry
    value = (value ^ xor_const) * mul_const
    return value ^ (value >> _XSHIFT)


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    r = _MIX_MULT_L * x - _MIX_MULT_R * y
    return r ^ (r >> _XSHIFT)


def _seedseq_state(seeds: np.ndarray) -> tuple[np.ndarray, ...]:
    """``SeedSequence(s).generate_state(4, uint64)`` for every seed.

    Returns the four words as separate arrays ``(w0, w1, w2, w3)``.
    """
    entropy = (
        (seeds & _LOW32).astype(_U32),  # low word first (little-endian)
        (seeds >> _U64(32)).astype(_U32),
        np.zeros(seeds.shape, dtype=_U32),
        np.zeros(seeds.shape, dtype=_U32),
    )
    sched = iter(_MIX_SCHEDULE)
    pool = [_hashmix(entropy[i], next(sched)) for i in range(4)]
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], next(sched)))
    out32 = [_hashmix(pool[i % 4], _GEN_SCHEDULE[i]) for i in range(8)]
    # uint32 pairs combine low-word-first into uint64 output words.
    return tuple(
        out32[2 * i].astype(_U64) | (out32[2 * i + 1].astype(_U64) << _U64(32))
        for i in range(4)
    )


def _mul128(ah, al, bh, bl):
    """(ah·2⁶⁴+al) × (bh·2⁶⁴+bl) mod 2¹²⁸ on hi/lo uint64 pairs."""
    # 64×64→128 low-product carry via 32-bit limbs.
    a0 = al & _LOW32
    a1 = al >> _U64(32)
    b0 = bl & _LOW32
    b1 = bl >> _U64(32)
    t = a1 * b0 + (a0 * b0 >> _U64(32))
    carry = a1 * b1 + (t >> _U64(32)) + ((a0 * b1 + (t & _LOW32)) >> _U64(32))
    return ah * bl + al * bh + carry, al * bl


def _add128(ah, al, bh, bl):
    lo = al + bl
    return ah + bh + (lo < al).astype(_U64), lo


def first_uniforms(seeds: np.ndarray) -> np.ndarray:
    """First ``Generator.random()`` double of each seed's PCG64 stream.

    ``seeds`` is a ``uint64`` array; the result is bit-identical to
    ``np.random.Generator(np.random.PCG64(int(s))).random()`` per
    element, computed without constructing any Generator objects.
    """
    seeds = np.ascontiguousarray(seeds, dtype=_U64)
    if seeds.size == 0:
        return np.empty(seeds.shape, dtype=np.float64)
    w0, w1, w2, w3 = _seedseq_state(seeds)
    # pcg64_srandom: inc = (initseq << 1) | 1; state = inc + initstate,
    # then one LCG step.  initstate = w0:w1, initseq = w2:w3.
    inc_hi = (w2 << _U64(1)) | (w3 >> _U64(63))
    inc_lo = (w3 << _U64(1)) | _U64(1)
    st_hi, st_lo = _add128(inc_hi, inc_lo, w0, w1)

    def step(hi, lo):
        hi, lo = _mul128(hi, lo, _PCG_MULT_HI, _PCG_MULT_LO)
        return _add128(hi, lo, inc_hi, inc_lo)

    st_hi, st_lo = step(st_hi, st_lo)
    # First next_uint64: step, then XSL-RR output of the new state.
    st_hi, st_lo = step(st_hi, st_lo)
    rot = st_hi >> _U64(58)
    xored = st_hi ^ st_lo
    word = (xored >> rot) | (xored << ((_U64(64) - rot) & _U64(63)))
    return (word >> _U64(11)) * _DOUBLE_SCALE
