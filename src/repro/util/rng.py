"""Deterministic, hierarchical random-number streams.

The simulator needs randomness that is independent of *execution order*:
whether persons are processed sequentially, by chare, or across simulated
PEs, person ``p`` on day ``d`` must see the same draws.  We achieve this by
deriving a child seed from ``(root_seed, *keys)`` with a stable integer
hash and constructing a fresh :class:`numpy.random.Generator` per keyed
stream.  Stream construction is cheap (~1 microsecond) relative to the
work done per stream (a day's worth of draws for one entity).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "spawn_generator", "RngFactory"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: int) -> int:
    """Derive a 64-bit child seed from a root seed and integer keys.

    Uses BLAKE2b over the little-endian packed key tuple, which gives
    high-quality avalanche behaviour (SplitMix-style multiplicative
    mixing showed detectable correlations between (p, d) and (p+1, d-1)
    streams in early testing).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    keys:
        Any number of non-negative integers identifying the stream,
        e.g. ``(day, person_id)``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(root_seed).to_bytes(8, "little", signed=False))
    for k in keys:
        h.update(int(k).to_bytes(8, "little", signed=True))
    return int.from_bytes(h.digest(), "little") & _MASK64


def spawn_generator(root_seed: int, *keys: int) -> np.random.Generator:
    """Construct a :class:`numpy.random.Generator` for a keyed stream."""
    return np.random.Generator(np.random.PCG64(derive_seed(root_seed, *keys)))


class RngFactory:
    """Factory producing keyed generators below a fixed root seed.

    A factory is shared by a whole simulation run; components ask for
    ``factory.stream(*keys)`` with their own stable key prefix.  Key
    prefixes in use across the codebase (kept unique by convention):

    ==========  =====================================================
    prefix      component
    ==========  =====================================================
    ``0``       population synthesis
    ``1``       per-(day, person) health/behaviour draws
    ``2``       per-(day, location) transmission draws
    ``3``       intervention triggers
    ``4``       partitioner tie-breaking
    ``5``       machine/network jitter
    ==========  =====================================================
    """

    #: Key-prefix constants (see class docstring).
    SYNTHPOP = 0
    PERSON = 1
    LOCATION = 2
    INTERVENTION = 3
    PARTITION = 4
    MACHINE = 5

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an integer, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)

    def seed(self, *keys: int) -> int:
        """Derived child seed for ``keys``."""
        return derive_seed(self.root_seed, *keys)

    def stream(self, *keys: int) -> np.random.Generator:
        """Generator for the stream identified by ``keys``."""
        return spawn_generator(self.root_seed, *keys)

    def person_stream(self, day: int, person_id: int) -> np.random.Generator:
        """Per-(day, person) stream used for health/behaviour draws."""
        return self.stream(self.PERSON, day, person_id)

    def location_stream(self, day: int, location_id: int) -> np.random.Generator:
        """Per-(day, location) stream used for transmission draws."""
        return self.stream(self.LOCATION, day, location_id)

    def uniforms_for(
        self, prefix: int, day: int, ids: Iterable[int], salt: int = 0
    ) -> np.ndarray:
        """Vector of one U(0,1) draw per id, order-independent.

        Equivalent to drawing ``stream(prefix, day, i, salt).random()``
        for each id, but batched: used where the sequential reference
        and the chare-parallel execution must agree on per-entity coin
        flips while visiting entities in different orders.  Distinct
        consumers sharing a prefix must use distinct ``salt`` values so
        their decisions stay independent.
        """
        ids = np.asarray(list(ids), dtype=np.int64)
        out = np.empty(len(ids), dtype=np.float64)
        for j, i in enumerate(ids):
            out[j] = spawn_generator(self.root_seed, prefix, day, int(i), salt).random()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(root_seed={self.root_seed})"
