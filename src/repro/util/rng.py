"""Deterministic, hierarchical random-number streams.

The simulator needs randomness that is independent of *execution order*:
whether persons are processed sequentially, by chare, or across simulated
PEs, person ``p`` on day ``d`` must see the same draws.  We achieve this by
deriving a child seed from ``(root_seed, *keys)`` with a stable integer
hash and constructing a fresh :class:`numpy.random.Generator` per keyed
stream.  Stream construction is cheap (~1 microsecond) relative to the
work done per stream (a day's worth of draws for one entity).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.util.pcg import first_uniforms

__all__ = [
    "derive_seed",
    "derive_seeds",
    "spawn_generator",
    "keyed_uniforms",
    "RngFactory",
]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: int) -> int:
    """Derive a 64-bit child seed from a root seed and integer keys.

    Uses BLAKE2b over the little-endian packed key tuple, which gives
    high-quality avalanche behaviour (SplitMix-style multiplicative
    mixing showed detectable correlations between (p, d) and (p+1, d-1)
    streams in early testing).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    keys:
        Any number of non-negative integers identifying the stream,
        e.g. ``(day, person_id)``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(root_seed).to_bytes(8, "little", signed=False))
    for k in keys:
        h.update(int(k).to_bytes(8, "little", signed=True))
    return int.from_bytes(h.digest(), "little") & _MASK64


def derive_seeds(root_seed: int, keys: np.ndarray) -> np.ndarray:
    """Batched :func:`derive_seed`: one child seed per row of ``keys``.

    ``keys`` is an ``(n, k)`` integer array; row ``j`` yields exactly
    ``derive_seed(root_seed, *keys[j])``.  The BLAKE2b digests are
    computed over one contiguous little-endian buffer (hashlib has no
    batch API, but packing the whole key matrix in a single ``tobytes``
    keeps the per-row Python work to one hash call and one slice).
    """
    keys = np.ascontiguousarray(np.atleast_2d(keys), dtype="<i8")
    n, k = keys.shape
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    prefix = int(root_seed).to_bytes(8, "little", signed=False)
    buf = keys.tobytes()
    row = 8 * k
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    return np.fromiter(
        (
            from_bytes(blake2b(prefix + buf[o : o + row], digest_size=8).digest(), "little")
            for o in range(0, n * row, row)
        ),
        dtype=np.uint64,
        count=n,
    )


def spawn_generator(root_seed: int, *keys: int) -> np.random.Generator:
    """Construct a :class:`numpy.random.Generator` for a keyed stream."""
    return np.random.Generator(np.random.PCG64(derive_seed(root_seed, *keys)))


def keyed_uniforms(root_seed: int, *key_cols) -> np.ndarray:
    """One U(0,1) draw per key tuple, fully batched.

    ``key_cols`` are integer arrays (or scalars, broadcast against the
    array columns); tuple ``j`` is ``(key_cols[0][j], key_cols[1][j],
    ...)``.  Element ``j`` is bit-identical to
    ``spawn_generator(root_seed, *tuple_j).random()`` — the same seed
    derivation (BLAKE2b) feeds a vectorised replay of numpy's
    SeedSequence→PCG64 pipeline (:mod:`repro.util.pcg`) instead of one
    Generator construction per tuple, which is what makes per-entity
    keyed coin flips affordable on the exposure hot path.
    """
    cols = np.broadcast_arrays(*[np.asarray(c, dtype=np.int64) for c in key_cols])
    keys = np.column_stack([c.ravel() for c in cols])
    return first_uniforms(derive_seeds(root_seed, keys)).reshape(cols[0].shape)


class RngFactory:
    """Factory producing keyed generators below a fixed root seed.

    A factory is shared by a whole simulation run; components ask for
    ``factory.stream(*keys)`` with their own stable key prefix.  Key
    prefixes in use across the codebase (kept unique by convention):

    ==========  =====================================================
    prefix      component
    ==========  =====================================================
    ``0``       population synthesis
    ``1``       per-(day, person) health/behaviour draws
    ``2``       per-(day, location) transmission draws
    ``3``       intervention triggers
    ``4``       partitioner tie-breaking
    ``5``       machine/network jitter
    ``6``       baseline simulators (FastSIR, Dijkstra replications)
    ``7``       scenario model components (:mod:`repro.scenarios`)
    ==========  =====================================================
    """

    #: Key-prefix constants (see class docstring).
    SYNTHPOP = 0
    PERSON = 1
    LOCATION = 2
    INTERVENTION = 3
    PARTITION = 4
    MACHINE = 5
    BASELINE = 6
    SCENARIO = 7

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an integer, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)

    def seed(self, *keys: int) -> int:
        """Derived child seed for ``keys``."""
        return derive_seed(self.root_seed, *keys)

    def stream(self, *keys: int) -> np.random.Generator:
        """Generator for the stream identified by ``keys``."""
        return spawn_generator(self.root_seed, *keys)

    def person_stream(self, day: int, person_id: int) -> np.random.Generator:
        """Per-(day, person) stream used for health/behaviour draws."""
        return self.stream(self.PERSON, day, person_id)

    def location_stream(self, day: int, location_id: int) -> np.random.Generator:
        """Per-(day, location) stream used for transmission draws."""
        return self.stream(self.LOCATION, day, location_id)

    def keyed_uniforms(self, *key_cols) -> np.ndarray:
        """Batched keyed draws below this factory's root seed.

        See :func:`keyed_uniforms`; element ``j`` equals
        ``self.stream(*tuple_j).random()`` exactly.
        """
        return keyed_uniforms(self.root_seed, *key_cols)

    def uniforms_for(
        self, prefix: int, day: int, ids: Iterable[int], salt: int = 0
    ) -> np.ndarray:
        """Vector of one U(0,1) draw per id, order-independent.

        Exactly ``stream(prefix, day, i, salt).random()`` for each id,
        but delegated to the batched :func:`keyed_uniforms` primitive:
        used where the sequential reference and the chare-parallel
        execution must agree on per-entity coin flips while visiting
        entities in different orders.  Distinct consumers sharing a
        prefix must use distinct ``salt`` values so their decisions
        stay independent.
        """
        ids = np.fromiter((int(i) for i in ids), dtype=np.int64)
        return keyed_uniforms(self.root_seed, prefix, day, ids, salt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(root_seed={self.root_seed})"
