"""Log-binned histograms for heavy-tailed distributions.

The paper's Figures 3(c,d) and 7(a,b) plot degree and load distributions
on log-log axes with logarithmic bin widths ("bin width ∝ 10^(x/10)" in
the figure captions).  Linear binning of a power law wastes almost all
bins on the tail; logarithmic binning gives a stable estimate of the
exponent.  This module provides the binning plus a simple least-squares
power-law exponent fit used by the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogHistogram", "log_binned_histogram", "fit_powerlaw_exponent"]


@dataclass(frozen=True)
class LogHistogram:
    """A histogram over logarithmically spaced bins.

    Attributes
    ----------
    edges:
        Bin edges, length ``nbins + 1``.
    counts:
        Raw counts per bin, length ``nbins``.
    density:
        Counts normalised by bin width and total mass, i.e. an estimate
        of the probability density, length ``nbins``.
    centers:
        Geometric bin centers, length ``nbins``.
    """

    edges: np.ndarray
    counts: np.ndarray
    density: np.ndarray
    centers: np.ndarray

    @property
    def nonempty(self) -> np.ndarray:
        """Boolean mask of bins with at least one sample."""
        return self.counts > 0


def log_binned_histogram(values, bins_per_decade: int = 10) -> LogHistogram:
    """Histogram positive values into logarithmically spaced bins.

    Parameters
    ----------
    values:
        Positive samples (non-positive entries are rejected — degree and
        load are strictly positive in our graphs).
    bins_per_decade:
        Number of bins per factor-of-10, matching the paper's
        ``bin width 10^(1/10)`` convention at the default.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if np.any(v <= 0):
        raise ValueError("log-binned histogram requires strictly positive values")
    lo = np.floor(np.log10(v.min()) * bins_per_decade) / bins_per_decade
    hi = np.ceil(np.log10(v.max()) * bins_per_decade) / bins_per_decade
    if hi <= lo:
        hi = lo + 1.0 / bins_per_decade
    nbins = int(round((hi - lo) * bins_per_decade))
    edges = np.logspace(lo, hi, nbins + 1)
    counts, _ = np.histogram(v, bins=edges)
    widths = np.diff(edges)
    density = counts / (widths * v.size)
    centers = np.sqrt(edges[:-1] * edges[1:])
    return LogHistogram(edges=edges, counts=counts, density=density, centers=centers)


def fit_powerlaw_exponent(values, xmin: float = 1.0) -> float:
    """Estimate the power-law exponent β of P(x) ∝ x^(−β) for x ≥ xmin.

    Uses the continuous maximum-likelihood (Hill) estimator
    ``β = 1 + n / Σ ln(x_i / xmin)``, which is far more robust than a
    regression on log-binned counts.  Values below ``xmin`` are ignored.
    """
    v = np.asarray(values, dtype=np.float64)
    v = v[v >= xmin]
    if v.size < 2:
        raise ValueError("need at least two samples above xmin to fit an exponent")
    logs = np.log(v / xmin)
    s = logs.sum()
    if s <= 0:
        raise ValueError("degenerate sample: all values equal xmin")
    return 1.0 + v.size / s
