"""Wall-clock timing and virtual-cost accounting helpers.

Two distinct notions of time appear in this codebase:

* **wall time** — how long our Python code actually takes; used when
  fitting the load model against real measurements (Figure 3a) and in
  the pytest-benchmark harness.
* **virtual time** — the modelled execution time of the simulated
  parallel machine; accumulated by :class:`CostAccumulator` instances
  owned by simulated PEs.

Keeping them in separate types prevents the classic bug of adding
seconds of Python interpretation to seconds of modelled Cray time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "CostAccumulator"]


class Timer:
    """Context manager measuring wall time with ``perf_counter``.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class CostAccumulator:
    """Accumulates virtual (modelled) costs, bucketed by category.

    Categories in use: ``"compute"``, ``"comm"``, ``"sync"``, ``"idle"``.
    The scheduler reads :attr:`total` as the PE's busy time; the scaling
    analysis reads the per-category breakdown for the ablation benches.
    """

    buckets: dict = field(default_factory=dict)

    def add(self, category: str, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative cost {amount!r} for category {category!r}")
        self.buckets[category] = self.buckets.get(category, 0.0) + amount

    def get(self, category: str) -> float:
        return self.buckets.get(category, 0.0)

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def merge(self, other: "CostAccumulator") -> None:
        """Fold another accumulator's buckets into this one."""
        for k, v in other.buckets.items():
            self.buckets[k] = self.buckets.get(k, 0.0) + v

    def reset(self) -> None:
        self.buckets.clear()
