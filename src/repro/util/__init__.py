"""Shared utilities: deterministic RNG streams, histograms, timing.

These helpers underpin every stochastic component in the reproduction.
Determinism matters here more than in a typical simulation codebase:
the sequential reference simulator and the simulated-parallel runtime
must produce *identical* epidemic trajectories (see DESIGN.md §5), which
requires that randomness be keyed by stable identifiers (person id,
simulation day) rather than by draw order.
"""

from repro.util.rng import RngFactory, derive_seed, spawn_generator
from repro.util.histogram import log_binned_histogram, LogHistogram
from repro.util.timing import Timer, CostAccumulator

__all__ = [
    "RngFactory",
    "derive_seed",
    "spawn_generator",
    "log_binned_histogram",
    "LogHistogram",
    "Timer",
    "CostAccumulator",
]
