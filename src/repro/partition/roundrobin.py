"""Round-robin data distribution — the paper's RR baseline.

"Originally, we assign objects to Charm++ chares round-robin (RR) to
approximate static load balancing" (§III-B).  RR spreads *counts*
evenly, which approximates load balance when loads are homogeneous —
and fails exactly when they are heavy-tailed, since the partition that
draws the heaviest location carries its whole load.  It also ignores
locality entirely, so nearly every person–location edge is cut.
"""

from __future__ import annotations

import numpy as np

from repro.partition.quality import BipartitePartition
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["round_robin_partition"]


def round_robin_partition(graph: PersonLocationGraph, k: int) -> BipartitePartition:
    """Assign person i → i mod k and location j → j mod k."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return BipartitePartition(
        person_part=(np.arange(graph.n_persons, dtype=np.int64) % k),
        location_part=(np.arange(graph.n_locations, dtype=np.int64) % k),
        k=k,
        method="RR",
    )
