"""Fiduccia–Mattheyses boundary refinement for bisections.

After projecting a coarse bisection to a finer level, boundary vertices
are moved greedily to reduce the cut subject to the multi-constraint
balance tolerance.  The implementation is lazy-heap FM: gains are
recomputed at pop time (cheaper than strict bucket updates and accurate
enough), each vertex moves at most once per pass, and passes repeat
until no move helps.

A separate :func:`rebalance` pass restores feasibility when projection
or initial partitioning left a constraint outside tolerance — it moves
minimum-cut-damage vertices out of the overweight side.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro import observe
from repro.partition.csr import CSRGraph

__all__ = ["fm_refine", "rebalance", "move_gain", "all_gains"]


def move_gain(graph: CSRGraph, part: np.ndarray, v: int) -> int:
    """Cut reduction if ``v`` switched sides: external − internal weight."""
    e0, e1 = graph.xadj[v], graph.xadj[v + 1]
    nbrs = graph.adjncy[e0:e1]
    wts = graph.adjwgt[e0:e1]
    same = part[nbrs] == part[v]
    return int(wts[~same].sum() - wts[same].sum())


def all_gains(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    """Vectorised :func:`move_gain` for every vertex at once."""
    n = graph.n_vertices
    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    cross = part[src] != part[graph.adjncy]
    signed = np.where(cross, graph.adjwgt, -graph.adjwgt)
    return np.bincount(src, weights=signed, minlength=n).astype(np.int64)


def _side_weights(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    """Shape (2, ncon) weight totals."""
    w = np.zeros((2, graph.ncon), dtype=np.int64)
    np.add.at(w, part.astype(np.int64), graph.vwgt)
    return w


def _fits(
    side_w: np.ndarray, totals: np.ndarray, target_frac: float, ubfactor: float,
    vw: np.ndarray, src: int,
) -> bool:
    """Would moving a vertex with weights ``vw`` from ``src`` keep balance?"""
    dst = 1 - src
    frac = target_frac if dst == 0 else 1.0 - target_frac
    # Plain-Python loop: ncon is tiny (2) and this sits on FM's hot path.
    for c in range(totals.shape[0]):
        t = totals[c]
        if t == 0:
            continue
        limit = t * frac * ubfactor
        w = vw[c]
        if side_w[dst, c] + w > (limit if limit > w else w):
            return False
    return True


@observe.traced("partition.fm_refine")
def fm_refine(
    graph: CSRGraph,
    part: np.ndarray,
    target_frac: float,
    ubfactor: float = 1.05,
    max_passes: int = 6,
) -> np.ndarray:
    """Refine a bisection in place; returns ``part`` for convenience."""
    totals = graph.total_vwgt()
    side_w = _side_weights(graph, part)
    for _ in range(max_passes):
        moved_any = False
        locked = np.zeros(graph.n_vertices, dtype=bool)
        # Seed the heap with current boundary vertices (gains vectorised).
        src_ids = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
        boundary_mask = part[src_ids] != part[graph.adjncy]
        boundary = np.unique(src_ids[boundary_mask])
        gains0 = all_gains(graph, part)
        heap: list[tuple[int, int]] = [(-int(gains0[v]), int(v)) for v in boundary]
        heapq.heapify(heap)
        while heap:
            neg_g, v = heapq.heappop(heap)
            if locked[v]:
                continue
            g = move_gain(graph, part, v)
            if g != -neg_g:
                heapq.heappush(heap, (-g, v))
                continue
            if g < 0:
                break  # heap is sorted: nothing with positive gain remains
            src = int(part[v])
            vw = graph.vwgt[v]
            if g == 0 and not _improves_balance(side_w, totals, target_frac, vw, src):
                locked[v] = True
                continue
            if not _fits(side_w, totals, target_frac, ubfactor, vw, src):
                locked[v] = True
                continue
            part[v] = 1 - src
            side_w[src] -= vw
            side_w[1 - src] += vw
            locked[v] = True
            moved_any = True
            for e in range(graph.xadj[v], graph.xadj[v + 1]):
                u = int(graph.adjncy[e])
                if not locked[u]:
                    heapq.heappush(heap, (-move_gain(graph, part, u), u))
        if not moved_any:
            break
    return part


def _improves_balance(
    side_w: np.ndarray, totals: np.ndarray, target_frac: float, vw: np.ndarray, src: int
) -> bool:
    """Does moving vw off ``src`` reduce the worst constraint imbalance?"""
    tgt = (target_frac, 1.0 - target_frac)
    dst = 1 - src
    before = after = 0.0
    for c in range(totals.shape[0]):
        t = totals[c]
        if t == 0:
            continue
        for side in (0, 1):
            b = abs(side_w[side, c] / t - tgt[side])
            w = side_w[side, c] + (vw[c] if side == dst else -vw[c])
            a = abs(w / t - tgt[side])
            if b > before:
                before = b
            if a > after:
                after = a
    return after < before


def rebalance(
    graph: CSRGraph,
    part: np.ndarray,
    target_frac: float,
    ubfactor: float = 1.05,
) -> np.ndarray:
    """Force the bisection inside tolerance, minimising cut damage.

    Repeatedly moves the highest-gain vertex out of the side that most
    exceeds its limit, until all constraints fit (or no movable vertex
    remains — possible when one vertex alone exceeds a side's limit,
    which is exactly the heavy-node pathology splitLoc addresses).
    """
    totals = graph.total_vwgt()
    side_w = _side_weights(graph, part)
    limits = np.stack(
        [totals * target_frac * ubfactor, totals * (1.0 - target_frac) * ubfactor]
    )
    for _ in range(64):
        over = side_w.astype(np.float64) - limits
        over[:, totals == 0] = -1.0
        if np.all(over <= 0):
            break
        src = int(np.argmax(over.max(axis=1)))
        worst_con = int(np.argmax(over[src]))
        candidates = np.flatnonzero((part == src) & (graph.vwgt[:, worst_con] > 0))
        if candidates.size == 0:
            break
        # Move a batch of best-gain candidates (gains go stale within
        # the batch — acceptable: rebalance trades cut for feasibility).
        gains = all_gains(graph, part)[candidates]
        order = candidates[np.argsort(-gains, kind="stable")]
        moved = False
        for v in order:
            if side_w[src, worst_con] <= limits[src, worst_con]:
                break
            v = int(v)
            part[v] = 1 - src
            side_w[src] -= graph.vwgt[v]
            side_w[1 - src] += graph.vwgt[v]
            moved = True
        if not moved:
            break
    return part
