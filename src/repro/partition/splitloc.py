"""Heavy-node splitting — the paper's §III-C preprocessing.

Locations with heavy-tailed loads bound achievable speedup at
``L_tot / l_max`` no matter how good the partitioner is (§III-B).  The
fix: exploit *sublocations*.  People only interact within a
sublocation, so a heavy location can split into several locations each
owning an exclusive subset of its sublocations — dividing both load and
communication without adding edges (Figure 6a).

Following the paper:

* the **sublocation weight** is a platform-independent approximation —
  the average number of visits per sublocation, estimated per location
  type from the largest location of that type;
* the **location weight** sums its sublocations' weights;
* the **threshold** derives from the total load, the maximum number of
  partitions the graph will be cut into, and the largest sublocation
  weight (a location cannot split below one sublocation);
* locations above threshold split **as evenly as possible**.

Two split modes mirror Figure 6: ``"divide"`` assigns sublocations
exclusively (no new dependencies; the default and the mode used for
simulation); ``"retain"`` models the future-work inter-sublocation
mixing case by splitting visits across pieces regardless of
sublocation, which divides the susceptible side while requiring the
infectious side to be replicated — the replication is surfaced as
``coupling_pairs`` for cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observe
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["SplitResult", "split_threshold", "sublocation_type_weights", "split_heavy_locations"]


@dataclass
class SplitResult:
    """Outcome of the preprocessing pass."""

    graph: PersonLocationGraph
    #: original location id for every (new) location, shape (n_new_locations,)
    origin: np.ndarray
    #: how many locations were split
    n_split: int
    #: threshold used (visits units)
    threshold: float
    #: number of split-piece pairs that share state in "retain" mode (0 for "divide")
    coupling_pairs: int = 0

    @property
    def pieces_per_original(self) -> np.ndarray:
        """Piece count per original location id."""
        return np.bincount(self.origin, minlength=int(self.origin.max()) + 1)


def sublocation_type_weights(graph: PersonLocationGraph) -> np.ndarray:
    """Average visits per sublocation, per location type.

    The paper determines each type's weight from the largest locations
    of that type (largest by sublocation count); we follow suit.
    """
    counts = graph.location_visit_counts
    n_types = int(graph.location_type.max()) + 1
    weights = np.zeros(n_types, dtype=np.float64)
    for t in range(n_types):
        locs = np.flatnonzero(graph.location_type == t)
        if locs.size == 0:
            weights[t] = 1.0
            continue
        biggest = locs[np.argmax(graph.location_n_sublocs[locs])]
        nsub = max(1, int(graph.location_n_sublocs[biggest]))
        weights[t] = max(1.0, counts[biggest] / nsub)
    return weights


def location_weights(
    graph: PersonLocationGraph, subloc_weights: np.ndarray | None = None
) -> np.ndarray:
    """Per-location weight = Σ of its sublocations' type weights.

    ``subloc_weights`` overrides the type-weight estimation — pass the
    weights estimated on an earlier graph to keep repeated
    preprocessing passes consistent.
    """
    tw = subloc_weights if subloc_weights is not None else sublocation_type_weights(graph)
    return graph.location_n_sublocs.astype(np.float64) * tw[graph.location_type]


def split_threshold(graph: PersonLocationGraph, max_partitions: int, slack: float = 1.0) -> float:
    """The paper's threshold rule.

    ``max(total_weight / max_partitions, largest sublocation weight) ×
    slack`` — splitting finer than one sublocation is impossible, and
    splitting below the per-partition share gains nothing.
    """
    if max_partitions < 1:
        raise ValueError("max_partitions must be >= 1")
    w = location_weights(graph)
    tw = sublocation_type_weights(graph)
    return max(float(w.sum()) / max_partitions, float(tw.max())) * slack


@observe.traced("partition.splitloc")
def split_heavy_locations(
    graph: PersonLocationGraph,
    max_partitions: int | None = None,
    threshold: float | None = None,
    mode: str = "divide",
    subloc_weights: np.ndarray | None = None,
) -> SplitResult:
    """Split locations heavier than the threshold.

    Parameters
    ----------
    graph:
        Input person–location graph.
    max_partitions:
        Largest partition count the graph should support; used to derive
        the threshold when ``threshold`` is not given.
    threshold:
        Explicit weight threshold (visits units); overrides the rule.
    mode:
        ``"divide"`` (sublocation-exclusive pieces, Figure 6a) or
        ``"retain"`` (visit-level split modelling Figure 6b).
    subloc_weights:
        Explicit per-type sublocation weights; defaults to estimating
        them from ``graph`` (the paper's procedure).  Pass the weights
        from an earlier pass to make repeated splitting consistent.
    """
    if mode not in ("divide", "retain"):
        raise ValueError(f"unknown split mode {mode!r}")
    if threshold is None:
        if max_partitions is None:
            raise ValueError("give either max_partitions or threshold")
        threshold = split_threshold(graph, max_partitions)
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    w = location_weights(graph, subloc_weights)
    heavy = np.flatnonzero(w > threshold)
    if heavy.size == 0:
        return SplitResult(
            graph=graph,
            origin=np.arange(graph.n_locations, dtype=np.int64),
            n_split=0,
            threshold=threshold,
        )

    n_sublocs = graph.location_n_sublocs.astype(np.int64)
    pieces = np.ones(graph.n_locations, dtype=np.int64)
    if mode == "divide":
        # Sublocations are indivisible, so a piece of k sublocations
        # weighs k × w_subloc: the piece count must satisfy
        # ceil(n_sublocs / pieces) × w_subloc <= threshold, i.e.
        # pieces >= n_sublocs / floor(threshold / w_subloc).
        tw = (
            subloc_weights
            if subloc_weights is not None
            else sublocation_type_weights(graph)
        )
        per_subloc = tw[graph.location_type[heavy]]
        max_sublocs_per_piece = np.maximum(
            1, np.floor(threshold / np.maximum(per_subloc, 1e-12))
        ).astype(np.int64)
        want = np.ceil(n_sublocs[heavy] / max_sublocs_per_piece).astype(np.int64)
        pieces[heavy] = np.minimum(want, np.maximum(n_sublocs[heavy], 1))
    else:
        # Visit-level splitting is not bounded by sublocation count.
        pieces[heavy] = np.maximum(np.ceil(w[heavy] / threshold).astype(np.int64), 1)
    actually_split = np.flatnonzero(pieces > 1)

    # New location numbering: piece 0 keeps the original id; pieces 1..
    # append after the original locations, grouped per original.
    extra = pieces - 1
    extra_base = graph.n_locations + np.concatenate([[0], np.cumsum(extra)])[:-1]
    n_new_locations = graph.n_locations + int(extra.sum())

    origin = np.empty(n_new_locations, dtype=np.int64)
    origin[: graph.n_locations] = np.arange(graph.n_locations)
    for loc in actually_split:
        b = extra_base[loc]
        origin[b : b + extra[loc]] = loc

    # Route each visit to its piece and renumber its sublocation.
    visit_loc = graph.visit_location.copy()
    visit_sub = graph.visit_subloc.astype(np.int64).copy()
    new_n_sublocs = np.empty(n_new_locations, dtype=np.int64)
    new_n_sublocs[: graph.n_locations] = n_sublocs
    new_type = np.empty(n_new_locations, dtype=graph.location_type.dtype)
    new_type[: graph.n_locations] = graph.location_type
    coupling_pairs = 0

    loc_order, loc_ptr = graph.location_visit_index()
    for loc in actually_split:
        p = int(pieces[loc])
        rows = loc_order[loc_ptr[loc] : loc_ptr[loc + 1]]
        if mode == "divide":
            ns = int(n_sublocs[loc])
            # Contiguous, maximally even chunks of sublocation ids.
            bounds = (np.arange(p + 1) * ns) // p
            piece_of_subloc = np.searchsorted(bounds, np.arange(ns), side="right") - 1
            sub_base = bounds  # first subloc id of each piece
            vpiece = piece_of_subloc[visit_sub[rows]]
            visit_sub[rows] = visit_sub[rows] - sub_base[vpiece]
            sizes = np.diff(bounds)
        else:
            # Round-robin visits over pieces; each piece keeps one
            # synthetic sublocation, and every piece pair shares the
            # original's infectious state (the replication coupling).
            vpiece = np.arange(rows.size, dtype=np.int64) % p
            visit_sub[rows] = 0
            sizes = np.ones(p, dtype=np.int64)
            coupling_pairs += p * (p - 1) // 2
        new_ids = np.concatenate([[loc], extra_base[loc] + np.arange(p - 1)])
        visit_loc[rows] = new_ids[vpiece]
        new_n_sublocs[new_ids] = np.maximum(sizes, 1)
        new_type[new_ids] = graph.location_type[loc]

    new_graph = graph.with_visits(
        graph.visit_person,
        visit_loc,
        visit_sub.astype(graph.visit_subloc.dtype),
        graph.visit_start,
        graph.visit_end,
        n_locations=n_new_locations,
        location_n_sublocs=new_n_sublocs.astype(np.int32),
        location_type=new_type,
        location_region=(
            graph.location_region[origin] if graph.location_region is not None else None
        ),
        name=f"{graph.name}+split",
    )
    # person_home may now point at a split home building's piece 0 — the
    # id is unchanged, so the reference stays valid.
    new_graph.validate()
    return SplitResult(
        graph=new_graph,
        origin=origin,
        n_split=int(actually_split.size),
        threshold=threshold,
        coupling_pairs=coupling_pairs,
    )
