"""Multilevel k-way multi-constraint partitioner (the METIS stand-in).

Recursive bisection in the Karypis–Kumar mould: coarsen by heavy-edge
matching, bisect the coarsest graph by greedy growing, refine with FM
during uncoarsening, then recurse on the two induced subgraphs with
proportional targets until ``k`` parts exist.  Vertex weights are
vectors (multi-constraint); every bisection balances each constraint
against its proportional target within ``ubfactor``.

This is deliberately the same black-box interface the paper uses METIS
through: callers hand in a CSR graph with weight vectors and a part
count and receive a part id per vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observe
from repro.loadmodel.workload import WorkloadModel
from repro.partition.coarsen import coarsen_graph
from repro.partition.csr import CSRGraph, bipartite_to_csr
from repro.partition.initial import initial_bisection
from repro.partition.quality import BipartitePartition
from repro.partition.refine import fm_refine, rebalance
from repro.synthpop.graph import PersonLocationGraph
from repro.util.rng import RngFactory

__all__ = ["PartitionerOptions", "MultilevelPartitioner", "partition_bipartite"]


@dataclass(frozen=True)
class PartitionerOptions:
    """Tuning knobs (defaults mirror METIS' spirit)."""

    ubfactor: float = 1.10  # per-bisection balance tolerance
    coarsen_to: int = 160  # stop coarsening below this many vertices
    n_init_tries: int = 4
    fm_passes: int = 6
    seed: int = 0


class MultilevelPartitioner:
    """Reusable partitioner instance (options + seeded randomness)."""

    def __init__(self, options: PartitionerOptions | None = None):
        self.options = options or PartitionerOptions()
        self._rng_factory = RngFactory(self.options.seed)
        self._bisection_counter = 0

    # ------------------------------------------------------------------
    @observe.traced("partition.bisect")
    def bisect(self, graph: CSRGraph, target_frac: float) -> np.ndarray:
        """Multilevel bisection: part 0 gets ``target_frac`` of each constraint."""
        opts = self.options
        self._bisection_counter += 1
        rng = self._rng_factory.stream(RngFactory.PARTITION, self._bisection_counter)
        if graph.n_vertices <= 1:
            return np.zeros(graph.n_vertices, dtype=np.int8)
        levels = coarsen_graph(graph, rng, coarsen_to=opts.coarsen_to)
        part = initial_bisection(
            levels[-1].graph, target_frac, rng, n_tries=opts.n_init_tries
        )
        part = rebalance(levels[-1].graph, part, target_frac, opts.ubfactor)
        part = fm_refine(
            levels[-1].graph, part, target_frac, opts.ubfactor, opts.fm_passes
        )
        # Uncoarsen: project and refine at each finer level.
        for level in reversed(levels[:-1]):
            part = part[level.coarse_map]
            part = rebalance(level.graph, part, target_frac, opts.ubfactor)
            part = fm_refine(level.graph, part, target_frac, opts.ubfactor, opts.fm_passes)
        return part

    # ------------------------------------------------------------------
    def kway(self, graph: CSRGraph, k: int) -> np.ndarray:
        """Partition into ``k`` parts by recursive bisection."""
        if k < 1:
            raise ValueError("k must be >= 1")
        out = np.zeros(graph.n_vertices, dtype=np.int64)
        self._kway_rec(graph, k, np.arange(graph.n_vertices, dtype=np.int64), 0, out)
        return out

    def _kway_rec(
        self, graph: CSRGraph, k: int, vertex_ids: np.ndarray, base: int, out: np.ndarray
    ) -> None:
        if k == 1 or graph.n_vertices == 0:
            out[vertex_ids] = base
            return
        if graph.n_vertices <= k:
            # Fewer vertices than parts: one vertex per part, rest empty.
            out[vertex_ids] = base + (np.arange(graph.n_vertices) % k)
            return
        k1 = k // 2
        target = k1 / k
        part = self.bisect(graph, target)
        for side, (kk, offset) in enumerate(((k1, 0), (k - k1, k1))):
            mask = part == side
            ids = vertex_ids[mask]
            sub = _induced_subgraph(graph, mask)
            self._kway_rec(sub, kk, ids, base + offset, out)

    # ------------------------------------------------------------------
    def partition_bipartite(
        self,
        graph: PersonLocationGraph,
        k: int,
        workload: WorkloadModel | None = None,
    ) -> BipartitePartition:
        """Partition a person–location graph into ``k`` parts."""
        with observe.span(
            "partition.kway", k=k, persons=graph.n_persons, locations=graph.n_locations
        ):
            csr = bipartite_to_csr(graph, workload)
            part = self.kway(csr, k)
            n = graph.n_persons
            return BipartitePartition(
                person_part=part[:n].copy(),
                location_part=part[n:].copy(),
                k=k,
                method="GP",
            )


def _induced_subgraph(graph: CSRGraph, mask: np.ndarray) -> CSRGraph:
    """Subgraph on ``mask`` vertices, renumbered densely."""
    ids = np.flatnonzero(mask)
    renum = np.full(graph.n_vertices, -1, dtype=np.int64)
    renum[ids] = np.arange(ids.size)
    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    keep = mask[src] & mask[graph.adjncy] & (src < graph.adjncy)
    if not keep.any():
        return CSRGraph(
            xadj=np.zeros(ids.size + 1, dtype=np.int64),
            adjncy=np.empty(0, dtype=np.int64),
            adjwgt=np.empty(0, dtype=np.int64),
            vwgt=graph.vwgt[ids].copy(),
        )
    return CSRGraph.from_edge_list(
        ids.size, renum[src[keep]], renum[graph.adjncy[keep]], graph.adjwgt[keep],
        graph.vwgt[ids],
    )


def partition_bipartite(
    graph: PersonLocationGraph,
    k: int,
    workload: WorkloadModel | None = None,
    options: PartitionerOptions | None = None,
) -> BipartitePartition:
    """One-shot convenience wrapper around :class:`MultilevelPartitioner`."""
    return MultilevelPartitioner(options).partition_bipartite(graph, k, workload)
