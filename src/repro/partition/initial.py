"""Initial bisection of the coarsest graph.

Greedy graph growing (GGP, Karypis & Kumar): start a BFS region from a
random seed and absorb vertices — preferring those with the highest
*gain* (edge weight toward the region minus away) — until the region
reaches its target share of every constraint.  Several seeds are tried
and the best balanced bisection by cut wins.

Multi-constraint handling: a region is "full" in a constraint once it
holds its target fraction of it; growing stops when all constraints are
full (or no candidates remain).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["grow_bisection", "initial_bisection"]


def grow_bisection(
    graph: CSRGraph,
    target_frac: float,
    seed_vertex: int,
) -> np.ndarray:
    """Grow part 0 from ``seed_vertex`` to ``target_frac`` of each constraint.

    Returns a 0/1 part vector.  Pure greedy: the frontier is a max-heap
    on gain; weights are accounted as vertices are absorbed.
    """
    n = graph.n_vertices
    part = np.ones(n, dtype=np.int8)
    totals = graph.total_vwgt().astype(np.float64)
    target = totals * target_frac
    acc = np.zeros_like(totals)
    in_region = np.zeros(n, dtype=bool)
    gain = np.zeros(n, dtype=np.float64)
    heap: list[tuple[float, int]] = [(0.0, seed_vertex)]
    enqueued = np.zeros(n, dtype=bool)
    enqueued[seed_vertex] = True
    while heap:
        # Stop when every constraint with any mass has reached target.
        if np.all((acc >= target) | (totals == 0)):
            break
        _, v = heapq.heappop(heap)
        if in_region[v]:
            continue
        # Skip if absorbing v would badly overshoot a constraint.
        vw = graph.vwgt[v].astype(np.float64)
        overshoot = (acc + vw) > np.maximum(target * 1.3, target + vw.max())
        if np.any(overshoot & (vw > 0)) and np.any(acc >= target):
            continue
        in_region[v] = True
        part[v] = 0
        acc += vw
        for e in range(graph.xadj[v], graph.xadj[v + 1]):
            u = graph.adjncy[e]
            if not in_region[u]:
                gain[u] += graph.adjwgt[e]
                heapq.heappush(heap, (-gain[u], u))
                enqueued[u] = True
    return part


def initial_bisection(
    graph: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    n_tries: int = 4,
) -> np.ndarray:
    """Best-of-``n_tries`` greedy bisections (by cut, then balance)."""
    from repro.partition.quality import csr_edge_cut  # local import: avoid cycle

    n = graph.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.int8)
    best_part = None
    best_key = None
    totals = graph.total_vwgt().astype(np.float64)
    for _ in range(max(1, n_tries)):
        seed = int(rng.integers(n))
        part = grow_bisection(graph, target_frac, seed)
        cut = csr_edge_cut(graph, part)
        w0 = graph.vwgt[part == 0].sum(axis=0).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(totals > 0, w0 / np.maximum(totals, 1), target_frac)
        balance_err = float(np.abs(frac - target_frac).max())
        key = (round(balance_err, 3), cut)
        if best_key is None or key < best_key:
            best_key, best_part = key, part
    return best_part
