"""Graph partitioning: the paper's §III machinery.

* :mod:`repro.partition.csr` — compressed sparse row graphs and the
  bipartite→CSR conversion;
* :mod:`repro.partition.metis` — a from-scratch multilevel k-way
  partitioner with multi-constraint vertex weights (the METIS stand-in);
* :mod:`repro.partition.coarsen` / :mod:`repro.partition.initial` /
  :mod:`repro.partition.refine` — the three multilevel stages;
* :mod:`repro.partition.roundrobin` — the RR baseline distribution;
* :mod:`repro.partition.splitloc` — heavy-node splitting preprocessing
  (§III-C);
* :mod:`repro.partition.quality` — edge cut, per-partition cut and
  balance metrics (Figures 2, 14).

The four data-distribution strategies benchmarked in Figure 13 map to:

==============  ==========================================================
label           construction
==============  ==========================================================
RR              :func:`roundrobin.round_robin_partition`
GP              :func:`metis.partition_bipartite` on the raw graph
RR-splitLoc     RR after :func:`splitloc.split_heavy_locations`
GP-splitLoc     GP after :func:`splitloc.split_heavy_locations`
==============  ==========================================================
"""

from repro.partition.csr import CSRGraph, bipartite_to_csr
from repro.partition.metis import MultilevelPartitioner, PartitionerOptions, partition_bipartite
from repro.partition.roundrobin import round_robin_partition
from repro.partition.splitloc import SplitResult, split_heavy_locations, split_threshold
from repro.partition.quality import (
    BipartitePartition,
    edge_cut,
    per_partition_edge_cut,
    partition_loads,
    imbalance,
)

__all__ = [
    "CSRGraph",
    "bipartite_to_csr",
    "MultilevelPartitioner",
    "PartitionerOptions",
    "partition_bipartite",
    "round_robin_partition",
    "SplitResult",
    "split_heavy_locations",
    "split_threshold",
    "BipartitePartition",
    "edge_cut",
    "per_partition_edge_cut",
    "partition_loads",
    "imbalance",
]
