"""CSR graphs for the partitioner.

The partitioner operates on undirected graphs in compressed sparse row
form with integer edge weights and multi-constraint integer vertex
weights — the same interface METIS exposes.  The person–location
bipartite graph converts via :func:`bipartite_to_csr`: persons take
vertex ids ``0..n_persons-1``, locations ``n_persons..``, and each
(person, location) pair becomes one undirected edge weighted by its
visit count (the communication volume between the two objects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loadmodel.workload import WorkloadModel, vertex_weight_matrix
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["CSRGraph", "bipartite_to_csr"]


@dataclass
class CSRGraph:
    """Undirected graph in CSR form.

    ``vwgt`` has shape ``(n, ncon)``; every edge appears twice (both
    directions) as METIS requires.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    @property
    def n_vertices(self) -> int:
        return int(self.xadj.shape[0] - 1)

    @property
    def n_edges(self) -> int:
        """Undirected edge count (adjacency is twice this)."""
        return int(self.adjncy.shape[0] // 2)

    @property
    def ncon(self) -> int:
        return int(self.vwgt.shape[1])

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def total_vwgt(self) -> np.ndarray:
        """Per-constraint total vertex weight, shape (ncon,)."""
        return self.vwgt.sum(axis=0)

    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        n_vertices: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        vwgt: np.ndarray,
    ) -> "CSRGraph":
        """Build from an undirected edge list (each edge listed once).

        Parallel edges are merged by summing weights; self-loops are
        rejected (METIS semantics).
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.int64)
        if np.any(u == v):
            raise ValueError("self-loops are not allowed")
        if u.size:
            if min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n_vertices:
                raise ValueError("edge endpoint out of range")
        # Merge parallel edges on the canonical (min, max) key.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * n_vertices + hi
        uniq, inv = np.unique(key, return_inverse=True)
        merged_w = np.bincount(inv, weights=w).astype(np.int64)
        lo = (uniq // n_vertices).astype(np.int64)
        hi = (uniq % n_vertices).astype(np.int64)
        # Symmetrise.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        ww = np.concatenate([merged_w, merged_w])
        order = np.argsort(src, kind="stable")
        src, dst, ww = src[order], dst[order], ww[order]
        xadj = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n_vertices), out=xadj[1:])
        vwgt = np.asarray(vwgt, dtype=np.int64)
        if vwgt.ndim == 1:
            vwgt = vwgt[:, None]
        if vwgt.shape[0] != n_vertices:
            raise ValueError("vwgt row count must equal n_vertices")
        return cls(xadj=xadj, adjncy=dst, adjwgt=ww, vwgt=vwgt)

    def validate(self) -> None:
        """Structural checks (symmetry by weight-sum, index ranges)."""
        if self.xadj[0] != 0 or self.xadj[-1] != self.adjncy.shape[0]:
            raise ValueError("xadj endpoints inconsistent")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj not monotone")
        if self.adjncy.size and (self.adjncy.min() < 0 or self.adjncy.max() >= self.n_vertices):
            raise ValueError("adjacency index out of range")
        if np.any(self.adjwgt <= 0):
            raise ValueError("edge weights must be positive")
        # Symmetry: per-vertex weighted degree must match its transpose.
        src = np.repeat(np.arange(self.n_vertices), np.diff(self.xadj))
        fwd = np.bincount(src, weights=self.adjwgt, minlength=self.n_vertices)
        bwd = np.bincount(self.adjncy, weights=self.adjwgt, minlength=self.n_vertices)
        if not np.allclose(fwd, bwd):
            raise ValueError("graph is not symmetric")


def bipartite_to_csr(
    graph: PersonLocationGraph, workload: WorkloadModel | None = None
) -> CSRGraph:
    """Convert a person–location graph to the partitioner's CSR form.

    Vertices: persons then locations; edges: collapsed visits weighted
    by visit multiplicity; vertex weights: the multi-constraint matrix
    of :func:`repro.loadmodel.workload.vertex_weight_matrix`.
    """
    p, l, w = graph.bipartite_adjacency()
    vwgt = vertex_weight_matrix(graph, workload)
    return CSRGraph.from_edge_list(
        graph.n_persons + graph.n_locations, p, l + graph.n_persons, w, vwgt
    )
