"""Multilevel coarsening via heavy-edge matching.

Standard METIS-style coarsening (Karypis & Kumar): visit vertices in a
random order; each unmatched vertex matches its unmatched neighbour
connected by the heaviest edge (heavy-edge matching maximises the edge
weight removed from the graph, which keeps cuts visible at coarse
levels).  Matched pairs contract into one coarse vertex whose weight
vector is the sum and whose edges merge by weight.

Coarsening stops when the graph is small enough for initial
partitioning or when matching stalls (common on star-like social
graphs — a hub's neighbours all want the hub).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.csr import CSRGraph

__all__ = ["CoarseLevel", "heavy_edge_matching", "contract", "coarsen_graph"]


@dataclass
class CoarseLevel:
    """One level of the multilevel hierarchy."""

    graph: CSRGraph
    #: fine-vertex -> coarse-vertex map into the *next* (coarser) level.
    coarse_map: np.ndarray | None = None


def heavy_edge_matching(graph: CSRGraph, rng: np.random.Generator) -> np.ndarray:
    """Return ``match[v]`` = matched partner (or ``v`` if unmatched)."""
    n = graph.n_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in order:
        if match[v] != -1:
            continue
        best, best_w = -1, -1
        for e in range(xadj[v], xadj[v + 1]):
            u = adjncy[e]
            if match[u] == -1 and u != v:
                w = adjwgt[e]
                if w > best_w:
                    best, best_w = u, w
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def contract(graph: CSRGraph, match: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Contract matched pairs; return (coarse graph, fine→coarse map)."""
    n = graph.n_vertices
    # Number coarse vertices: pair representative = min(v, match[v]).
    rep = np.minimum(np.arange(n), match)
    uniq, coarse_map = np.unique(rep, return_inverse=True)
    nc = uniq.size
    # Coarse vertex weights.
    ncon = graph.ncon
    cvwgt = np.zeros((nc, ncon), dtype=np.int64)
    np.add.at(cvwgt, coarse_map, graph.vwgt)
    # Coarse edges: map endpoints, drop intra-pair edges, merge parallels.
    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    cu = coarse_map[src]
    cv = coarse_map[graph.adjncy]
    keep = cu < cv  # one direction only, drops self (contracted) edges
    if not keep.any():
        coarse = CSRGraph(
            xadj=np.zeros(nc + 1, dtype=np.int64),
            adjncy=np.empty(0, dtype=np.int64),
            adjwgt=np.empty(0, dtype=np.int64),
            vwgt=cvwgt,
        )
        return coarse, coarse_map
    coarse = CSRGraph.from_edge_list(nc, cu[keep], cv[keep], graph.adjwgt[keep], cvwgt)
    return coarse, coarse_map


def coarsen_graph(
    graph: CSRGraph,
    rng: np.random.Generator,
    coarsen_to: int = 200,
    min_reduction: float = 0.95,
    max_levels: int = 30,
) -> list[CoarseLevel]:
    """Build the multilevel hierarchy; ``levels[0]`` is the input graph.

    Stops when the coarsest graph has ≤ ``coarsen_to`` vertices, when a
    level shrinks by less than ``1 - min_reduction``, or after
    ``max_levels`` levels.
    """
    levels = [CoarseLevel(graph)]
    current = graph
    for _ in range(max_levels):
        if current.n_vertices <= coarsen_to:
            break
        match = heavy_edge_matching(current, rng)
        coarse, cmap = contract(current, match)
        if coarse.n_vertices >= current.n_vertices * min_reduction:
            break
        levels[-1].coarse_map = cmap
        levels.append(CoarseLevel(coarse))
        current = coarse
    return levels
