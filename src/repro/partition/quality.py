"""Partition quality metrics: cuts, loads, balance.

Implements the quantities the paper evaluates:

* **edge cut** — total weight of edges crossing partitions (the classic
  partitioner objective, Figure 2b);
* **per-partition edge cut** — the *maximum* over partitions of the cut
  weight incident to that partition; the paper's Figure 14 metric,
  motivated by §VI's observation that minimising total cut does not
  balance cut across partitions;
* **partition loads / imbalance** — per-constraint load sums and the
  max/average ratio, the quantity bounding speedup (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loadmodel.workload import WorkloadModel
from repro.partition.csr import CSRGraph
from repro.synthpop.graph import PersonLocationGraph

__all__ = [
    "BipartitePartition",
    "csr_edge_cut",
    "edge_cut",
    "per_partition_edge_cut",
    "partition_loads",
    "imbalance",
]


@dataclass
class BipartitePartition:
    """Assignment of persons and locations to ``k`` partitions."""

    person_part: np.ndarray
    location_part: np.ndarray
    k: int
    method: str = ""

    def __post_init__(self) -> None:
        for arr, name in ((self.person_part, "person"), (self.location_part, "location")):
            if arr.size and (arr.min() < 0 or arr.max() >= self.k):
                raise ValueError(f"{name} partition id out of range for k={self.k}")

    def validate_against(self, graph: PersonLocationGraph) -> None:
        if self.person_part.shape[0] != graph.n_persons:
            raise ValueError("person_part length mismatch")
        if self.location_part.shape[0] != graph.n_locations:
            raise ValueError("location_part length mismatch")


def csr_edge_cut(graph: CSRGraph, part: np.ndarray) -> int:
    """Total cut weight of a CSR partition (each edge counted once)."""
    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    crossing = part[src] != part[graph.adjncy]
    return int(graph.adjwgt[crossing].sum() // 2)


def edge_cut(graph: PersonLocationGraph, partition: BipartitePartition) -> int:
    """Visit-weighted cut of the bipartite graph under a partition."""
    p, l, w = graph.bipartite_adjacency()
    crossing = partition.person_part[p] != partition.location_part[l]
    return int(w[crossing].sum())


def per_partition_edge_cut(
    graph: PersonLocationGraph, partition: BipartitePartition
) -> np.ndarray:
    """Cut weight incident to each partition, shape (k,).

    A crossing edge contributes to both endpoint partitions (each pays
    the communication).  Figure 14 plots the max of this vector and
    compares it to the all-remote baseline ``total_edges / k``.
    """
    p, l, w = graph.bipartite_adjacency()
    pp = partition.person_part[p]
    lp = partition.location_part[l]
    crossing = pp != lp
    out = np.zeros(partition.k, dtype=np.int64)
    np.add.at(out, pp[crossing], w[crossing])
    np.add.at(out, lp[crossing], w[crossing])
    return out


def partition_loads(
    graph: PersonLocationGraph,
    partition: BipartitePartition,
    workload: WorkloadModel | None = None,
) -> np.ndarray:
    """Per-partition, per-constraint load sums, shape (k, 2).

    Constraint 0 = person-phase load, constraint 1 = location-phase
    load (in the workload model's integer units).
    """
    workload = workload or WorkloadModel()
    out = np.zeros((partition.k, 2), dtype=np.float64)
    np.add.at(out[:, 0], partition.person_part, workload.person_weights(graph))
    np.add.at(out[:, 1], partition.location_part, workload.location_weights(graph))
    return out


def imbalance(loads: np.ndarray) -> np.ndarray:
    """Max/mean ratio per constraint (1.0 = perfectly balanced).

    ``loads`` is the (k, ncon) matrix from :func:`partition_loads`.
    """
    loads = np.asarray(loads, dtype=np.float64)
    mean = loads.mean(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(mean > 0, loads.max(axis=0) / np.maximum(mean, 1e-300), 1.0)
    return ratio
