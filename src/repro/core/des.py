"""Per-location sequential discrete-event simulation (paper step 3).

Each location converts the visit messages it received into *arrive* and
*depart* events, executes them in time order, and computes the
interactions between each susceptible–infectious pair co-present in the
same sublocation.  People only interact within a sublocation — this is
the property that lets ``splitLoc`` divide a location without adding
communication edges (paper §III-C, Figure 6a).

Two equivalent implementations are provided:

* :class:`LocationDES` — the event-driven sweep, faithful to the
  paper's description and used as the semantic reference;
* :func:`pairwise_exposures` — a vectorised all-pairs interval-overlap
  computation for one location (used by the ``grouped`` exposure
  kernel);
* :func:`blocked_pairwise_exposures` — the same pair set for *all*
  locations at once, enumerated per ``(location, sublocation)`` block
  so a heavy location never materialises pairs across sublocation
  boundaries (used by the ``flat`` exposure kernel).

Property-based tests assert all three produce identical interaction
sets.  The DES also reports the statistics the dynamic load model
consumes (paper §III-A): the number of arrive/depart events, the
number of interactions, and the sum of reciprocal interactions per
event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Interaction",
    "DESStats",
    "LocationDES",
    "pairwise_exposures",
    "blocked_pairwise_exposures",
]


@dataclass(frozen=True)
class Interaction:
    """One susceptible×infectious co-presence within a sublocation.

    Indices refer to rows of the visit arrays handed to the DES.
    """

    sus_visit: int
    inf_visit: int
    overlap_start: int
    overlap_end: int

    @property
    def overlap(self) -> int:
        return self.overlap_end - self.overlap_start


@dataclass
class DESStats:
    """Per-location statistics feeding the load models.

    ``events`` is the arrive+depart count (2 × visits).  ``interactions``
    counts S×I pairs with positive overlap.  ``recip_interactions`` is
    Σ over arrival events of 1/(interactions computed at that event),
    taken over events that computed at least one interaction — our
    concretisation of the paper's "sum of the reciprocal of
    interactions" input to the dynamic model.
    """

    events: int = 0
    interactions: int = 0
    recip_interactions: float = 0.0


class LocationDES:
    """Event-driven interaction computation for one location.

    The sweep exploits that visit end times are known at arrival (no
    early departures mid-day), so every S×I overlap can be finalised at
    the later arrival of the pair: ``overlap = min(ends) − arrival``.
    Depart events still exist — they pop the visit from the occupancy
    set and count toward the event total — which keeps the control
    structure identical to the paper's DES formulation.
    """

    ARRIVE = 0
    DEPART = 1

    def __init__(self) -> None:
        self.stats = DESStats()

    def run(
        self,
        subloc: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        is_susceptible: np.ndarray,
        is_infectious: np.ndarray,
    ) -> list[Interaction]:
        """Sweep one location's visits; return all S×I interactions.

        Parameters are per-visit arrays (any common length).  Visits that
        are neither susceptible nor infectious still generate events (the
        location cannot know a visitor is epidemiologically inert until
        it processes the visit) but produce no interactions.
        """
        n = len(start)
        self.stats = DESStats(events=2 * n)
        if n == 0:
            return []
        # Build the event list: (time, kind, visit). Sorting by (time,
        # kind) processes departures before arrivals at the same minute,
        # so zero-length overlaps are never generated.
        times = np.concatenate([start, end])
        kinds = np.concatenate(
            [np.full(n, self.ARRIVE, dtype=np.int8), np.full(n, self.DEPART, dtype=np.int8)]
        )
        visits = np.concatenate([np.arange(n), np.arange(n)])
        order = np.lexsort((1 - kinds, times))  # departures first on ties
        present_sus: dict[int, set[int]] = {}
        present_inf: dict[int, set[int]] = {}
        out: list[Interaction] = []
        for idx in order:
            v = int(visits[idx])
            sl = int(subloc[v])
            if kinds[idx] == self.DEPART:
                present_sus.get(sl, set()).discard(v)
                present_inf.get(sl, set()).discard(v)
                continue
            t = int(times[idx])
            computed_here = 0
            if is_susceptible[v]:
                for i in present_inf.get(sl, ()):  # infectious already present
                    o_end = min(int(end[v]), int(end[i]))
                    if o_end > t:
                        out.append(Interaction(v, i, t, o_end))
                        computed_here += 1
                present_sus.setdefault(sl, set()).add(v)
            if is_infectious[v]:
                for s in present_sus.get(sl, ()):  # susceptibles already present
                    if s == v:
                        continue
                    o_end = min(int(end[v]), int(end[s]))
                    if o_end > t:
                        out.append(Interaction(s, v, t, o_end))
                        computed_here += 1
                present_inf.setdefault(sl, set()).add(v)
            if computed_here:
                self.stats.interactions += computed_here
                self.stats.recip_interactions += 1.0 / computed_here
        return out


def pairwise_exposures(
    subloc: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    is_susceptible: np.ndarray,
    is_infectious: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised S×I overlap computation for one location.

    Returns ``(sus_idx, inf_idx, overlap_start, overlap_end)`` — one row
    per interacting pair, same pair set as :class:`LocationDES.run`
    (order may differ).  Complexity is O(|S|·|I|) per sublocation but
    fully vectorised, which beats the Python-loop sweep by ~2 orders of
    magnitude on realistic location sizes.
    """
    sus = np.flatnonzero(is_susceptible)
    inf = np.flatnonzero(is_infectious)
    if sus.size == 0 or inf.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    # Broadcast S against I, masked to the same sublocation.
    s_grid = np.repeat(sus, inf.size)
    i_grid = np.tile(inf, sus.size)
    same_subloc = subloc[s_grid] == subloc[i_grid]
    not_self = s_grid != i_grid
    o_start = np.maximum(start[s_grid], start[i_grid])
    o_end = np.minimum(end[s_grid], end[i_grid])
    mask = same_subloc & not_self & (o_end > o_start)
    return (
        s_grid[mask].astype(np.int64),
        i_grid[mask].astype(np.int64),
        o_start[mask].astype(np.int64),
        o_end[mask].astype(np.int64),
    )


def blocked_pairwise_exposures(
    location: np.ndarray,
    subloc: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    is_susceptible: np.ndarray,
    is_infectious: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """S×I overlaps for the *whole* visit set, blocked by sublocation.

    The segmented counterpart of :func:`pairwise_exposures`: one call
    covers every location, and pairs are enumerated per ``(location,
    sublocation)`` block instead of per location.  The pair set is
    identical — people only interact within a sublocation — but a split
    or heavy location never materialises the cross-sublocation part of
    its S×I product, the same property splitLoc exploits, and the
    per-location Python loop disappears entirely.

    Returns ``(sus_idx, inf_idx, overlap_start, overlap_end)``, indices
    into the input arrays, one row per interacting pair with positive
    overlap (order may differ from the other implementations).
    """
    empty = np.empty(0, dtype=np.int64)
    n = len(start)
    if n == 0 or not (is_susceptible.any() and is_infectious.any()):
        return empty, empty, empty.copy(), empty.copy()

    # Sort the epidemiologically relevant visits by (location,
    # sublocation); each run of equal keys is one interaction block.
    relevant = np.flatnonzero(is_susceptible | is_infectious)
    order = relevant[np.lexsort((subloc[relevant], location[relevant]))]
    loc_s = location[order]
    sub_s = subloc[order]
    new_block = np.empty(order.size, dtype=bool)
    new_block[0] = True
    np.not_equal(loc_s[1:], loc_s[:-1], out=new_block[1:])
    new_block[1:] |= sub_s[1:] != sub_s[:-1]
    block_id = np.cumsum(new_block) - 1
    n_blocks = int(block_id[-1]) + 1

    # Positions (into `order`) of the susceptible/infectious members of
    # each block, plus per-block counts — the segmented S×I geometry.
    sus_pos = np.flatnonzero(is_susceptible[order])
    inf_pos = np.flatnonzero(is_infectious[order])
    ns = np.bincount(block_id[sus_pos], minlength=n_blocks)
    ni = np.bincount(block_id[inf_pos], minlength=n_blocks)
    pair_counts = ns * ni
    total = int(pair_counts.sum())
    if total == 0:
        return empty, empty, empty.copy(), empty.copy()

    # Enumerate each block's ns×ni product without a Python loop: rank
    # every pair within its block, then div/mod by the block's |I|.
    pair_offset = np.cumsum(pair_counts) - pair_counts
    rank = np.arange(total, dtype=np.int64) - np.repeat(pair_offset, pair_counts)
    ni_of_pair = np.repeat(ni, pair_counts)
    s_local = rank // ni_of_pair
    i_local = rank - s_local * ni_of_pair
    s_idx = order[sus_pos[np.repeat(np.cumsum(ns) - ns, pair_counts) + s_local]]
    i_idx = order[inf_pos[np.repeat(np.cumsum(ni) - ni, pair_counts) + i_local]]

    o_start = np.maximum(start[s_idx], start[i_idx])
    o_end = np.minimum(end[s_idx], end[i_idx])
    # A visit that is somehow both susceptible and infectious must not
    # pair with itself (mirrors pairwise_exposures' not_self guard).
    mask = (o_end > o_start) & (s_idx != i_idx)
    return (
        s_idx[mask].astype(np.int64),
        i_idx[mask].astype(np.int64),
        o_start[mask].astype(np.int64),
        o_end[mask].astype(np.int64),
    )
