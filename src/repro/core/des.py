"""Per-location sequential discrete-event simulation (paper step 3).

Each location converts the visit messages it received into *arrive* and
*depart* events, executes them in time order, and computes the
interactions between each susceptible–infectious pair co-present in the
same sublocation.  People only interact within a sublocation — this is
the property that lets ``splitLoc`` divide a location without adding
communication edges (paper §III-C, Figure 6a).

Two equivalent implementations are provided:

* :class:`LocationDES` — the event-driven sweep, faithful to the
  paper's description and used as the semantic reference;
* :func:`pairwise_exposures` — a vectorised all-pairs interval-overlap
  computation used on the hot path.  Property-based tests assert the
  two produce identical interaction sets.

Both also report the statistics the dynamic load model consumes
(paper §III-A): the number of arrive/depart events, the number of
interactions, and the sum of reciprocal interactions per event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Interaction", "DESStats", "LocationDES", "pairwise_exposures"]


@dataclass(frozen=True)
class Interaction:
    """One susceptible×infectious co-presence within a sublocation.

    Indices refer to rows of the visit arrays handed to the DES.
    """

    sus_visit: int
    inf_visit: int
    overlap_start: int
    overlap_end: int

    @property
    def overlap(self) -> int:
        return self.overlap_end - self.overlap_start


@dataclass
class DESStats:
    """Per-location statistics feeding the load models.

    ``events`` is the arrive+depart count (2 × visits).  ``interactions``
    counts S×I pairs with positive overlap.  ``recip_interactions`` is
    Σ over arrival events of 1/(interactions computed at that event),
    taken over events that computed at least one interaction — our
    concretisation of the paper's "sum of the reciprocal of
    interactions" input to the dynamic model.
    """

    events: int = 0
    interactions: int = 0
    recip_interactions: float = 0.0


class LocationDES:
    """Event-driven interaction computation for one location.

    The sweep exploits that visit end times are known at arrival (no
    early departures mid-day), so every S×I overlap can be finalised at
    the later arrival of the pair: ``overlap = min(ends) − arrival``.
    Depart events still exist — they pop the visit from the occupancy
    set and count toward the event total — which keeps the control
    structure identical to the paper's DES formulation.
    """

    ARRIVE = 0
    DEPART = 1

    def __init__(self) -> None:
        self.stats = DESStats()

    def run(
        self,
        subloc: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        is_susceptible: np.ndarray,
        is_infectious: np.ndarray,
    ) -> list[Interaction]:
        """Sweep one location's visits; return all S×I interactions.

        Parameters are per-visit arrays (any common length).  Visits that
        are neither susceptible nor infectious still generate events (the
        location cannot know a visitor is epidemiologically inert until
        it processes the visit) but produce no interactions.
        """
        n = len(start)
        self.stats = DESStats(events=2 * n)
        if n == 0:
            return []
        # Build the event list: (time, kind, visit). Sorting by (time,
        # kind) processes departures before arrivals at the same minute,
        # so zero-length overlaps are never generated.
        times = np.concatenate([start, end])
        kinds = np.concatenate(
            [np.full(n, self.ARRIVE, dtype=np.int8), np.full(n, self.DEPART, dtype=np.int8)]
        )
        visits = np.concatenate([np.arange(n), np.arange(n)])
        order = np.lexsort((1 - kinds, times))  # departures first on ties
        present_sus: dict[int, set[int]] = {}
        present_inf: dict[int, set[int]] = {}
        out: list[Interaction] = []
        for idx in order:
            v = int(visits[idx])
            sl = int(subloc[v])
            if kinds[idx] == self.DEPART:
                present_sus.get(sl, set()).discard(v)
                present_inf.get(sl, set()).discard(v)
                continue
            t = int(times[idx])
            computed_here = 0
            if is_susceptible[v]:
                for i in present_inf.get(sl, ()):  # infectious already present
                    o_end = min(int(end[v]), int(end[i]))
                    if o_end > t:
                        out.append(Interaction(v, i, t, o_end))
                        computed_here += 1
                present_sus.setdefault(sl, set()).add(v)
            if is_infectious[v]:
                for s in present_sus.get(sl, ()):  # susceptibles already present
                    if s == v:
                        continue
                    o_end = min(int(end[v]), int(end[s]))
                    if o_end > t:
                        out.append(Interaction(s, v, t, o_end))
                        computed_here += 1
                present_inf.setdefault(sl, set()).add(v)
            if computed_here:
                self.stats.interactions += computed_here
                self.stats.recip_interactions += 1.0 / computed_here
        return out


def pairwise_exposures(
    subloc: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    is_susceptible: np.ndarray,
    is_infectious: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised S×I overlap computation for one location.

    Returns ``(sus_idx, inf_idx, overlap_start, overlap_end)`` — one row
    per interacting pair, same pair set as :class:`LocationDES.run`
    (order may differ).  Complexity is O(|S|·|I|) per sublocation but
    fully vectorised, which beats the Python-loop sweep by ~2 orders of
    magnitude on realistic location sizes.
    """
    sus = np.flatnonzero(is_susceptible)
    inf = np.flatnonzero(is_infectious)
    if sus.size == 0 or inf.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    # Broadcast S against I, masked to the same sublocation.
    s_grid = np.repeat(sus, inf.size)
    i_grid = np.tile(inf, sus.size)
    same_subloc = subloc[s_grid] == subloc[i_grid]
    not_self = s_grid != i_grid
    o_start = np.maximum(start[s_grid], start[i_grid])
    o_end = np.minimum(end[s_grid], end[i_grid])
    mask = same_subloc & not_self & (o_end > o_start)
    return (
        s_grid[mask].astype(np.int64),
        i_grid[mask].astype(np.int64),
        o_start[mask].astype(np.int64),
        o_end[mask].astype(np.int64),
    )
