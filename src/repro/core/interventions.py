"""Intervention DSL — vaccination, closures, behavioural changes.

Section II-A: "EpiSimdemics has a domain-specific language for
specifying complex interventions and behavior, such as vaccinations,
school closures, and anxiety levels."  This module provides the
intervention classes plus a small line-oriented script parser
(:func:`parse_intervention_script`) reproducing that capability.

Interventions hook into the per-day algorithm at two points:

* **treatment updates** (before the person phase) — e.g. a vaccination
  campaign flips persons to the ``VACCINATED`` treatment, changing
  their PTTS transition set;
* **visit filtering** (during the person phase) — e.g. a school closure
  suppresses visits to SCHOOL locations; symptomatic persons stay home
  with some compliance probability.

Triggers may be a fixed day or a *prevalence threshold* — the latter is
how the paper's H1N1 course-of-action analyses were posed ("close
schools when 1% are infected").
"""

from __future__ import annotations

import abc
import shlex
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.core.disease import VACCINATED
from repro.synthpop.graph import LocationType, PersonLocationGraph
from repro.util.rng import RngFactory

__all__ = [
    "DayContext",
    "Intervention",
    "Vaccination",
    "SchoolClosure",
    "WorkClosure",
    "StayHomeWhenSymptomatic",
    "WeekendSchedule",
    "AnxietyContactReduction",
    "InterventionSchedule",
    "parse_intervention_script",
]


@dataclass
class DayContext:
    """Everything an intervention may read when deciding to act.

    ``prevalence`` is the fraction of persons currently infected
    (latent or infectious); ``cumulative_attack`` the fraction ever
    infected.  Both refer to the *start* of the day (before today's
    PTTS transitions), so every execution mode sees the same values.
    ``health_state`` is the *live* array — visit filters run after the
    day's transitions and see current states.
    """

    day: int
    graph: PersonLocationGraph
    disease: "DiseaseModel"
    health_state: np.ndarray
    treatment: np.ndarray
    prevalence: float
    cumulative_attack: float
    rng_factory: RngFactory
    #: live dwell-timer array; set wherever components may edit state
    #: (the central driver), None on chare/worker contexts that only
    #: filter visits.
    days_remaining: np.ndarray | None = None


class Intervention(abc.ABC):
    """Base class — the *model component* protocol.

    Subclasses override any subset of the day-phase hooks:

    * :meth:`update_treatments` — central, before PTTS transitions;
    * :meth:`filter_visits` — during the person phase, possibly on a
      row subset;
    * :meth:`post_apply` — central, after the apply phase (the day's
      infections are in), before the day's prevalence is recorded.
      This is where components edit PTTS state directly (vaccination
      moving persons into a waning state, hospital overflow, rebirth).

    ``filter_visits`` receives an optional ``rows`` array of visit
    indices: ``keep[i]`` corresponds to visit ``rows[i]``.  This is how
    PersonManager chares filter only the visits they own; passing
    ``rows=None`` means "all visits" (the sequential path).  Filters
    must only depend on per-visit/per-person data plus trigger state,
    so row-subset evaluation equals whole-array evaluation.

    Components additionally declare their mutable state:

    * :meth:`reset` clears it, so one :class:`Scenario` object can be
      run many times (every simulator calls it at construction);
    * :meth:`checkpoint_state` / :meth:`restore_state` round-trip it
      through :mod:`repro.core.checkpoint`;
    * components whose *filters* depend on centrally-computed state set
      ``has_wire_state`` and implement :meth:`wire_state` /
      :meth:`load_wire_state` so the SMP driver can broadcast that
      state to forked workers with the day kick;
    * :meth:`extra_transitions` / :meth:`reinfection_possible` tell the
      invariant checker which out-of-PTTS edits to expect.
    """

    #: True when the component's visit filter depends on central state
    #: that must be broadcast to SMP workers each day.
    has_wire_state: bool = False

    def update_treatments(self, ctx: DayContext) -> None:
        """Mutate ``ctx.treatment`` in place (e.g. vaccinate).

        Runs centrally once per day, before PTTS transitions.
        """

    def filter_visits(
        self, ctx: DayContext, keep: np.ndarray, rows: np.ndarray | None = None
    ) -> None:
        """Clear entries of the per-visit ``keep`` mask to cancel visits."""

    def post_apply(self, ctx: DayContext) -> None:
        """Edit person state after the day's infections are applied.

        Runs centrally once per day in every backend, at the same
        algorithmic point: after the apply phase, before the day's
        prevalence is computed.  May mutate ``ctx.health_state``,
        ``ctx.days_remaining`` and ``ctx.treatment``.
        """

    def reset(self) -> None:
        """Clear per-run mutable state so the component can run again.

        The default resets the common trigger/one-shot attributes;
        stateful components override (and call ``super().reset()``).
        """
        trigger = getattr(self, "trigger", None)
        if isinstance(trigger, _Trigger):
            trigger.fired_on = None
        if hasattr(self, "_done"):
            self._done = False

    def checkpoint_state(self) -> dict:
        """Declared mutable state as ``{name: scalar | ndarray}``.

        The default captures the common trigger/one-shot attributes;
        stateful components extend the dict (ndarray values are stored
        as checkpoint arrays, everything else in the JSON header).
        """
        state: dict = {}
        trigger = getattr(self, "trigger", None)
        if isinstance(trigger, _Trigger):
            state["fired_on"] = trigger.fired_on
        if hasattr(self, "_done"):
            state["done"] = bool(self._done)
        return state

    def restore_state(self, state: dict) -> None:
        """Restore what :meth:`checkpoint_state` declared."""
        trigger = getattr(self, "trigger", None)
        if isinstance(trigger, _Trigger) and "fired_on" in state:
            trigger.fired_on = state["fired_on"]
        if hasattr(self, "_done") and "done" in state:
            self._done = bool(state["done"])

    def wire_state(self) -> bytes:
        """Filter-relevant central state as bytes (SMP broadcast)."""
        return b""

    def load_wire_state(self, blob: bytes) -> None:
        """Adopt a :meth:`wire_state` blob (called on SMP workers)."""

    def extra_transitions(self, disease) -> list[tuple[str, str]]:
        """State-name pairs this component may move persons along
        outside the declared PTTS transitions (for the invariant
        checker)."""
        return []

    def reinfection_possible(self, disease) -> bool:
        """True when the component can return persons to a susceptible
        state, making cumulative infections exceed unique persons."""
        return False


@dataclass
class _Trigger:
    """When an intervention becomes active.

    Either a fixed ``day`` or a ``prevalence`` threshold; once fired it
    stays active for ``duration`` days (or forever if ``duration`` is
    None).  State (``fired_on``) lives here so intervention objects are
    single-run; build a fresh schedule per simulation.
    """

    day: int | None = None
    prevalence: float | None = None
    duration: int | None = None
    fired_on: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.day is None) == (self.prevalence is None):
            raise ValueError("specify exactly one of day= or prevalence=")

    def active(self, ctx: DayContext) -> bool:
        if self.fired_on is None:
            if self.day is not None and ctx.day >= self.day:
                self.fired_on = ctx.day
            elif self.prevalence is not None and ctx.prevalence >= self.prevalence:
                self.fired_on = ctx.day
        if self.fired_on is None:
            return False
        if self.duration is None:
            return True
        return ctx.day < self.fired_on + self.duration


class Vaccination(Intervention):
    """Vaccinate a fraction of (an age band of) the population.

    One-shot: on the trigger day, ``coverage`` of eligible persons move
    to the VACCINATED treatment.  Vaccination changes the PTTS entry
    state (see :func:`repro.core.disease.influenza_model`), it does not
    retroactively cure.
    """

    def __init__(
        self,
        coverage: float,
        day: int = 0,
        prevalence: float | None = None,
        age_min: int = 0,
        age_max: int = 200,
    ):
        if not (0.0 <= coverage <= 1.0):
            raise ValueError("coverage must be in [0, 1]")
        self.coverage = coverage
        self.trigger = _Trigger(
            day=None if prevalence is not None else day, prevalence=prevalence, duration=1
        )
        self.age_min, self.age_max = age_min, age_max
        self._done = False

    def update_treatments(self, ctx: DayContext) -> None:
        if self._done or not self.trigger.active(ctx):
            return
        self._done = True
        ages = ctx.graph.person_age
        eligible = np.flatnonzero((ages >= self.age_min) & (ages <= self.age_max))
        if eligible.size == 0:
            return
        rng = ctx.rng_factory.stream(RngFactory.INTERVENTION, ctx.day, 0)
        chosen = eligible[rng.random(eligible.size) < self.coverage]
        ctx.treatment[chosen] = VACCINATED


class _ClosureBase(Intervention):
    """Suppress visits to one location type while the trigger is active."""

    location_type: LocationType

    def __init__(
        self,
        day: int | None = None,
        prevalence: float | None = None,
        duration: int | None = 14,
    ):
        self.trigger = _Trigger(day=day, prevalence=prevalence, duration=duration)

    def filter_visits(
        self, ctx: DayContext, keep: np.ndarray, rows: np.ndarray | None = None
    ) -> None:
        if not self.trigger.active(ctx):
            return
        locs = ctx.graph.visit_location if rows is None else ctx.graph.visit_location[rows]
        keep[ctx.graph.location_type[locs] == int(self.location_type)] = False


class SchoolClosure(_ClosureBase):
    """Close schools (the paper's canonical course-of-action lever)."""

    location_type = LocationType.SCHOOL


class WorkClosure(_ClosureBase):
    """Shut down workplaces."""

    location_type = LocationType.WORK


class StayHomeWhenSymptomatic(Intervention):
    """Symptomatic persons skip non-home visits with given compliance.

    Compliance draws are keyed per (day, person) so the behaviour is
    identical between sequential and chare-parallel execution.
    """

    def __init__(self, compliance: float = 0.5):
        if not (0.0 <= compliance <= 1.0):
            raise ValueError("compliance must be in [0, 1]")
        self.compliance = compliance

    def filter_visits(
        self, ctx: DayContext, keep: np.ndarray, rows: np.ndarray | None = None
    ) -> None:
        if self.compliance == 0.0:
            return
        g = ctx.graph
        persons = g.visit_person if rows is None else g.visit_person[rows]
        locations = g.visit_location if rows is None else g.visit_location[rows]
        sick_here = ctx.disease.symptomatic[ctx.health_state[persons]]
        if not sick_here.any():
            return
        sick_ids = np.unique(persons[sick_here])
        draws = ctx.rng_factory.uniforms_for(RngFactory.INTERVENTION, ctx.day, sick_ids)
        stay = np.zeros(g.n_persons, dtype=bool)
        stay[sick_ids[draws < self.compliance]] = True
        non_home = locations != g.person_home[persons]
        keep[stay[persons] & non_home] = False


class WeekendSchedule(Intervention):
    """Normative weekly rhythm: work/school visits drop on weekends.

    The paper's populations carry *normative schedules*; runs span 120+
    days, i.e. many weeks, so the weekly rhythm matters for timing
    studies (a closure triggered on a Friday behaves differently).
    Persons skip WORK/SCHOOL visits on days ``day % 7 ∈ weekend_days``
    with probability ``compliance`` (keyed per (day, person), so every
    execution mode agrees).
    """

    def __init__(self, compliance: float = 0.9, weekend_days: tuple[int, int] = (5, 6)):
        if not (0.0 <= compliance <= 1.0):
            raise ValueError("compliance must be in [0, 1]")
        self.compliance = compliance
        self.weekend_days = tuple(weekend_days)

    def filter_visits(
        self, ctx: DayContext, keep: np.ndarray, rows: np.ndarray | None = None
    ) -> None:
        if ctx.day % 7 not in self.weekend_days:
            return
        g = ctx.graph
        persons = g.visit_person if rows is None else g.visit_person[rows]
        locations = g.visit_location if rows is None else g.visit_location[rows]
        types = g.location_type[locations]
        workish = (types == int(LocationType.WORK)) | (types == int(LocationType.SCHOOL))
        if not workish.any():
            return
        ids = np.unique(persons[workish])
        draws = ctx.rng_factory.uniforms_for(RngFactory.INTERVENTION, ctx.day, ids, salt=1)
        skipping = np.zeros(g.n_persons, dtype=bool)
        skipping[ids[draws < self.compliance]] = True
        keep[workish & skipping[persons]] = False


class AnxietyContactReduction(Intervention):
    """Prevalence-responsive voluntary contact reduction.

    The paper's DSL models "anxiety levels" ([6]): as people perceive
    the epidemic, they voluntarily skip discretionary (SHOP/OTHER)
    visits.  The skip probability rises with prevalence:

        p_skip = strength · min(1, prevalence / saturation)

    keyed per (day, person) so all execution modes agree.  Unlike the
    closures, this feedback loop responds continuously — it flattens
    epidemic curves without any policy trigger.
    """

    _SALT = 2

    def __init__(self, strength: float = 0.6, saturation: float = 0.05):
        if not (0.0 <= strength <= 1.0):
            raise ValueError("strength must be in [0, 1]")
        if saturation <= 0:
            raise ValueError("saturation must be positive")
        self.strength = strength
        self.saturation = saturation

    def filter_visits(
        self, ctx: DayContext, keep: np.ndarray, rows: np.ndarray | None = None
    ) -> None:
        p_skip = self.strength * min(1.0, ctx.prevalence / self.saturation)
        if p_skip <= 0.0:
            return
        g = ctx.graph
        persons = g.visit_person if rows is None else g.visit_person[rows]
        locations = g.visit_location if rows is None else g.visit_location[rows]
        types = g.location_type[locations]
        discretionary = (types == int(LocationType.SHOP)) | (
            types == int(LocationType.OTHER)
        )
        if not discretionary.any():
            return
        ids = np.unique(persons[discretionary])
        draws = ctx.rng_factory.uniforms_for(
            RngFactory.INTERVENTION, ctx.day, ids, salt=self._SALT
        )
        anxious = np.zeros(g.n_persons, dtype=bool)
        anxious[ids[draws < p_skip]] = True
        keep[discretionary & anxious[persons]] = False


#: wire-state entry header: (component index, payload bytes)
_WIRE_ENTRY = struct.Struct("<qq")


class InterventionSchedule:
    """An ordered bundle of interventions applied each day."""

    def __init__(self, interventions: list[Intervention] | None = None):
        self.interventions = list(interventions or [])

    def __len__(self) -> int:
        return len(self.interventions)

    def __iter__(self):
        return iter(self.interventions)

    def update_treatments(self, ctx: DayContext) -> None:
        for iv in self.interventions:
            iv.update_treatments(ctx)

    def visit_mask(self, ctx: DayContext, rows: np.ndarray | None = None) -> np.ndarray:
        """Keep-mask over ``rows`` (all visits when ``rows`` is None)."""
        n = ctx.graph.n_visits if rows is None else len(rows)
        keep = np.ones(n, dtype=bool)
        for iv in self.interventions:
            iv.filter_visits(ctx, keep, rows)
        return keep

    def post_apply(self, ctx: DayContext) -> None:
        for iv in self.interventions:
            iv.post_apply(ctx)

    def reset(self) -> None:
        for iv in self.interventions:
            iv.reset()

    def checkpoint_state(self) -> list[dict]:
        return [iv.checkpoint_state() for iv in self.interventions]

    def restore_state(self, states: list[dict]) -> None:
        if len(states) != len(self.interventions):
            raise ValueError(
                f"checkpoint has {len(states)} component state(s), "
                f"schedule has {len(self.interventions)}"
            )
        for iv, state in zip(self.interventions, states):
            iv.restore_state(state)

    def wire_state(self) -> bytes:
        """Concatenated per-component wire blobs; b'' when none apply.

        Components with ``has_wire_state`` always get an entry (even a
        zero-length payload) so workers see state *removals* too.
        """
        parts: list[bytes] = []
        for i, iv in enumerate(self.interventions):
            if not iv.has_wire_state:
                continue
            payload = iv.wire_state()
            parts.append(_WIRE_ENTRY.pack(i, len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def load_wire_state(self, blob: bytes) -> None:
        offset = 0
        while offset < len(blob):
            index, nbytes = _WIRE_ENTRY.unpack_from(blob, offset)
            offset += _WIRE_ENTRY.size
            self.interventions[index].load_wire_state(blob[offset:offset + nbytes])
            offset += nbytes

    def extra_transitions(self, disease) -> list[tuple[str, str]]:
        edges: list[tuple[str, str]] = []
        for iv in self.interventions:
            edges.extend(iv.extra_transitions(disease))
        return edges

    def reinfection_possible(self, disease) -> bool:
        return any(iv.reinfection_possible(disease) for iv in self.interventions)


# ----------------------------------------------------------------------
# the script language
# ----------------------------------------------------------------------
_COMMANDS = {"vaccinate", "close_schools", "close_work", "stay_home", "weekends", "anxiety"}


def parse_intervention_script(text: str) -> InterventionSchedule:
    """Parse the intervention mini-language into a schedule.

    Grammar (one directive per line; ``#`` comments)::

        vaccinate      coverage=0.3 [day=0 | prevalence=0.01] [ages=5-18]
        close_schools  [day=N | prevalence=X] [duration=14]
        close_work     [day=N | prevalence=X] [duration=14]
        stay_home      [compliance=0.5]
        weekends       [compliance=0.9]
        anxiety        [strength=0.6] [saturation=0.05]

    Example
    -------
    >>> sched = parse_intervention_script('''
    ...     vaccinate coverage=0.25 day=0 ages=5-18
    ...     close_schools prevalence=0.01 duration=21
    ...     stay_home compliance=0.6
    ... ''')
    >>> len(sched)
    3
    """
    interventions: list[Intervention] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = shlex.split(line)
        cmd, kvs = tokens[0], tokens[1:]
        if cmd not in _COMMANDS:
            raise ValueError(f"line {lineno}: unknown directive {cmd!r}")
        args: dict[str, str] = {}
        for kv in kvs:
            if "=" not in kv:
                raise ValueError(f"line {lineno}: expected key=value, got {kv!r}")
            k, v = kv.split("=", 1)
            args[k] = v
        try:
            interventions.append(_build(cmd, args))
        except (KeyError, ValueError) as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return InterventionSchedule(interventions)


def _build(cmd: str, args: dict[str, str]) -> Intervention:
    def day_prev() -> dict:
        out: dict = {}
        if "day" in args:
            out["day"] = int(args.pop("day"))
        if "prevalence" in args:
            out["prevalence"] = float(args.pop("prevalence"))
        return out

    if cmd == "vaccinate":
        kwargs: dict = {"coverage": float(args.pop("coverage"))}
        kwargs.update(day_prev())
        if "ages" in args:
            lo, hi = args.pop("ages").split("-")
            kwargs["age_min"], kwargs["age_max"] = int(lo), int(hi)
        _reject_extra(args)
        return Vaccination(**kwargs)
    if cmd in ("close_schools", "close_work"):
        kwargs = day_prev()
        if "duration" in args:
            kwargs["duration"] = int(args.pop("duration"))
        _reject_extra(args)
        cls = SchoolClosure if cmd == "close_schools" else WorkClosure
        return cls(**kwargs)
    if cmd == "weekends":
        kwargs = {}
        if "compliance" in args:
            kwargs["compliance"] = float(args.pop("compliance"))
        _reject_extra(args)
        return WeekendSchedule(**kwargs)
    if cmd == "anxiety":
        kwargs = {}
        if "strength" in args:
            kwargs["strength"] = float(args.pop("strength"))
        if "saturation" in args:
            kwargs["saturation"] = float(args.pop("saturation"))
        _reject_extra(args)
        return AnxietyContactReduction(**kwargs)
    # stay_home
    kwargs = {}
    if "compliance" in args:
        kwargs["compliance"] = float(args.pop("compliance"))
    _reject_extra(args)
    return StayHomeWhenSymptomatic(**kwargs)


def _reject_extra(args: dict[str, str]) -> None:
    if args:
        raise ValueError(f"unexpected arguments: {sorted(args)}")
