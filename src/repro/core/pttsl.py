"""PTTSL — a file format for PTTS disease models.

The paper (§II-A) notes EpiSimdemics consumes disease models specified
externally (the PTTS machinery plus a DSL for interventions and
behaviour, ref. [6]).  This module provides the disease-model half: a
small line-oriented language that compiles to
:class:`repro.core.disease.DiseaseModel`, plus a serialiser so models
round-trip.

Grammar (``#`` comments, blank lines ignored)::

    treatment NAME                      # declare a treatment set
    state NAME [key=value ...]          # declare a state
    transition SRC -> DST:P [, DST:P]*  [treatment=NAME]
    entry -> STATE [treatment=NAME]     # state entered on infection
    susceptible STATE                   # the initial state

State keys: ``infectivity`` (float), ``susceptibility`` (float),
``symptomatic`` (flag or true/false), ``dwell`` — one of
``fixed(D)``, ``uniform(A,B)``, ``geometric(P)``, ``gamma(K,THETA)``,
``forever`` (default).

Example
-------
::

    # a minimal SEIR
    susceptible S
    state S susceptibility=1.0
    state E dwell=fixed(2)
    state I infectivity=1.0 symptomatic dwell=uniform(3,5)
    state R
    transition E -> I:1.0
    transition I -> R:1.0
    entry -> E
"""

from __future__ import annotations

import re

from repro.core.disease import (
    UNTREATED,
    DiseaseModel,
    DwellDistribution,
    DwellKind,
    HealthState,
    Transition,
)

__all__ = ["parse_ptts", "format_ptts", "PTTSLError"]


class PTTSLError(ValueError):
    """Raised on malformed PTTSL input, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_DWELL_RE = re.compile(r"^(fixed|uniform|geometric|gamma|forever)(?:\(([^)]*)\))?$")


def _parse_dwell(text: str, lineno: int) -> DwellDistribution:
    m = _DWELL_RE.match(text.strip())
    if not m:
        raise PTTSLError(lineno, f"bad dwell specification {text!r}")
    kind, args_text = m.group(1), m.group(2)
    args = [a.strip() for a in args_text.split(",")] if args_text else []
    try:
        if kind == "fixed":
            (d,) = args
            return DwellDistribution.fixed(int(d))
        if kind == "uniform":
            a, b = args
            return DwellDistribution.uniform(int(a), int(b))
        if kind == "geometric":
            (p,) = args
            return DwellDistribution.geometric(float(p))
        if kind == "gamma":
            k, theta = args
            return DwellDistribution.gamma(float(k), float(theta))
        if args:
            raise ValueError("forever takes no arguments")
        return DwellDistribution.forever()
    except PTTSLError:
        raise
    except (ValueError, TypeError) as exc:
        raise PTTSLError(lineno, f"bad dwell arguments in {text!r}: {exc}") from exc


def _parse_flags(tokens: list[str], lineno: int) -> dict:
    out: dict = {}
    for tok in tokens:
        if "=" in tok:
            k, v = tok.split("=", 1)
            out[k] = v
        else:
            out[tok] = "true"
    for k in out:
        if k not in ("infectivity", "susceptibility", "symptomatic", "dwell"):
            raise PTTSLError(lineno, f"unknown state attribute {k!r}")
    return out


def parse_ptts(text: str) -> DiseaseModel:
    """Compile PTTSL source into a :class:`DiseaseModel`."""
    treatments: dict[str, int] = {"untreated": UNTREATED}
    next_treatment = UNTREATED + 1
    state_decls: dict[str, dict] = {}
    state_order: list[str] = []
    transitions: dict[tuple[str, int], list[Transition]] = {}
    entries: dict[int, str] = {}
    susceptible: str | None = None

    def treatment_index(name: str, lineno: int) -> int:
        if name not in treatments:
            raise PTTSLError(lineno, f"unknown treatment {name!r} (declare it first)")
        return treatments[name]

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kw = tokens[0]

        if kw == "treatment":
            if len(tokens) != 2:
                raise PTTSLError(lineno, "usage: treatment NAME")
            name = tokens[1]
            if name in treatments:
                raise PTTSLError(lineno, f"treatment {name!r} already declared")
            treatments[name] = next_treatment
            next_treatment += 1

        elif kw == "susceptible":
            if len(tokens) != 2:
                raise PTTSLError(lineno, "usage: susceptible STATE")
            susceptible = tokens[1]

        elif kw == "state":
            if len(tokens) < 2:
                raise PTTSLError(lineno, "usage: state NAME [attrs...]")
            name = tokens[1]
            if name in state_decls:
                raise PTTSLError(lineno, f"state {name!r} already declared")
            state_decls[name] = _parse_flags(tokens[2:], lineno)
            state_order.append(name)

        elif kw == "transition":
            m = re.match(r"^transition\s+(\S+)\s*->\s*(.+)$", line)
            if not m:
                raise PTTSLError(lineno, "usage: transition SRC -> DST:P[, DST:P]*")
            src, rest = m.group(1), m.group(2)
            treatment = UNTREATED
            tm = re.search(r"treatment=(\S+)\s*$", rest)
            if tm:
                treatment = treatment_index(tm.group(1), lineno)
                rest = rest[: tm.start()].rstrip().rstrip(",")
            trs = []
            for part in rest.split(","):
                part = part.strip()
                if not part:
                    continue
                if ":" not in part:
                    raise PTTSLError(lineno, f"expected DST:PROB, got {part!r}")
                dst, prob = part.rsplit(":", 1)
                try:
                    trs.append(Transition(dst.strip(), float(prob)))
                except ValueError as exc:
                    raise PTTSLError(lineno, str(exc)) from exc
            key = (src, treatment)
            if key in transitions:
                raise PTTSLError(
                    lineno, f"duplicate transition block for {src!r} (treatment {treatment})"
                )
            transitions[key] = trs

        elif kw == "entry":
            m = re.match(r"^entry\s*->\s*(\S+)(?:\s+treatment=(\S+))?\s*$", line)
            if not m:
                raise PTTSLError(lineno, "usage: entry -> STATE [treatment=NAME]")
            t = treatment_index(m.group(2), lineno) if m.group(2) else UNTREATED
            entries[t] = m.group(1)

        else:
            raise PTTSLError(lineno, f"unknown directive {kw!r}")

    # ---- assemble -----------------------------------------------------
    if susceptible is None:
        raise PTTSLError(0, "missing 'susceptible STATE' directive")
    if UNTREATED not in entries:
        raise PTTSLError(0, "missing 'entry -> STATE' for the untreated case")
    for (src, _t), trs in transitions.items():
        if src not in state_decls:
            raise PTTSLError(0, f"transition from undeclared state {src!r}")
        for tr in trs:
            if tr.target not in state_decls:
                raise PTTSLError(0, f"transition to undeclared state {tr.target!r}")
    for name in list(entries.values()) + [susceptible]:
        if name not in state_decls:
            raise PTTSLError(0, f"undeclared state {name!r}")

    states = []
    for name in state_order:
        attrs = state_decls[name]
        per_treatment = {
            t: tuple(trs) for (src, t), trs in transitions.items() if src == name
        }
        dwell = (
            _parse_dwell(attrs["dwell"], 0)
            if "dwell" in attrs
            else DwellDistribution.forever()
        )
        states.append(
            HealthState(
                name=name,
                infectivity=float(attrs.get("infectivity", 0.0)),
                susceptibility=float(attrs.get("susceptibility", 0.0)),
                symptomatic=str(attrs.get("symptomatic", "false")).lower() == "true",
                dwell=dwell,
                transitions=per_treatment,
            )
        )
    return DiseaseModel(states, susceptible=susceptible, infection_entry=entries)


def format_ptts(model: DiseaseModel) -> str:
    """Serialise a :class:`DiseaseModel` back to PTTSL source."""
    lines = [f"susceptible {model.states[model.susceptible_index].name}"]
    all_treatments = sorted(set(model.treatments) | set(model.infection_entry))
    for t in all_treatments:
        if t != UNTREATED:
            lines.append(f"treatment t{t}")
    for s in model.states:
        attrs = []
        if s.infectivity:
            attrs.append(f"infectivity={s.infectivity}")
        if s.susceptibility:
            attrs.append(f"susceptibility={s.susceptibility}")
        if s.symptomatic:
            attrs.append("symptomatic")
        if s.dwell.kind != DwellKind.FOREVER:
            attrs.append(f"dwell={_format_dwell(s.dwell)}")
        lines.append(("state " + s.name + " " + " ".join(attrs)).rstrip())
    for s in model.states:
        for t, trs in sorted(s.transitions.items()):
            body = ", ".join(f"{tr.target}:{tr.prob}" for tr in trs)
            suffix = "" if t == UNTREATED else f" treatment=t{t}"
            lines.append(f"transition {s.name} -> {body}{suffix}")
    for t, name in sorted(model.infection_entry.items()):
        suffix = "" if t == UNTREATED else f" treatment=t{t}"
        lines.append(f"entry -> {name}{suffix}")
    return "\n".join(lines) + "\n"


def _format_dwell(d: DwellDistribution) -> str:
    if d.kind == DwellKind.FIXED:
        return f"fixed({int(d.a)})"
    if d.kind == DwellKind.UNIFORM:
        return f"uniform({int(d.a)},{int(d.b)})"
    if d.kind == DwellKind.GEOMETRIC:
        return f"geometric({d.a})"
    if d.kind == DwellKind.GAMMA:
        return f"gamma({d.a},{d.b})"
    return "forever"
