"""Epidemic output metrics (paper step 6: global system state).

Collected once per simulated day by every execution mode; the
integration tests compare these curves across modes for exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.disease import DiseaseModel

__all__ = ["EpiCurve", "state_histogram"]


def state_histogram(health_state: np.ndarray, disease: DiseaseModel) -> dict[str, int]:
    """Count persons per PTTS state name."""
    counts = np.bincount(health_state, minlength=disease.n_states)
    return {s.name: int(c) for s, c in zip(disease.states, counts)}


@dataclass
class EpiCurve:
    """Per-day epidemic time series.

    Attributes
    ----------
    new_infections:
        Transmissions per day (index cases count on day 0).
    prevalence:
        Fraction of the population in a non-susceptible, non-absorbing
        state (i.e. currently latent or infectious) at end of day.
    cumulative_infections:
        Total persons ever infected by end of day.
    """

    new_infections: list[int] = field(default_factory=list)
    prevalence: list[float] = field(default_factory=list)
    cumulative_infections: list[int] = field(default_factory=list)

    def record_day(self, new: int, prevalence: float) -> None:
        prior = self.cumulative_infections[-1] if self.cumulative_infections else 0
        self.new_infections.append(int(new))
        self.prevalence.append(float(prevalence))
        self.cumulative_infections.append(prior + int(new))

    @property
    def n_days(self) -> int:
        return len(self.new_infections)

    @property
    def peak_day(self) -> int:
        """Day with the most new infections."""
        if not self.new_infections:
            raise ValueError("empty curve")
        return int(np.argmax(self.new_infections))

    def attack_rate(self, n_persons: int) -> float:
        """Fraction of the population ever infected."""
        if not self.cumulative_infections:
            return 0.0
        return self.cumulative_infections[-1] / n_persons

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "new_infections": np.asarray(self.new_infections, dtype=np.int64),
            "prevalence": np.asarray(self.prevalence, dtype=np.float64),
            "cumulative_infections": np.asarray(self.cumulative_infections, dtype=np.int64),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EpiCurve):
            return NotImplemented
        return (
            self.new_infections == other.new_infections
            and self.cumulative_infections == other.cumulative_infections
            and np.allclose(self.prevalence, other.prevalence)
        )
